//! Property tests for the runtime-dispatched SIMD kernels.
//!
//! Every kernel is run through both function-pointer tables — the scalar
//! mirror and whatever [`coconut_series::simd::detect`] picks on this CPU
//! (AVX2 on x86_64) — over random lengths, including non-lane-multiple
//! remainders, and the results must agree to ≤ 1 ulp (the implementations
//! are structured to be bit-identical; the 1-ulp slack is the contract).
//! The early-abandon kernel must additionally make the *same* keep/abandon
//! decision on both paths, including exactly at the cutoff boundary.

use coconut_series::simd::{detect, kernels_for, Dispatch, Kernels};
use coconut_series::Value;
use proptest::prelude::*;

fn scalar() -> &'static Kernels {
    kernels_for(Dispatch::Scalar)
}

fn dispatched() -> &'static Kernels {
    kernels_for(detect())
}

/// `a` and `b` are equal, or adjacent representable `f64`s.
fn ulp_eq(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() || b.is_nan() || a.signum() != b.signum() {
        return false;
    }
    (a.to_bits() as i64).abs_diff(b.to_bits() as i64) <= 1
}

fn series(len_max: usize) -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(-100.0f32..100.0f32, 0..=len_max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn euclidean_sq_simd_matches_scalar(a in series(300)) {
        let b: Vec<Value> = a.iter().map(|&v| v * 0.7 - 1.25).collect();
        let s = (scalar().euclidean_sq)(&a, &b);
        let v = (dispatched().euclidean_sq)(&a, &b);
        prop_assert!(ulp_eq(s, v), "scalar {s} vs simd {v} (n={})", a.len());
    }

    #[test]
    fn early_abandon_simd_matches_scalar(a in series(300), frac in 0.0f64..2.0f64) {
        let b: Vec<Value> = a.iter().map(|&v| v * -0.5 + 0.3).collect();
        let full = (scalar().euclidean_sq)(&a, &b);
        let cutoff = full * frac;
        let s = (scalar().euclidean_sq_early_abandon)(&a, &b, cutoff);
        let v = (dispatched().euclidean_sq_early_abandon)(&a, &b, cutoff);
        prop_assert_eq!(s.is_some(), v.is_some(), "decision split at cutoff {}", cutoff);
        if let (Some(x), Some(y)) = (s, v) {
            prop_assert!(ulp_eq(x, y));
        }
    }

    #[test]
    fn early_abandon_cutoff_boundary_agrees(a in series(300)) {
        let b: Vec<Value> = a.iter().map(|&v| v + 1.0).collect();
        let full = (scalar().euclidean_sq)(&a, &b);
        // Exactly at the cutoff: kept (strictly-greater abandons) — on both
        // paths, since the final totals are bit-identical.
        let s = (scalar().euclidean_sq_early_abandon)(&a, &b, full);
        let v = (dispatched().euclidean_sq_early_abandon)(&a, &b, full);
        prop_assert_eq!(s, Some(full));
        prop_assert_eq!(v.is_some(), true);
        prop_assert!(ulp_eq(v.unwrap(), full));
        // A hair below the total: abandoned by the final check on both.
        if full > 0.0 {
            let below = f64::from_bits(full.to_bits() - 1);
            prop_assert_eq!((scalar().euclidean_sq_early_abandon)(&a, &b, below), None);
            prop_assert_eq!((dispatched().euclidean_sq_early_abandon)(&a, &b, below), None);
        }
    }

    #[test]
    fn sum_and_sumsq_simd_match_scalar(a in series(300)) {
        let s = (scalar().sum)(&a);
        let v = (dispatched().sum)(&a);
        prop_assert!(ulp_eq(s, v));
        let shift = a.first().copied().unwrap_or(0.0) as f64;
        let (s1, q1) = (scalar().sum_sumsq)(&a, shift);
        let (s2, q2) = (dispatched().sum_sumsq)(&a, shift);
        prop_assert!(ulp_eq(s1, s2));
        prop_assert!(ulp_eq(q1, q2));
    }

    #[test]
    fn normalize_affine_is_lane_exact(a in series(300), mean in -10.0f64..10.0f64) {
        let mut s = a.clone();
        let mut v = a.clone();
        (scalar().normalize_affine)(&mut s, mean, 1.37);
        (dispatched().normalize_affine)(&mut v, mean, 1.37);
        prop_assert_eq!(s, v);
    }

    #[test]
    fn segment_sums_simd_matches_scalar(a in series(320), seg in 1usize..24) {
        let w = a.len() / seg;
        if w > 0 {
            let series = &a[..w * seg];
            let mut s = vec![0.0f64; w];
            let mut v = vec![0.0f64; w];
            (scalar().segment_sums)(series, seg, &mut s);
            (dispatched().segment_sums)(series, seg, &mut v);
            for (i, (x, y)) in s.iter().zip(v.iter()).enumerate() {
                prop_assert!(ulp_eq(*x, *y), "segment {} of {} (seg={})", i, w, seg);
            }
        }
    }

    #[test]
    fn znormalize_pipeline_is_dispatch_invariant(a in series(300)) {
        // Replicate `distance::znormalize` under both tables; the public
        // function uses the process-wide dispatch, so equality here proves
        // the pipeline's output doesn't depend on which path was picked.
        fn znorm_with(k: &Kernels, series: &mut [Value]) {
            if series.is_empty() {
                return;
            }
            let n = series.len() as f64;
            let shift = series[0] as f64;
            let (sum_d, sumsq_d) = (k.sum_sumsq)(series, shift);
            let mean_d = sum_d / n;
            let var = (sumsq_d / n - mean_d * mean_d).max(0.0);
            let std = var.sqrt();
            if std < 1e-12 {
                series.fill(0.0);
                return;
            }
            (k.normalize_affine)(series, shift + mean_d, 1.0 / std);
        }
        let mut s = a.clone();
        let mut v = a.clone();
        znorm_with(scalar(), &mut s);
        znorm_with(dispatched(), &mut v);
        prop_assert_eq!(s, v);
    }
}
