//! The raw dataset file format.
//!
//! The paper's indexes are built over a single large binary file of
//! fixed-length series ("the raw file"); non-materialized indexes keep
//! offsets into it and fetch raw series on demand. Our format is:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"CCNTDS01"
//! 8       4     series length (points, u32 LE)
//! 12      4     flags (bit 0: series are z-normalized)
//! 16      8     series count (u64 LE)
//! 24      8     reserved (zero)
//! 32      ...   count * series_len * 4 bytes of f32 LE values
//! ```
//!
//! All access goes through [`coconut_storage::CountedFile`] so experiments
//! can attribute raw-file I/O (sequential build scans vs random query
//! fetches) in the disk access model.

use std::path::Path;
use std::sync::Arc;

use coconut_storage::{CountedFile, Error, IoStats, Result};

use crate::gen::Generator;
use crate::Value;

const MAGIC: &[u8; 8] = b"CCNTDS01";
/// Size of the fixed file header in bytes.
pub const HEADER_LEN: u64 = 32;
/// Flag bit: the stored series are z-normalized.
pub const FLAG_ZNORMALIZED: u32 = 1;

fn encode_header(series_len: u32, flags: u32, count: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[0..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&series_len.to_le_bytes());
    h[12..16].copy_from_slice(&flags.to_le_bytes());
    h[16..24].copy_from_slice(&count.to_le_bytes());
    h
}

/// Streaming writer for dataset files.
///
/// Appended series are buffered and flushed with large sequential writes;
/// `finish` patches the header with the final count.
pub struct DatasetWriter {
    file: CountedFile,
    series_len: usize,
    flags: u32,
    count: u64,
    buf: Vec<u8>,
}

/// Write buffer size: large enough that header-patching and data writes do
/// not interleave into random I/O noise.
const WRITE_BUF: usize = 1 << 20;

impl DatasetWriter {
    /// Create a dataset file at `path` holding series of `series_len` points.
    pub fn create(
        path: impl AsRef<Path>,
        series_len: usize,
        znormalized: bool,
        stats: Arc<IoStats>,
    ) -> Result<Self> {
        if series_len == 0 {
            return Err(Error::invalid("series length must be positive"));
        }
        if series_len > u32::MAX as usize {
            return Err(Error::invalid("series length exceeds u32"));
        }
        let file = CountedFile::create(path, stats)?;
        let flags = if znormalized { FLAG_ZNORMALIZED } else { 0 };
        // Provisional header; count patched in `finish`.
        file.append(&encode_header(series_len as u32, flags, 0))?;
        Ok(DatasetWriter {
            file,
            series_len,
            flags,
            count: 0,
            buf: Vec::with_capacity(WRITE_BUF),
        })
    }

    /// Append one series (must have exactly the configured length).
    pub fn append(&mut self, series: &[Value]) -> Result<u64> {
        if series.len() != self.series_len {
            return Err(Error::invalid(format!(
                "series length {} != dataset series length {}",
                series.len(),
                self.series_len
            )));
        }
        for &v in series {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        if self.buf.len() >= WRITE_BUF {
            self.file.append(&self.buf)?;
            self.buf.clear();
        }
        let pos = self.count;
        self.count += 1;
        Ok(pos)
    }

    /// Flush buffers, patch the header, and return the number of series
    /// written.
    pub fn finish(mut self) -> Result<u64> {
        if !self.buf.is_empty() {
            self.file.append(&self.buf)?;
            self.buf.clear();
        }
        self.file.write_all_at(
            &encode_header(self.series_len as u32, self.flags, self.count),
            0,
        )?;
        self.file.sync()?;
        Ok(self.count)
    }
}

/// A read-only view of a dataset file.
///
/// Random access (`read_into`) is how non-materialized indexes fetch raw
/// series during queries; [`Dataset::scan`] provides the large sequential
/// reads used by index construction. Cloning is cheap (the file handle is
/// shared), so indexes hold their own copy.
#[derive(Clone)]
pub struct Dataset {
    file: Arc<CountedFile>,
    series_len: usize,
    count: u64,
    znormalized: bool,
}

impl Dataset {
    /// Open a dataset file, validating its header.
    pub fn open(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        let file = CountedFile::open(path.as_ref(), stats)?;
        if file.len() < HEADER_LEN {
            return Err(Error::corrupt("dataset file shorter than header"));
        }
        let mut h = [0u8; HEADER_LEN as usize];
        file.read_exact_at(&mut h, 0)?;
        if &h[0..8] != MAGIC {
            return Err(Error::corrupt("bad dataset magic"));
        }
        let series_len = le_u32(&h[8..12]) as usize;
        let flags = le_u32(&h[12..16]);
        let count = le_u64(&h[16..24]);
        if series_len == 0 {
            return Err(Error::corrupt("dataset header: zero series length"));
        }
        let expected = HEADER_LEN + count * (series_len as u64) * 4;
        if file.len() < expected {
            return Err(Error::corrupt(format!(
                "dataset truncated: header promises {expected} bytes, file has {}",
                file.len()
            )));
        }
        Ok(Dataset {
            file: Arc::new(file),
            series_len,
            count,
            znormalized: flags & FLAG_ZNORMALIZED != 0,
        })
    }

    /// Number of series.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when the dataset holds no series.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Points per series.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Whether series were z-normalized before writing.
    pub fn znormalized(&self) -> bool {
        self.znormalized
    }

    /// Bytes of one series on disk.
    pub fn series_bytes(&self) -> usize {
        self.series_len * 4
    }

    /// Total payload size in bytes (excluding the header) — the paper's
    /// "raw data size" axis.
    pub fn payload_bytes(&self) -> u64 {
        self.count * self.series_bytes() as u64
    }

    /// The underlying counted file (for sharing I/O stats).
    pub fn file(&self) -> &Arc<CountedFile> {
        &self.file
    }

    /// Byte offset of series `pos` in the file.
    pub fn offset_of(&self, pos: u64) -> u64 {
        HEADER_LEN + pos * self.series_bytes() as u64
    }

    /// Read series `pos` into `out` (`out.len()` must equal `series_len`).
    pub fn read_into(&self, pos: u64, out: &mut [Value]) -> Result<()> {
        if pos >= self.count {
            return Err(Error::invalid(format!(
                "series {pos} out of range ({})",
                self.count
            )));
        }
        if out.len() != self.series_len {
            return Err(Error::invalid("output buffer length != series length"));
        }
        let mut bytes = vec![0u8; self.series_bytes()];
        self.file.read_exact_at(&mut bytes, self.offset_of(pos))?;
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            out[i] = le_value(chunk);
        }
        Ok(())
    }

    /// Read series `pos` into a fresh vector.
    pub fn get(&self, pos: u64) -> Result<Vec<Value>> {
        let mut out = vec![0.0; self.series_len];
        self.read_into(pos, &mut out)?;
        Ok(out)
    }

    /// A sequential scanner over all series, reading in large chunks.
    pub fn scan(&self) -> DatasetScan<'_> {
        DatasetScan::new(self, 0..self.count, 1 << 20)
    }

    /// A sequential scanner starting at position `pos` (clamped to the end):
    /// the first read seeks directly to `pos`'s byte offset, so scanning a
    /// tail of the file costs I/O proportional to the tail, not the file.
    pub fn scan_from(&self, pos: u64) -> DatasetScan<'_> {
        DatasetScan::new(self, pos..self.count, 1 << 20)
    }

    /// A sequential scanner over exactly the positions in `range` (clamped
    /// to the dataset bounds). Reads never extend past `range.end`, so
    /// partitioned builds scanning disjoint ranges together read each byte
    /// of the file exactly once.
    pub fn scan_range(&self, range: std::ops::Range<u64>) -> DatasetScan<'_> {
        DatasetScan::new(self, range, 1 << 20)
    }

    /// A sequential scanner with a custom chunk size in bytes (tests).
    pub fn scan_with_chunk(&self, chunk_bytes: usize) -> DatasetScan<'_> {
        DatasetScan::new(self, 0..self.count, chunk_bytes)
    }
}

/// Sequential reader yielding `(position, &[Value])` pairs over a
/// contiguous position range (the whole dataset for [`Dataset::scan`]).
pub struct DatasetScan<'a> {
    ds: &'a Dataset,
    next_pos: u64,
    end_pos: u64,
    buf_bytes: Vec<u8>,
    buf_values: Vec<Value>,
    buf_first_pos: u64,
    buf_count: usize,
    series_per_chunk: usize,
}

impl<'a> DatasetScan<'a> {
    fn new(ds: &'a Dataset, range: std::ops::Range<u64>, chunk_bytes: usize) -> Self {
        let series_per_chunk = (chunk_bytes / ds.series_bytes()).max(1);
        let end_pos = range.end.min(ds.count);
        let next_pos = range.start.min(end_pos);
        DatasetScan {
            ds,
            next_pos,
            end_pos,
            buf_bytes: Vec::new(),
            buf_values: Vec::new(),
            buf_first_pos: next_pos,
            buf_count: 0,
            series_per_chunk,
        }
    }

    /// The next `(position, series)` pair, or `None` at the end.
    pub fn next_series(&mut self) -> Result<Option<(u64, &[Value])>> {
        if self.next_pos >= self.end_pos {
            return Ok(None);
        }
        let in_buf = (self.next_pos - self.buf_first_pos) as usize;
        if self.buf_count == 0 || in_buf >= self.buf_count {
            // Refill; never read past the scan's end position.
            let remaining = (self.end_pos - self.next_pos) as usize;
            let n = remaining.min(self.series_per_chunk);
            let bytes = n * self.ds.series_bytes();
            self.buf_bytes.resize(bytes, 0);
            self.ds
                .file
                .read_exact_at(&mut self.buf_bytes, self.ds.offset_of(self.next_pos))?;
            self.buf_values.clear();
            self.buf_values.reserve(n * self.ds.series_len);
            for chunk in self.buf_bytes.chunks_exact(4) {
                self.buf_values.push(le_value(chunk));
            }
            self.buf_first_pos = self.next_pos;
            self.buf_count = n;
        }
        let in_buf = (self.next_pos - self.buf_first_pos) as usize;
        let start = in_buf * self.ds.series_len;
        let pos = self.next_pos;
        self.next_pos += 1;
        Ok(Some((
            pos,
            &self.buf_values[start..start + self.ds.series_len],
        )))
    }
}

/// Generate `count` series of length `series_len` from `generator`,
/// z-normalize each, and write them to `path`. Returns the series count.
///
/// This is the standard way experiments materialize their input: the paper
/// z-normalizes all datasets before indexing.
pub fn write_dataset(
    path: impl AsRef<Path>,
    generator: &mut dyn Generator,
    count: u64,
    series_len: usize,
    stats: &Arc<IoStats>,
) -> Result<u64> {
    let mut writer = DatasetWriter::create(path, series_len, true, Arc::clone(stats))?;
    for _ in 0..count {
        let mut s = generator.generate(series_len);
        crate::distance::znormalize(&mut s);
        writer.append(&s)?;
    }
    writer.finish()
}

/// Fixed-width little-endian decodes for header and payload fields whose
/// slice width is pinned by the caller's indexing. `copy_from_slice`
/// panics with a clear length message on a caller bug, without putting
/// `unwrap` on the hot decode path.
fn le_u32(b: &[u8]) -> u32 {
    let mut bytes = [0u8; 4];
    bytes.copy_from_slice(b);
    u32::from_le_bytes(bytes)
}

fn le_u64(b: &[u8]) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(b);
    u64::from_le_bytes(bytes)
}

fn le_value(b: &[u8]) -> Value {
    let mut bytes = [0u8; 4];
    bytes.copy_from_slice(b);
    Value::from_le_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_storage::TempDir;

    fn stats() -> Arc<IoStats> {
        Arc::new(IoStats::new())
    }

    fn write_simple(dir: &TempDir, n: u64, len: usize) -> std::path::PathBuf {
        let path = dir.path().join("data.bin");
        let mut w = DatasetWriter::create(&path, len, false, stats()).unwrap();
        for i in 0..n {
            let s: Vec<Value> = (0..len).map(|j| (i * 1000 + j as u64) as Value).collect();
            assert_eq!(w.append(&s).unwrap(), i);
        }
        assert_eq!(w.finish().unwrap(), n);
        path
    }

    #[test]
    fn roundtrip_random_access() {
        let dir = TempDir::new("dataset").unwrap();
        let path = write_simple(&dir, 100, 16);
        let ds = Dataset::open(&path, stats()).unwrap();
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.series_len(), 16);
        assert!(!ds.znormalized());
        let s = ds.get(42).unwrap();
        assert_eq!(s[0], 42_000.0);
        assert_eq!(s[15], 42_015.0);
        let s = ds.get(0).unwrap();
        assert_eq!(s[3], 3.0);
    }

    #[test]
    fn scan_visits_everything_in_order() {
        let dir = TempDir::new("dataset").unwrap();
        let path = write_simple(&dir, 257, 8); // does not divide chunk evenly
        let ds = Dataset::open(&path, stats()).unwrap();
        let mut scan = ds.scan_with_chunk(100); // 3 series per chunk
        let mut seen = 0u64;
        while let Some((pos, s)) = scan.next_series().unwrap() {
            assert_eq!(pos, seen);
            assert_eq!(s[0], (pos * 1000) as Value);
            seen += 1;
        }
        assert_eq!(seen, 257);
    }

    #[test]
    fn scan_is_sequential_io() {
        let dir = TempDir::new("dataset").unwrap();
        let path = write_simple(&dir, 1000, 64);
        let st = stats();
        let ds = Dataset::open(&path, Arc::clone(&st)).unwrap();
        let before = st.snapshot();
        let mut scan = ds.scan_with_chunk(4096);
        while scan.next_series().unwrap().is_some() {}
        let after = st.snapshot().since(&before);
        // First chunk read follows the header read, so at most one seek.
        assert!(after.rand_reads <= 1, "rand reads: {}", after.rand_reads);
        assert!(after.seq_reads > 10);
    }

    #[test]
    fn scan_from_starts_mid_file() {
        let dir = TempDir::new("dataset").unwrap();
        let path = write_simple(&dir, 100, 8);
        let ds = Dataset::open(&path, stats()).unwrap();
        let mut scan = ds.scan_from(90);
        let mut seen = Vec::new();
        while let Some((pos, s)) = scan.next_series().unwrap() {
            assert_eq!(s[0], (pos * 1000) as Value);
            seen.push(pos);
        }
        assert_eq!(seen, (90..100).collect::<Vec<_>>());
        // Starting past the end is an empty scan, not an error.
        assert!(ds.scan_from(100).next_series().unwrap().is_none());
        assert!(ds.scan_from(u64::MAX).next_series().unwrap().is_none());
    }

    #[test]
    fn scan_range_reads_only_the_range() {
        let dir = TempDir::new("dataset").unwrap();
        let path = write_simple(&dir, 1000, 64);
        let st = stats();
        let ds = Dataset::open(&path, Arc::clone(&st)).unwrap();
        let before = st.snapshot();
        let mut scan = ds.scan_range(900..950);
        let mut n = 0u64;
        while let Some((pos, _)) = scan.next_series().unwrap() {
            assert!((900..950).contains(&pos));
            n += 1;
        }
        assert_eq!(n, 50);
        // A tail scan must cost I/O proportional to the range, not the file:
        // exactly 50 series of 256 bytes each, regardless of chunking.
        let delta = st.snapshot().since(&before);
        assert_eq!(delta.bytes_read, 50 * 64 * 4, "tail scan over-read");
    }

    #[test]
    fn disjoint_scan_ranges_cover_one_pass() {
        let dir = TempDir::new("dataset").unwrap();
        let path = write_simple(&dir, 257, 16);
        let st = stats();
        let ds = Dataset::open(&path, Arc::clone(&st)).unwrap();
        let before = st.snapshot();
        let mut positions = Vec::new();
        for range in [0..100, 100..200, 200..257] {
            let mut scan = ds.scan_range(range);
            while let Some((pos, _)) = scan.next_series().unwrap() {
                positions.push(pos);
            }
        }
        assert_eq!(positions, (0..257).collect::<Vec<_>>());
        let delta = st.snapshot().since(&before);
        assert_eq!(delta.bytes_read, 257 * 16 * 4, "shards must not re-read");
    }

    #[test]
    fn wrong_length_append_rejected() {
        let dir = TempDir::new("dataset").unwrap();
        let mut w = DatasetWriter::create(dir.path().join("d.bin"), 8, false, stats()).unwrap();
        assert!(w.append(&[1.0; 7]).is_err());
        assert!(w.append(&[1.0; 8]).is_ok());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let dir = TempDir::new("dataset").unwrap();
        let path = dir.path().join("bad.bin");
        std::fs::write(&path, [0u8; 64]).unwrap();
        assert!(matches!(
            Dataset::open(&path, stats()),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_payload_rejected() {
        let dir = TempDir::new("dataset").unwrap();
        let path = write_simple(&dir, 10, 8);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 4]).unwrap();
        assert!(matches!(
            Dataset::open(&path, stats()),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn out_of_range_read_rejected() {
        let dir = TempDir::new("dataset").unwrap();
        let path = write_simple(&dir, 5, 8);
        let ds = Dataset::open(&path, stats()).unwrap();
        assert!(ds.get(5).is_err());
    }

    #[test]
    fn empty_dataset_is_fine() {
        let dir = TempDir::new("dataset").unwrap();
        let path = dir.path().join("empty.bin");
        let w = DatasetWriter::create(&path, 8, true, stats()).unwrap();
        assert_eq!(w.finish().unwrap(), 0);
        let ds = Dataset::open(&path, stats()).unwrap();
        assert!(ds.is_empty());
        assert!(ds.znormalized());
        let mut scan = ds.scan();
        assert!(scan.next_series().unwrap().is_none());
    }

    #[test]
    fn write_dataset_znormalizes() {
        use crate::gen::RandomWalkGen;
        let dir = TempDir::new("dataset").unwrap();
        let path = dir.path().join("z.bin");
        let mut g = RandomWalkGen::new(7);
        write_dataset(&path, &mut g, 20, 64, &stats()).unwrap();
        let ds = Dataset::open(&path, stats()).unwrap();
        assert!(ds.znormalized());
        for i in 0..20 {
            let s = ds.get(i).unwrap();
            assert!(crate::distance::mean(&s).abs() < 1e-4);
            let sd = crate::distance::std_dev(&s);
            assert!((sd - 1.0).abs() < 1e-3, "std {sd}");
        }
    }
}
