//! Synthetic data series generators.
//!
//! The paper evaluates on three datasets: a synthetic *random walk* (the
//! standard generator in the data series literature, shown to model
//! financial data well), a 100 GB *seismic* dataset of overlapping sliding
//! windows from the IRIS repository, and a 277 GB *astronomy* dataset of
//! celestial light curves. The real datasets are not redistributable, so
//! this module provides behaviour-preserving substitutes (DESIGN.md §5):
//!
//! * [`RandomWalkGen`] — exactly the paper's generator: cumulative sums of
//!   standard Gaussian steps.
//! * [`SeismicGen`] — a continuous stream of background noise with
//!   Poisson-arriving damped-oscillation events, cut into heavily
//!   overlapping sliding windows (stride ≪ length). Overlap makes many
//!   windows near-identical: the *dense* data that the paper reports makes
//!   pruning hard ("the queries are harder on these datasets ... because the
//!   datasets were denser").
//! * [`AstronomyGen`] — AR(1) red noise with positive flares, cut into
//!   sliding windows; produces the skewed value histogram of the paper's
//!   Figure 7.
//!
//! Generators are deterministic given a seed, so experiments are exactly
//! reproducible.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Value;

/// A source of data series. `generate(len)` returns the next series of the
/// requested length.
pub trait Generator {
    /// Produce the next series of `len` points.
    fn generate(&mut self, len: usize) -> Vec<Value>;

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// Standard Gaussian sampler (Box–Muller with a cached spare), so we do not
/// need the `rand_distr` crate.
#[derive(Debug, Clone)]
struct Gauss {
    rng: StdRng,
    spare: Option<f64>,
}

impl Gauss {
    fn new(seed: u64) -> Self {
        Gauss {
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    #[inline]
    fn sample(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Box–Muller: u1 in (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    #[inline]
    fn uniform(&mut self) -> f64 {
        self.rng.gen()
    }
}

/// The paper's synthetic workload: `x_0 ~ N(0,1)`, `x_t = x_{t-1} + N(0,1)`.
#[derive(Debug, Clone)]
pub struct RandomWalkGen {
    gauss: Gauss,
}

impl RandomWalkGen {
    /// A seeded random-walk generator.
    pub fn new(seed: u64) -> Self {
        RandomWalkGen {
            gauss: Gauss::new(seed),
        }
    }
}

impl Generator for RandomWalkGen {
    fn generate(&mut self, len: usize) -> Vec<Value> {
        let mut out = Vec::with_capacity(len);
        let mut acc = 0.0f64;
        for _ in 0..len {
            acc += self.gauss.sample();
            out.push(acc as Value);
        }
        out
    }

    fn name(&self) -> &'static str {
        "randomwalk"
    }
}

/// Seismic-like stream: low-amplitude background noise punctuated by
/// damped-oscillation events, consumed through a sliding window.
///
/// `stride` points separate consecutive windows (the paper slides a
/// 256-point window by 4 samples, i.e. 98% overlap), which is what makes
/// seismic data *dense*: many windows are near-duplicates.
#[derive(Debug, Clone)]
pub struct SeismicGen {
    gauss: Gauss,
    stride: usize,
    /// Rolling buffer of the continuous signal.
    window: VecDeque<f64>,
    /// Remaining samples of an active event: (amplitude, frequency, decay,
    /// phase index).
    event: Option<(f64, f64, f64, usize)>,
}

impl SeismicGen {
    /// A seeded generator with the paper's 4-sample stride.
    pub fn new(seed: u64) -> Self {
        Self::with_stride(seed, 4)
    }

    /// A seeded generator with a custom sliding-window stride.
    pub fn with_stride(seed: u64, stride: usize) -> Self {
        SeismicGen {
            gauss: Gauss::new(seed),
            stride: stride.max(1),
            window: VecDeque::new(),
            event: None,
        }
    }

    fn next_sample(&mut self) -> f64 {
        let background = 0.1 * self.gauss.sample();
        // Events arrive with probability 1/500 per sample and last a few
        // hundred samples: amplitude 5-50x the background.
        if self.event.is_none() && self.gauss.uniform() < 1.0 / 500.0 {
            let amp = 0.5 + 4.5 * self.gauss.uniform();
            let freq = 0.05 + 0.3 * self.gauss.uniform();
            let decay = 0.005 + 0.02 * self.gauss.uniform();
            self.event = Some((amp, freq, decay, 0));
        }
        let mut v = background;
        if let Some((amp, freq, decay, t)) = &mut self.event {
            let envelope = (-*decay * *t as f64).exp();
            v += *amp * envelope * (std::f64::consts::TAU * *freq * *t as f64).sin();
            *t += 1;
            if envelope < 1e-3 {
                self.event = None;
            }
        }
        v
    }
}

impl Generator for SeismicGen {
    fn generate(&mut self, len: usize) -> Vec<Value> {
        if self.window.len() != len {
            // (Re-)prime the window for this length.
            self.window.clear();
            for _ in 0..len {
                let s = self.next_sample();
                self.window.push_back(s);
            }
        } else {
            for _ in 0..self.stride {
                let s = self.next_sample();
                self.window.pop_front();
                self.window.push_back(s);
            }
        }
        self.window.iter().map(|&v| v as Value).collect()
    }

    fn name(&self) -> &'static str {
        "seismic"
    }
}

/// Astronomy-like stream: an AR(1) red-noise light curve with positive
/// flares, consumed through a unit-stride sliding window (the paper's
/// astronomy dataset uses "a sliding window with a step of 1").
///
/// Flares only ever *add* flux, so the value distribution is right-skewed —
/// the visible difference in the paper's Figure 7.
#[derive(Debug, Clone)]
pub struct AstronomyGen {
    gauss: Gauss,
    window: VecDeque<f64>,
    level: f64,
    flare: f64,
}

impl AstronomyGen {
    /// A seeded astronomy-like generator.
    pub fn new(seed: u64) -> Self {
        AstronomyGen {
            gauss: Gauss::new(seed),
            window: VecDeque::new(),
            level: 0.0,
            flare: 0.0,
        }
    }

    fn next_sample(&mut self) -> f64 {
        // AR(1): strongly correlated baseline.
        self.level = 0.98 * self.level + 0.2 * self.gauss.sample();
        // Flares: rare positive jumps with exponential decay.
        if self.gauss.uniform() < 1.0 / 300.0 {
            self.flare += 1.0 + 3.0 * self.gauss.uniform();
        }
        self.flare *= 0.97;
        self.level + self.flare
    }
}

impl Generator for AstronomyGen {
    fn generate(&mut self, len: usize) -> Vec<Value> {
        if self.window.len() != len {
            self.window.clear();
            for _ in 0..len {
                let s = self.next_sample();
                self.window.push_back(s);
            }
        } else {
            let s = self.next_sample();
            self.window.pop_front();
            self.window.push_back(s);
        }
        self.window.iter().map(|&v| v as Value).collect()
    }

    fn name(&self) -> &'static str {
        "astronomy"
    }
}

/// Generate `count` z-normalized query series (the paper's workloads are
/// "random" queries drawn with the same technique as the datasets).
pub fn make_queries(
    generator: &mut dyn Generator,
    count: usize,
    series_len: usize,
) -> Vec<Vec<Value>> {
    (0..count)
        .map(|_| {
            let mut q = generator.generate(series_len);
            crate::distance::znormalize(&mut q);
            q
        })
        .collect()
}

/// Queries derived from dataset members with additive Gaussian noise of
/// standard deviation `noise` — the paper's technique for querying the real
/// datasets ("we obtained additional data series from the raw datasets
/// using the same technique"). `noise = 0` returns exact members.
pub fn queries_from_members(
    dataset: &crate::dataset::Dataset,
    count: usize,
    noise: f64,
    seed: u64,
) -> crate::Result<Vec<Vec<Value>>> {
    let mut gauss = Gauss::new(seed);
    let n = dataset.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let pos = (gauss.uniform() * n as f64) as u64 % n;
        let mut q = dataset.get(pos)?;
        if noise > 0.0 {
            for v in q.iter_mut() {
                *v += (noise * gauss.sample()) as Value;
            }
        }
        crate::distance::znormalize(&mut q);
        out.push(q);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{euclidean, mean, std_dev, znormalized};

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let mut a = RandomWalkGen::new(1);
        let mut b = RandomWalkGen::new(1);
        let mut c = RandomWalkGen::new(2);
        assert_eq!(a.generate(128), b.generate(128));
        assert_ne!(a.generate(128), c.generate(128));
    }

    #[test]
    fn random_walk_steps_are_standard_normal() {
        let mut g = RandomWalkGen::new(3);
        let s = g.generate(100_000);
        let steps: Vec<Value> = s.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(mean(&steps).abs() < 0.02);
        assert!((std_dev(&steps) - 1.0).abs() < 0.02);
    }

    #[test]
    fn seismic_windows_overlap_heavily() {
        let mut g = SeismicGen::with_stride(5, 4);
        let a = znormalized(&g.generate(256));
        let b = znormalized(&g.generate(256));
        let mut r = RandomWalkGen::new(5);
        let x = znormalized(&r.generate(256));
        let y = znormalized(&r.generate(256));
        // Consecutive seismic windows share 252 of 256 points -> much closer
        // than two independent random walks.
        assert!(euclidean(&a, &b) < euclidean(&x, &y));
    }

    #[test]
    fn seismic_contains_high_amplitude_events() {
        let mut g = SeismicGen::with_stride(7, 256);
        let mut max_abs = 0.0f32;
        for _ in 0..200 {
            let s = g.generate(256);
            for v in s {
                max_abs = max_abs.max(v.abs());
            }
        }
        // Background noise alone would stay under ~0.5.
        assert!(max_abs > 1.0, "no events observed, max={max_abs}");
    }

    #[test]
    fn astronomy_values_are_right_skewed() {
        let mut g = AstronomyGen::new(11);
        // Sample non-overlapping windows to get many independent values.
        let mut values = Vec::new();
        for _ in 0..50 {
            g.window.clear(); // force a fresh window
            values.extend(g.generate(512));
        }
        let m = mean(&values);
        let sd = std_dev(&values);
        let skew: f64 = values
            .iter()
            .map(|&v| ((v as f64 - m) / sd).powi(3))
            .sum::<f64>()
            / values.len() as f64;
        assert!(skew > 0.2, "expected right skew, got {skew}");
    }

    #[test]
    fn make_queries_are_znormalized() {
        let mut g = RandomWalkGen::new(1);
        let qs = make_queries(&mut g, 5, 64);
        assert_eq!(qs.len(), 5);
        for q in qs {
            assert_eq!(q.len(), 64);
            assert!(mean(&q).abs() < 1e-4);
            assert!((std_dev(&q) - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn member_queries_are_near_their_sources() {
        use crate::dataset::{write_dataset, Dataset};
        use coconut_storage::{IoStats, TempDir};
        use std::sync::Arc;
        let dir = TempDir::new("genq").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("d.bin");
        let mut g = RandomWalkGen::new(2);
        write_dataset(&path, &mut g, 50, 64, &stats).unwrap();
        let ds = Dataset::open(&path, stats).unwrap();

        // Zero noise: every query is an exact member.
        let qs = crate::gen::queries_from_members(&ds, 10, 0.0, 7).unwrap();
        for q in &qs {
            let mut best = f64::INFINITY;
            for p in 0..50 {
                best = best.min(euclidean(q, &ds.get(p).unwrap()));
            }
            assert!(best < 1e-4, "zero-noise query not a member (best {best})");
        }
        // Small noise: queries stay close to some member.
        let qs = crate::gen::queries_from_members(&ds, 10, 0.05, 7).unwrap();
        for q in &qs {
            let mut best = f64::INFINITY;
            for p in 0..50 {
                best = best.min(euclidean(q, &ds.get(p).unwrap()));
            }
            assert!(best < 1.5, "noisy query too far from members ({best})");
        }
        // Empty dataset: no queries.
        let empty_path = dir.path().join("e.bin");
        let w =
            crate::dataset::DatasetWriter::create(&empty_path, 64, true, Arc::new(IoStats::new()))
                .unwrap();
        w.finish().unwrap();
        let empty = Dataset::open(&empty_path, Arc::new(IoStats::new())).unwrap();
        assert!(crate::gen::queries_from_members(&empty, 5, 0.0, 1)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn generators_respect_requested_length() {
        let mut gens: Vec<Box<dyn Generator>> = vec![
            Box::new(RandomWalkGen::new(1)),
            Box::new(SeismicGen::new(2)),
            Box::new(AstronomyGen::new(3)),
        ];
        for g in gens.iter_mut() {
            for len in [1usize, 7, 64, 256] {
                assert_eq!(g.generate(len).len(), len, "{}", g.name());
            }
        }
    }
}
