//! z-normalization and Euclidean distance kernels.
//!
//! All series in the paper are z-normalized (mean 0, standard deviation 1)
//! before indexing — minimizing Euclidean distance on z-normalized series is
//! equivalent to maximizing Pearson correlation (Section 2). Distances are
//! accumulated in `f64` even though values are stored as `f32`, so results
//! are stable regardless of series length.
//!
//! Every function here delegates to the runtime-dispatched kernels in
//! [`crate::simd`]: AVX2 on hardware that has it, a bit-identical scalar
//! mirror otherwise (or when `COCONUT_FORCE_SCALAR=1`).

use crate::simd;
use crate::Value;

/// z-normalize `series` in place: subtract the mean, divide by the standard
/// deviation. A (near-)constant series becomes all zeros rather than NaN.
///
/// Mean and variance come from one fused pass over the data
/// (`Σ(v−v₀)` and `Σ(v−v₀)²` together, shifted by the first element so the
/// one-pass moment identity stays numerically stable for data with a large
/// mean), so the series is read twice in total — once for the statistics,
/// once for the rewrite — instead of three times.
pub fn znormalize(series: &mut [Value]) {
    if series.is_empty() {
        return;
    }
    let k = simd::kernels();
    let n = series.len() as f64;
    let shift = series[0] as f64;
    let (sum_d, sumsq_d) = (k.sum_sumsq)(series, shift);
    let mean_d = sum_d / n;
    let raw_var = sumsq_d / n - mean_d * mean_d;
    // Clamp only the tiny negative rounding results; a non-finite variance
    // (NaN/inf input) must stay visible, not be absorbed into the
    // constant-series branch as a fake all-zeros record.
    let var = if raw_var.is_finite() {
        raw_var.max(0.0)
    } else {
        raw_var
    };
    let std = var.sqrt();
    if std < 1e-12 {
        series.fill(0.0);
        return;
    }
    (k.normalize_affine)(series, shift + mean_d, 1.0 / std);
}

/// A z-normalized copy of `series`.
pub fn znormalized(series: &[Value]) -> Vec<Value> {
    let mut out = series.to_vec();
    znormalize(&mut out);
    out
}

/// Squared Euclidean distance between two equal-length series.
#[inline]
pub fn euclidean_sq(a: &[Value], b: &[Value]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    (simd::kernels().euclidean_sq)(a, b)
}

/// Euclidean distance between two equal-length series.
#[inline]
pub fn euclidean(a: &[Value], b: &[Value]) -> f64 {
    euclidean_sq(a, b).sqrt()
}

/// Squared Euclidean distance with early abandoning: returns `None` as soon
/// as the running sum exceeds `cutoff_sq` (the squared best-so-far), which
/// is the standard trick that makes exact search inner loops cheap.
#[inline]
pub fn euclidean_sq_early_abandon(a: &[Value], b: &[Value], cutoff_sq: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    // The cutoff is checked once per [`simd::ABANDON_BLOCK`] elements:
    // checking every element costs more in horizontal reductions and
    // branches than it saves for realistic series lengths.
    (simd::kernels().euclidean_sq_early_abandon)(a, b, cutoff_sq)
}

/// Mean of a slice (used by generators and tests).
pub fn mean(series: &[Value]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    (simd::kernels().sum)(series) / series.len() as f64
}

/// Population standard deviation of a slice, from the same fused
/// single-pass shifted statistics as [`znormalize`].
pub fn std_dev(series: &[Value]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let n = series.len() as f64;
    let shift = series[0] as f64;
    let (sum_d, sumsq_d) = (simd::kernels().sum_sumsq)(series, shift);
    let m = sum_d / n;
    let raw_var = sumsq_d / n - m * m;
    // As in `znormalize`: never clamp a NaN/inf variance to zero.
    if raw_var.is_finite() {
        raw_var.max(0.0).sqrt()
    } else {
        raw_var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn znormalize_zero_mean_unit_std() {
        let mut s: Vec<Value> = (0..100).map(|i| i as Value * 3.0 + 7.0).collect();
        znormalize(&mut s);
        assert!(mean(&s).abs() < 1e-5);
        assert!((std_dev(&s) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn znormalize_constant_series_becomes_zero() {
        let mut s = vec![5.0f32; 64];
        znormalize(&mut s);
        assert!(s.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn znormalize_propagates_nan_instead_of_zeroing() {
        // A corrupt record must stay visibly poisoned, not be indexed as a
        // perfectly valid constant (all-zero) series.
        let mut s: Vec<Value> = (0..32).map(|i| i as Value).collect();
        s[7] = Value::NAN;
        znormalize(&mut s);
        assert!(s.iter().any(|v| v.is_nan()), "{s:?}");
        let mut t: Vec<Value> = (0..32).map(|i| i as Value).collect();
        t[3] = Value::NAN;
        assert!(std_dev(&t).is_nan());
    }

    #[test]
    fn znormalize_is_stable_under_large_offsets() {
        // The one-pass moment identity is shifted by the first element, so
        // a huge mean must not cancel away the (small but real) variance —
        // nor may a large constant series produce spurious variance.
        let mut s: Vec<Value> = (0..128).map(|i| 1.0e7 + (i % 5) as Value).collect();
        znormalize(&mut s);
        assert!(mean(&s).abs() < 1e-4);
        assert!((std_dev(&s) - 1.0).abs() < 1e-4, "std {}", std_dev(&s));
        let mut c = vec![1.0e7f32; 128];
        znormalize(&mut c);
        assert!(c.iter().all(|&v| v == 0.0), "constant at offset must zero");
    }

    #[test]
    fn znormalize_empty_is_noop() {
        let mut s: Vec<Value> = Vec::new();
        znormalize(&mut s);
        assert!(s.is_empty());
    }

    #[test]
    fn euclidean_basics() {
        let a = [0.0f32, 0.0, 0.0];
        let b = [1.0f32, 2.0, 2.0];
        assert_eq!(euclidean_sq(&a, &b), 9.0);
        assert_eq!(euclidean(&a, &b), 3.0);
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn early_abandon_matches_full_when_under_cutoff() {
        let a: Vec<Value> = (0..256).map(|i| (i as f32).sin()).collect();
        let b: Vec<Value> = (0..256).map(|i| (i as f32).cos()).collect();
        let full = euclidean_sq(&a, &b);
        assert_eq!(euclidean_sq_early_abandon(&a, &b, full + 1.0), Some(full));
        assert_eq!(
            euclidean_sq_early_abandon(&a, &b, f64::INFINITY),
            Some(full)
        );
    }

    #[test]
    fn early_abandon_abandons() {
        let a = vec![0.0f32; 256];
        let b = vec![10.0f32; 256];
        assert_eq!(euclidean_sq_early_abandon(&a, &b, 1.0), None);
    }

    #[test]
    fn early_abandon_exact_cutoff_boundary() {
        let a = [0.0f32; 16];
        let b = [1.0f32; 16];
        // distance == cutoff: not strictly greater, so it is kept.
        assert_eq!(euclidean_sq_early_abandon(&a, &b, 16.0), Some(16.0));
        assert_eq!(euclidean_sq_early_abandon(&a, &b, 15.999), None);
    }

    #[test]
    fn distance_is_symmetric_and_triangle_holds() {
        let a: Vec<Value> = (0..64).map(|i| (i as f32 * 0.1).sin()).collect();
        let b: Vec<Value> = (0..64).map(|i| (i as f32 * 0.2).cos()).collect();
        let c: Vec<Value> = (0..64)
            .map(|i| (i as f32 * 0.05).tan().clamp(-2.0, 2.0))
            .collect();
        assert!((euclidean(&a, &b) - euclidean(&b, &a)).abs() < 1e-12);
        assert!(euclidean(&a, &c) <= euclidean(&a, &b) + euclidean(&b, &c) + 1e-9);
    }
}
