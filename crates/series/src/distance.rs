//! z-normalization and Euclidean distance kernels.
//!
//! All series in the paper are z-normalized (mean 0, standard deviation 1)
//! before indexing — minimizing Euclidean distance on z-normalized series is
//! equivalent to maximizing Pearson correlation (Section 2). Distances are
//! accumulated in `f64` even though values are stored as `f32`, so results
//! are stable regardless of series length.

use crate::Value;

/// z-normalize `series` in place: subtract the mean, divide by the standard
/// deviation. A (near-)constant series becomes all zeros rather than NaN.
pub fn znormalize(series: &mut [Value]) {
    if series.is_empty() {
        return;
    }
    let n = series.len() as f64;
    let mean = series.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = series
        .iter()
        .map(|&v| (v as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    let std = var.sqrt();
    if std < 1e-12 {
        series.fill(0.0);
        return;
    }
    let inv = 1.0 / std;
    for v in series.iter_mut() {
        *v = ((*v as f64 - mean) * inv) as Value;
    }
}

/// A z-normalized copy of `series`.
pub fn znormalized(series: &[Value]) -> Vec<Value> {
    let mut out = series.to_vec();
    znormalize(&mut out);
    out
}

/// Squared Euclidean distance between two equal-length series.
#[inline]
pub fn euclidean_sq(a: &[Value], b: &[Value]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let d = (x - y) as f64;
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two equal-length series.
#[inline]
pub fn euclidean(a: &[Value], b: &[Value]) -> f64 {
    euclidean_sq(a, b).sqrt()
}

/// Squared Euclidean distance with early abandoning: returns `None` as soon
/// as the running sum exceeds `cutoff_sq` (the squared best-so-far), which
/// is the standard trick that makes exact search inner loops cheap.
#[inline]
pub fn euclidean_sq_early_abandon(a: &[Value], b: &[Value], cutoff_sq: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    // Check the cutoff once per small block: checking every element costs
    // more in branches than it saves for realistic series lengths.
    const BLOCK: usize = 16;
    let mut i = 0;
    let n = a.len();
    while i < n {
        let end = (i + BLOCK).min(n);
        for j in i..end {
            let d = (a[j] - b[j]) as f64;
            acc += d * d;
        }
        if acc > cutoff_sq {
            return None;
        }
        i = end;
    }
    Some(acc)
}

/// Mean of a slice (used by generators and tests).
pub fn mean(series: &[Value]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    series.iter().map(|&v| v as f64).sum::<f64>() / series.len() as f64
}

/// Population standard deviation of a slice.
pub fn std_dev(series: &[Value]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let m = mean(series);
    (series.iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>() / series.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn znormalize_zero_mean_unit_std() {
        let mut s: Vec<Value> = (0..100).map(|i| i as Value * 3.0 + 7.0).collect();
        znormalize(&mut s);
        assert!(mean(&s).abs() < 1e-5);
        assert!((std_dev(&s) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn znormalize_constant_series_becomes_zero() {
        let mut s = vec![5.0f32; 64];
        znormalize(&mut s);
        assert!(s.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn znormalize_empty_is_noop() {
        let mut s: Vec<Value> = Vec::new();
        znormalize(&mut s);
        assert!(s.is_empty());
    }

    #[test]
    fn euclidean_basics() {
        let a = [0.0f32, 0.0, 0.0];
        let b = [1.0f32, 2.0, 2.0];
        assert_eq!(euclidean_sq(&a, &b), 9.0);
        assert_eq!(euclidean(&a, &b), 3.0);
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn early_abandon_matches_full_when_under_cutoff() {
        let a: Vec<Value> = (0..256).map(|i| (i as f32).sin()).collect();
        let b: Vec<Value> = (0..256).map(|i| (i as f32).cos()).collect();
        let full = euclidean_sq(&a, &b);
        assert_eq!(euclidean_sq_early_abandon(&a, &b, full + 1.0), Some(full));
        assert_eq!(
            euclidean_sq_early_abandon(&a, &b, f64::INFINITY),
            Some(full)
        );
    }

    #[test]
    fn early_abandon_abandons() {
        let a = vec![0.0f32; 256];
        let b = vec![10.0f32; 256];
        assert_eq!(euclidean_sq_early_abandon(&a, &b, 1.0), None);
    }

    #[test]
    fn early_abandon_exact_cutoff_boundary() {
        let a = [0.0f32; 16];
        let b = [1.0f32; 16];
        // distance == cutoff: not strictly greater, so it is kept.
        assert_eq!(euclidean_sq_early_abandon(&a, &b, 16.0), Some(16.0));
        assert_eq!(euclidean_sq_early_abandon(&a, &b, 15.999), None);
    }

    #[test]
    fn distance_is_symmetric_and_triangle_holds() {
        let a: Vec<Value> = (0..64).map(|i| (i as f32 * 0.1).sin()).collect();
        let b: Vec<Value> = (0..64).map(|i| (i as f32 * 0.2).cos()).collect();
        let c: Vec<Value> = (0..64)
            .map(|i| (i as f32 * 0.05).tan().clamp(-2.0, 2.0))
            .collect();
        assert!((euclidean(&a, &b) - euclidean(&b, &a)).abs() < 1e-12);
        assert!(euclidean(&a, &c) <= euclidean(&a, &b) + euclidean(&b, &c) + 1e-9);
    }
}
