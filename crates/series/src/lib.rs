//! Data series model for the Coconut workspace.
//!
//! A *data series* (Definition 1 of the paper) is an ordered sequence of
//! values. This crate provides:
//!
//! * [`distance`] — z-normalization and Euclidean distance (the paper's
//!   metric, Definition 2), including the early-abandoning variant used by
//!   every exact-search inner loop.
//! * [`dataset`] — the raw binary dataset file format (a header followed by
//!   packed little-endian `f32` values), with sequential and random access
//!   through the I/O-accounted [`coconut_storage::CountedFile`].
//! * [`gen`] — synthetic data generators: the paper's random-walk generator
//!   and behaviour-preserving stand-ins for its seismic and astronomy
//!   datasets (see DESIGN.md §5 for the substitution rationale).
//! * [`index`] — the `SeriesIndex` trait implemented by every index in the
//!   workspace, plus the shared [`index::Answer`]/[`index::QueryStats`]
//!   types, so the experiment harness can drive all indexes uniformly.
//! * [`simd`] — the runtime-dispatched vector kernels (AVX2 with a
//!   bit-identical scalar mirror) behind the distance and summarization
//!   hot paths; `COCONUT_FORCE_SCALAR=1` pins the scalar path.

pub mod dataset;
pub mod distance;
pub mod dtw;
pub mod gen;
pub mod index;
pub mod simd;

pub use coconut_storage::{Error, Result};

/// The value type of all series in this workspace (the paper stores raw
/// series as 4-byte floats; 256-point series are 1 KiB each).
pub type Value = f32;
