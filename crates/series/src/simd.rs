//! Runtime-dispatched vector kernels for the query and build hot paths.
//!
//! The exact search (SIMS, paper Algorithm 5) spends nearly all of its CPU
//! time in two loops — MINDIST over every in-memory key and early-abandoning
//! Euclidean distance on the survivors — and the build path spends its CPU
//! in summarization (z-normalize + PAA). This module provides the shared
//! kernels behind all of them in two implementations:
//!
//! * **scalar** — portable Rust, no `unsafe`;
//! * **avx2** — `std::arch` x86_64 intrinsics, compiled into every binary
//!   and selected at runtime via `is_x86_feature_detected!` (no special
//!   `RUSTFLAGS` needed).
//!
//! Selection happens once per process through a function-pointer table
//! ([`kernels`]); setting `COCONUT_FORCE_SCALAR=1` in the environment pins
//! the scalar path (the escape hatch CI uses to keep both paths green, and
//! the knob for A/B benchmarks). Tests can also bypass the cached choice
//! with [`kernels_for`].
//!
//! # Bit-identical mirroring
//!
//! The scalar implementations are *not* the naive sequential loops: they
//! mirror the AVX2 lane structure exactly — eight independent `f64`
//! accumulators over the 8-aligned prefix (lane `l` sees elements `i` with
//! `i % 8 == l`), a fixed reduction tree `((a0+a4)+(a2+a6)) +
//! ((a1+a5)+(a3+a7))`, and a separate scalar accumulator for the tail —
//! so both paths perform the same floating-point operations in the same
//! order and return **bit-identical** results. That is what lets the
//! property suite assert `SIMD == scalar` to ≤ 1 ulp and the end-to-end
//! test assert identical query answers under either dispatch.

use crate::Value;
use std::sync::OnceLock;

/// Which kernel implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Portable scalar implementations (mirroring the vector lane order).
    Scalar,
    /// AVX2 `std::arch` implementations (x86_64 only).
    Avx2,
}

impl Dispatch {
    /// Human-readable name (used by benches and the `repro` baseline).
    pub fn name(self) -> &'static str {
        match self {
            Dispatch::Scalar => "scalar",
            Dispatch::Avx2 => "avx2",
        }
    }
}

/// The best implementation this CPU supports, ignoring the environment.
pub fn detect() -> Dispatch {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Dispatch::Avx2;
        }
    }
    Dispatch::Scalar
}

/// Whether `COCONUT_FORCE_SCALAR=1` is set (read once per process).
pub fn force_scalar() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("COCONUT_FORCE_SCALAR")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    })
}

/// The dispatch the process runs on: [`detect`], unless
/// `COCONUT_FORCE_SCALAR=1` pins the scalar path. Cached after first use.
pub fn active() -> Dispatch {
    static ACTIVE: OnceLock<Dispatch> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        if force_scalar() {
            Dispatch::Scalar
        } else {
            detect()
        }
    })
}

/// The function-pointer table the hot paths call through. One static table
/// per implementation; `kernels()` picks one at startup.
pub struct Kernels {
    /// Which implementation this table is.
    pub dispatch: Dispatch,
    /// Squared Euclidean distance between equal-length slices.
    pub euclidean_sq: fn(&[Value], &[Value]) -> f64,
    /// Early-abandoning squared Euclidean distance: `None` once the running
    /// sum exceeds the cutoff at a block boundary.
    pub euclidean_sq_early_abandon: fn(&[Value], &[Value], f64) -> Option<f64>,
    /// Sum of a slice in `f64`.
    pub sum: fn(&[Value]) -> f64,
    /// Fused single-pass `(Σ(v−shift), Σ(v−shift)²)` in `f64` — one read of
    /// the data for mean *and* variance. Callers pass a shift inside the
    /// data range (the first element): the shifted-moment identity
    /// `Var = Σd²/n − (Σd/n)²` with `d = v − shift` is then free of the
    /// catastrophic cancellation the unshifted form suffers when the mean
    /// is large relative to the spread.
    pub sum_sumsq: fn(&[Value], f64) -> (f64, f64),
    /// In-place `v ← (v − mean) · inv_std` (the z-normalize second half).
    pub normalize_affine: fn(&mut [Value], f64, f64),
    /// PAA segment sums: `out[j] = Σ series[j*seg .. (j+1)*seg]` for
    /// equal-length segments (`series.len() == out.len() * seg`).
    pub segment_sums: fn(&[Value], usize, &mut [f64]),
}

static SCALAR_KERNELS: Kernels = Kernels {
    dispatch: Dispatch::Scalar,
    euclidean_sq: scalar::euclidean_sq,
    euclidean_sq_early_abandon: scalar::euclidean_sq_early_abandon,
    sum: scalar::sum,
    sum_sumsq: scalar::sum_sumsq,
    normalize_affine: scalar::normalize_affine,
    segment_sums: scalar::segment_sums,
};

#[cfg(target_arch = "x86_64")]
static AVX2_KERNELS: Kernels = Kernels {
    dispatch: Dispatch::Avx2,
    euclidean_sq: avx2::euclidean_sq,
    euclidean_sq_early_abandon: avx2::euclidean_sq_early_abandon,
    sum: avx2::sum,
    sum_sumsq: avx2::sum_sumsq,
    normalize_affine: avx2::normalize_affine,
    segment_sums: avx2::segment_sums,
};

/// The kernel table for an explicit dispatch choice. Requesting
/// [`Dispatch::Avx2`] on hardware (or a target) without AVX2 falls back to
/// the scalar table rather than faulting.
pub fn kernels_for(dispatch: Dispatch) -> &'static Kernels {
    match dispatch {
        Dispatch::Scalar => &SCALAR_KERNELS,
        Dispatch::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    return &AVX2_KERNELS;
                }
            }
            &SCALAR_KERNELS
        }
    }
}

/// The kernel table for this process ([`active`] dispatch), cached.
#[inline]
pub fn kernels() -> &'static Kernels {
    static TABLE: OnceLock<&'static Kernels> = OnceLock::new();
    TABLE.get_or_init(|| kernels_for(active()))
}

/// How many elements each early-abandon cutoff check covers. A multiple of
/// the 8-wide lane count; checking every element costs more in horizontal
/// reductions than it saves.
pub const ABANDON_BLOCK: usize = 32;

/// Fixed reduction tree shared by both implementations: lane-halves first
/// (`a[l] + a[l+4]`, what `vaddpd(acc_lo, acc_hi)` computes), then the
/// 4-to-1 tree a horizontal `__m256d` sum performs.
#[inline(always)]
fn reduce8(a: [f64; 8]) -> f64 {
    let t0 = a[0] + a[4];
    let t1 = a[1] + a[5];
    let t2 = a[2] + a[6];
    let t3 = a[3] + a[7];
    (t0 + t2) + (t1 + t3)
}

/// Portable implementations, mirroring the AVX2 lane structure (see the
/// module docs) so results are bit-identical across dispatches.
pub mod scalar {
    use super::{reduce8, Value, ABANDON_BLOCK};

    pub(super) fn euclidean_sq_lanes(a: &[Value], b: &[Value]) -> ([f64; 8], f64) {
        let n = a.len();
        let n8 = n - n % 8;
        let mut acc = [0.0f64; 8];
        let mut i = 0;
        while i < n8 {
            for (l, lane) in acc.iter_mut().enumerate() {
                let d = (a[i + l] - b[i + l]) as f64;
                *lane += d * d;
            }
            i += 8;
        }
        let mut tail = 0.0f64;
        for j in n8..n {
            let d = (a[j] - b[j]) as f64;
            tail += d * d;
        }
        (acc, tail)
    }

    /// Squared Euclidean distance (8-lane accumulation).
    pub fn euclidean_sq(a: &[Value], b: &[Value]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let (acc, tail) = euclidean_sq_lanes(a, b);
        reduce8(acc) + tail
    }

    /// Early-abandoning squared Euclidean distance: the running sum is
    /// checked against `cutoff_sq` every [`ABANDON_BLOCK`] elements and once
    /// at the end; strictly-greater abandons.
    pub fn euclidean_sq_early_abandon(a: &[Value], b: &[Value], cutoff_sq: f64) -> Option<f64> {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let n8 = n - n % 8;
        let mut acc = [0.0f64; 8];
        let mut i = 0;
        while i + ABANDON_BLOCK <= n8 {
            let end = i + ABANDON_BLOCK;
            while i < end {
                for (l, lane) in acc.iter_mut().enumerate() {
                    let d = (a[i + l] - b[i + l]) as f64;
                    *lane += d * d;
                }
                i += 8;
            }
            if reduce8(acc) > cutoff_sq {
                return None;
            }
        }
        while i < n8 {
            for (l, lane) in acc.iter_mut().enumerate() {
                let d = (a[i + l] - b[i + l]) as f64;
                *lane += d * d;
            }
            i += 8;
        }
        let mut tail = 0.0f64;
        for j in n8..n {
            let d = (a[j] - b[j]) as f64;
            tail += d * d;
        }
        let total = reduce8(acc) + tail;
        if total > cutoff_sq {
            None
        } else {
            Some(total)
        }
    }

    /// Sum of a slice, accumulated in `f64` over 8 lanes.
    pub fn sum(v: &[Value]) -> f64 {
        let n = v.len();
        let n8 = n - n % 8;
        let mut acc = [0.0f64; 8];
        let mut i = 0;
        while i < n8 {
            for (l, lane) in acc.iter_mut().enumerate() {
                *lane += v[i + l] as f64;
            }
            i += 8;
        }
        let mut tail = 0.0f64;
        for x in &v[n8..] {
            tail += *x as f64;
        }
        reduce8(acc) + tail
    }

    /// Fused single-pass `(Σ(v−shift), Σ(v−shift)²)`.
    pub fn sum_sumsq(v: &[Value], shift: f64) -> (f64, f64) {
        let n = v.len();
        let n8 = n - n % 8;
        let mut acc = [0.0f64; 8];
        let mut acc2 = [0.0f64; 8];
        let mut i = 0;
        while i < n8 {
            for l in 0..8 {
                let x = v[i + l] as f64 - shift;
                acc[l] += x;
                acc2[l] += x * x;
            }
            i += 8;
        }
        let mut tail = 0.0f64;
        let mut tail2 = 0.0f64;
        for x in &v[n8..] {
            let x = *x as f64 - shift;
            tail += x;
            tail2 += x * x;
        }
        (reduce8(acc) + tail, reduce8(acc2) + tail2)
    }

    /// In-place `v ← (v − mean) · inv_std`, computed per element in `f64`
    /// and rounded back to `f32` (lane-exact across dispatches).
    pub fn normalize_affine(v: &mut [Value], mean: f64, inv_std: f64) {
        for x in v.iter_mut() {
            *x = ((*x as f64 - mean) * inv_std) as Value;
        }
    }

    /// PAA segment sums over equal-length segments.
    pub fn segment_sums(series: &[Value], seg: usize, out: &mut [f64]) {
        debug_assert_eq!(series.len(), seg * out.len());
        for (j, o) in out.iter_mut().enumerate() {
            *o = sum(&series[j * seg..(j + 1) * seg]);
        }
    }
}

/// AVX2 implementations. Every public function here is a safe wrapper that
/// asserts AVX2 support before calling into a `#[target_feature]` body.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use super::{Value, ABANDON_BLOCK};
    use std::arch::x86_64::*;

    #[inline]
    fn assert_avx2() {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "AVX2 kernel invoked on a CPU without AVX2"
        );
    }

    /// Horizontal sum of 8 lanes held as two `__m256d` (lane-halves add,
    /// then the fixed 4-to-1 tree — the same order as `scalar::reduce8`).
    ///
    /// # Safety
    /// Requires AVX2 (callers are `#[target_feature(enable = "avx2")]`).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum8(acc_lo: __m256d, acc_hi: __m256d) -> f64 {
        let s = _mm256_add_pd(acc_lo, acc_hi); // (t0, t1, t2, t3)
        let lo = _mm256_castpd256_pd128(s); // (t0, t1)
        let hi = _mm256_extractf128_pd::<1>(s); // (t2, t3)
        let p = _mm_add_pd(lo, hi); // (t0+t2, t1+t3)
        let q = _mm_unpackhi_pd(p, p);
        _mm_cvtsd_f64(_mm_add_sd(p, q)) // (t0+t2) + (t1+t3)
    }

    /// One 8-element step of the squared-distance accumulation: f32
    /// subtract, widen both halves to f64, square, add.
    ///
    /// # Safety
    /// Requires AVX2; `a` and `b` must point at 8 readable `f32`s.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn step_d2(a: *const f32, b: *const f32, acc_lo: &mut __m256d, acc_hi: &mut __m256d) {
        let va = _mm256_loadu_ps(a);
        let vb = _mm256_loadu_ps(b);
        let d = _mm256_sub_ps(va, vb);
        let d_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(d));
        let d_hi = _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(d));
        *acc_lo = _mm256_add_pd(*acc_lo, _mm256_mul_pd(d_lo, d_lo));
        *acc_hi = _mm256_add_pd(*acc_hi, _mm256_mul_pd(d_hi, d_hi));
    }

    #[target_feature(enable = "avx2")]
    unsafe fn euclidean_sq_impl(a: &[Value], b: &[Value]) -> f64 {
        let n = a.len();
        let n8 = n - n % 8;
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        let mut i = 0;
        while i < n8 {
            step_d2(
                a.as_ptr().add(i),
                b.as_ptr().add(i),
                &mut acc_lo,
                &mut acc_hi,
            );
            i += 8;
        }
        let mut tail = 0.0f64;
        for j in n8..n {
            let d = (a[j] - b[j]) as f64;
            tail += d * d;
        }
        hsum8(acc_lo, acc_hi) + tail
    }

    /// Squared Euclidean distance (AVX2).
    pub fn euclidean_sq(a: &[Value], b: &[Value]) -> f64 {
        // Hard assert: the vector body reads `b` through raw pointers
        // driven by `a.len()`, so a length mismatch would be an
        // out-of-bounds read, not a panic like the scalar mirror.
        assert_eq!(a.len(), b.len());
        assert_avx2();
        // SAFETY: AVX2 support asserted above; slices are equal-length.
        unsafe { euclidean_sq_impl(a, b) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn euclidean_sq_early_abandon_impl(
        a: &[Value],
        b: &[Value],
        cutoff_sq: f64,
    ) -> Option<f64> {
        let n = a.len();
        let n8 = n - n % 8;
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        let mut i = 0;
        while i + ABANDON_BLOCK <= n8 {
            let end = i + ABANDON_BLOCK;
            while i < end {
                step_d2(
                    a.as_ptr().add(i),
                    b.as_ptr().add(i),
                    &mut acc_lo,
                    &mut acc_hi,
                );
                i += 8;
            }
            if hsum8(acc_lo, acc_hi) > cutoff_sq {
                return None;
            }
        }
        while i < n8 {
            step_d2(
                a.as_ptr().add(i),
                b.as_ptr().add(i),
                &mut acc_lo,
                &mut acc_hi,
            );
            i += 8;
        }
        let mut tail = 0.0f64;
        for j in n8..n {
            let d = (a[j] - b[j]) as f64;
            tail += d * d;
        }
        let total = hsum8(acc_lo, acc_hi) + tail;
        if total > cutoff_sq {
            None
        } else {
            Some(total)
        }
    }

    /// Early-abandoning squared Euclidean distance (AVX2): block-wise
    /// cutoff checks, identical block boundaries to the scalar mirror.
    pub fn euclidean_sq_early_abandon(a: &[Value], b: &[Value], cutoff_sq: f64) -> Option<f64> {
        // Hard assert — see `euclidean_sq`: raw-pointer loads of `b` are
        // driven by `a.len()`.
        assert_eq!(a.len(), b.len());
        assert_avx2();
        // SAFETY: AVX2 support asserted above; slices are equal-length.
        unsafe { euclidean_sq_early_abandon_impl(a, b, cutoff_sq) }
    }

    /// One 8-element step widening to f64 and accumulating the values.
    ///
    /// # Safety
    /// Requires AVX2; `v` must point at 8 readable `f32`s.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn step_sum(v: *const f32, acc_lo: &mut __m256d, acc_hi: &mut __m256d) {
        let x = _mm256_loadu_ps(v);
        let x_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(x));
        let x_hi = _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(x));
        *acc_lo = _mm256_add_pd(*acc_lo, x_lo);
        *acc_hi = _mm256_add_pd(*acc_hi, x_hi);
    }

    #[target_feature(enable = "avx2")]
    unsafe fn sum_impl(v: &[Value]) -> f64 {
        let n = v.len();
        let n8 = n - n % 8;
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        let mut i = 0;
        while i < n8 {
            step_sum(v.as_ptr().add(i), &mut acc_lo, &mut acc_hi);
            i += 8;
        }
        let mut tail = 0.0f64;
        for x in &v[n8..] {
            tail += *x as f64;
        }
        hsum8(acc_lo, acc_hi) + tail
    }

    /// Sum of a slice in `f64` (AVX2).
    pub fn sum(v: &[Value]) -> f64 {
        assert_avx2();
        // SAFETY: AVX2 support asserted above.
        unsafe { sum_impl(v) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn sum_sumsq_impl(v: &[Value], shift: f64) -> (f64, f64) {
        let n = v.len();
        let n8 = n - n % 8;
        let vshift = _mm256_set1_pd(shift);
        let mut s_lo = _mm256_setzero_pd();
        let mut s_hi = _mm256_setzero_pd();
        let mut q_lo = _mm256_setzero_pd();
        let mut q_hi = _mm256_setzero_pd();
        let mut i = 0;
        while i < n8 {
            let x = _mm256_loadu_ps(v.as_ptr().add(i));
            let x_lo = _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(x)), vshift);
            let x_hi = _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps::<1>(x)), vshift);
            s_lo = _mm256_add_pd(s_lo, x_lo);
            s_hi = _mm256_add_pd(s_hi, x_hi);
            q_lo = _mm256_add_pd(q_lo, _mm256_mul_pd(x_lo, x_lo));
            q_hi = _mm256_add_pd(q_hi, _mm256_mul_pd(x_hi, x_hi));
            i += 8;
        }
        let mut tail = 0.0f64;
        let mut tail2 = 0.0f64;
        for x in &v[n8..] {
            let x = *x as f64 - shift;
            tail += x;
            tail2 += x * x;
        }
        (hsum8(s_lo, s_hi) + tail, hsum8(q_lo, q_hi) + tail2)
    }

    /// Fused single-pass `(Σ(v−shift), Σ(v−shift)²)` (AVX2).
    pub fn sum_sumsq(v: &[Value], shift: f64) -> (f64, f64) {
        assert_avx2();
        // SAFETY: AVX2 support asserted above.
        unsafe { sum_sumsq_impl(v, shift) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn normalize_affine_impl(v: &mut [Value], mean: f64, inv_std: f64) {
        let n = v.len();
        let n8 = n - n % 8;
        let vmean = _mm256_set1_pd(mean);
        let vinv = _mm256_set1_pd(inv_std);
        let mut i = 0;
        while i < n8 {
            let p = v.as_mut_ptr().add(i);
            let x = _mm256_loadu_ps(p);
            let x_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(x));
            let x_hi = _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(x));
            let y_lo = _mm256_mul_pd(_mm256_sub_pd(x_lo, vmean), vinv);
            let y_hi = _mm256_mul_pd(_mm256_sub_pd(x_hi, vmean), vinv);
            let out = _mm256_set_m128(_mm256_cvtpd_ps(y_hi), _mm256_cvtpd_ps(y_lo));
            _mm256_storeu_ps(p, out);
            i += 8;
        }
        for x in &mut v[n8..] {
            *x = ((*x as f64 - mean) * inv_std) as Value;
        }
    }

    /// In-place `v ← (v − mean) · inv_std` (AVX2; per-lane rounding matches
    /// the scalar path exactly).
    pub fn normalize_affine(v: &mut [Value], mean: f64, inv_std: f64) {
        assert_avx2();
        // SAFETY: AVX2 support asserted above.
        unsafe { normalize_affine_impl(v, mean, inv_std) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn segment_sums_impl(series: &[Value], seg: usize, out: &mut [f64]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = sum_impl(&series[j * seg..(j + 1) * seg]);
        }
    }

    /// PAA segment sums over equal-length segments (AVX2).
    pub fn segment_sums(series: &[Value], seg: usize, out: &mut [f64]) {
        debug_assert_eq!(series.len(), seg * out.len());
        assert_avx2();
        // SAFETY: AVX2 support asserted above; length checked.
        unsafe { segment_sums_impl(series, seg, out) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, seed: u32) -> Vec<Value> {
        (0..n)
            .map(|i| ((i as f32 * 0.37 + seed as f32) * 1.7).sin() * 2.5)
            .collect()
    }

    fn ulp_eq(a: f64, b: f64) -> bool {
        if a == b {
            return true;
        }
        (a.to_bits() as i64).abs_diff(b.to_bits() as i64) <= 1
    }

    #[test]
    fn dispatch_tables_are_consistent() {
        let k = kernels();
        assert_eq!(k.dispatch, active());
        assert_eq!(kernels_for(Dispatch::Scalar).dispatch, Dispatch::Scalar);
    }

    #[test]
    fn scalar_and_active_agree_on_all_kernels() {
        let ks = kernels_for(Dispatch::Scalar);
        let ka = kernels_for(detect());
        for n in [
            0usize, 1, 5, 7, 8, 9, 16, 31, 32, 33, 63, 64, 100, 256, 1000,
        ] {
            let a = data(n, 1);
            let b = data(n, 2);
            assert!(
                ulp_eq((ks.euclidean_sq)(&a, &b), (ka.euclidean_sq)(&a, &b)),
                "euclidean_sq n={n}"
            );
            assert_eq!((ks.sum)(&a).to_bits(), (ka.sum)(&a).to_bits(), "sum n={n}");
            let shift = a.first().copied().unwrap_or(0.0) as f64;
            let (s1, q1) = (ks.sum_sumsq)(&a, shift);
            let (s2, q2) = (ka.sum_sumsq)(&a, shift);
            assert!(ulp_eq(s1, s2) && ulp_eq(q1, q2), "sum_sumsq n={n}");
            let full = (ks.euclidean_sq)(&a, &b);
            for cutoff in [0.0, full * 0.5, full, full * 2.0, f64::INFINITY] {
                let r1 = (ks.euclidean_sq_early_abandon)(&a, &b, cutoff);
                let r2 = (ka.euclidean_sq_early_abandon)(&a, &b, cutoff);
                assert_eq!(r1.is_some(), r2.is_some(), "abandon n={n} cutoff={cutoff}");
                if let (Some(x), Some(y)) = (r1, r2) {
                    assert!(ulp_eq(x, y));
                }
            }
            let mut v1 = a.clone();
            let mut v2 = a.clone();
            (ks.normalize_affine)(&mut v1, 0.25, 1.75);
            (ka.normalize_affine)(&mut v2, 0.25, 1.75);
            assert_eq!(v1, v2, "normalize_affine n={n}");
        }
        for (n, seg) in [(64usize, 8usize), (256, 16), (24, 3), (7, 7), (30, 5)] {
            let s = data(n, 3);
            let w = n / seg;
            let mut o1 = vec![0.0f64; w];
            let mut o2 = vec![0.0f64; w];
            (ks.segment_sums)(&s[..w * seg], seg, &mut o1);
            (ka.segment_sums)(&s[..w * seg], seg, &mut o2);
            assert_eq!(o1, o2, "segment_sums n={n} seg={seg}");
        }
    }

    #[test]
    fn early_abandon_full_sum_equals_euclidean_sq() {
        let k = kernels();
        let a = data(200, 4);
        let b = data(200, 5);
        let full = (k.euclidean_sq)(&a, &b);
        assert_eq!(
            (k.euclidean_sq_early_abandon)(&a, &b, f64::INFINITY),
            Some(full)
        );
        // Exactly at the cutoff is kept (strictly-greater abandons).
        assert_eq!((k.euclidean_sq_early_abandon)(&a, &b, full), Some(full));
    }
}
