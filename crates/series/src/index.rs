//! The interface shared by every data series index in the workspace.
//!
//! The paper benchmarks eight index families under the same protocol: build
//! over a raw file, then answer approximate and exact nearest-neighbor
//! queries. [`SeriesIndex`] captures exactly that protocol so the experiment
//! harness (and the integration tests) can drive Coconut and every baseline
//! through one code path.

use crate::Value;
use coconut_storage::Result;

/// The result of a nearest-neighbor query: the position of the answer in the
/// raw dataset and its Euclidean distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Answer {
    /// Position (series index) in the raw dataset file.
    pub pos: u64,
    /// Euclidean distance between the query and this series.
    pub dist: f64,
}

impl Answer {
    /// A sentinel used before any candidate has been evaluated.
    pub fn none() -> Self {
        Answer {
            pos: u64::MAX,
            dist: f64::INFINITY,
        }
    }

    /// Whether this answer holds a real candidate.
    pub fn is_some(&self) -> bool {
        self.pos != u64::MAX
    }

    /// Keep the better (smaller-distance) of two answers.
    pub fn merge(&mut self, other: Answer) {
        if other.dist < self.dist {
            *self = other;
        }
    }
}

/// Work counters accumulated while answering one query — the paper's
/// Figure 9f reports `records_fetched` ("visited records") directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Leaf nodes (or equivalent disk units) visited.
    pub leaves_visited: u64,
    /// Raw series fetched and compared with the true distance.
    pub records_fetched: u64,
    /// Candidates pruned by a lower-bound test.
    pub pruned: u64,
    /// Lower-bound (mindist) computations performed.
    pub lower_bounds: u64,
}

impl QueryStats {
    /// Element-wise sum (for averaging across a query batch).
    pub fn add(&mut self, other: &QueryStats) {
        self.leaves_visited += other.leaves_visited;
        self.records_fetched += other.records_fetched;
        self.pruned += other.pruned;
        self.lower_bounds += other.lower_bounds;
    }
}

/// A built data series index that can answer nearest-neighbor queries.
///
/// `query` must already be z-normalized and have the index's series length.
pub trait SeriesIndex {
    /// A short display name ("CTree", "ADSFull", ...).
    fn name(&self) -> String;

    /// Approximate 1-NN: visit the most promising leaf (or leaves) only.
    fn approximate(&self, query: &[Value]) -> Result<Answer>;

    /// Exact 1-NN with work counters.
    fn exact(&self, query: &[Value]) -> Result<(Answer, QueryStats)>;

    /// Bytes this index occupies on disk (the paper's Figure 8c).
    fn disk_bytes(&self) -> u64;

    /// Number of leaf nodes (the paper's occupancy discussion).
    fn leaf_count(&self) -> u64;

    /// Average leaf fill factor in [0, 1] (entries / capacity).
    fn avg_leaf_fill(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_merge_keeps_minimum() {
        let mut a = Answer::none();
        assert!(!a.is_some());
        a.merge(Answer { pos: 3, dist: 5.0 });
        assert_eq!(a.pos, 3);
        a.merge(Answer { pos: 9, dist: 7.0 });
        assert_eq!(a.pos, 3);
        a.merge(Answer { pos: 1, dist: 0.5 });
        assert_eq!(a.pos, 1);
        assert!(a.is_some());
    }

    #[test]
    fn query_stats_accumulate() {
        let mut a = QueryStats {
            leaves_visited: 1,
            records_fetched: 2,
            pruned: 3,
            lower_bounds: 4,
        };
        let b = QueryStats {
            leaves_visited: 10,
            records_fetched: 20,
            pruned: 30,
            lower_bounds: 40,
        };
        a.add(&b);
        assert_eq!(a.leaves_visited, 11);
        assert_eq!(a.records_fetched, 22);
        assert_eq!(a.pruned, 33);
        assert_eq!(a.lower_bounds, 44);
    }
}
