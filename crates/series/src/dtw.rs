//! Dynamic Time Warping support.
//!
//! The paper indexes under Euclidean distance but notes that "simple
//! modifications can be applied to make them compatible with DTW"
//! (Section 2, citing Shieh & Keogh). This module provides those pieces:
//!
//! * [`dtw_sq`] — DTW with a Sakoe–Chiba band, O(n·band) time and O(band)
//!   space, with an early-abandoning variant;
//! * [`Envelope`] — Keogh's upper/lower query envelope under the band;
//! * [`lb_keogh_sq`] — the LB_Keogh lower bound: for any series `c`,
//!   `LB_Keogh(q, c) <= DTW(q, c)`, which lets the SIMS-style scans prune
//!   without computing full DTW.
//!
//! The index-level bound (envelope against SAX regions) lives in
//! `coconut_summary::mindist`.

use crate::Value;

/// Keogh's query envelope: `lower[i] = min(q[i-band..=i+band])`,
/// `upper[i] = max(...)`.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Per-point lower envelope.
    pub lower: Vec<Value>,
    /// Per-point upper envelope.
    pub upper: Vec<Value>,
    /// The Sakoe–Chiba band radius it was built with.
    pub band: usize,
}

impl Envelope {
    /// Build the envelope of `query` for a band of radius `band`.
    pub fn new(query: &[Value], band: usize) -> Self {
        let n = query.len();
        let mut lower = Vec::with_capacity(n);
        let mut upper = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(band);
            let hi = (i + band + 1).min(n);
            let window = &query[lo..hi];
            lower.push(window.iter().copied().fold(f32::INFINITY, f32::min));
            upper.push(window.iter().copied().fold(f32::NEG_INFINITY, f32::max));
        }
        Envelope { lower, upper, band }
    }
}

/// LB_Keogh: squared distance from `candidate` to the envelope. For every
/// series `c`: `lb_keogh_sq(env(q), c) <= dtw_sq(q, c, band)`.
#[inline]
pub fn lb_keogh_sq(envelope: &Envelope, candidate: &[Value]) -> f64 {
    debug_assert_eq!(envelope.lower.len(), candidate.len());
    let mut acc = 0.0f64;
    for ((&c, &lo), &hi) in candidate
        .iter()
        .zip(envelope.lower.iter())
        .zip(envelope.upper.iter())
    {
        if c < lo {
            let d = (lo - c) as f64;
            acc += d * d;
        } else if c > hi {
            let d = (c - hi) as f64;
            acc += d * d;
        }
    }
    acc
}

/// Squared DTW distance under a Sakoe–Chiba band of radius `band`.
///
/// Uses two rolling rows of width `2*band+1`; cells outside the band are
/// treated as infinite.
pub fn dtw_sq(a: &[Value], b: &[Value], band: usize) -> f64 {
    dtw_sq_early_abandon(a, b, band, f64::INFINITY).unwrap_or(f64::INFINITY)
}

/// DTW distance (not squared).
pub fn dtw(a: &[Value], b: &[Value], band: usize) -> f64 {
    dtw_sq(a, b, band).sqrt()
}

/// Squared DTW with early abandoning: returns `None` once every cell of a
/// row exceeds `cutoff_sq` (the true distance then must exceed it too).
#[allow(clippy::needless_range_loop)] // the band arithmetic needs explicit i/j
pub fn dtw_sq_early_abandon(a: &[Value], b: &[Value], band: usize, cutoff_sq: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return Some(0.0);
    }
    let band = band.min(n - 1);
    let width = 2 * band + 1;
    let inf = f64::INFINITY;
    // prev[k] = cost(i-1, j) where j = (i-1) - band + k.
    let mut prev = vec![inf; width];
    let mut cur = vec![inf; width];
    for i in 0..n {
        let j_lo = i.saturating_sub(band);
        let j_hi = (i + band + 1).min(n);
        let mut row_min = inf;
        for j in j_lo..j_hi {
            let k = j + band - i; // index into cur
            let d = {
                let diff = (a[i] - b[j]) as f64;
                diff * diff
            };
            let best_prev = if i == 0 && j == 0 {
                0.0
            } else {
                let mut m = inf;
                // (i, j-1): cur[k-1].
                if j > j_lo {
                    m = m.min(cur[k - 1]);
                }
                if i > 0 {
                    // (i-1, j): prev index j + band - (i-1) = k + 1; the
                    // in-band check |i-1-j| <= band reduces to k+1 < width
                    // (cells row i-1 never computed stay infinite).
                    if k + 1 < width {
                        m = m.min(prev[k + 1]);
                    }
                    // (i-1, j-1): prev index k; always in band when (i, j)
                    // is.
                    if j > 0 {
                        m = m.min(prev[k]);
                    }
                }
                m
            };
            cur[k] = d + best_prev;
            row_min = row_min.min(cur[k]);
        }
        if row_min > cutoff_sq {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.fill(inf);
    }
    let last = prev[band]; // j = n-1 at i = n-1 -> k = band
    Some(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean_sq;
    use crate::gen::{Generator, RandomWalkGen};

    fn wavy(seed: u64, len: usize) -> Vec<Value> {
        let mut s = RandomWalkGen::new(seed).generate(len);
        crate::distance::znormalize(&mut s);
        s
    }

    #[test]
    fn dtw_of_identical_series_is_zero() {
        let a = wavy(1, 64);
        assert_eq!(dtw_sq(&a, &a, 5), 0.0);
        assert_eq!(dtw_sq(&a, &a, 0), 0.0);
    }

    #[test]
    fn band_zero_equals_euclidean() {
        let a = wavy(1, 64);
        let b = wavy(2, 64);
        let d = dtw_sq(&a, &b, 0);
        let e = euclidean_sq(&a, &b);
        assert!((d - e).abs() < 1e-9);
    }

    #[test]
    fn dtw_never_exceeds_euclidean() {
        // Widening the band can only reduce the alignment cost.
        for seed in 0..10u64 {
            let a = wavy(seed, 64);
            let b = wavy(seed + 100, 64);
            let e = euclidean_sq(&a, &b);
            let mut prev = e;
            for band in [1usize, 3, 8, 32] {
                let d = dtw_sq(&a, &b, band);
                assert!(d <= prev + 1e-9, "band {band}: {d} > {prev}");
                prev = d;
            }
        }
    }

    #[test]
    fn shifted_series_align_under_dtw() {
        // A sine and its 3-point shift: DTW(band>=3) should be near zero
        // while ED is substantial.
        let n = 128;
        let a: Vec<Value> = (0..n).map(|i| ((i as f32) * 0.2).sin()).collect();
        let b: Vec<Value> = (0..n).map(|i| ((i as f32 + 3.0) * 0.2).sin()).collect();
        let e = euclidean_sq(&a, &b);
        let d = dtw_sq(&a, &b, 5);
        assert!(d < e * 0.05, "dtw {d} vs ed {e}");
    }

    #[test]
    fn known_small_example() {
        // a = [0,0,1,1], b = [0,1,1,1], band 1: optimal alignment has cost 0
        // only if warping can absorb the mismatch; here one step differs.
        let a = [0.0f32, 0.0, 1.0, 1.0];
        let b = [0.0f32, 1.0, 1.0, 1.0];
        let d = dtw_sq(&a, &b, 1);
        // Path: (0,0)=0, a[1] matches b[0] (cost 0), rest matches -> 0.
        assert_eq!(d, 0.0);
        // Without warping: ED^2 = 1.
        assert_eq!(dtw_sq(&a, &b, 0), 1.0);
    }

    #[test]
    fn envelope_contains_query() {
        let q = wavy(5, 64);
        for band in [0usize, 1, 5, 63] {
            let env = Envelope::new(&q, band);
            for (i, &v) in q.iter().enumerate() {
                assert!(env.lower[i] <= v && v <= env.upper[i]);
            }
            // The query itself has LB_Keogh 0.
            assert_eq!(lb_keogh_sq(&env, &q), 0.0);
        }
    }

    #[test]
    fn lb_keogh_lower_bounds_dtw() {
        for seed in 0..20u64 {
            let q = wavy(seed, 64);
            let c = wavy(seed + 50, 64);
            for band in [1usize, 4, 10] {
                let env = Envelope::new(&q, band);
                let lb = lb_keogh_sq(&env, &c);
                let d = dtw_sq(&q, &c, band);
                assert!(lb <= d + 1e-6, "seed {seed} band {band}: lb {lb} > dtw {d}");
            }
        }
    }

    #[test]
    fn early_abandon_consistent_with_full() {
        let a = wavy(7, 64);
        let b = wavy(8, 64);
        let full = dtw_sq(&a, &b, 4);
        assert_eq!(dtw_sq_early_abandon(&a, &b, 4, full + 1.0), Some(full));
        assert_eq!(dtw_sq_early_abandon(&a, &b, 4, full * 0.5), None);
    }

    #[test]
    fn empty_series() {
        assert_eq!(dtw_sq(&[], &[], 3), 0.0);
    }

    /// Naive full-matrix banded DTW for cross-checking the rolling-array
    /// implementation.
    fn dtw_sq_reference(a: &[Value], b: &[Value], band: usize) -> f64 {
        let n = a.len();
        if n == 0 {
            return 0.0;
        }
        let inf = f64::INFINITY;
        let mut m = vec![vec![inf; n]; n];
        for i in 0..n {
            for j in i.saturating_sub(band)..(i + band + 1).min(n) {
                let d = ((a[i] - b[j]) as f64).powi(2);
                let best = if i == 0 && j == 0 {
                    0.0
                } else {
                    let mut best = inf;
                    if j > 0 {
                        best = best.min(m[i][j - 1]);
                    }
                    if i > 0 {
                        best = best.min(m[i - 1][j]);
                        if j > 0 {
                            best = best.min(m[i - 1][j - 1]);
                        }
                    }
                    best
                };
                m[i][j] = d + best;
            }
        }
        m[n - 1][n - 1]
    }

    #[test]
    fn rolling_implementation_matches_reference() {
        for seed in 0..15u64 {
            let a = wavy(seed, 40);
            let b = wavy(seed + 77, 40);
            for band in [0usize, 1, 2, 5, 13, 39] {
                let fast = dtw_sq(&a, &b, band);
                let slow = dtw_sq_reference(&a, &b, band);
                assert!(
                    (fast - slow).abs() < 1e-9,
                    "seed {seed} band {band}: fast {fast} != ref {slow}"
                );
            }
        }
    }
}
