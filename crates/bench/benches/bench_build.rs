//! Index construction: bottom-up bulk loading (Coconut) vs top-down
//! insertion (iSAX 2.0 / ADS) on the same data — the paper's core claim in
//! microcosm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use coconut_bench::data::{prepare, DataKind};
use coconut_bench::zoo::{build_index, Algo, BuildParams};
use coconut_storage::TempDir;

fn bench_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    let n: u64 = 10_000;
    let len = 128usize;
    group.throughput(Throughput::Elements(n));
    let data_dir = TempDir::new("bench-build-data").unwrap();
    let w = prepare(data_dir.path(), DataKind::RandomWalk, n, len, 1, 3).unwrap();
    // Memory at 5% of raw: the regime where construction styles diverge.
    let params = BuildParams {
        leaf_capacity: 100,
        memory_bytes: (n * len as u64 * 4) / 20,
        threads: 4,
        shards: 1,
    };
    for algo in [
        Algo::CTree,
        Algo::CTrie,
        Algo::AdsPlus,
        Algo::Isax2,
        Algo::CTreeFull,
        Algo::AdsFull,
        Algo::RTreePlus,
    ] {
        group.bench_with_input(BenchmarkId::new(algo.name(), n), &n, |b, _| {
            b.iter(|| {
                let dir = TempDir::new("bench-build").unwrap();
                build_index(algo, &w, &params, dir.path()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_builds
}
criterion_main!(benches);
