//! External-sort throughput under different memory budgets — the engine of
//! bottom-up bulk loading (paper Section 3.1).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use coconut_core::records::{KeyPos, KeyPosCodec};
use coconut_storage::{ExternalSorter, IoStats, TempDir};
use coconut_summary::ZKey;

fn bench_extsort(c: &mut Criterion) {
    let mut group = c.benchmark_group("extsort_keypos");
    group.sample_size(10);
    let n: u64 = 100_000;
    group.throughput(Throughput::Elements(n));
    // Budgets: ample (in-memory sort), 10% (spills), 1% (many runs).
    let record_bytes = 24u64;
    for (label, budget) in [
        ("ample", n * record_bytes * 2),
        ("10pct", n * record_bytes / 10),
        ("1pct", n * record_bytes / 100),
    ] {
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
            b.iter(|| {
                let dir = TempDir::new("bench-sort").unwrap();
                let stats = Arc::new(IoStats::new());
                let mut sorter =
                    ExternalSorter::new(KeyPosCodec, budget, dir.path(), stats).unwrap();
                for i in 0..n {
                    // A scrambled but deterministic key sequence.
                    let key = ZKey((i.wrapping_mul(0x9e3779b97f4a7c15) as u128) << 32);
                    sorter.push(KeyPos { key, pos: i }).unwrap();
                }
                let mut stream = sorter.finish().unwrap();
                let mut count = 0u64;
                while stream.next_item().unwrap().is_some() {
                    count += 1;
                }
                assert_eq!(count, n);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_extsort
}
criterion_main!(benches);
