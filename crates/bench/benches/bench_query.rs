//! Query latency on pre-built indexes: approximate and exact (SIMS),
//! including the SIMS thread-count scaling ablation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use coconut_bench::data::{prepare, DataKind};
use coconut_bench::zoo::{build_index, Algo, BuildParams};
use coconut_core::{BuildOptions, CoconutTree, IndexConfig};
use coconut_storage::TempDir;
use coconut_summary::SaxConfig;

fn bench_queries(c: &mut Criterion) {
    let n: u64 = 20_000;
    let len = 128usize;
    let data_dir = TempDir::new("bench-query-data").unwrap();
    let w = prepare(data_dir.path(), DataKind::RandomWalk, n, len, 16, 5).unwrap();
    let params = BuildParams {
        leaf_capacity: 200,
        memory_bytes: 64 << 20,
        threads: 4,
        shards: 1,
    };
    let build_dir = TempDir::new("bench-query-idx").unwrap();

    let mut group = c.benchmark_group("query");
    group.sample_size(20);
    for algo in [Algo::CTree, Algo::CTreeFull, Algo::AdsPlus, Algo::AdsFull] {
        let idx = build_index(algo, &w, &params, build_dir.path()).unwrap();
        // Warm the lazily loaded summaries so we measure steady state.
        idx.exact(&w.queries[0]).unwrap();
        let mut qi = 0usize;
        group.bench_function(BenchmarkId::new("approximate", algo.name()), |b| {
            b.iter(|| {
                let q = &w.queries[qi % w.queries.len()];
                qi += 1;
                idx.approximate(black_box(q)).unwrap()
            })
        });
        let mut qi = 0usize;
        group.bench_function(BenchmarkId::new("exact", algo.name()), |b| {
            b.iter(|| {
                let q = &w.queries[qi % w.queries.len()];
                qi += 1;
                idx.exact(black_box(q)).unwrap()
            })
        });
    }
    group.finish();

    // Buffer-pool ablation: repeat approximate queries on a materialized
    // tree, with and without a shared leaf-block cache.
    let mut group = c.benchmark_group("buffer_pool");
    group.sample_size(20);
    {
        let config = IndexConfig {
            sax: SaxConfig::default_for_len(len),
            leaf_capacity: 200,
            fill_factor: 1.0,
            internal_fanout: 64,
            split_policy: coconut_core::SplitPolicyKind::Fixed,
        };
        let opts = BuildOptions {
            memory_bytes: 64 << 20,
            materialized: true,
            threads: 4,
            shards: 1,
        };
        let cold = CoconutTree::build(&w.dataset, &config, build_dir.path(), opts.clone()).unwrap();
        let mut warm = CoconutTree::build(&w.dataset, &config, build_dir.path(), opts).unwrap();
        warm.attach_cache(coconut_storage::PageCache::new(64 << 20), 1);
        let mut qi = 0usize;
        group.bench_function("uncached", |b| {
            b.iter(|| {
                let q = &w.queries[qi % w.queries.len()];
                qi += 1;
                cold.approximate_search(black_box(q), 1).unwrap()
            })
        });
        let mut qi = 0usize;
        group.bench_function("cached", |b| {
            b.iter(|| {
                let q = &w.queries[qi % w.queries.len()];
                qi += 1;
                warm.approximate_search(black_box(q), 1).unwrap()
            })
        });
    }
    group.finish();

    // SIMS thread scaling on the Coconut-Tree.
    let mut group = c.benchmark_group("sims_threads");
    group.sample_size(20);
    for threads in [1usize, 2, 4, 8] {
        let config = IndexConfig {
            sax: SaxConfig::default_for_len(len),
            leaf_capacity: 200,
            fill_factor: 1.0,
            internal_fanout: 64,
            split_policy: coconut_core::SplitPolicyKind::Fixed,
        };
        let tree = CoconutTree::build(
            &w.dataset,
            &config,
            build_dir.path(),
            BuildOptions {
                memory_bytes: 64 << 20,
                materialized: false,
                threads,
                shards: 1,
            },
        )
        .unwrap();
        tree.exact_search(&w.queries[0]).unwrap();
        let mut qi = 0usize;
        group.bench_function(BenchmarkId::new("exact", threads), |b| {
            b.iter(|| {
                let q = &w.queries[qi % w.queries.len()];
                qi += 1;
                tree.exact_search(black_box(q)).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_queries
}
criterion_main!(benches);
