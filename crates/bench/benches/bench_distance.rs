//! Microbenchmarks of the distance kernels that dominate query CPU time,
//! with explicit scalar-vs-SIMD groups for the runtime-dispatched kernels
//! (`coconut_series::simd`): the same measurements `repro bench_distance`
//! records to `results/BENCH_distance.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use coconut_series::distance::{euclidean_sq, euclidean_sq_early_abandon, znormalize};
use coconut_series::gen::{Generator, RandomWalkGen};
use coconut_series::simd::{detect, kernels_for, Dispatch};
use coconut_summary::mindist::{mindist_paa_sax, mindist_paa_zkey, QueryDistTable};
use coconut_summary::paa::paa;
use coconut_summary::sax::{sax_word, Summarizer};
use coconut_summary::zorder::interleave;
use coconut_summary::{SaxConfig, ZKey};

fn series(seed: u64, len: usize) -> Vec<f32> {
    let mut s = RandomWalkGen::new(seed).generate(len);
    znormalize(&mut s);
    s
}

fn bench_euclidean(c: &mut Criterion) {
    let mut group = c.benchmark_group("euclidean");
    let scalar = kernels_for(Dispatch::Scalar);
    let simd = kernels_for(detect());
    for len in [64usize, 256, 1024] {
        let a = series(1, len);
        let b = series(2, len);
        // The dispatched path (what the query path actually calls)...
        group.bench_with_input(BenchmarkId::new("full", len), &len, |bench, _| {
            bench.iter(|| euclidean_sq(black_box(&a), black_box(&b)))
        });
        // ...and the two implementations pinned, for the A/B trajectory.
        group.bench_with_input(BenchmarkId::new("full_scalar", len), &len, |bench, _| {
            bench.iter(|| (scalar.euclidean_sq)(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("full_simd", len), &len, |bench, _| {
            bench.iter(|| (simd.euclidean_sq)(black_box(&a), black_box(&b)))
        });
        // Early abandoning with a tight cutoff (the common case once a good
        // best-so-far exists).
        let full = euclidean_sq(&a, &b);
        group.bench_with_input(
            BenchmarkId::new("early_abandon_tight", len),
            &len,
            |bench, _| {
                bench.iter(|| euclidean_sq_early_abandon(black_box(&a), black_box(&b), full * 0.1))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("early_abandon_loose", len),
            &len,
            |bench, _| {
                bench.iter(|| euclidean_sq_early_abandon(black_box(&a), black_box(&b), full * 10.0))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("early_abandon_loose_scalar", len),
            &len,
            |bench, _| {
                bench.iter(|| {
                    (scalar.euclidean_sq_early_abandon)(black_box(&a), black_box(&b), full * 10.0)
                })
            },
        );
    }
    group.finish();
}

fn bench_mindist(c: &mut Criterion) {
    let mut group = c.benchmark_group("mindist");
    let config = SaxConfig::default_for_len(256);
    let q = series(3, 256);
    let qp = paa(&q, config.segments);
    let s = series(4, 256);
    let word = sax_word(&s, &config);
    let key = interleave(word.symbols(), config.card_bits);
    group.bench_function("word", |b| {
        b.iter(|| mindist_paa_sax(black_box(&qp), black_box(word.symbols()), &config))
    });
    // The SIMS inner loop: decode the z-order key and bound it.
    group.bench_function("zkey", |b| {
        b.iter(|| mindist_paa_zkey(black_box(&qp), black_box(key), &config))
    });
    group.finish();
}

/// The batched SIMS scan: MINDIST of a whole in-memory key array, one-at-a-
/// time versus the block-decoded batch kernel on each dispatch.
fn bench_mindist_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("mindist_batch");
    group.sample_size(30);
    let config = SaxConfig::default_for_len(256);
    let q = series(5, 256);
    let qp = paa(&q, config.segments);
    let keys: Vec<ZKey> = (0..4096u64)
        .map(|i| {
            let s = series(100 + i, 256);
            interleave(sax_word(&s, &config).symbols(), config.card_bits)
        })
        .collect();
    let table = QueryDistTable::new(&qp, &config);
    let mut out = vec![0.0f64; keys.len()];
    group.bench_function("per_key_4096", |b| {
        b.iter(|| {
            for (o, &k) in out.iter_mut().zip(keys.iter()) {
                *o = mindist_paa_zkey(black_box(&qp), k, &config);
            }
            black_box(out[0])
        })
    });
    group.bench_function("batch_scalar_4096", |b| {
        b.iter(|| {
            table.mindist_batch_into_with(Dispatch::Scalar, black_box(&keys), &mut out);
            black_box(out[0])
        })
    });
    group.bench_function("batch_simd_4096", |b| {
        b.iter(|| {
            table.mindist_batch_into_with(detect(), black_box(&keys), &mut out);
            black_box(out[0])
        })
    });
    group.finish();
}

fn bench_summarizer_pipeline(c: &mut Criterion) {
    let config = SaxConfig::default_for_len(256);
    let mut summarizer = Summarizer::new(config);
    let s = series(5, 256);
    c.bench_function("series_to_zkey", |b| {
        b.iter(|| summarizer.zkey(black_box(&s)))
    });

    let mut group = c.benchmark_group("znormalize");
    let scalar = kernels_for(Dispatch::Scalar);
    let simd = kernels_for(detect());
    let raw = RandomWalkGen::new(9).generate(256);
    let shift = raw[0] as f64;
    group.bench_function("stats_scalar", |b| {
        b.iter(|| (scalar.sum_sumsq)(black_box(&raw), shift))
    });
    group.bench_function("stats_simd", |b| {
        b.iter(|| (simd.sum_sumsq)(black_box(&raw), shift))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_euclidean, bench_mindist, bench_mindist_batch, bench_summarizer_pipeline
}
criterion_main!(benches);
