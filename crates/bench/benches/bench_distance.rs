//! Microbenchmarks of the distance kernels that dominate query CPU time.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use coconut_series::distance::{euclidean_sq, euclidean_sq_early_abandon, znormalize};
use coconut_series::gen::{Generator, RandomWalkGen};
use coconut_summary::mindist::{mindist_paa_sax, mindist_paa_zkey};
use coconut_summary::paa::paa;
use coconut_summary::sax::{sax_word, Summarizer};
use coconut_summary::zorder::interleave;
use coconut_summary::SaxConfig;

fn series(seed: u64, len: usize) -> Vec<f32> {
    let mut s = RandomWalkGen::new(seed).generate(len);
    znormalize(&mut s);
    s
}

fn bench_euclidean(c: &mut Criterion) {
    let mut group = c.benchmark_group("euclidean");
    for len in [64usize, 256, 1024] {
        let a = series(1, len);
        let b = series(2, len);
        group.bench_with_input(BenchmarkId::new("full", len), &len, |bench, _| {
            bench.iter(|| euclidean_sq(black_box(&a), black_box(&b)))
        });
        // Early abandoning with a tight cutoff (the common case once a good
        // best-so-far exists).
        let full = euclidean_sq(&a, &b);
        group.bench_with_input(
            BenchmarkId::new("early_abandon_tight", len),
            &len,
            |bench, _| {
                bench.iter(|| euclidean_sq_early_abandon(black_box(&a), black_box(&b), full * 0.1))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("early_abandon_loose", len),
            &len,
            |bench, _| {
                bench.iter(|| euclidean_sq_early_abandon(black_box(&a), black_box(&b), full * 10.0))
            },
        );
    }
    group.finish();
}

fn bench_mindist(c: &mut Criterion) {
    let mut group = c.benchmark_group("mindist");
    let config = SaxConfig::default_for_len(256);
    let q = series(3, 256);
    let qp = paa(&q, config.segments);
    let s = series(4, 256);
    let word = sax_word(&s, &config);
    let key = interleave(word.symbols(), config.card_bits);
    group.bench_function("word", |b| {
        b.iter(|| mindist_paa_sax(black_box(&qp), black_box(word.symbols()), &config))
    });
    // The SIMS inner loop: decode the z-order key and bound it.
    group.bench_function("zkey", |b| {
        b.iter(|| mindist_paa_zkey(black_box(&qp), black_box(key), &config))
    });
    group.finish();
}

fn bench_summarizer_pipeline(c: &mut Criterion) {
    let config = SaxConfig::default_for_len(256);
    let mut summarizer = Summarizer::new(config);
    let s = series(5, 256);
    c.bench_function("series_to_zkey", |b| {
        b.iter(|| summarizer.zkey(black_box(&s)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_euclidean, bench_mindist, bench_summarizer_pipeline
}
criterion_main!(benches);
