//! Summarization throughput: PAA, SAX quantization and the sortable
//! (interleaved) transform — including the ablation the paper's Figure 2/4
//! argument rests on (z-order vs lexicographic ordering quality).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use coconut_series::distance::{euclidean, znormalize};
use coconut_series::gen::{Generator, RandomWalkGen};
use coconut_summary::paa::paa;
use coconut_summary::sax::Summarizer;
use coconut_summary::zorder::{deinterleave, interleave, lexicographic_key};
use coconut_summary::SaxConfig;

fn bench_paa_sax(c: &mut Criterion) {
    let mut group = c.benchmark_group("summarize");
    for len in [64usize, 256, 1024] {
        let config = SaxConfig::default_for_len(len);
        let mut summarizer = Summarizer::new(config);
        let mut s = RandomWalkGen::new(7).generate(len);
        znormalize(&mut s);
        group.bench_with_input(BenchmarkId::new("paa", len), &len, |b, _| {
            b.iter(|| paa(black_box(&s), config.segments))
        });
        let mut out = vec![0u8; config.segments];
        group.bench_with_input(BenchmarkId::new("sax", len), &len, |b, _| {
            b.iter(|| summarizer.sax_into(black_box(&s), &mut out))
        });
    }
    group.finish();
}

fn bench_interleave(c: &mut Criterion) {
    let mut group = c.benchmark_group("zorder");
    let symbols: Vec<u8> = (0..16).map(|j| (j * 17) as u8).collect();
    group.bench_function("interleave_16x8", |b| {
        b.iter(|| interleave(black_box(&symbols), 8))
    });
    let key = interleave(&symbols, 8);
    group.bench_function("deinterleave_16x8", |b| {
        b.iter(|| deinterleave(black_box(key), 16, 8))
    });
    group.bench_function("lexicographic_16x8", |b| {
        b.iter(|| lexicographic_key(black_box(&symbols), 8))
    });
    group.finish();
}

/// The sortability ablation: sort a sample by z-order vs lexicographic SAX
/// order and measure how close neighbors in the sorted order really are.
/// (Not a timing benchmark — prints the quality ratio once.)
fn sortability_ablation(c: &mut Criterion) {
    let len = 256;
    let config = SaxConfig::default_for_len(len);
    let mut summarizer = Summarizer::new(config);
    let mut g = RandomWalkGen::new(21);
    let n = 2000;
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        let mut s = g.generate(len);
        znormalize(&mut s);
        data.push(s);
    }
    let avg_neighbor_dist = |order: &[usize]| -> f64 {
        order
            .windows(2)
            .map(|w| euclidean(&data[w[0]], &data[w[1]]))
            .sum::<f64>()
            / (order.len() - 1) as f64
    };
    let mut words: Vec<Vec<u8>> = Vec::with_capacity(n);
    for s in &data {
        let mut w = vec![0u8; config.segments];
        summarizer.sax_into(s, &mut w);
        words.push(w);
    }
    let mut z: Vec<usize> = (0..n).collect();
    z.sort_by_key(|&i| interleave(&words[i], 8));
    let mut lex: Vec<usize> = (0..n).collect();
    lex.sort_by_key(|&i| lexicographic_key(&words[i], 8));
    println!(
        "sortability ablation: avg neighbor distance z-order {:.3} vs lexicographic {:.3}",
        avg_neighbor_dist(&z),
        avg_neighbor_dist(&lex)
    );
    // Also time the two sorts (identical cost — the quality differs).
    c.bench_function("sort_by_zorder_2k", |b| {
        b.iter(|| {
            let mut v: Vec<usize> = (0..n).collect();
            v.sort_by_key(|&i| interleave(black_box(&words[i]), 8));
            v
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_paa_sax, bench_interleave, sortability_ablation
}
criterion_main!(benches);
