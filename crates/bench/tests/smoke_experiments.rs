//! Smoke tests: every figure runner executes end-to-end at a micro scale
//! and produces its CSV. (The real numbers come from the `repro` binary;
//! these tests guard the harness itself.)

use coconut_bench::experiments::{self, Env, Scale};
use coconut_storage::TempDir;

fn micro_env(work: &TempDir, results: &TempDir) -> Env {
    Env {
        work_dir: work.path().to_path_buf(),
        results_dir: results.path().to_path_buf(),
        scale: Scale {
            n: 400,
            series_len: 64,
            queries: 3,
            leaf_capacity: 32,
            threads: 2,
        },
    }
}

fn csv_exists(results: &TempDir, name: &str) -> bool {
    results.path().join(format!("{name}.csv")).is_file()
}

#[test]
fn fig7_runs() {
    let (w, r) = (
        TempDir::new("smoke-w").unwrap(),
        TempDir::new("smoke-r").unwrap(),
    );
    experiments::fig7::run(&micro_env(&w, &r)).unwrap();
    assert!(csv_exists(&r, "fig7"));
}

#[test]
fn fig8_family_runs() {
    let (w, r) = (
        TempDir::new("smoke-w").unwrap(),
        TempDir::new("smoke-r").unwrap(),
    );
    let env = micro_env(&w, &r);
    experiments::fig8::run_8c(&env).unwrap();
    experiments::fig8::run_8e(&env).unwrap();
    assert!(csv_exists(&r, "fig8c"));
    assert!(csv_exists(&r, "fig8e"));
    // The CSV has the expected header.
    let csv = std::fs::read_to_string(r.path().join("fig8c.csv")).unwrap();
    assert!(csv.starts_with("algorithm,index_bytes,raw_ratio,leaves,avg_fill"));
}

#[test]
fn fig9_family_runs() {
    let (w, r) = (
        TempDir::new("smoke-w").unwrap(),
        TempDir::new("smoke-r").unwrap(),
    );
    let env = micro_env(&w, &r);
    experiments::fig9::run_9d(&env).unwrap();
    experiments::fig9::run_9f(&env).unwrap();
    assert!(csv_exists(&r, "fig9d"));
    assert!(csv_exists(&r, "fig9f"));
}

#[test]
fn scaling_runs() {
    let (w, r) = (
        TempDir::new("smoke-w").unwrap(),
        TempDir::new("smoke-r").unwrap(),
    );
    let env = micro_env(&w, &r);
    experiments::scaling::run(&env).unwrap();
    assert!(csv_exists(&r, "scaling"));
    let csv = std::fs::read_to_string(r.path().join("scaling.csv")).unwrap();
    // Every row's identity check passed (run() errors otherwise).
    assert!(csv.lines().skip(1).all(|l| l.ends_with("yes")), "{csv}");
}

#[test]
fn fig10a_runs() {
    let (w, r) = (
        TempDir::new("smoke-w").unwrap(),
        TempDir::new("smoke-r").unwrap(),
    );
    let env = micro_env(&w, &r);
    experiments::fig10::run_10a(&env).unwrap();
    assert!(csv_exists(&r, "fig10a"));
    let csv = std::fs::read_to_string(r.path().join("fig10a.csv")).unwrap();
    // Three algorithms x three batch sizes.
    assert_eq!(csv.lines().count(), 1 + 9, "{csv}");
}
