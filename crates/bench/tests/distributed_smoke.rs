//! End-to-end smoke test of `repro distributed`: drives the real binary
//! (which re-execs itself as shard worker processes) at a micro scale and
//! checks the committed artifacts. This is the same path CI runs per PR.

use std::process::Command;

use coconut_storage::TempDir;

#[test]
fn repro_distributed_runs_and_verifies() {
    let work = TempDir::new("dist-smoke-w").unwrap();
    let results = TempDir::new("dist-smoke-r").unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "distributed",
            "--n",
            "700",
            "--len",
            "64",
            "--queries",
            "3",
            "--work-dir",
        ])
        .arg(work.path())
        .arg("--results-dir")
        .arg(results.path())
        .output()
        .expect("repro binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "repro distributed failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );

    let json = std::fs::read_to_string(results.path().join("BENCH_distributed.json")).unwrap();
    assert!(json.contains("\"experiment\": \"distributed\""), "{json}");
    assert!(json.contains("\"divergences\": 0"), "{json}");
    for shards in [1, 2, 4] {
        assert!(json.contains(&format!("\"shards\": {shards}")), "{json}");
    }
    let csv = std::fs::read_to_string(results.path().join("distributed.csv")).unwrap();
    assert!(csv.starts_with("shards,requests,qps,p50_ms,p99_ms,diverged"));
}
