//! Measurement and reporting utilities.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use coconut_storage::{DiskProfile, IoSnapshot, IoStats, Result};

/// One measured phase: wall clock plus the I/O trace it produced.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// I/O accumulated during the phase.
    pub io: IoSnapshot,
}

impl Measurement {
    /// Modeled seconds of the I/O trace on a spinning-disk profile, plus
    /// the CPU time (approximated by wall clock, since the laptop's I/O is
    /// a page cache hit most of the time).
    pub fn modeled_s(&self) -> f64 {
        self.wall_s + self.io.modeled_seconds(&DiskProfile::default())
    }
}

/// Run `f`, capturing wall time and the I/O delta on `stats`.
pub fn measure<T>(stats: &Arc<IoStats>, f: impl FnOnce() -> Result<T>) -> Result<(T, Measurement)> {
    let before = stats.snapshot();
    let start = Instant::now();
    let value = f()?;
    let wall_s = start.elapsed().as_secs_f64();
    let io = stats.snapshot().since(&before);
    Ok((value, Measurement { wall_s, io }))
}

/// A simple result table: printed aligned to stdout and written as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. "fig8a".
    pub name: String,
    /// A one-line description of what the paper's figure shows.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table.
    pub fn new(name: &str, caption: &str, headers: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            caption: caption.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.headers.len());
        self.rows.push(row);
    }

    /// Render aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.name, self.caption);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Write CSV into `dir/<name>.csv`.
    pub fn write_csv(&self, dir: &PathBuf) -> Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(csv, "{}", row.join(","));
        }
        std::fs::write(&path, csv)?;
        Ok(path)
    }

    /// Print to stdout and persist the CSV.
    pub fn emit(&self, results_dir: &PathBuf) -> Result<()> {
        println!("{}", self.render());
        let path = self.write_csv(results_dir)?;
        println!("   (written to {})\n", path.display());
        Ok(())
    }
}

/// Latency percentiles summarizing one sample set (seconds, ms — any unit;
/// outputs are in the inputs' unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Compute p50/p90/p99 from a sample set (order irrelevant; the slice
    /// is sorted in place). Empty input yields all zeros.
    ///
    /// Uses linear interpolation between closest ranks, so small sample
    /// sets (a few hundred queries) don't quantize the tail to a single
    /// observed value.
    pub fn of(samples: &mut [f64]) -> Percentiles {
        if samples.is_empty() {
            return Percentiles {
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
            };
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let at = |q: f64| -> f64 {
            let rank = q * (samples.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            samples[lo] * (1.0 - frac) + samples[hi] * frac
        };
        Percentiles {
            p50: at(0.50),
            p90: at(0.90),
            p99: at(0.99),
        }
    }
}

/// Format seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

/// Format a byte count in MiB.
pub fn fmt_mib(bytes: u64) -> String {
    format!("{:.1}MiB", bytes as f64 / (1 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_writes_csv() {
        let mut t = Table::new("test", "caption", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["333".into(), "4".into()]);
        let text = t.render();
        assert!(text.contains("caption"));
        assert!(text.contains("333"));
        let dir = coconut_storage::TempDir::new("table").unwrap();
        let path = t.write_csv(&dir.path().to_path_buf()).unwrap();
        let csv = std::fs::read_to_string(path).unwrap();
        assert_eq!(csv, "a,bb\n1,2\n333,4\n");
    }

    #[test]
    fn measure_captures_io() {
        let stats = Arc::new(IoStats::new());
        let (v, m) = measure(&stats, || {
            stats.record_read(100, true);
            Ok(42)
        })
        .unwrap();
        assert_eq!(v, 42);
        assert_eq!(m.io.bytes_read, 100);
        assert!(m.modeled_s() >= m.wall_s);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut empty: Vec<f64> = vec![];
        assert_eq!(Percentiles::of(&mut empty).p99, 0.0);

        let mut one = vec![7.0];
        let p = Percentiles::of(&mut one);
        assert_eq!((p.p50, p.p90, p.p99), (7.0, 7.0, 7.0));

        // 1..=100 shuffled: p50 interpolates to 50.5, p99 to 99.01.
        let mut v: Vec<f64> = (1..=100).rev().map(|x| x as f64).collect();
        let p = Percentiles::of(&mut v);
        assert!((p.p50 - 50.5).abs() < 1e-9, "{p:?}");
        assert!((p.p90 - 90.1).abs() < 1e-9, "{p:?}");
        assert!((p.p99 - 99.01).abs() < 1e-9, "{p:?}");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(3.4567), "3.46s");
        assert_eq!(fmt_secs(250.0), "250s");
        assert_eq!(fmt_mib(1 << 20), "1.0MiB");
    }
}
