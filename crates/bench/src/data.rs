//! Dataset and workload preparation for the experiments.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use coconut_series::dataset::{write_dataset, Dataset};
use coconut_series::gen::{make_queries, AstronomyGen, Generator, RandomWalkGen, SeismicGen};
use coconut_series::Value;
use coconut_storage::{IoStats, Result};

/// Which generator backs a dataset (paper Section 5, "Datasets").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataKind {
    /// The paper's synthetic random walk.
    RandomWalk,
    /// Seismic-like sliding windows (IRIS substitute).
    Seismic,
    /// Astronomy-like sliding windows (AGN light-curve substitute).
    Astronomy,
}

impl DataKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DataKind::RandomWalk => "randomwalk",
            DataKind::Seismic => "seismic",
            DataKind::Astronomy => "astronomy",
        }
    }

    /// A seeded generator of this kind.
    pub fn generator(&self, seed: u64) -> Box<dyn Generator> {
        match self {
            DataKind::RandomWalk => Box::new(RandomWalkGen::new(seed)),
            DataKind::Seismic => Box::new(SeismicGen::new(seed)),
            DataKind::Astronomy => Box::new(AstronomyGen::new(seed)),
        }
    }
}

/// A prepared experiment input: the on-disk dataset plus a query workload.
pub struct Workload {
    /// The opened dataset.
    pub dataset: Dataset,
    /// Path of the dataset file.
    pub path: PathBuf,
    /// z-normalized query series ("random queries", paper Section 5).
    pub queries: Vec<Vec<Value>>,
    /// Shared I/O counters for everything in this experiment.
    pub stats: Arc<IoStats>,
}

/// Generate (or reuse) a dataset of `n` series of `len` points under `dir`,
/// plus `n_queries` fresh queries from the same generator family.
pub fn prepare(
    dir: &Path,
    kind: DataKind,
    n: u64,
    len: usize,
    n_queries: usize,
    seed: u64,
) -> Result<Workload> {
    let stats = Arc::new(IoStats::new());
    let path = dir.join(format!("{}-{n}x{len}-{seed}.ds", kind.name()));
    if !path.exists() {
        let mut generator = kind.generator(seed);
        write_dataset(&path, generator.as_mut(), n, len, &stats)?;
    }
    let dataset = Dataset::open(&path, Arc::clone(&stats))?;
    // Queries use a distinct seed stream so they are not dataset members.
    let mut qgen = kind.generator(seed ^ 0x5eed_cafe);
    let queries = make_queries(qgen.as_mut(), n_queries, len);
    Ok(Workload {
        dataset,
        path,
        queries,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_storage::TempDir;

    #[test]
    fn prepare_creates_and_reuses() {
        let dir = TempDir::new("bench-data").unwrap();
        let w = prepare(dir.path(), DataKind::RandomWalk, 100, 32, 5, 1).unwrap();
        assert_eq!(w.dataset.len(), 100);
        assert_eq!(w.queries.len(), 5);
        let created = std::fs::metadata(&w.path).unwrap().modified().unwrap();
        // Second call must reuse the file.
        let w2 = prepare(dir.path(), DataKind::RandomWalk, 100, 32, 5, 1).unwrap();
        assert_eq!(
            std::fs::metadata(&w2.path).unwrap().modified().unwrap(),
            created
        );
    }

    #[test]
    fn all_kinds_generate() {
        let dir = TempDir::new("bench-data").unwrap();
        for kind in [DataKind::RandomWalk, DataKind::Seismic, DataKind::Astronomy] {
            let w = prepare(dir.path(), kind, 50, 64, 2, 7).unwrap();
            assert_eq!(w.dataset.len(), 50, "{}", kind.name());
            assert!(w.dataset.znormalized());
        }
    }
}
