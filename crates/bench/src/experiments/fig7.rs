//! Figure 7: value histograms of the three datasets.
//!
//! The paper shows that random-walk and seismic values are near-Gaussian
//! while astronomy is slightly skewed. We histogram the z-normalized values
//! of a sample from each generator into 60 bins over [-5, 5].

use coconut_series::distance::znormalize;
use coconut_storage::Result;

use crate::data::DataKind;
use crate::experiments::Env;
use crate::harness::Table;

const BINS: usize = 60;
const LO: f64 = -5.0;
const HI: f64 = 5.0;

/// Histogram the values of `count` series from `kind`.
pub fn histogram(kind: DataKind, count: usize, len: usize, seed: u64) -> Vec<f64> {
    let mut generator = kind.generator(seed);
    let mut bins = vec![0u64; BINS];
    let mut total = 0u64;
    for _ in 0..count {
        let mut s = generator.generate(len);
        znormalize(&mut s);
        for &v in &s {
            let t = ((v as f64 - LO) / (HI - LO) * BINS as f64).floor();
            let b = (t as isize).clamp(0, BINS as isize - 1) as usize;
            bins[b] += 1;
            total += 1;
        }
    }
    bins.iter().map(|&b| b as f64 / total as f64).collect()
}

/// Run the experiment.
pub fn run(env: &Env) -> Result<()> {
    let mut table = Table::new(
        "fig7",
        "value histograms for all datasets (probability per bin)",
        &["bin_center", "randomwalk", "seismic", "astronomy"],
    );
    let count = (env.scale.n / 20).max(200) as usize;
    let hists: Vec<Vec<f64>> = [DataKind::RandomWalk, DataKind::Seismic, DataKind::Astronomy]
        .iter()
        .map(|&k| histogram(k, count, env.scale.series_len, 42))
        .collect();
    for (b, ((rw, se), astro)) in hists[0]
        .iter()
        .zip(hists[1].iter())
        .zip(hists[2].iter())
        .enumerate()
    {
        let center = LO + (b as f64 + 0.5) * (HI - LO) / BINS as f64;
        table.push_row(vec![
            format!("{center:.2}"),
            format!("{rw:.5}"),
            format!("{se:.5}"),
            format!("{astro:.5}"),
        ]);
    }
    table.emit(&env.results_dir)?;

    // Shape checks the paper's figure makes visually: astronomy is the
    // most skewed dataset.
    let skewness = |h: &[f64]| -> f64 {
        let mean: f64 = h
            .iter()
            .enumerate()
            .map(|(b, p)| p * (LO + (b as f64 + 0.5) * (HI - LO) / BINS as f64))
            .sum();
        let var: f64 = h
            .iter()
            .enumerate()
            .map(|(b, p)| {
                let x = LO + (b as f64 + 0.5) * (HI - LO) / BINS as f64;
                p * (x - mean).powi(2)
            })
            .sum();
        h.iter()
            .enumerate()
            .map(|(b, p)| {
                let x = LO + (b as f64 + 0.5) * (HI - LO) / BINS as f64;
                p * ((x - mean) / var.sqrt()).powi(3)
            })
            .sum()
    };
    println!(
        "   skewness: randomwalk {:+.3}  seismic {:+.3}  astronomy {:+.3}\n",
        skewness(&hists[0]),
        skewness(&hists[1]),
        skewness(&hists[2])
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histograms_are_distributions() {
        for kind in [DataKind::RandomWalk, DataKind::Seismic, DataKind::Astronomy] {
            let h = histogram(kind, 50, 64, 1);
            let sum: f64 = h.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}", kind.name());
        }
    }

    #[test]
    fn randomwalk_histogram_is_centered() {
        let h = histogram(DataKind::RandomWalk, 200, 128, 2);
        // Mass near zero should dominate mass at the tails.
        let center: f64 = h[25..35].iter().sum();
        let tails: f64 = h[..10].iter().sum::<f64>() + h[50..].iter().sum::<f64>();
        assert!(center > 10.0 * tails);
    }
}
