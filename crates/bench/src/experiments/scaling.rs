//! Sharded-construction scaling: build time vs shard count.
//!
//! Not a figure of the paper — it measures the workspace's multi-threaded
//! extension of the paper's bottom-up recipe (`coconut_core::shard`): the
//! scan→summarize→sort phase split across K key-range shards, K-way merged
//! into the bulk loader. For every shard count the experiment verifies the
//! two properties the design promises before reporting any timing:
//!
//! * the index file is **bit-identical** to the single-sorter build, and
//! * the raw file is read in **one pass** (I/O bytes do not grow with K).

use std::sync::Arc;

use coconut_core::{BuildOptions, CoconutTree, IndexConfig};
use coconut_storage::{Error, Result};
use coconut_summary::SaxConfig;

use crate::data::{prepare, DataKind};
use crate::experiments::Env;
use crate::harness::{fmt_mib, fmt_secs, measure, Table};

/// Shard counts to sweep (1 is the single-sorter baseline).
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Run the experiment: for each variant and shard count, build a
/// Coconut-Tree over the standard random-walk dataset and report wall
/// time, modeled disk time, and bytes moved.
pub fn run(env: &Env) -> Result<()> {
    let mut table = Table::new(
        "scaling",
        "sharded bottom-up construction: build time vs shard count",
        &[
            "algorithm",
            "shards",
            "wall",
            "modeled_disk",
            "io_bytes",
            "identical",
        ],
    );
    let w = prepare(
        &env.work_dir,
        DataKind::RandomWalk,
        env.scale.n,
        env.scale.series_len,
        1,
        7,
    )?;
    let config = IndexConfig {
        sax: SaxConfig::default_for_len(env.scale.series_len),
        leaf_capacity: env.scale.leaf_capacity,
        fill_factor: 1.0,
        internal_fanout: 64,
        split_policy: coconut_core::SplitPolicyKind::Fixed,
    };
    // A budget a little under the raw size so shards actually spill and
    // merge (the regime the paper's Figure 8 studies).
    let memory_bytes = (w.dataset.payload_bytes() / 2).max(1 << 20);
    for materialized in [false, true] {
        let name = if materialized { "CTreeFull" } else { "CTree" };
        let mut baseline_bytes: Option<Vec<u8>> = None;
        for shards in SHARD_COUNTS {
            let build_dir = coconut_storage::TempDir::new("scaling-build")?;
            let opts = BuildOptions {
                memory_bytes,
                materialized,
                threads: env.scale.threads,
                shards,
            };
            let (tree, m) = measure(&w.stats, || {
                CoconutTree::build(&w.dataset, &config, build_dir.path(), opts)
            })?;
            let index_bytes = std::fs::read(tree.index_path())?;
            let identical = match &baseline_bytes {
                None => {
                    baseline_bytes = Some(index_bytes);
                    true
                }
                Some(base) => *base == index_bytes,
            };
            if !identical {
                return Err(Error::corrupt(format!(
                    "{name} with {shards} shards is not bit-identical to 1 shard"
                )));
            }
            table.push_row(vec![
                name.to_string(),
                shards.to_string(),
                fmt_secs(m.wall_s),
                fmt_secs(m.modeled_s()),
                fmt_mib(m.io.total_bytes()),
                "yes".to_string(),
            ]);
        }
    }
    // One-pass check: raw-file read volume of a sharded build equals the
    // payload (plus sort spills), never K payloads.
    let stats = Arc::clone(&w.stats);
    let before = stats.snapshot();
    let build_dir = coconut_storage::TempDir::new("scaling-onepass")?;
    let opts = BuildOptions {
        memory_bytes: 256 << 20, // ample: no spills, reads == one pass
        materialized: false,
        threads: env.scale.threads,
        shards: 4,
    };
    CoconutTree::build(&w.dataset, &config, build_dir.path(), opts)?;
    let delta = stats.snapshot().since(&before);
    if delta.bytes_read != w.dataset.payload_bytes() {
        return Err(Error::corrupt(format!(
            "4-shard build read {} bytes, expected one pass of {}",
            delta.bytes_read,
            w.dataset.payload_bytes()
        )));
    }
    println!(
        "   one-pass check: 4-shard build read {} = raw payload, bit-identical across K\n",
        fmt_mib(delta.bytes_read)
    );
    table.emit(&env.results_dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_storage::TempDir;

    #[test]
    fn scaling_runs_and_verifies_identity() {
        let (w, r) = (
            TempDir::new("scaling-w").unwrap(),
            TempDir::new("scaling-r").unwrap(),
        );
        let env = Env {
            work_dir: w.path().to_path_buf(),
            results_dir: r.path().to_path_buf(),
            scale: crate::experiments::Scale {
                n: 400,
                series_len: 64,
                queries: 1,
                leaf_capacity: 32,
                threads: 2,
            },
        };
        run(&env).unwrap();
        let csv = std::fs::read_to_string(r.path().join("scaling.csv")).unwrap();
        assert!(csv.starts_with("algorithm,shards,wall"));
        // Two variants x three shard counts.
        assert_eq!(csv.lines().count(), 1 + 6, "{csv}");
    }
}
