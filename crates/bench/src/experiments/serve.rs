//! End-to-end load test of the query server: an **open-loop** generator
//! drives concurrent clients over real sockets against a server whose
//! index is churning (ingest + compaction) underneath, recording latency
//! percentiles and throughput to `results/BENCH_serve.json`.
//!
//! Open-loop means each client sends on a fixed arrival schedule and
//! measures latency **from the scheduled arrival**, not from the moment
//! the previous reply came back — so server-side queueing shows up in the
//! tail instead of silently throttling the offered load (the classic
//! coordinated-omission mistake).
//!
//! **Every reply is checked against a brute-force oracle.** Replies carry
//! `covered=<n>`, the covered prefix of the *snapshot the server pinned*,
//! so the oracle scans exactly that prefix even though ingest keeps
//! advancing while requests are in flight. Any divergence, dropped reply,
//! or server-side timeout fails the experiment — CI runs this per PR.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use coconut_core::{BuildOptions, IndexConfig, LsmCoconut, TieredPolicy};
use coconut_series::distance::{euclidean, znormalize};
use coconut_series::gen::{Generator, RandomWalkGen};
use coconut_series::Value;
use coconut_server::{Engine, Server, ServerConfig};
use coconut_storage::{Error, Result};
use coconut_summary::SaxConfig;

use crate::data::{prepare, DataKind};
use crate::experiments::Env;
use crate::harness::{Percentiles, Table};

/// Concurrent clients (the acceptance bar is at least 8).
const CLIENTS: usize = 8;

/// Requests per client.
const REQUESTS_PER_CLIENT: usize = 30;

/// Open-loop arrival interval per client (aggregate offered load is
/// `CLIENTS / ARRIVAL_INTERVAL` requests per second).
const ARRIVAL_INTERVAL: Duration = Duration::from_millis(5);

/// Per-request deadline — generous, so timeouts mean real trouble.
const DEADLINE_MS: u64 = 10_000;

/// Ingest churn steps while the clients run.
const CHURN_STEPS: u64 = 8;

/// What one client measured.
struct ClientReport {
    latencies_ms: Vec<f64>,
    sent: usize,
    replied: usize,
    divergences: usize,
}

fn brute_force_pos(prefix: &[Vec<Value>], q: &[Value]) -> Option<u64> {
    let mut best: Option<(u64, f64)> = None;
    for (i, s) in prefix.iter().enumerate() {
        let d = euclidean(q, s);
        if best.is_none_or(|(_, bd)| d < bd) {
            best = Some((i as u64, d));
        }
    }
    best.map(|(p, _)| p)
}

/// Pull `key=<u64>` out of a reply line.
fn field_u64(reply: &str, key: &str) -> Option<u64> {
    reply
        .split_whitespace()
        .find_map(|t| t.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
}

/// First `pos` of a `hits=pos:dist,...` list.
fn first_hit_pos(reply: &str) -> Option<u64> {
    reply
        .split_whitespace()
        .find_map(|t| t.strip_prefix("hits="))
        .and_then(|hits| hits.split(',').next())
        .and_then(|h| h.split(':').next())
        .and_then(|p| p.parse().ok())
}

fn client_loop(
    addr: std::net::SocketAddr,
    client_id: usize,
    series_len: usize,
    all_series: Arc<Vec<Vec<Value>>>,
    start_at: Instant,
) -> Result<ClientReport> {
    // The server may still be settling into its accept loop (or the
    // admission queue may briefly refuse) when many clients start at once:
    // retry refused connections with capped backoff instead of failing the
    // whole experiment on the first ECONNREFUSED.
    let stream = coconut_server::connect_with_retry(
        &addr.to_string(),
        10,
        Duration::from_millis(20),
        Duration::from_millis(400),
    )
    .map_err(|e| Error::invalid(format!("client {client_id}: connect: {e}")))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| Error::invalid(format!("client {client_id}: clone: {e}")))?,
    );
    let mut out = stream;
    let mut report = ClientReport {
        latencies_ms: Vec::with_capacity(REQUESTS_PER_CLIENT),
        sent: 0,
        replied: 0,
        divergences: 0,
    };
    for i in 0..REQUESTS_PER_CLIENT {
        // Open loop: wait for the scheduled arrival, then measure from it.
        let scheduled = start_at + ARRIVAL_INTERVAL * (i as u32 + 1);
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let seed = (client_id as u64) * 100_000 + i as u64 + 1;
        let knn = i % 5 == 4;
        let request = if knn {
            format!("KNN k=3 q=seed:{seed} deadline_ms={DEADLINE_MS}\n")
        } else {
            format!("EXACT q=seed:{seed} deadline_ms={DEADLINE_MS}\n")
        };
        out.write_all(request.as_bytes())
            .map_err(|e| Error::invalid(format!("client {client_id}: send: {e}")))?;
        report.sent += 1;

        let mut reply = String::new();
        reader
            .read_line(&mut reply)
            .map_err(|e| Error::invalid(format!("client {client_id}: recv: {e}")))?;
        let latency_ms = (Instant::now() - scheduled).as_secs_f64() * 1e3;
        if reply.is_empty() {
            break; // server closed on us: counts as a dropped request
        }
        report.replied += 1;
        report.latencies_ms.push(latency_ms);
        let reply = reply.trim();
        if !reply.starts_with("OK") {
            return Err(Error::corrupt(format!(
                "client {client_id} request {i}: server answered {reply:?}"
            )));
        }

        // Oracle: regenerate the query, scan exactly the snapshot's prefix.
        let covered = field_u64(reply, "covered")
            .ok_or_else(|| Error::corrupt(format!("no covered= in {reply:?}")))?
            as usize;
        let mut q = RandomWalkGen::new(seed).generate(series_len);
        znormalize(&mut q);
        let oracle = brute_force_pos(&all_series[..covered.min(all_series.len())], &q);
        let answered = if knn {
            first_hit_pos(reply)
        } else {
            field_u64(reply, "pos")
        };
        if answered != oracle {
            report.divergences += 1;
            eprintln!(
                "client {client_id} request {i}: server {answered:?} vs oracle {oracle:?} \
                 over covered={covered} ({reply})"
            );
        }
    }
    let _ = out.write_all(b"QUIT\n");
    Ok(report)
}

/// Fetch `/metrics` over HTTP (exercising the curl-compatible path) and
/// return the body.
fn scrape_metrics(addr: std::net::SocketAddr) -> Result<String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| Error::invalid(format!("scrape: connect: {e}")))?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: bench\r\n\r\n")
        .map_err(|e| Error::invalid(format!("scrape: send: {e}")))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| Error::invalid(format!("scrape: recv: {e}")))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| Error::corrupt("scrape: no HTTP header/body split"))?;
    if !head.starts_with("HTTP/1.0 200") {
        return Err(Error::corrupt(format!("scrape: bad status in {head:?}")));
    }
    Ok(body.to_string())
}

/// Run the experiment and write `BENCH_serve.json`.
pub fn run(env: &Env) -> Result<()> {
    let w = prepare(
        &env.work_dir,
        DataKind::RandomWalk,
        env.scale.n,
        env.scale.series_len,
        1,
        13,
    )?;
    let n = w.dataset.len();
    // The oracle's copy of every series (replies tell it how much to scan).
    let mut all_series: Vec<Vec<Value>> = Vec::with_capacity(n as usize);
    for p in 0..n {
        all_series.push(w.dataset.get(p)?);
    }
    let all_series = Arc::new(all_series);

    let idx_dir = env.work_dir.join("serve-lsm");
    if idx_dir.exists() {
        std::fs::remove_dir_all(&idx_dir)?;
    }
    let config = IndexConfig {
        sax: SaxConfig::default_for_len(env.scale.series_len),
        leaf_capacity: env.scale.leaf_capacity,
        fill_factor: 1.0,
        internal_fanout: 64,
        split_policy: coconut_core::SplitPolicyKind::Fixed,
    };
    let opts = BuildOptions {
        memory_bytes: (w.dataset.payload_bytes() / 2).max(1 << 20),
        materialized: false,
        threads: env.scale.threads,
        shards: 1,
    };
    let lsm = Arc::new(LsmCoconut::new(config, opts, &idx_dir)?);
    lsm.set_policy(Box::new(TieredPolicy {
        size_ratio: 4,
        tier_runs: 3,
        max_runs: 6,
    }));
    // Cover the first half before opening the doors; the rest arrives as
    // churn while the clients are querying.
    lsm.ingest_upto(&w.dataset, n / 2)?;

    let engine = Arc::new(Engine::new(
        Arc::clone(&lsm),
        w.dataset.clone(),
        Some(Duration::from_millis(DEADLINE_MS)),
    ));
    let server_config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        // Connections are persistent, so one worker per client plus slack
        // for the metrics scrape.
        workers: CLIENTS + 2,
        queue: CLIENTS,
        default_deadline_ms: Some(DEADLINE_MS),
        idle_timeout_ms: None,
    };
    let mut server = Server::start(Arc::clone(&engine), &server_config)?;
    let addr = server.addr();

    // Churn: keep ingesting (and finally compacting) while clients query.
    let churn_stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let lsm = Arc::clone(&lsm);
        let dataset = w.dataset.clone();
        let stop = Arc::clone(&churn_stop);
        std::thread::spawn(move || -> Result<()> {
            let step = (n - n / 2).div_ceil(CHURN_STEPS).max(1);
            let mut upto = n / 2;
            while upto < n && !stop.load(Ordering::Relaxed) {
                upto = (upto + step).min(n);
                lsm.ingest_upto(&dataset, upto)?;
                std::thread::sleep(Duration::from_millis(10));
            }
            lsm.compact()?;
            Ok(())
        })
    };

    let wall_start = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let all_series = Arc::clone(&all_series);
            let series_len = env.scale.series_len;
            let start_at = wall_start;
            std::thread::spawn(move || client_loop(addr, c, series_len, all_series, start_at))
        })
        .collect();

    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut sent = 0usize;
    let mut replied = 0usize;
    let mut divergences = 0usize;
    for c in clients {
        let report = c
            .join()
            .map_err(|_| Error::corrupt("a client thread panicked"))??;
        latencies_ms.extend_from_slice(&report.latencies_ms);
        sent += report.sent;
        replied += report.replied;
        divergences += report.divergences;
    }
    let wall_s = wall_start.elapsed().as_secs_f64();
    churn_stop.store(true, Ordering::Relaxed);
    churn
        .join()
        .map_err(|_| Error::corrupt("the churn thread panicked"))??;

    // The curl-facing metrics endpoint must expose the core signals.
    let metrics = scrape_metrics(addr)?;
    for required in [
        "coconut_qps",
        "coconut_query_latency_p50_seconds",
        "coconut_query_latency_p99_seconds",
        "coconut_records_fetched_total",
        "coconut_compaction_debt_bytes",
    ] {
        if !metrics.contains(required) {
            return Err(Error::corrupt(format!(
                "metrics endpoint is missing {required}"
            )));
        }
    }
    let timeouts = metrics
        .lines()
        .find_map(|l| l.strip_prefix("coconut_query_timeouts_total "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .unwrap_or(0.0) as u64;
    server.shutdown();

    // The acceptance bar: nothing diverged, nothing dropped, nothing
    // timed out under a 10 s deadline.
    if divergences > 0 {
        return Err(Error::corrupt(format!(
            "{divergences} answers diverged from the brute-force oracle"
        )));
    }
    if replied != sent {
        return Err(Error::corrupt(format!(
            "{} requests were dropped without a reply",
            sent - replied
        )));
    }
    if timeouts > 0 {
        return Err(Error::corrupt(format!(
            "{timeouts} queries hit the {DEADLINE_MS} ms deadline"
        )));
    }

    let p = Percentiles::of(&mut latencies_ms);
    let qps = replied as f64 / wall_s.max(1e-9);
    let mut table = Table::new(
        "serve",
        "open-loop socket load against the query server under ingest churn",
        &[
            "clients", "requests", "qps", "p50_ms", "p90_ms", "p99_ms", "diverged",
        ],
    );
    table.push_row(vec![
        CLIENTS.to_string(),
        replied.to_string(),
        format!("{qps:.0}"),
        format!("{:.2}", p.p50),
        format!("{:.2}", p.p90),
        format!("{:.2}", p.p99),
        divergences.to_string(),
    ]);
    table.emit(&env.results_dir)?;
    println!(
        "   oracle check: {replied} replies over pinned snapshots identical to \
         brute force; 0 dropped, 0 timeouts\n"
    );

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"serve\",");
    let _ = writeln!(json, "  \"series\": {n},");
    let _ = writeln!(json, "  \"series_len\": {},", env.scale.series_len);
    let _ = writeln!(json, "  \"clients\": {CLIENTS},");
    let _ = writeln!(json, "  \"requests\": {replied},");
    let _ = writeln!(
        json,
        "  \"arrival_interval_ms\": {},",
        ARRIVAL_INTERVAL.as_millis()
    );
    let _ = writeln!(json, "  \"wall_s\": {wall_s:.3},");
    let _ = writeln!(json, "  \"qps\": {qps:.1},");
    let _ = writeln!(json, "  \"p50_ms\": {:.3},", p.p50);
    let _ = writeln!(json, "  \"p90_ms\": {:.3},", p.p90);
    let _ = writeln!(json, "  \"p99_ms\": {:.3},", p.p99);
    let _ = writeln!(json, "  \"divergences\": {divergences},");
    let _ = writeln!(json, "  \"dropped\": {},", sent - replied);
    let _ = writeln!(json, "  \"timeouts\": {timeouts}");
    json.push_str("}\n");
    std::fs::create_dir_all(&env.results_dir)?;
    let path = env.results_dir.join("BENCH_serve.json");
    std::fs::write(&path, json)?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_storage::TempDir;

    #[test]
    fn serve_load_runs_verifies_and_writes_outputs() {
        let (w, r) = (
            TempDir::new("serve-w").unwrap(),
            TempDir::new("serve-r").unwrap(),
        );
        let env = Env {
            work_dir: w.path().to_path_buf(),
            results_dir: r.path().to_path_buf(),
            scale: crate::experiments::Scale {
                n: 600,
                series_len: 64,
                queries: 3,
                leaf_capacity: 32,
                threads: 2,
            },
        };
        run(&env).unwrap();
        let json = std::fs::read_to_string(r.path().join("BENCH_serve.json")).unwrap();
        assert!(json.contains("\"experiment\": \"serve\""));
        assert!(json.contains("\"divergences\": 0"));
        assert!(json.contains("\"dropped\": 0"));
        let csv = std::fs::read_to_string(r.path().join("serve.csv")).unwrap();
        assert!(csv.starts_with("clients,requests,qps"));
    }
}
