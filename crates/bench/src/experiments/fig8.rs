//! Figure 8: index construction experiments.

use coconut_storage::Result;

use crate::data::{prepare, DataKind};
use crate::experiments::Env;
use crate::harness::{fmt_mib, fmt_secs, measure, Table};
use crate::zoo::{build_index, Algo, BuildParams};

/// Memory budgets as fractions of the raw data size (the paper's x-axis:
/// from ample memory down to ~1%).
const MEMORY_FRACTIONS: [f64; 4] = [2.0, 0.5, 0.1, 0.01];

fn build_row(
    env: &Env,
    algo: Algo,
    n: u64,
    series_len: usize,
    memory_bytes: u64,
) -> Result<(f64, f64, u64, u64)> {
    let w = prepare(&env.work_dir, DataKind::RandomWalk, n, series_len, 1, 7)?;
    let params = BuildParams {
        leaf_capacity: env.scale.leaf_capacity,
        memory_bytes,
        threads: env.scale.threads,
        shards: 1,
    };
    let build_dir = coconut_storage::TempDir::new("fig8-build")?;
    let (_idx, m) = measure(&w.stats, || {
        build_index(algo, &w, &params, build_dir.path())
    })?;
    Ok((
        m.wall_s,
        m.modeled_s(),
        m.io.random_ops(),
        m.io.total_bytes(),
    ))
}

fn run_memory_sweep(env: &Env, name: &str, caption: &str, algos: &[Algo]) -> Result<()> {
    let mut table = Table::new(
        name,
        caption,
        &[
            "algorithm",
            "memory",
            "wall",
            "modeled_disk",
            "random_ops",
            "io_bytes",
        ],
    );
    let raw_bytes = env.scale.n * env.scale.series_len as u64 * 4;
    for &algo in algos {
        for &frac in &MEMORY_FRACTIONS {
            let memory = ((raw_bytes as f64 * frac) as u64).max(4096);
            let (wall, modeled, rand_ops, bytes) =
                build_row(env, algo, env.scale.n, env.scale.series_len, memory)?;
            table.push_row(vec![
                algo.name().to_string(),
                format!("{:.0}%", frac * 100.0),
                fmt_secs(wall),
                fmt_secs(modeled),
                rand_ops.to_string(),
                fmt_mib(bytes),
            ]);
        }
    }
    table.emit(&env.results_dir)
}

/// Figure 8a: construction time of the materialized indexes vs memory.
pub fn run_8a(env: &Env) -> Result<()> {
    run_memory_sweep(
        env,
        "fig8a",
        "index construction, materialized algorithms, shrinking memory",
        Algo::materialized_set(),
    )
}

/// Figure 8b: construction time of the non-materialized indexes vs memory.
pub fn run_8b(env: &Env) -> Result<()> {
    run_memory_sweep(
        env,
        "fig8b",
        "index construction, non-materialized algorithms, shrinking memory",
        Algo::non_materialized_set(),
    )
}

/// Figure 8c: space overhead and leaf occupancy of every index.
pub fn run_8c(env: &Env) -> Result<()> {
    let mut table = Table::new(
        "fig8c",
        "indexing space overhead (and the in-text leaf occupancy numbers)",
        &[
            "algorithm",
            "index_bytes",
            "raw_ratio",
            "leaves",
            "avg_fill",
        ],
    );
    let w = prepare(
        &env.work_dir,
        DataKind::RandomWalk,
        env.scale.n,
        env.scale.series_len,
        1,
        7,
    )?;
    let raw = w.dataset.payload_bytes();
    let params = BuildParams {
        leaf_capacity: env.scale.leaf_capacity,
        memory_bytes: 64 << 20,
        threads: env.scale.threads,
        shards: 1,
    };
    let algos = [
        Algo::CTreeFull,
        Algo::CTrieFull,
        Algo::AdsFull,
        Algo::RTree,
        Algo::Vertical,
        Algo::DsTreeAlgo,
        Algo::CTree,
        Algo::CTrie,
        Algo::AdsPlus,
        Algo::RTreePlus,
        Algo::Isax2,
    ];
    let build_dir = coconut_storage::TempDir::new("fig8c-build")?;
    for algo in algos {
        let idx = build_index(algo, &w, &params, build_dir.path())?;
        table.push_row(vec![
            algo.name().to_string(),
            fmt_mib(idx.disk_bytes()),
            format!("{:.2}x", idx.disk_bytes() as f64 / raw as f64),
            idx.leaf_count().to_string(),
            format!("{:.0}%", idx.avg_leaf_fill() * 100.0),
        ]);
    }
    table.emit(&env.results_dir)
}

fn run_growth_sweep(env: &Env, name: &str, caption: &str, algos: &[Algo]) -> Result<()> {
    let mut table = Table::new(
        name,
        caption,
        &["algorithm", "series", "wall", "modeled_disk", "random_ops"],
    );
    // Memory fixed at 20% of the *smallest* dataset: as data grows the
    // memory:data ratio shrinks, the paper's Figures 8d/8e setting.
    let sizes = [
        env.scale.n / 4,
        env.scale.n / 2,
        env.scale.n,
        env.scale.n * 2,
    ];
    let memory = (sizes[0] * env.scale.series_len as u64 * 4) / 5;
    for &algo in algos {
        for &n in &sizes {
            let (wall, modeled, rand_ops, _) =
                build_row(env, algo, n, env.scale.series_len, memory)?;
            table.push_row(vec![
                algo.name().to_string(),
                n.to_string(),
                fmt_secs(wall),
                fmt_secs(modeled),
                rand_ops.to_string(),
            ]);
        }
    }
    table.emit(&env.results_dir)
}

/// Figure 8d: materialized construction with fixed memory, growing data.
pub fn run_8d(env: &Env) -> Result<()> {
    run_growth_sweep(
        env,
        "fig8d",
        "construction, materialized, fixed memory, growing dataset",
        &[Algo::CTreeFull, Algo::AdsFull],
    )
}

/// Figure 8e: non-materialized construction with fixed memory, growing data.
pub fn run_8e(env: &Env) -> Result<()> {
    run_growth_sweep(
        env,
        "fig8e",
        "construction, non-materialized, fixed memory, growing dataset",
        &[Algo::CTree, Algo::AdsPlus],
    )
}

/// Figure 8f: construction vs series length at a fixed total data volume.
pub fn run_8f(env: &Env) -> Result<()> {
    let mut table = Table::new(
        "fig8f",
        "indexing variable-length series, fixed total volume, limited memory",
        &["algorithm", "series_len", "series", "wall", "modeled_disk"],
    );
    let total_points = env.scale.n * env.scale.series_len as u64;
    let lengths = [64usize, 128, 256, 512];
    let memory = (total_points * 4) / 100; // 1% of the raw volume
    for algo in [Algo::CTree, Algo::CTreeFull, Algo::AdsPlus, Algo::AdsFull] {
        for &len in &lengths {
            let n = (total_points / len as u64).max(1);
            let (wall, modeled, _, _) = build_row(env, algo, n, len, memory)?;
            table.push_row(vec![
                algo.name().to_string(),
                len.to_string(),
                n.to_string(),
                fmt_secs(wall),
                fmt_secs(modeled),
            ]);
        }
    }
    table.emit(&env.results_dir)
}
