//! `repro distributed` — the distributed shard fabric, end to end over
//! real processes: K shard workers are spawned as child processes (the
//! `repro` binary re-execs itself as `__shard-worker`), a coordinator
//! scatter-gathers over them through TCP, and **every** `EXACT`/`KNN`/
//! `RANGE` answer is checked bit-for-bit against two oracles:
//!
//! 1. the in-process `ShardSet<LocalShard>` with the *same* K-way
//!    partition map (same merge code, no wire) — any divergence here is a
//!    wire-protocol bug;
//! 2. a single whole-dataset index — any divergence here is a
//!    partitioning/merge bug.
//!
//! The acceptance bar is zero divergences and zero hangs for
//! K ∈ {1, 2, 4}; per-K throughput and latency percentiles land in
//! `results/BENCH_distributed.json`.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use coconut_core::backend::partition;
use coconut_core::{BuildOptions, IndexConfig, LocalShard, LsmCoconut, ShardSet, Snapshot};
use coconut_series::dataset::Dataset;
use coconut_series::index::Answer;
use coconut_series::Value;
use coconut_server::{ClientConfig, CoordinatorEngine, Server, ServerConfig};
use coconut_storage::{Deadline, Error, IoStats, Result};
use coconut_summary::SaxConfig;

use crate::data::{prepare, DataKind};
use crate::experiments::Env;
use crate::harness::{Percentiles, Table};

/// Shard counts exercised per run.
const SHARD_COUNTS: &[usize] = &[1, 2, 4];

/// k for the kNN queries.
const KNN_K: usize = 5;

/// Per-request deadline — generous; hitting it means a real hang.
const DEADLINE_MS: u64 = 30_000;

/// The index/build configuration every node (worker, oracle, single)
/// uses, so indexes differ only in their base offset.
pub(crate) fn index_config(series_len: usize, leaf: usize) -> IndexConfig {
    IndexConfig {
        sax: SaxConfig::default_for_len(series_len),
        leaf_capacity: leaf,
        fill_factor: 1.0,
        internal_fanout: 64,
        split_policy: coconut_core::SplitPolicyKind::Fixed,
    }
}

fn build_opts(threads: usize) -> BuildOptions {
    BuildOptions {
        memory_bytes: 64 << 20,
        materialized: false,
        threads,
        shards: 1,
    }
}

/// Entry point for the `__shard-worker` re-exec: serve one shard until the
/// parent kills the process. Prints `SHARD LISTENING <addr>` once bound so
/// the parent can scrape the port.
pub fn worker_main(args: &[String]) -> Result<()> {
    // The chaos experiment hands workers a fault schedule through
    // `COCONUT_FAULTS`; without one this is a no-op.
    coconut_storage::fault::install_from_env()?;
    let mut data = None;
    let mut index_dir = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut leaf = 100usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| Error::invalid(format!("__shard-worker: missing value for {a}")))
        };
        match a.as_str() {
            "--data" => data = Some(val()?),
            "--index-dir" => index_dir = Some(val()?),
            "--addr" => addr = val()?,
            "--leaf" => {
                leaf = val()?
                    .parse()
                    .map_err(|_| Error::invalid("__shard-worker: bad --leaf"))?
            }
            other => {
                return Err(Error::invalid(format!(
                    "__shard-worker: unknown argument {other}"
                )))
            }
        }
    }
    let data = data.ok_or_else(|| Error::invalid("__shard-worker: --data is required"))?;
    let index_dir =
        index_dir.ok_or_else(|| Error::invalid("__shard-worker: --index-dir is required"))?;
    let ds = Dataset::open(Path::new(&data), Arc::new(IoStats::new()))?;
    let opts = build_opts(2);
    let recovered = if coconut_core::manifest::Manifest::path_in(Path::new(&index_dir)).exists() {
        Some(Arc::new(LsmCoconut::open(
            Path::new(&index_dir),
            &ds,
            opts.clone(),
        )?))
    } else {
        None
    };
    let config = index_config(ds.series_len(), leaf);
    let engine = Arc::new(coconut_server::Engine::new_shard(
        ds,
        &index_dir,
        config,
        opts,
        recovered,
        Some(Duration::from_millis(DEADLINE_MS)),
    ));
    let server = Server::start(
        engine,
        &ServerConfig {
            addr,
            workers: 4,
            queue: 16,
            default_deadline_ms: Some(DEADLINE_MS),
            idle_timeout_ms: None,
        },
    )?;
    println!("SHARD LISTENING {}", server.addr());
    std::io::stdout()
        .flush()
        .map_err(|e| Error::invalid(format!("__shard-worker: flush: {e}")))?;
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// A spawned shard-worker process, killed on drop so a failing run never
/// leaks children.
pub(crate) struct WorkerProc {
    child: Child,
    pub(crate) addr: String,
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn `repro __shard-worker` for one slice and scrape its bound port.
/// `envs` lets the chaos experiment hand the worker a fault schedule;
/// inherited fault variables are always scrubbed first so an operator's
/// environment cannot leak into a clean run.
pub(crate) fn spawn_worker(
    data: &Path,
    index_dir: &Path,
    leaf: usize,
    envs: &[(&str, String)],
) -> Result<WorkerProc> {
    let exe = std::env::current_exe()
        .map_err(|e| Error::invalid(format!("cannot locate the repro binary: {e}")))?;
    let mut cmd = Command::new(exe);
    cmd.arg("__shard-worker")
        .arg("--data")
        .arg(data)
        .arg("--index-dir")
        .arg(index_dir)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--leaf")
        .arg(leaf.to_string())
        .env_remove("COCONUT_FAULTS")
        .env_remove("COCONUT_FAULT_SEED")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| Error::invalid(format!("cannot spawn a shard worker: {e}")))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut lines = BufReader::new(stdout).lines();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(addr) = line.strip_prefix("SHARD LISTENING ") {
                    return Ok(WorkerProc {
                        child,
                        addr: addr.trim().to_string(),
                    });
                }
            }
            Some(Err(e)) => {
                let _ = child.kill();
                return Err(Error::invalid(format!("shard worker stdout: {e}")));
            }
            None => {
                let _ = child.kill();
                return Err(Error::invalid(
                    "shard worker exited before announcing its port",
                ));
            }
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            return Err(Error::invalid("shard worker took too long to bind"));
        }
    }
}

/// Serialize a query the way the wire expects (`f32` shortest roundtrip).
pub(crate) fn fmt_query(q: &[Value]) -> String {
    let mut out = String::from("q=v:");
    for (i, v) in q.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out
}

pub(crate) fn field<'a>(reply: &'a str, key: &str) -> Result<&'a str> {
    reply
        .split_whitespace()
        .find_map(|t| t.strip_prefix(key))
        .ok_or_else(|| Error::corrupt(format!("reply is missing {key} in {reply:?}")))
}

pub(crate) fn parse_answer(reply: &str) -> Result<Answer> {
    let pos = field(reply, "pos=")?;
    if pos == "none" {
        return Ok(Answer::none());
    }
    Ok(Answer {
        pos: pos
            .parse()
            .map_err(|_| Error::corrupt(format!("bad pos in {reply:?}")))?,
        dist: field(reply, "dist=")?
            .parse()
            .map_err(|_| Error::corrupt(format!("bad dist in {reply:?}")))?,
    })
}

pub(crate) fn parse_hits(reply: &str) -> Result<Vec<Answer>> {
    let hits = field(reply, "hits=")?;
    if hits == "none" {
        return Ok(Vec::new());
    }
    hits.split(',')
        .map(|pair| {
            let (pos, dist) = pair
                .split_once(':')
                .ok_or_else(|| Error::corrupt(format!("bad hit {pair:?}")))?;
            Ok(Answer {
                pos: pos
                    .parse()
                    .map_err(|_| Error::corrupt(format!("bad hit pos {pos:?}")))?,
                dist: dist
                    .parse()
                    .map_err(|_| Error::corrupt(format!("bad hit dist {dist:?}")))?,
            })
        })
        .collect()
}

/// Two answers are identical iff position and distance *bits* match.
pub(crate) fn same_answer(a: &Answer, b: &Answer) -> bool {
    (a.pos == b.pos && a.dist.to_bits() == b.dist.to_bits()) || (!a.is_some() && !b.is_some())
}

pub(crate) fn same_hits(a: &[Answer], b: &[Answer]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| same_answer(x, y))
}

/// One round-trip over the coordinator connection.
fn round_trip(
    out: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<String> {
    out.write_all(format!("{line}\n").as_bytes())
        .map_err(|e| Error::invalid(format!("coordinator send: {e}")))?;
    let mut reply = String::new();
    reader
        .read_line(&mut reply)
        .map_err(|e| Error::invalid(format!("coordinator recv: {e}")))?;
    if reply.is_empty() {
        return Err(Error::invalid("coordinator closed the connection"));
    }
    let reply = reply.trim().to_string();
    reply
        .strip_prefix("OK ")
        .map(String::from)
        .ok_or_else(|| Error::corrupt(format!("coordinator answered {reply:?}")))
}

/// What one K-configuration measured.
struct KReport {
    k: usize,
    requests: usize,
    divergences: usize,
    wall_s: f64,
    latencies_ms: Vec<f64>,
}

/// Build the in-process oracle: the same K-way partition over
/// `LocalShard`s (fresh directories under `tag`).
fn local_oracle(
    env: &Env,
    ds: &Dataset,
    k: usize,
    leaf: usize,
    tag: &str,
) -> Result<ShardSet<LocalShard>> {
    let n = ds.len();
    let mut shards = Vec::with_capacity(k);
    for (i, range) in partition(n, k).into_iter().enumerate() {
        let dir = env.work_dir.join(format!("dist-{tag}-k{k}-s{i}"));
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        let lsm = LsmCoconut::new_based(
            index_config(ds.series_len(), leaf),
            build_opts(2),
            &dir,
            range.start,
        )?;
        shards.push(LocalShard::new(Arc::new(lsm), ds.clone(), range)?);
    }
    let set = ShardSet::new(shards)?;
    set.build(n)?;
    Ok(set)
}

/// Run one K-configuration: spawn workers, coordinate, query, verify.
fn run_k(
    env: &Env,
    data_path: &Path,
    ds: &Dataset,
    queries: &[Vec<Value>],
    single: &Snapshot,
    k: usize,
) -> Result<KReport> {
    let n = ds.len();
    let leaf = env.scale.leaf_capacity;

    // The wire-free oracle with the same partition map.
    let oracle = local_oracle(env, ds, k, leaf, "oracle")?;

    // K worker processes, each with a fresh slice directory.
    let mut workers = Vec::with_capacity(k);
    for i in 0..k {
        let dir = env.work_dir.join(format!("dist-worker-k{k}-s{i}"));
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        workers.push(spawn_worker(data_path, &dir, leaf, &[])?);
    }
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();

    // The coordinator, served over real TCP like any node.
    let engine = Arc::new(CoordinatorEngine::new(
        &addrs,
        ds.clone(),
        ClientConfig::default(),
        Some(Duration::from_millis(DEADLINE_MS)),
    )?);
    let mut server = Server::start(engine, &ServerConfig::default())?;
    let addr = server.addr();

    let out = TcpStream::connect(addr)
        .map_err(|e| Error::invalid(format!("coordinator connect: {e}")))?;
    let mut reader = BufReader::new(
        out.try_clone()
            .map_err(|e| Error::invalid(format!("coordinator clone: {e}")))?,
    );
    let mut out = out;

    // Dispatch the build: every shard indexes its slice.
    let build = round_trip(&mut out, &mut reader, &format!("BUILD start=0 end={n}"))?;
    let covered = field(&build, "covered=")?
        .parse::<u64>()
        .map_err(|_| Error::corrupt(format!("bad covered in {build:?}")))?;
    if covered != n {
        return Err(Error::corrupt(format!(
            "coordinated build covered {covered} of {n} series"
        )));
    }

    let mut report = KReport {
        k,
        requests: 0,
        divergences: 0,
        wall_s: 0.0,
        latencies_ms: Vec::new(),
    };
    let wall = Instant::now();
    for q in queries {
        let qs = fmt_query(q);

        // EXACT: remote vs same-K oracle vs single index, bit for bit.
        let t0 = Instant::now();
        let reply = round_trip(
            &mut out,
            &mut reader,
            &format!("EXACT {qs} deadline_ms={DEADLINE_MS}"),
        )?;
        report.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        report.requests += 1;
        let remote = parse_answer(&reply)?;
        let local = oracle.exact(q, Deadline::NONE)?;
        let (single_ans, _) = single.exact(q, Deadline::NONE)?;
        if !same_answer(&remote, &local) || !same_answer(&remote, &single_ans) {
            report.divergences += 1;
            eprintln!(
                "EXACT diverged (k={k}): remote {remote:?} local {local:?} single {single_ans:?}"
            );
        }

        // KNN.
        let t0 = Instant::now();
        let reply = round_trip(
            &mut out,
            &mut reader,
            &format!("KNN k={KNN_K} {qs} deadline_ms={DEADLINE_MS}"),
        )?;
        report.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        report.requests += 1;
        let remote = parse_hits(&reply)?;
        let local = oracle.knn(q, KNN_K, Deadline::NONE)?;
        let (single_hits, _) = single.exact_knn(q, KNN_K, Deadline::NONE)?;
        if !same_hits(&remote, &local) || !same_hits(&remote, &single_hits) {
            report.divergences += 1;
            eprintln!("KNN diverged (k={k}): remote {remote:?} local {local:?}");
        }

        // RANGE, with a radius derived from the true 1-NN so hit lists are
        // non-trivial but bounded.
        let eps = if single_ans.is_some() && single_ans.dist.is_finite() {
            (single_ans.dist * 1.25).max(1e-3)
        } else {
            1.0
        };
        let t0 = Instant::now();
        let reply = round_trip(
            &mut out,
            &mut reader,
            &format!("RANGE eps={eps} {qs} deadline_ms={DEADLINE_MS}"),
        )?;
        report.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        report.requests += 1;
        let remote = parse_hits(&reply)?;
        let local = oracle.range(q, eps, Deadline::NONE)?;
        let (single_hits, _) = single.exact_range(q, eps, Deadline::NONE)?;
        if !same_hits(&remote, &local) || !same_hits(&remote, &single_hits) {
            report.divergences += 1;
            eprintln!("RANGE diverged (k={k}): remote {remote:?} local {local:?}");
        }
    }
    report.wall_s = wall.elapsed().as_secs_f64();
    let _ = out.write_all(b"QUIT\n");
    server.shutdown();
    drop(workers); // kills the children
    Ok(report)
}

/// Run the experiment and write `BENCH_distributed.json`.
pub fn run(env: &Env) -> Result<()> {
    let w = prepare(
        &env.work_dir,
        DataKind::RandomWalk,
        env.scale.n,
        env.scale.series_len,
        env.scale.queries,
        17,
    )?;
    let n = w.dataset.len();

    // The single whole-dataset index: the global ground truth.
    let single_dir = env.work_dir.join("dist-single");
    if single_dir.exists() {
        std::fs::remove_dir_all(&single_dir)?;
    }
    let single = LsmCoconut::new(
        index_config(env.scale.series_len, env.scale.leaf_capacity),
        build_opts(env.scale.threads),
        &single_dir,
    )?;
    single.ingest_upto(&w.dataset, n)?;
    let single_snap = single.snapshot();

    let mut table = Table::new(
        "distributed",
        "scatter-gather kNN across shard worker processes, oracle-checked",
        &["shards", "requests", "qps", "p50_ms", "p99_ms", "diverged"],
    );
    let mut reports = Vec::new();
    for &k in SHARD_COUNTS {
        println!("   k={k}: spawning {k} shard worker process(es)");
        let report = run_k(env, &w.path, &w.dataset, &w.queries, &single_snap, k)?;
        println!(
            "   k={k}: {} requests, {} divergences",
            report.requests, report.divergences
        );
        reports.push(report);
    }

    let total_divergences: usize = reports.iter().map(|r| r.divergences).sum();
    for r in &mut reports {
        let p = Percentiles::of(&mut r.latencies_ms);
        let qps = r.requests as f64 / r.wall_s.max(1e-9);
        table.push_row(vec![
            r.k.to_string(),
            r.requests.to_string(),
            format!("{qps:.0}"),
            format!("{:.2}", p.p50),
            format!("{:.2}", p.p99),
            r.divergences.to_string(),
        ]);
    }
    table.emit(&env.results_dir)?;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"distributed\",");
    let _ = writeln!(json, "  \"series\": {n},");
    let _ = writeln!(json, "  \"series_len\": {},", env.scale.series_len);
    let _ = writeln!(json, "  \"queries\": {},", env.scale.queries);
    let _ = writeln!(json, "  \"knn_k\": {KNN_K},");
    let _ = writeln!(json, "  \"divergences\": {total_divergences},");
    json.push_str("  \"configs\": [\n");
    let config_count = reports.len();
    for (i, r) in reports.iter_mut().enumerate() {
        let p = Percentiles::of(&mut r.latencies_ms);
        let qps = r.requests as f64 / r.wall_s.max(1e-9);
        let _ = writeln!(
            json,
            "    {{\"shards\": {}, \"requests\": {}, \"qps\": {qps:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"diverged\": {}}}{}",
            r.k,
            r.requests,
            p.p50,
            p.p99,
            r.divergences,
            if i + 1 == config_count { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all(&env.results_dir)?;
    let path = env.results_dir.join("BENCH_distributed.json");
    std::fs::write(&path, json)?;
    println!("wrote {}", path.display());

    if total_divergences > 0 {
        return Err(Error::corrupt(format!(
            "{total_divergences} distributed answers diverged from the oracles"
        )));
    }
    println!(
        "   oracle check: every EXACT/KNN/RANGE answer bit-identical to the \
         in-process ShardSet and the single index for K in {{1, 2, 4}}\n"
    );
    Ok(())
}
