//! Figure 9: query answering experiments.

use coconut_core::{BuildOptions, CoconutTree, IndexConfig};
use coconut_series::index::{QueryStats, SeriesIndex};
use coconut_storage::Result;
use coconut_summary::SaxConfig;

use crate::data::{prepare, DataKind, Workload};
use crate::experiments::Env;
use crate::harness::{fmt_secs, Table};
use crate::zoo::{build_index, Algo, BuildParams};

fn params(env: &Env) -> BuildParams {
    BuildParams {
        leaf_capacity: env.scale.leaf_capacity,
        memory_bytes: 64 << 20,
        threads: env.scale.threads,
        shards: 1,
    }
}

/// Average exact-query wall time, modeled disk time and work counters.
fn run_exact(idx: &dyn SeriesIndex, w: &Workload) -> Result<(f64, f64, QueryStats)> {
    let mut stats = QueryStats::default();
    let (_, m) = crate::harness::measure(&w.stats, || {
        for q in &w.queries {
            let (_, s) = idx.exact(q)?;
            stats.add(&s);
        }
        Ok(())
    })?;
    let nq = w.queries.len() as f64;
    Ok((m.wall_s / nq, m.modeled_s() / nq, stats))
}

fn run_approx(idx: &dyn SeriesIndex, w: &Workload) -> Result<(f64, f64, f64)> {
    let mut total_dist = 0.0;
    let (_, m) = crate::harness::measure(&w.stats, || {
        for q in &w.queries {
            total_dist += idx.approximate(q)?.dist;
        }
        Ok(())
    })?;
    let nq = w.queries.len() as f64;
    Ok((m.wall_s / nq, m.modeled_s() / nq, total_dist / nq))
}

const QUERY_ALGOS: [Algo; 6] = [
    Algo::CTree,
    Algo::CTreeFull,
    Algo::AdsPlus,
    Algo::AdsFull,
    Algo::RTree,
    Algo::RTreePlus,
];

/// Figure 9a: exact query answering vs dataset size.
pub fn run_9a(env: &Env) -> Result<()> {
    let mut table = Table::new(
        "fig9a",
        "exact query answering (avg per query) vs dataset size",
        &[
            "algorithm",
            "series",
            "avg_exact",
            "modeled_disk",
            "fetched/query",
        ],
    );
    for &n in &[env.scale.n / 4, env.scale.n / 2, env.scale.n] {
        let w = prepare(
            &env.work_dir,
            DataKind::RandomWalk,
            n,
            env.scale.series_len,
            env.scale.queries,
            7,
        )?;
        let build_dir = coconut_storage::TempDir::new("fig9a")?;
        for algo in QUERY_ALGOS {
            let idx = build_index(algo, &w, &params(env), build_dir.path())?;
            let (avg, modeled, stats) = run_exact(idx.as_ref(), &w)?;
            table.push_row(vec![
                algo.name().to_string(),
                n.to_string(),
                fmt_secs(avg),
                fmt_secs(modeled),
                (stats.records_fetched / w.queries.len() as u64).to_string(),
            ]);
        }
    }
    table.emit(&env.results_dir)
}

/// Figure 9b: approximate query answering vs dataset size.
pub fn run_9b(env: &Env) -> Result<()> {
    let mut table = Table::new(
        "fig9b",
        "approximate query answering (avg per query) vs dataset size",
        &[
            "algorithm",
            "series",
            "avg_approx",
            "modeled_disk",
            "avg_distance",
        ],
    );
    for &n in &[env.scale.n / 4, env.scale.n / 2, env.scale.n] {
        let w = prepare(
            &env.work_dir,
            DataKind::RandomWalk,
            n,
            env.scale.series_len,
            env.scale.queries,
            7,
        )?;
        let build_dir = coconut_storage::TempDir::new("fig9b")?;
        for algo in QUERY_ALGOS {
            let idx = build_index(algo, &w, &params(env), build_dir.path())?;
            let (avg_t, modeled, avg_d) = run_approx(idx.as_ref(), &w)?;
            table.push_row(vec![
                algo.name().to_string(),
                n.to_string(),
                fmt_secs(avg_t),
                fmt_secs(modeled),
                format!("{avg_d:.3}"),
            ]);
        }
    }
    table.emit(&env.results_dir)
}

/// Figure 9c: approximate query answering at the large configuration.
pub fn run_9c(env: &Env) -> Result<()> {
    let mut table = Table::new(
        "fig9c",
        "approximate query answering at the largest configuration",
        &["algorithm", "avg_approx", "modeled_disk", "avg_distance"],
    );
    let w = prepare(
        &env.work_dir,
        DataKind::RandomWalk,
        env.scale.n,
        env.scale.series_len,
        env.scale.queries,
        7,
    )?;
    let build_dir = coconut_storage::TempDir::new("fig9c")?;
    for algo in [Algo::CTree, Algo::CTreeFull, Algo::AdsPlus, Algo::AdsFull] {
        let idx = build_index(algo, &w, &params(env), build_dir.path())?;
        let (avg_t, modeled, avg_d) = run_approx(idx.as_ref(), &w)?;
        table.push_row(vec![
            algo.name().to_string(),
            fmt_secs(avg_t),
            fmt_secs(modeled),
            format!("{avg_d:.3}"),
        ]);
    }
    table.emit(&env.results_dir)
}

/// Build a concrete Coconut-Tree for the radius experiments.
fn build_ctree(env: &Env, w: &Workload, dir: &std::path::Path) -> Result<CoconutTree> {
    let config = IndexConfig {
        sax: SaxConfig::default_for_len(w.dataset.series_len()),
        leaf_capacity: env.scale.leaf_capacity,
        fill_factor: 1.0,
        internal_fanout: 64,
        split_policy: coconut_core::SplitPolicyKind::Fixed,
    };
    CoconutTree::build(
        &w.dataset,
        &config,
        dir,
        BuildOptions {
            memory_bytes: 64 << 20,
            materialized: false,
            threads: env.scale.threads,
            shards: 1,
        },
    )
}

/// Figure 9d: quality of approximate answers — CTree with radius 1 and 10
/// vs ADSFull, plus the fraction of queries where CTree's answer is better.
pub fn run_9d(env: &Env) -> Result<()> {
    let mut table = Table::new(
        "fig9d",
        "average distance of approximate answers (radius sweep vs ADSFull)",
        &["algorithm", "avg_distance", "better_than_ADSFull"],
    );
    let w = prepare(
        &env.work_dir,
        DataKind::RandomWalk,
        env.scale.n,
        env.scale.series_len,
        env.scale.queries,
        7,
    )?;
    let build_dir = coconut_storage::TempDir::new("fig9d")?;
    let tree = build_ctree(env, &w, build_dir.path())?;
    let ads = build_index(Algo::AdsFull, &w, &params(env), build_dir.path())?;

    let ads_dists: Vec<f64> = w
        .queries
        .iter()
        .map(|q| ads.approximate(q).map(|a| a.dist))
        .collect::<Result<_>>()?;
    for radius in [1usize, 10] {
        let dists: Vec<f64> = w
            .queries
            .iter()
            .map(|q| tree.approximate_search(q, radius).map(|a| a.dist))
            .collect::<Result<_>>()?;
        let avg = dists.iter().sum::<f64>() / dists.len() as f64;
        let better = dists
            .iter()
            .zip(ads_dists.iter())
            .filter(|(c, a)| c <= a)
            .count();
        table.push_row(vec![
            format!("CTree({radius})"),
            format!("{avg:.3}"),
            format!("{:.0}%", 100.0 * better as f64 / dists.len() as f64),
        ]);
    }
    let ads_avg = ads_dists.iter().sum::<f64>() / ads_dists.len() as f64;
    table.push_row(vec!["ADSFull".into(), format!("{ads_avg:.3}"), "-".into()]);
    table.emit(&env.results_dir)
}

/// Figure 9e: exact query answering at the large configuration, comparing
/// CoconutTreeSIMS seed radii against ADS SIMS.
pub fn run_9e(env: &Env) -> Result<()> {
    let (table, _) = exact_radius_tables(env)?;
    table.emit(&env.results_dir)
}

/// Figure 9f: raw records visited during exact query answering.
pub fn run_9f(env: &Env) -> Result<()> {
    let (_, table) = exact_radius_tables(env)?;
    table.emit(&env.results_dir)
}

fn exact_radius_tables(env: &Env) -> Result<(Table, Table)> {
    let mut time_table = Table::new(
        "fig9e",
        "exact query answering at the largest configuration",
        &["algorithm", "avg_exact", "modeled_disk"],
    );
    let mut visit_table = Table::new(
        "fig9f",
        "raw records visited during exact query answering",
        &["algorithm", "visited/query", "pruned/query"],
    );
    let w = prepare(
        &env.work_dir,
        DataKind::RandomWalk,
        env.scale.n,
        env.scale.series_len,
        env.scale.queries,
        7,
    )?;
    let build_dir = coconut_storage::TempDir::new("fig9ef")?;
    let tree = build_ctree(env, &w, build_dir.path())?;
    let nq = w.queries.len() as u64;
    for radius in [1usize, 10] {
        let mut stats = QueryStats::default();
        let (_, m) = crate::harness::measure(&w.stats, || {
            for q in &w.queries {
                let (_, s) = tree.exact_search_with_radius(q, radius)?;
                stats.add(&s);
            }
            Ok(())
        })?;
        let avg = m.wall_s / nq as f64;
        time_table.push_row(vec![
            format!("CTreeSIMS({radius})"),
            fmt_secs(avg),
            fmt_secs(m.modeled_s() / nq as f64),
        ]);
        visit_table.push_row(vec![
            format!("CTreeSIMS({radius})"),
            (stats.records_fetched / nq).to_string(),
            (stats.pruned / nq).to_string(),
        ]);
    }
    for algo in [Algo::AdsPlus, Algo::AdsFull] {
        let idx = build_index(algo, &w, &params(env), build_dir.path())?;
        let (avg, modeled, stats) = run_exact(idx.as_ref(), &w)?;
        time_table.push_row(vec![
            algo.name().to_string(),
            fmt_secs(avg),
            fmt_secs(modeled),
        ]);
        visit_table.push_row(vec![
            algo.name().to_string(),
            (stats.records_fetched / nq).to_string(),
            (stats.pruned / nq).to_string(),
        ]);
    }
    Ok((time_table, visit_table))
}
