//! Distance-kernel baseline: scalar vs dispatched SIMD throughput,
//! recorded to `results/BENCH_distance.json` so the perf trajectory of the
//! query hot path is tracked PR over PR.
//!
//! Not a figure of the paper — it measures the workspace's runtime-
//! dispatched vector kernels (`coconut_series::simd`,
//! `coconut_summary::mindist::QueryDistTable`): full and early-abandoning
//! Euclidean distance, the batched MINDIST scan kernel, and the fused
//! z-normalization statistics. Each entry reports the pinned-scalar and
//! pinned-SIMD timings plus their ratio. Both columns pin their
//! implementation explicitly (`kernels_for`), deliberately bypassing the
//! `COCONUT_FORCE_SCALAR` process-wide dispatch so the A/B comparison
//! stays meaningful regardless of the environment; the env state is still
//! recorded in the JSON (`force_scalar`). Only on hardware without AVX2 do
//! both columns collapse to scalar and the ratio sit at ~1.

use std::fmt::Write as _;
use std::time::Instant;

use coconut_series::distance::znormalize;
use coconut_series::gen::{Generator, RandomWalkGen};
use coconut_series::simd::{detect, kernels_for, Dispatch};
use coconut_storage::Result;
use coconut_summary::mindist::{mindist_paa_zkey, QueryDistTable};
use coconut_summary::paa::paa;
use coconut_summary::sax::sax_word;
use coconut_summary::zorder::interleave;
use coconut_summary::{SaxConfig, ZKey};

use crate::experiments::Env;
use crate::harness::Table;

/// Keys in the batched-MINDIST measurement (a small SIMS scan).
const SCAN_KEYS: usize = 16 * 1024;

/// Median ns per iteration of `f`, over `samples` timed samples of `iters`
/// calls each (after one warm-up sample).
fn time_ns(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters {
        f();
    }
    let mut timings: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    timings.sort_by(|a, b| a.total_cmp(b));
    timings[timings.len() / 2]
}

struct Entry {
    name: String,
    scalar_ns: f64,
    simd_ns: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.simd_ns
    }
}

fn series(seed: u64, len: usize) -> Vec<f32> {
    let mut s = RandomWalkGen::new(seed).generate(len);
    znormalize(&mut s);
    s
}

/// Run the baseline and write `BENCH_distance.json`.
pub fn run(env: &Env) -> Result<()> {
    let scalar = kernels_for(Dispatch::Scalar);
    let simd = kernels_for(detect());
    let mut entries: Vec<Entry> = Vec::new();

    for len in [64usize, 256, 1024] {
        let a = series(1, len);
        let b = series(2, len);
        entries.push(Entry {
            name: format!("euclidean/full/{len}"),
            scalar_ns: time_ns(30, 20_000, || {
                std::hint::black_box((scalar.euclidean_sq)(&a, &b));
            }),
            simd_ns: time_ns(30, 20_000, || {
                std::hint::black_box((simd.euclidean_sq)(&a, &b));
            }),
        });
        let full = (scalar.euclidean_sq)(&a, &b);
        entries.push(Entry {
            name: format!("euclidean/early_abandon_loose/{len}"),
            scalar_ns: time_ns(30, 20_000, || {
                std::hint::black_box((scalar.euclidean_sq_early_abandon)(&a, &b, full * 10.0));
            }),
            simd_ns: time_ns(30, 20_000, || {
                std::hint::black_box((simd.euclidean_sq_early_abandon)(&a, &b, full * 10.0));
            }),
        });
    }

    // The SIMS scan: MINDIST of every in-memory key. `scalar` pins the
    // batch kernel's mirror; `per_key` is the pre-batching one-at-a-time
    // loop, kept as the historical reference column.
    let config = SaxConfig::default_for_len(256);
    let q = series(3, 256);
    let qp = paa(&q, config.segments);
    let keys: Vec<ZKey> = (0..SCAN_KEYS as u64)
        .map(|i| {
            let s = series(100 + i, 256);
            interleave(sax_word(&s, &config).symbols(), config.card_bits)
        })
        .collect();
    let table = QueryDistTable::new(&qp, &config);
    let mut out = vec![0.0f64; keys.len()];
    let per_key_ns = time_ns(15, 3, || {
        for (o, &k) in out.iter_mut().zip(keys.iter()) {
            *o = mindist_paa_zkey(&qp, k, &config);
        }
        std::hint::black_box(out[0]);
    });
    let batch = Entry {
        name: format!("mindist_batch/{SCAN_KEYS}_keys"),
        scalar_ns: time_ns(15, 3, || {
            table.mindist_batch_into_with(Dispatch::Scalar, &keys, &mut out);
            std::hint::black_box(out[0]);
        }),
        simd_ns: time_ns(15, 3, || {
            table.mindist_batch_into_with(detect(), &keys, &mut out);
            std::hint::black_box(out[0]);
        }),
    };
    // Cross-kernel reference ratio, not a scalar/SIMD A/B of one kernel:
    // the pre-batching one-key-at-a-time loop vs the batched SIMD scan —
    // the end-to-end speedup of the SIMS scan restructure.
    let vs_prebatch = Entry {
        name: format!("mindist_prebatch_loop_vs_batch_simd/{SCAN_KEYS}_keys"),
        scalar_ns: per_key_ns,
        simd_ns: batch.simd_ns,
    };
    entries.push(batch);
    entries.push(vs_prebatch);

    let raw = RandomWalkGen::new(9).generate(256);
    let shift = raw[0] as f64;
    entries.push(Entry {
        name: "znormalize_stats/256".to_string(),
        scalar_ns: time_ns(30, 20_000, || {
            std::hint::black_box((scalar.sum_sumsq)(&raw, shift));
        }),
        simd_ns: time_ns(30, 20_000, || {
            std::hint::black_box((simd.sum_sumsq)(&raw, shift));
        }),
    });

    let mut table_out = Table::new(
        "bench_distance",
        "distance-kernel baseline: scalar vs dispatched SIMD (ns/op, median)",
        &["kernel", "scalar_ns", "simd_ns", "speedup"],
    );
    for e in &entries {
        table_out.push_row(vec![
            e.name.clone(),
            format!("{:.1}", e.scalar_ns),
            format!("{:.1}", e.simd_ns),
            format!("{:.2}x", e.speedup()),
        ]);
    }
    table_out.emit(&env.results_dir)?;

    // Hand-rolled JSON (no serde in the offline workspace); one object per
    // entry keeps the baseline diffable PR over PR.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"bench_distance\",");
    let _ = writeln!(json, "  \"dispatch\": \"{}\",", detect().name());
    let _ = writeln!(
        json,
        "  \"force_scalar\": {},",
        coconut_series::simd::force_scalar()
    );
    let _ = writeln!(json, "  \"scan_keys\": {SCAN_KEYS},");
    json.push_str("  \"kernels\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"scalar_ns\": {:.1}, \"simd_ns\": {:.1}, \"speedup\": {:.2}}}",
            e.name,
            e.scalar_ns,
            e.simd_ns,
            e.speedup()
        );
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all(&env.results_dir)?;
    let path = env.results_dir.join("BENCH_distance.json");
    std::fs::write(&path, json)?;
    println!("wrote {}", path.display());
    Ok(())
}
