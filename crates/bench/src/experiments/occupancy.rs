//! Leaf-occupancy comparison: fixed binary vs adaptive node splitting.
//!
//! Not a figure of the paper — it quantifies the workspace's Dumpy-style
//! extension of the Coconut-Trie bulk loader (`coconut_core::split`): the
//! adaptive policy widens a node's fanout only where measured child
//! occupancy earns it and packs undersized siblings together, so clustered
//! (skewed) key distributions fill leaves instead of fragmenting them.
//!
//! For a uniform random-walk dataset and a skewed clustered one, the
//! experiment builds one trie per policy and reports the leaf-fill
//! histogram, mean and 10th-percentile fill, leaf and oversized-leaf
//! counts, and the leaf-depth distribution. Before reporting anything it
//! **hard-fails** unless every exact, k-NN, and range answer is
//! bit-identical across policies and exact answers match a brute-force
//! scan — the refactor's no-semantic-change contract.
//!
//! `results/BENCH_occupancy.json` is the committed baseline; when a
//! previous baseline exists, the run also fails if the skewed dataset's
//! adaptive p10 fill regresses by more than [`P10_TOLERANCE`].

use std::fmt::Write as _;
use std::sync::Arc;

use coconut_core::{BuildOptions, CoconutTrie, IndexConfig, SplitPolicyKind};
use coconut_series::dataset::{Dataset, DatasetWriter};
use coconut_series::distance::{euclidean, znormalize};
use coconut_series::gen::{Generator, RandomWalkGen};
use coconut_series::Value;
use coconut_storage::{Error, IoStats, Result};
use coconut_summary::SaxConfig;

use crate::data::{prepare, DataKind};
use crate::experiments::Env;
use crate::harness::Table;

/// Clusters in the skewed dataset (each becomes a dense key neighborhood).
const CLUSTERS: usize = 6;

/// Relative noise scale around each cluster base shape: wide enough that
/// keys stay distinct (clustered prefixes, not duplicate keys), narrow
/// enough that binary splitting fragments the cluster neighborhoods.
const NOISE: f64 = 0.12;

/// Allowed drop in the skewed dataset's adaptive p10 fill vs the committed
/// baseline before the run fails (absolute fill fraction).
pub const P10_TOLERANCE: f64 = 0.05;

/// Occupancy stats of one built trie.
struct Occupancy {
    leaves: usize,
    avg_fill: f64,
    p10_fill: f64,
    oversized: u64,
    depth_avg: f64,
    depth_max: u32,
    /// Ten counts over fill deciles `[0,0.1) .. [0.9,1.0]`; over-capacity
    /// leaves clamp into the last bucket.
    histogram: [u64; 10],
}

fn occupancy_of(trie: &CoconutTrie) -> Occupancy {
    let cap = trie.config().leaf_capacity.max(1) as f64;
    let mut fills: Vec<f64> = trie
        .leaf_entry_counts()
        .iter()
        .map(|&n| n as f64 / cap)
        .collect();
    fills.sort_by(|a, b| a.total_cmp(b));
    let leaves = fills.len();
    let avg_fill = if leaves == 0 {
        0.0
    } else {
        fills.iter().sum::<f64>() / leaves as f64
    };
    let p10_fill = if leaves == 0 { 0.0 } else { fills[leaves / 10] };
    let mut histogram = [0u64; 10];
    for &f in &fills {
        histogram[((f * 10.0) as usize).min(9)] += 1;
    }
    let depths = trie.leaf_depths();
    let depth_max = depths.iter().copied().max().unwrap_or(0);
    let depth_avg = if depths.is_empty() {
        0.0
    } else {
        depths.iter().map(|&d| d as f64).sum::<f64>() / depths.len() as f64
    };
    Occupancy {
        leaves,
        avg_fill,
        p10_fill,
        oversized: trie.oversized_leaf_count(),
        depth_avg,
        depth_max,
        histogram,
    }
}

/// Write (or reuse) the clustered dataset: `CLUSTERS` random-walk base
/// shapes, each series a noisy copy of one of them.
fn skewed_dataset(env: &Env, stats: &Arc<IoStats>) -> Result<Dataset> {
    let len = env.scale.series_len;
    let path = env
        .work_dir
        .join(format!("clustered-{}x{len}-13.ds", env.scale.n));
    if !path.exists() {
        let bases: Vec<Vec<Value>> = (0..CLUSTERS)
            .map(|c| {
                let mut b = RandomWalkGen::new(13 * 31 + c as u64).generate(len);
                znormalize(&mut b);
                b
            })
            .collect();
        let mut state = 13u64 | 1;
        let mut w = DatasetWriter::create(&path, len, true, Arc::clone(stats))?;
        for i in 0..env.scale.n {
            let base = &bases[i as usize % CLUSTERS];
            let mut s: Vec<Value> = base
                .iter()
                .map(|&v| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let u = ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * NOISE;
                    v + u as Value
                })
                .collect();
            znormalize(&mut s);
            w.append(&s)?;
        }
        w.finish()?;
    }
    Dataset::open(&path, Arc::clone(stats))
}

fn brute_force_nn(ds: &Dataset, q: &[Value]) -> Result<u64> {
    let mut best = (0u64, f64::INFINITY);
    let mut scan = ds.scan();
    while let Some((pos, s)) = scan.next_series()? {
        let d = euclidean(q, s);
        if d < best.1 {
            best = (pos, d);
        }
    }
    Ok(best.0)
}

/// Every query answer from the adaptive trie must be bit-identical to the
/// fixed trie's, and exact answers must match a brute-force scan.
fn check_answers(
    dataset_name: &str,
    ds: &Dataset,
    fixed: &CoconutTrie,
    adaptive: &CoconutTrie,
    queries: &[Vec<Value>],
) -> Result<()> {
    for (qi, q) in queries.iter().enumerate() {
        let (af, _) = fixed.exact_search(q)?;
        let (aa, _) = adaptive.exact_search(q)?;
        if aa.pos != af.pos || aa.dist.to_bits() != af.dist.to_bits() {
            return Err(Error::corrupt(format!(
                "{dataset_name} query {qi}: exact answer diverged across \
                 policies (fixed pos {} vs adaptive pos {})",
                af.pos, aa.pos
            )));
        }
        if aa.pos != brute_force_nn(ds, q)? {
            return Err(Error::corrupt(format!(
                "{dataset_name} query {qi}: exact answer diverged from the \
                 brute-force oracle"
            )));
        }
        let (kf, _) = fixed.exact_knn(q, 5)?;
        let (ka, _) = adaptive.exact_knn(q, 5)?;
        let same_knn = kf.len() == ka.len()
            && kf
                .iter()
                .zip(ka.iter())
                .all(|(x, y)| x.pos == y.pos && x.dist.to_bits() == y.dist.to_bits());
        if !same_knn {
            return Err(Error::corrupt(format!(
                "{dataset_name} query {qi}: 5-NN answers diverged across policies"
            )));
        }
        let eps = af.dist * 1.5;
        let (rf, _) = fixed.exact_range(q, eps)?;
        let (ra, _) = adaptive.exact_range(q, eps)?;
        let mut pf: Vec<u64> = rf.iter().map(|a| a.pos).collect();
        let mut pa: Vec<u64> = ra.iter().map(|a| a.pos).collect();
        pf.sort_unstable();
        pa.sort_unstable();
        if pf != pa {
            return Err(Error::corrupt(format!(
                "{dataset_name} query {qi}: range hit sets diverged across \
                 policies ({} vs {} hits)",
                pf.len(),
                pa.len()
            )));
        }
    }
    Ok(())
}

/// Pull the previous `skewed_adaptive_p10` out of a committed baseline (a
/// hand-rolled parse: the workspace has no JSON reader).
fn baseline_p10(json: &str) -> Option<f64> {
    let tail = json.split("\"skewed_adaptive_p10\":").nth(1)?;
    tail.trim_start()
        .split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .next()?
        .parse()
        .ok()
}

/// Run the experiment: build fixed and adaptive tries over a uniform and a
/// skewed dataset, verify answer identity, report occupancy, and gate on
/// the committed baseline.
pub fn run(env: &Env) -> Result<()> {
    let mut table = Table::new(
        "occupancy",
        "leaf occupancy: fixed binary vs adaptive splitting",
        &[
            "dataset",
            "policy",
            "leaves",
            "avg_fill",
            "p10_fill",
            "oversized",
            "depth_avg",
            "depth_max",
            "identical",
        ],
    );
    // Read the committed baseline before this run overwrites it.
    let baseline_path = env.results_dir.join("BENCH_occupancy.json");
    let prior_p10 = std::fs::read_to_string(&baseline_path)
        .ok()
        .as_deref()
        .and_then(baseline_p10);

    let w = prepare(
        &env.work_dir,
        DataKind::RandomWalk,
        env.scale.n,
        env.scale.series_len,
        env.scale.queries,
        7,
    )?;
    let skewed = skewed_dataset(env, &w.stats)?;
    let config = |policy| IndexConfig {
        sax: SaxConfig::default_for_len(env.scale.series_len),
        leaf_capacity: env.scale.leaf_capacity,
        fill_factor: 1.0,
        internal_fanout: 64,
        split_policy: policy,
    };

    let mut json_sections = String::new();
    let mut skewed_p10 = (0.0f64, 0.0f64); // (fixed, adaptive)
    for (dataset_name, ds) in [("uniform", &w.dataset), ("skewed", &skewed)] {
        let build_dir = coconut_storage::TempDir::new("occupancy-build")?;
        let opts = BuildOptions {
            memory_bytes: (ds.payload_bytes() / 2).max(1 << 20),
            materialized: false,
            threads: env.scale.threads,
            shards: 1,
        };
        let fixed = CoconutTrie::build(
            ds,
            &config(SplitPolicyKind::Fixed),
            build_dir.path(),
            opts.clone(),
        )?;
        let adaptive = CoconutTrie::build(
            ds,
            &config(SplitPolicyKind::Adaptive),
            build_dir.path(),
            opts,
        )?;
        check_answers(dataset_name, ds, &fixed, &adaptive, &w.queries)?;
        for (policy, trie) in [("fixed", &fixed), ("adaptive", &adaptive)] {
            let occ = occupancy_of(trie);
            if dataset_name == "skewed" {
                if policy == "fixed" {
                    skewed_p10.0 = occ.p10_fill;
                } else {
                    skewed_p10.1 = occ.p10_fill;
                }
            }
            table.push_row(vec![
                dataset_name.to_string(),
                policy.to_string(),
                occ.leaves.to_string(),
                format!("{:.3}", occ.avg_fill),
                format!("{:.3}", occ.p10_fill),
                occ.oversized.to_string(),
                format!("{:.1}", occ.depth_avg),
                occ.depth_max.to_string(),
                "yes".to_string(),
            ]);
            let buckets: Vec<String> = occ.histogram.iter().map(|c| c.to_string()).collect();
            let _ = writeln!(
                json_sections,
                "    {{\"dataset\": \"{dataset_name}\", \"policy\": \"{policy}\", \
                 \"leaves\": {}, \"avg_fill\": {:.4}, \"p10_fill\": {:.4}, \
                 \"oversized_leaves\": {}, \"depth_avg\": {:.2}, \"depth_max\": {}, \
                 \"fill_histogram\": [{}]}},",
                occ.leaves,
                occ.avg_fill,
                occ.p10_fill,
                occ.oversized,
                occ.depth_avg,
                occ.depth_max,
                buckets.join(", ")
            );
        }
    }

    // The refactor's payoff must actually materialize: on clustered keys
    // the adaptive trie may not fill leaves worse than binary splitting.
    if skewed_p10.1 < skewed_p10.0 {
        return Err(Error::corrupt(format!(
            "adaptive p10 fill {:.3} fell below fixed {:.3} on the skewed \
             dataset",
            skewed_p10.1, skewed_p10.0
        )));
    }
    // Regression gate vs the committed baseline (CI runs from the repo
    // root, so the committed results/BENCH_occupancy.json is the baseline).
    if let Some(prior) = prior_p10 {
        if skewed_p10.1 < prior - P10_TOLERANCE {
            return Err(Error::corrupt(format!(
                "skewed adaptive p10 fill regressed: {:.3} vs committed \
                 baseline {:.3} (tolerance {P10_TOLERANCE})",
                skewed_p10.1, prior
            )));
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"experiment\": \"occupancy\",\n");
    let _ = writeln!(json, "  \"series\": {},", env.scale.n);
    let _ = writeln!(json, "  \"series_len\": {},", env.scale.series_len);
    let _ = writeln!(json, "  \"leaf_capacity\": {},", env.scale.leaf_capacity);
    let _ = writeln!(json, "  \"queries\": {},", w.queries.len());
    let _ = writeln!(json, "  \"answers_identical\": true,");
    let _ = writeln!(
        json,
        "  \"gate\": {{\"skewed_adaptive_p10\": {:.4}, \"tolerance\": {P10_TOLERANCE}}},",
        skewed_p10.1
    );
    json.push_str("  \"tries\": [\n");
    // Strip the trailing comma of the last section.
    json.push_str(json_sections.trim_end().trim_end_matches(','));
    json.push_str("\n  ]\n}\n");
    std::fs::create_dir_all(&env.results_dir)?;
    std::fs::write(&baseline_path, json)?;
    println!(
        "   answers bit-identical across policies; skewed p10 fill {:.3} \
         (fixed) -> {:.3} (adaptive)\n   wrote {}\n",
        skewed_p10.0,
        skewed_p10.1,
        baseline_path.display()
    );
    table.emit(&env.results_dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_storage::TempDir;

    #[test]
    fn occupancy_runs_verifies_and_writes_outputs() {
        let (w, r) = (
            TempDir::new("occupancy-w").unwrap(),
            TempDir::new("occupancy-r").unwrap(),
        );
        let env = Env {
            work_dir: w.path().to_path_buf(),
            results_dir: r.path().to_path_buf(),
            scale: crate::experiments::Scale {
                n: 900,
                series_len: 64,
                queries: 4,
                leaf_capacity: 32,
                threads: 2,
            },
        };
        run(&env).unwrap();
        let csv = std::fs::read_to_string(r.path().join("occupancy.csv")).unwrap();
        assert!(csv.starts_with("dataset,policy,leaves"));
        // Two datasets x two policies.
        assert_eq!(csv.lines().count(), 1 + 4, "{csv}");
        let json = std::fs::read_to_string(r.path().join("BENCH_occupancy.json")).unwrap();
        assert!(json.contains("\"answers_identical\": true"), "{json}");
        assert!(json.contains("\"skewed_adaptive_p10\""), "{json}");
        // The file parses as our own baseline format.
        assert!(baseline_p10(&json).is_some());
        // A second run gates against the baseline it just wrote — and
        // passes, because nothing changed.
        run(&env).unwrap();
    }

    #[test]
    fn baseline_parse_extracts_p10() {
        let j = "{\n  \"gate\": {\"skewed_adaptive_p10\": 0.8125, \"tolerance\": 0.05}\n}";
        assert_eq!(baseline_p10(j), Some(0.8125));
        assert_eq!(baseline_p10("{}"), None);
    }
}
