//! Sustained streaming ingest: the write/read/space-amplification tradeoff
//! of the LSM subsystem, swept over compaction policy × writer count and
//! recorded to `results/BENCH_streaming.json` so the curves are tracked
//! PR over PR.
//!
//! Not a figure of the paper — it measures the workspace's LSM subsystem
//! (`coconut_core::lsm`, cf. the paper's future-work proposal and the
//! follow-up *"Sortable Summarizations for Static and Streaming Data
//! Series"*, which frames streaming data-series indexing around exactly
//! this amplification tradeoff). The raw file is revealed in equal batches;
//! each batch is ingested by N concurrent writer handles (group-committed
//! runs, one manifest fsync per fold) while tiered or leveled compaction
//! runs on the worker pool, and after each batch a fixed query workload
//! runs over the covered prefix. Per phase the experiment reports ingest
//! throughput, the live run count (read amplification), cumulative write
//! amplification, space amplification, and exact-query latency.
//!
//! **Every answer is checked against a brute-force oracle over the covered
//! prefix; any divergence fails the experiment** — CI runs this per PR, so
//! the streaming path cannot silently lose or corrupt data. Each
//! configuration then waits for compactions, fully compacts, verifies the
//! single remaining run is **bit-identical to a from-scratch bulk load**,
//! and re-verifies every answer. Final write/space amplification is gated
//! against the committed baseline: a regression beyond `AMP_TOLERANCE`×
//! hard-fails the run.

use std::fmt::Write as _;
use std::time::Instant;

use coconut_core::manifest::Manifest;
use coconut_core::{
    BuildOptions, CoconutTree, CompactionPolicyKind, IndexConfig, LsmCoconut, TieredPolicy,
};
use coconut_series::distance::euclidean;
use coconut_series::index::{Answer, SeriesIndex};
use coconut_series::Value;
use coconut_storage::{Error, Result};
use coconut_summary::SaxConfig;

use crate::data::{prepare, DataKind};
use crate::experiments::Env;
use crate::harness::{Percentiles, Table};

/// Batches the raw file is revealed in.
const BATCHES: u64 = 8;

/// Writer counts swept per policy.
const WRITERS: [usize; 3] = [1, 2, 4];

/// Allowed multiplicative growth of final write/space amplification over
/// the committed baseline before the run hard-fails. Generous because
/// group-commit fold sizes (and therefore compaction work) depend on
/// thread timing; answer correctness is gated exactly, amplification
/// within an envelope.
const AMP_TOLERANCE: f64 = 1.6;

/// One measured ingest-then-query phase.
struct Phase {
    covered: u64,
    ingest_s: f64,
    series_per_s: f64,
    runs: usize,
    write_amp: f64,
    space_amp: f64,
    avg_query_ms: f64,
    avg_records_fetched: f64,
    latency_ms: Percentiles,
}

/// One policy × writer-count configuration's full result.
struct Config {
    id: String,
    policy: CompactionPolicyKind,
    writers: usize,
    phases: Vec<Phase>,
    final_write_amp: f64,
    final_space_amp: f64,
    ingest_commits: u64,
    runs_committed: u64,
    compact_all_s: f64,
    bit_identical: bool,
}

fn brute_force(prefix: &[Vec<Value>], q: &[Value]) -> Answer {
    let mut best = Answer::none();
    for (i, s) in prefix.iter().enumerate() {
        best.merge(Answer {
            pos: i as u64,
            dist: euclidean(q, s),
        });
    }
    best
}

/// Pull `"{key}": <float>` out of a committed baseline (hand-rolled: the
/// workspace has no JSON reader).
fn baseline_value(json: &str, key: &str) -> Option<f64> {
    let tail = json.split(&format!("\"{key}\":")).nth(1)?;
    tail.trim_start()
        .split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .next()?
        .parse()
        .ok()
}

/// Run one policy × writer-count configuration.
#[allow(clippy::too_many_arguments)]
fn run_config(
    env: &Env,
    dataset: &coconut_series::dataset::Dataset,
    all: &[Vec<Value>],
    queries: &[Vec<Value>],
    config: &IndexConfig,
    opts: &BuildOptions,
    reference_index: &[u8],
    policy: CompactionPolicyKind,
    writers: usize,
) -> Result<Config> {
    let id = format!("{policy}_w{writers}");
    let idx_dir = env.work_dir.join(format!("streaming-lsm-{id}"));
    // A fresh directory per invocation: the experiment measures ingest from
    // scratch (recovery is covered by the test suites).
    if idx_dir.exists() {
        std::fs::remove_dir_all(&idx_dir)?;
    }
    let lsm = LsmCoconut::create(*config, opts.clone(), &idx_dir, 0, policy)?;
    if policy == CompactionPolicyKind::Tiered {
        // The tuned tiered policy the old single-writer baseline used.
        lsm.set_policy(Box::new(TieredPolicy {
            size_ratio: 4,
            tier_runs: 3,
            max_runs: 6,
        }));
    }

    let n = dataset.len();
    let batch = n.div_ceil(BATCHES).max(1);
    let mut phases: Vec<Phase> = Vec::new();
    let mut covered = 0u64;
    while covered < n {
        let upto = (covered + batch).min(n);
        let ingested = upto - covered;
        let t0 = Instant::now();
        if writers == 1 {
            lsm.ingest_upto(dataset, upto)?;
        } else {
            // Each writer claims the next slice of the revealed prefix and
            // builds its run concurrently; completed runs group-commit.
            let step = (ingested / (writers as u64 * 2)).max(1);
            let lsm_ref = &lsm;
            std::thread::scope(|s| -> Result<()> {
                let handles: Vec<_> = (0..writers)
                    .map(|_| {
                        s.spawn(move || -> Result<()> {
                            let w = lsm_ref.writer();
                            while w.ingest_next_upto(dataset, upto, step)?.is_some() {}
                            Ok(())
                        })
                    })
                    .collect();
                for h in handles {
                    h.join()
                        .map_err(|_| Error::invalid("an ingest writer panicked"))??;
                }
                Ok(())
            })?;
        }
        let ingest_s = t0.elapsed().as_secs_f64();
        covered = upto;
        let prefix = &all[..covered as usize];

        let mut query_s = 0.0;
        let mut latencies_ms: Vec<f64> = Vec::with_capacity(queries.len());
        let mut records = 0u64;
        for (qi, q) in queries.iter().enumerate() {
            let t0 = Instant::now();
            let (ans, stats) = lsm.exact(q)?;
            let elapsed = t0.elapsed().as_secs_f64();
            query_s += elapsed;
            latencies_ms.push(elapsed * 1e3);
            records += stats.records_fetched;
            let oracle = brute_force(prefix, q);
            if ans.pos != oracle.pos {
                return Err(Error::corrupt(format!(
                    "streaming divergence ({id}) at covered={covered}, query {qi}: \
                     LSM answered #{} at {:.6}, oracle #{} at {:.6}",
                    ans.pos, ans.dist, oracle.pos, oracle.dist
                )));
            }
        }
        let nq = queries.len() as f64;
        phases.push(Phase {
            covered,
            ingest_s,
            series_per_s: ingested as f64 / ingest_s.max(1e-9),
            runs: lsm.run_count(),
            write_amp: lsm.write_amplification(),
            space_amp: lsm.space_amplification(),
            avg_query_ms: query_s * 1e3 / nq,
            avg_records_fetched: records as f64 / nq,
            latency_ms: Percentiles::of(&mut latencies_ms),
        });
    }

    // Settle and fully compact; answers must survive both, and the single
    // remaining run must be bit-identical to a from-scratch bulk load.
    lsm.wait_for_compactions()?;
    let t0 = Instant::now();
    lsm.compact()?;
    let compact_all_s = t0.elapsed().as_secs_f64();
    if lsm.run_count() != 1 {
        return Err(Error::corrupt(format!(
            "full compaction ({id}) left more than one run"
        )));
    }
    for (qi, q) in queries.iter().enumerate() {
        let (ans, _) = lsm.exact(q)?;
        let oracle = brute_force(all, q);
        if ans.pos != oracle.pos {
            return Err(Error::corrupt(format!(
                "post-compaction divergence ({id}) on query {qi}"
            )));
        }
    }
    let manifest = Manifest::load(&idx_dir)?;
    let run_file = manifest
        .runs
        .first()
        .ok_or_else(|| Error::corrupt("compacted index lists no runs"))?;
    let compacted = std::fs::read(idx_dir.join(&run_file.file))?;
    let bit_identical = compacted == reference_index;
    if !bit_identical {
        return Err(Error::corrupt(format!(
            "full compaction ({id}) is not bit-identical to a from-scratch \
             build ({} vs {} bytes)",
            compacted.len(),
            reference_index.len()
        )));
    }

    let ws = lsm.write_stats();
    let final_write_amp = lsm.write_amplification();
    let final_space_amp = lsm.space_amplification();
    Ok(Config {
        id,
        policy,
        writers,
        phases,
        final_write_amp,
        final_space_amp,
        ingest_commits: ws.ingest_commits,
        runs_committed: ws.runs_committed,
        compact_all_s,
        bit_identical,
    })
}

/// Run the sweep and write `BENCH_streaming.json`.
pub fn run(env: &Env) -> Result<()> {
    let w = prepare(
        &env.work_dir,
        DataKind::RandomWalk,
        env.scale.n,
        env.scale.series_len,
        env.scale.queries.clamp(1, 10),
        11,
    )?;
    let config = IndexConfig {
        sax: SaxConfig::default_for_len(env.scale.series_len),
        leaf_capacity: env.scale.leaf_capacity,
        fill_factor: 1.0,
        internal_fanout: 64,
        split_policy: coconut_core::SplitPolicyKind::Fixed,
    };
    let opts = BuildOptions {
        memory_bytes: (w.dataset.payload_bytes() / 2).max(1 << 20),
        materialized: false,
        threads: env.scale.threads,
        shards: 1,
    };

    // Read the committed baseline before this run overwrites it.
    let baseline_path = env.results_dir.join("BENCH_streaming.json");
    let baseline = std::fs::read_to_string(&baseline_path).ok();

    // The oracle prefix and the from-scratch reference build are shared by
    // every configuration (the reference is policy-independent: full
    // compaction must reproduce it bit for bit regardless of history).
    let n = w.dataset.len();
    let mut all: Vec<Vec<Value>> = Vec::with_capacity(n as usize);
    for p in 0..n {
        all.push(w.dataset.get(p)?);
    }
    let ref_dir = coconut_storage::TempDir::new("streaming-ref")?;
    let reference = CoconutTree::build(&w.dataset, &config, ref_dir.path(), opts.clone())?;
    let reference_index = std::fs::read(reference.index_path())?;

    let mut configs: Vec<Config> = Vec::new();
    for policy in CompactionPolicyKind::ALL {
        for writers in WRITERS {
            configs.push(run_config(
                env,
                &w.dataset,
                &all,
                &w.queries,
                &config,
                &opts,
                &reference_index,
                policy,
                writers,
            )?);
        }
    }

    // Gate final amplification against the committed baseline (when one
    // with amp curves exists).
    if let Some(prior) = &baseline {
        for c in &configs {
            for (what, new) in [
                ("write_amp", c.final_write_amp),
                ("space_amp", c.final_space_amp),
            ] {
                let key = format!("{}_{what}", c.id);
                if let Some(old) = baseline_value(prior, &key) {
                    if new > old * AMP_TOLERANCE {
                        return Err(Error::invalid(format!(
                            "streaming {what} regression ({}): {new:.3} vs \
                             committed {old:.3} (tolerance {AMP_TOLERANCE}x)",
                            c.id
                        )));
                    }
                }
            }
        }
    }

    let mut table = Table::new(
        "streaming",
        "LSM streaming ingest: amplification curves per policy x writer count",
        &[
            "policy",
            "writers",
            "covered",
            "ingest_s",
            "series_per_s",
            "runs",
            "write_amp",
            "space_amp",
            "avg_query_ms",
            "p50_ms",
            "p99_ms",
        ],
    );
    for c in &configs {
        for p in &c.phases {
            table.push_row(vec![
                c.policy.to_string(),
                c.writers.to_string(),
                p.covered.to_string(),
                format!("{:.3}", p.ingest_s),
                format!("{:.0}", p.series_per_s),
                p.runs.to_string(),
                format!("{:.3}", p.write_amp),
                format!("{:.3}", p.space_amp),
                format!("{:.2}", p.avg_query_ms),
                format!("{:.2}", p.latency_ms.p50),
                format!("{:.2}", p.latency_ms.p99),
            ]);
        }
    }
    table.emit(&env.results_dir)?;
    println!(
        "   oracle check: {} queries x {} phases x {} configs identical to \
         brute force; every full compaction bit-identical to the \
         from-scratch build\n",
        w.queries.len(),
        BATCHES,
        configs.len()
    );

    // Hand-rolled JSON (no serde in the offline workspace); flat
    // `<config>_<metric>` keys keep the baseline gate's parser trivial and
    // the file diffable PR over PR.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"streaming\",");
    let _ = writeln!(json, "  \"series\": {n},");
    let _ = writeln!(json, "  \"series_len\": {},", env.scale.series_len);
    let _ = writeln!(json, "  \"batches\": {BATCHES},");
    let _ = writeln!(json, "  \"queries_per_phase\": {},", w.queries.len());
    let _ = writeln!(json, "  \"amp_tolerance\": {AMP_TOLERANCE},");
    for c in &configs {
        let _ = writeln!(json, "  \"{}_write_amp\": {:.3},", c.id, c.final_write_amp);
        let _ = writeln!(json, "  \"{}_space_amp\": {:.3},", c.id, c.final_space_amp);
    }
    json.push_str("  \"configs\": [\n");
    for (ci, c) in configs.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"id\": \"{}\",", c.id);
        let _ = writeln!(json, "      \"policy\": \"{}\",", c.policy);
        let _ = writeln!(json, "      \"writers\": {},", c.writers);
        let _ = writeln!(json, "      \"ingest_commits\": {},", c.ingest_commits);
        let _ = writeln!(json, "      \"runs_committed\": {},", c.runs_committed);
        let _ = writeln!(json, "      \"compact_all_s\": {:.3},", c.compact_all_s);
        let _ = writeln!(json, "      \"bit_identical\": {},", c.bit_identical);
        json.push_str("      \"phases\": [\n");
        for (i, p) in c.phases.iter().enumerate() {
            let _ = write!(
                json,
                "        {{\"covered\": {}, \"ingest_s\": {:.3}, \
                 \"series_per_s\": {:.0}, \"runs\": {}, \"write_amp\": {:.3}, \
                 \"space_amp\": {:.3}, \"avg_query_ms\": {:.3}, \
                 \"avg_records_fetched\": {:.1}, \"p50_ms\": {:.3}, \
                 \"p99_ms\": {:.3}}}",
                p.covered,
                p.ingest_s,
                p.series_per_s,
                p.runs,
                p.write_amp,
                p.space_amp,
                p.avg_query_ms,
                p.avg_records_fetched,
                p.latency_ms.p50,
                p.latency_ms.p99
            );
            json.push_str(if i + 1 < c.phases.len() { ",\n" } else { "\n" });
        }
        json.push_str("      ]\n");
        json.push_str("    }");
        json.push_str(if ci + 1 < configs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all(&env.results_dir)?;
    std::fs::write(&baseline_path, json)?;
    println!("wrote {}", baseline_path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_storage::TempDir;

    #[test]
    fn streaming_runs_verifies_and_writes_outputs() {
        let (w, r) = (
            TempDir::new("streaming-w").unwrap(),
            TempDir::new("streaming-r").unwrap(),
        );
        let env = Env {
            work_dir: w.path().to_path_buf(),
            results_dir: r.path().to_path_buf(),
            scale: crate::experiments::Scale {
                n: 600,
                series_len: 64,
                queries: 3,
                leaf_capacity: 32,
                threads: 2,
            },
        };
        run(&env).unwrap();
        let csv = std::fs::read_to_string(r.path().join("streaming.csv")).unwrap();
        assert!(csv.starts_with("policy,writers,covered"));
        // 2 policies x 3 writer counts x 8 phases + header.
        assert_eq!(csv.lines().count(), 1 + 2 * 3 * 8, "{csv}");
        let json = std::fs::read_to_string(r.path().join("BENCH_streaming.json")).unwrap();
        assert!(json.contains("\"experiment\": \"streaming\""));
        for id in [
            "tiered_w1",
            "tiered_w2",
            "tiered_w4",
            "leveled_w1",
            "leveled_w2",
            "leveled_w4",
        ] {
            assert!(json.contains(&format!("\"id\": \"{id}\"")), "{json}");
            assert!(json.contains(&format!("\"{id}_write_amp\"")), "{json}");
        }
        assert!(json.contains("\"bit_identical\": true"));

        // A doctored baseline with a much lower committed write-amp makes
        // the regression gate fire.
        let doctored = json.replace(
            json.lines()
                .find(|l| l.contains("\"tiered_w1_write_amp\""))
                .unwrap(),
            "  \"tiered_w1_write_amp\": 0.100,",
        );
        std::fs::write(r.path().join("BENCH_streaming.json"), doctored).unwrap();
        let err = run(&env).unwrap_err();
        assert!(err.to_string().contains("regression"), "{err}");
    }

    #[test]
    fn baseline_parser_reads_flat_keys() {
        let json = "{\n  \"tiered_w1_write_amp\": 1.625,\n  \"x\": 2\n}";
        assert_eq!(baseline_value(json, "tiered_w1_write_amp"), Some(1.625));
        assert_eq!(baseline_value(json, "missing"), None);
    }
}
