//! Sustained streaming ingest: Coconut-LSM throughput, read amplification,
//! and query latency as runs accumulate and compact, recorded to
//! `results/BENCH_streaming.json` so the streaming path's trajectory is
//! tracked PR over PR.
//!
//! Not a figure of the paper — it measures the workspace's LSM subsystem
//! (`coconut_core::lsm`, cf. the paper's future-work proposal and the
//! follow-up *"Sortable Summarizations for Static and Streaming Data
//! Series"*). The raw file is revealed in equal batches; every batch is
//! ingested as a bulk-loaded run (tiered compaction running on the worker
//! thread alongside), and after each batch a fixed query workload runs over
//! the covered prefix. Per phase the experiment reports ingest throughput,
//! the live run count (the read amplification of a query), mean exact-query
//! latency, and the mean records fetched per query.
//!
//! **Every answer is checked against a brute-force oracle over the covered
//! prefix; any divergence fails the experiment** — CI runs this per PR, so
//! the streaming path cannot silently lose or corrupt data. The final phase
//! waits for compactions, fully compacts, and re-verifies.

use std::fmt::Write as _;
use std::time::Instant;

use coconut_core::{BuildOptions, IndexConfig, LsmCoconut, TieredPolicy};
use coconut_series::distance::euclidean;
use coconut_series::index::{Answer, SeriesIndex};
use coconut_series::Value;
use coconut_storage::{Error, Result};
use coconut_summary::SaxConfig;

use crate::data::{prepare, DataKind};
use crate::experiments::Env;
use crate::harness::{Percentiles, Table};

/// Batches the raw file is revealed in.
const BATCHES: u64 = 8;

/// One measured ingest-then-query phase.
struct Phase {
    covered: u64,
    ingest_s: f64,
    series_per_s: f64,
    runs: usize,
    avg_query_ms: f64,
    avg_records_fetched: f64,
    latency_ms: Percentiles,
}

fn brute_force(prefix: &[Vec<Value>], q: &[Value]) -> Answer {
    let mut best = Answer::none();
    for (i, s) in prefix.iter().enumerate() {
        best.merge(Answer {
            pos: i as u64,
            dist: euclidean(q, s),
        });
    }
    best
}

/// Run the experiment and write `BENCH_streaming.json`.
pub fn run(env: &Env) -> Result<()> {
    let w = prepare(
        &env.work_dir,
        DataKind::RandomWalk,
        env.scale.n,
        env.scale.series_len,
        env.scale.queries.clamp(1, 10),
        11,
    )?;
    let config = IndexConfig {
        sax: SaxConfig::default_for_len(env.scale.series_len),
        leaf_capacity: env.scale.leaf_capacity,
        fill_factor: 1.0,
        internal_fanout: 64,
        split_policy: coconut_core::SplitPolicyKind::Fixed,
    };
    let opts = BuildOptions {
        memory_bytes: (w.dataset.payload_bytes() / 2).max(1 << 20),
        materialized: false,
        threads: env.scale.threads,
        shards: 1,
    };
    let idx_dir = env.work_dir.join("streaming-lsm");
    // A fresh directory per invocation: the experiment measures ingest from
    // scratch (recovery is covered by the test suites).
    if idx_dir.exists() {
        std::fs::remove_dir_all(&idx_dir)?;
    }
    let lsm = LsmCoconut::new(config, opts, &idx_dir)?;
    lsm.set_policy(Box::new(TieredPolicy {
        size_ratio: 4,
        tier_runs: 3,
        max_runs: 6,
    }));

    let n = w.dataset.len();
    let batch = n.div_ceil(BATCHES).max(1);
    let mut prefix: Vec<Vec<Value>> = Vec::with_capacity(n as usize);
    let mut phases: Vec<Phase> = Vec::new();
    let mut covered = 0u64;
    while covered < n {
        let upto = (covered + batch).min(n);
        let ingested = upto - covered;
        let t0 = Instant::now();
        lsm.ingest_upto(&w.dataset, upto)?;
        let ingest_s = t0.elapsed().as_secs_f64();
        for p in covered..upto {
            prefix.push(w.dataset.get(p)?);
        }
        covered = upto;

        let mut query_s = 0.0;
        let mut latencies_ms: Vec<f64> = Vec::with_capacity(w.queries.len());
        let mut records = 0u64;
        for (qi, q) in w.queries.iter().enumerate() {
            let t0 = Instant::now();
            let (ans, stats) = lsm.exact(q)?;
            let elapsed = t0.elapsed().as_secs_f64();
            query_s += elapsed;
            latencies_ms.push(elapsed * 1e3);
            records += stats.records_fetched;
            let oracle = brute_force(&prefix, q);
            if ans.pos != oracle.pos {
                return Err(Error::corrupt(format!(
                    "streaming divergence at covered={covered}, query {qi}: \
                     LSM answered #{} at {:.6}, oracle #{} at {:.6}",
                    ans.pos, ans.dist, oracle.pos, oracle.dist
                )));
            }
        }
        let queries = w.queries.len() as f64;
        phases.push(Phase {
            covered,
            ingest_s,
            series_per_s: ingested as f64 / ingest_s.max(1e-9),
            runs: lsm.run_count(),
            avg_query_ms: query_s * 1e3 / queries,
            avg_records_fetched: records as f64 / queries,
            latency_ms: Percentiles::of(&mut latencies_ms),
        });
    }

    // Settle and fully compact; answers must survive both.
    lsm.wait_for_compactions()?;
    let t0 = Instant::now();
    lsm.compact()?;
    let compact_s = t0.elapsed().as_secs_f64();
    if lsm.run_count() != 1 {
        return Err(Error::corrupt("full compaction left more than one run"));
    }
    for (qi, q) in w.queries.iter().enumerate() {
        let (ans, _) = lsm.exact(q)?;
        let oracle = brute_force(&prefix, q);
        if ans.pos != oracle.pos {
            return Err(Error::corrupt(format!(
                "post-compaction divergence on query {qi}"
            )));
        }
    }

    let mut table = Table::new(
        "streaming",
        "LSM streaming ingest: throughput, run count, and query latency per batch",
        &[
            "covered",
            "ingest_s",
            "series_per_s",
            "runs",
            "avg_query_ms",
            "avg_records",
            "p50_ms",
            "p99_ms",
        ],
    );
    for p in &phases {
        table.push_row(vec![
            p.covered.to_string(),
            format!("{:.3}", p.ingest_s),
            format!("{:.0}", p.series_per_s),
            p.runs.to_string(),
            format!("{:.2}", p.avg_query_ms),
            format!("{:.0}", p.avg_records_fetched),
            format!("{:.2}", p.latency_ms.p50),
            format!("{:.2}", p.latency_ms.p99),
        ]);
    }
    table.emit(&env.results_dir)?;
    println!(
        "   oracle check: {} queries x {} phases identical to brute force; \
         full compaction to 1 run in {compact_s:.2}s\n",
        w.queries.len(),
        phases.len()
    );

    // Hand-rolled JSON (no serde in the offline workspace); one object per
    // phase keeps the baseline diffable PR over PR.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"streaming\",");
    let _ = writeln!(json, "  \"series\": {n},");
    let _ = writeln!(json, "  \"series_len\": {},", env.scale.series_len);
    let _ = writeln!(json, "  \"batches\": {},", phases.len());
    let _ = writeln!(json, "  \"queries_per_phase\": {},", w.queries.len());
    let _ = writeln!(
        json,
        "  \"policy\": \"tiered(ratio=4, tier_runs=3, max_runs=6)\","
    );
    let _ = writeln!(json, "  \"compact_all_s\": {compact_s:.3},");
    json.push_str("  \"phases\": [\n");
    for (i, p) in phases.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"covered\": {}, \"ingest_s\": {:.3}, \"series_per_s\": {:.0}, \
             \"runs\": {}, \"avg_query_ms\": {:.3}, \"avg_records_fetched\": {:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
            p.covered,
            p.ingest_s,
            p.series_per_s,
            p.runs,
            p.avg_query_ms,
            p.avg_records_fetched,
            p.latency_ms.p50,
            p.latency_ms.p99
        );
        json.push_str(if i + 1 < phases.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all(&env.results_dir)?;
    let path = env.results_dir.join("BENCH_streaming.json");
    std::fs::write(&path, json)?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_storage::TempDir;

    #[test]
    fn streaming_runs_verifies_and_writes_outputs() {
        let (w, r) = (
            TempDir::new("streaming-w").unwrap(),
            TempDir::new("streaming-r").unwrap(),
        );
        let env = Env {
            work_dir: w.path().to_path_buf(),
            results_dir: r.path().to_path_buf(),
            scale: crate::experiments::Scale {
                n: 600,
                series_len: 64,
                queries: 3,
                leaf_capacity: 32,
                threads: 2,
            },
        };
        run(&env).unwrap();
        let csv = std::fs::read_to_string(r.path().join("streaming.csv")).unwrap();
        assert!(csv.starts_with("covered,ingest_s"));
        assert_eq!(csv.lines().count(), 1 + 8, "{csv}");
        let json = std::fs::read_to_string(r.path().join("BENCH_streaming.json")).unwrap();
        assert!(json.contains("\"experiment\": \"streaming\""));
        assert!(json.contains("\"phases\""));
    }
}
