//! Sortability ablation: the paper's Figures 2/4 argument, measured.
//!
//! The paper's core claim is that *how you linearize the summarizations*
//! decides whether a bulk-loaded index works at all: z-ordered
//! (bit-interleaved) keys keep similar series in the same leaves, while
//! plain lexicographic SAX order clusters by the first segment only, so a
//! leaf neighborhood carries almost no information about similarity —
//! "an index that is built by sorting data series based on existing
//! summarizations degenerates to scanning the full dataset".
//!
//! We model both indexes the same way — sort keys, cut into leaves of the
//! configured capacity, answer approximate queries from the query's leaf
//! neighborhood — and compare (a) the locality of the sorted order and
//! (b) approximate answer quality, against the true nearest neighbor.

use coconut_series::distance::euclidean;
use coconut_storage::Result;
use coconut_summary::sax::Summarizer;
use coconut_summary::zorder::{interleave, lexicographic_key, ZKey};
use coconut_summary::SaxConfig;

use crate::data::{prepare, DataKind};
use crate::experiments::Env;
use crate::harness::Table;

/// Approximate answers from a simulated bulk-loaded index whose order is
/// given by `keys`: locate the query's insertion leaf, evaluate ±radius
/// leaves.
fn simulated_approx_dist(
    data: &[Vec<f32>],
    keys: &[(ZKey, usize)],
    query: &[f32],
    query_key: ZKey,
    leaf_capacity: usize,
    radius: usize,
) -> f64 {
    let n = keys.len();
    let slot = keys.partition_point(|&(k, _)| k <= query_key);
    let leaf = slot / leaf_capacity;
    let lo = leaf.saturating_sub(radius) * leaf_capacity;
    let hi = (((leaf + radius + 1) * leaf_capacity).min(n)).max(lo + 1);
    keys[lo..hi.min(n)]
        .iter()
        .map(|&(_, idx)| euclidean(query, &data[idx]))
        .fold(f64::INFINITY, f64::min)
}

/// Mean distance between neighbors in the sorted order (locality).
fn neighbor_locality(data: &[Vec<f32>], keys: &[(ZKey, usize)]) -> f64 {
    keys.windows(2)
        .map(|w| euclidean(&data[w[0].1], &data[w[1].1]))
        .sum::<f64>()
        / (keys.len() - 1) as f64
}

/// Run the ablation.
pub fn run(env: &Env) -> Result<()> {
    let mut table = Table::new(
        "ablation_sort",
        "z-order vs lexicographic summarization ordering (paper Figs. 2/4)",
        &[
            "ordering",
            "neighbor_dist",
            "approx_dist(r=0)",
            "approx_dist(r=1)",
            "vs_true_NN(r=0)",
        ],
    );
    let n = env.scale.n.min(10_000);
    let len = env.scale.series_len;
    let w = prepare(
        &env.work_dir,
        DataKind::RandomWalk,
        n,
        len,
        env.scale.queries,
        7,
    )?;
    let sax = SaxConfig::default_for_len(len);
    let mut summarizer = Summarizer::new(sax);

    // Load everything in memory (ablation runs at reduced scale).
    let mut data: Vec<Vec<f32>> = Vec::with_capacity(n as usize);
    {
        let mut scan = w.dataset.scan();
        while let Some((_, s)) = scan.next_series()? {
            data.push(s.to_vec());
        }
    }
    let mut word = vec![0u8; sax.segments];
    let words: Vec<Vec<u8>> = data
        .iter()
        .map(|s| {
            summarizer.sax_into(s, &mut word);
            word.clone()
        })
        .collect();

    let true_nn: Vec<f64> = w
        .queries
        .iter()
        .map(|q| {
            data.iter()
                .map(|s| euclidean(q, s))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    for (name, key_fn) in [
        ("z-order", interleave as fn(&[u8], u8) -> ZKey),
        ("lexicographic", lexicographic_key as fn(&[u8], u8) -> ZKey),
    ] {
        let mut keys: Vec<(ZKey, usize)> = words
            .iter()
            .enumerate()
            .map(|(i, w)| (key_fn(w, sax.card_bits), i))
            .collect();
        keys.sort_unstable();
        let locality = neighbor_locality(&data, &keys);
        let mut sum_r0 = 0.0;
        let mut sum_r1 = 0.0;
        let mut matches = 0usize;
        for (q, &best) in w.queries.iter().zip(true_nn.iter()) {
            summarizer.sax_into(q, &mut word);
            let qk = key_fn(&word, sax.card_bits);
            let d0 = simulated_approx_dist(&data, &keys, q, qk, env.scale.leaf_capacity, 0);
            let d1 = simulated_approx_dist(&data, &keys, q, qk, env.scale.leaf_capacity, 1);
            sum_r0 += d0;
            sum_r1 += d1;
            if d0 <= best * 1.10 {
                matches += 1; // within 10% of the true NN
            }
        }
        let nq = w.queries.len() as f64;
        table.push_row(vec![
            name.to_string(),
            format!("{locality:.3}"),
            format!("{:.3}", sum_r0 / nq),
            format!("{:.3}", sum_r1 / nq),
            format!("{:.0}%", 100.0 * matches as f64 / nq),
        ]);
    }
    // The reference point: the average true nearest-neighbor distance.
    let avg_true = true_nn.iter().sum::<f64>() / true_nn.len() as f64;
    table.push_row(vec![
        "true NN".into(),
        "-".into(),
        format!("{avg_true:.3}"),
        format!("{avg_true:.3}"),
        "100%".into(),
    ]);
    table.emit(&env.results_dir)
}
