//! One runner per table/figure of the paper's evaluation (Section 5).
//!
//! | id | paper content | runner |
//! |----|---------------|--------|
//! | fig7  | dataset value histograms | [`fig7::run`] |
//! | fig8a | construction, materialized, vs memory | [`fig8::run_8a`] |
//! | fig8b | construction, non-materialized, vs memory | [`fig8::run_8b`] |
//! | fig8c | index space overhead + occupancy | [`fig8::run_8c`] |
//! | fig8d | construction, materialized, fixed memory, growing N | [`fig8::run_8d`] |
//! | fig8e | construction, non-materialized, fixed memory, growing N | [`fig8::run_8e`] |
//! | fig8f | construction vs series length | [`fig8::run_8f`] |
//! | fig9a | exact query time vs N | [`fig9::run_9a`] |
//! | fig9b | approximate query time vs N | [`fig9::run_9b`] |
//! | fig9c | approximate query time, large config | [`fig9::run_9c`] |
//! | fig9d | approximate answer quality (radius sweep) | [`fig9::run_9d`] |
//! | fig9e | exact query time, large config (SIMS radius) | [`fig9::run_9e`] |
//! | fig9f | records visited during exact search | [`fig9::run_9f`] |
//! | fig10a | mixed insert/query workload (batch sweep) | [`fig10::run_10a`] |
//! | fig10b | astronomy end-to-end vs memory | [`fig10::run_10b`] |
//! | fig10c | seismic end-to-end vs memory | [`fig10::run_10c`] |
//! | ablation | z-order vs lexicographic ordering (Figs. 2/4) | [`ablation::run`] |
//! | scaling | sharded construction: build time vs shard count | [`scaling::run`] |
//! | bench_distance | distance-kernel baseline: scalar vs SIMD | [`bench_distance::run`] |
//! | streaming | LSM streaming ingest: throughput + latency vs run count | [`streaming::run`] |
//! | serve | open-loop socket load on the query server under churn | [`serve::run`] |
//! | distributed | scatter-gather kNN across shard worker processes | [`distributed::run`] |
//! | occupancy | leaf occupancy: fixed vs adaptive node splitting | [`occupancy::run`] |
//! | chaos | the TCP fabric under seeded fault schedules, oracle-checked | [`chaos::run`] |

pub mod ablation;
pub mod bench_distance;
pub mod chaos;
pub mod distributed;
pub mod fig10;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod occupancy;
pub mod scaling;
pub mod serve;
pub mod streaming;

use std::path::PathBuf;

/// Experiment scale: `quick` keeps `repro all` under a few minutes on a
/// laptop; `full` uses larger datasets for smoother curves.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Base dataset size (series).
    pub n: u64,
    /// Series length (points).
    pub series_len: usize,
    /// Queries per workload (the paper uses 100).
    pub queries: usize,
    /// Leaf capacity shared by all indexes (the paper uses 2000 at 100M+
    /// series; scaled to keep a comparable leaf count).
    pub leaf_capacity: usize,
    /// SIMS threads.
    pub threads: usize,
}

impl Scale {
    /// The fast CI-friendly scale.
    pub fn quick() -> Self {
        Scale {
            n: 6_000,
            series_len: 128,
            queries: 20,
            leaf_capacity: 100,
            threads: 4,
        }
    }

    /// The default reporting scale.
    pub fn full() -> Self {
        Scale {
            n: 40_000,
            series_len: 256,
            queries: 100,
            leaf_capacity: 200,
            threads: 4,
        }
    }
}

/// Where experiments run and deposit outputs.
#[derive(Debug, Clone)]
pub struct Env {
    /// Scratch directory (datasets, index files, sort runs).
    pub work_dir: PathBuf,
    /// Results directory (CSV outputs).
    pub results_dir: PathBuf,
    /// Scale parameters.
    pub scale: Scale,
}
