//! Figure 10: updates and complete (build + query) workloads.

use std::time::Instant;

use coconut_baselines::{AdsIndex, AdsVariant};
use coconut_core::{BuildOptions, CoconutTree, IndexConfig, LsmCoconut};
use coconut_series::index::SeriesIndex;
use coconut_storage::Result;
use coconut_summary::SaxConfig;

use crate::data::{prepare, DataKind};
use crate::experiments::Env;
use crate::harness::{fmt_mib, fmt_secs, Table};
use crate::zoo::{build_index, Algo, BuildParams};

/// Figure 10a: a mixed workload — an initial bulk load of half the data,
/// then alternating arrival batches and exact queries until everything is
/// indexed. Small batches favor ADS+'s cheap top-down inserts; large
/// batches favor Coconut's bulk loading ("CTree is the winner, because our
/// bulk loading algorithm has to perform less splits when larger pieces of
/// data are loaded"). `CTree-LSM` is the paper's future-work proposal.
pub fn run_10a(env: &Env) -> Result<()> {
    let mut table = Table::new(
        "fig10a",
        "mixed insert/query workload, varying arrival batch size",
        &[
            "algorithm",
            "batch",
            "total_time",
            "of_which_updates",
            "modeled_disk",
        ],
    );
    let n = env.scale.n;
    let len = env.scale.series_len;
    let w = prepare(
        &env.work_dir,
        DataKind::RandomWalk,
        n,
        len,
        env.scale.queries.min(20),
        7,
    )?;
    let initial = n / 2;
    let config = IndexConfig {
        sax: SaxConfig::default_for_len(len),
        leaf_capacity: env.scale.leaf_capacity,
        fill_factor: 1.0,
        internal_fanout: 64,
        split_policy: coconut_core::SplitPolicyKind::Fixed,
    };
    let opts = BuildOptions {
        memory_bytes: 16 << 20,
        materialized: false,
        threads: env.scale.threads,
        shards: 1,
    };

    for batch in [n / 100, n / 20, n / 5] {
        let batch = batch.max(1);
        // --- Coconut-Tree with B+-tree inserts.
        {
            let dir = coconut_storage::TempDir::new("fig10a-ct")?;
            let before = w.stats.snapshot();
            let t0 = Instant::now();
            let mut tree = CoconutTree::build_range(
                &w.dataset,
                0..initial,
                &config,
                dir.path(),
                opts.clone(),
            )?;
            let mut update_s = 0.0;
            let mut covered = initial;
            let mut qi = 0usize;
            while covered < n {
                let hi = (covered + batch).min(n);
                let series: Vec<Vec<f32>> = (covered..hi)
                    .map(|p| w.dataset.get(p))
                    .collect::<Result<_>>()?;
                let u0 = Instant::now();
                tree.insert_batch(covered, &series)?;
                update_s += u0.elapsed().as_secs_f64();
                covered = hi;
                for _ in 0..2 {
                    let q = &w.queries[qi % w.queries.len()];
                    qi += 1;
                    tree.exact_search(q)?;
                }
            }
            let wall = t0.elapsed().as_secs_f64();
            let io = w.stats.snapshot().since(&before);
            table.push_row(vec![
                "CTree".into(),
                batch.to_string(),
                fmt_secs(wall),
                fmt_secs(update_s),
                fmt_secs(wall + io.modeled_seconds(&coconut_storage::DiskProfile::default())),
            ]);
        }
        // --- Coconut LSM (future-work extension): every batch is a
        // bulk-loaded run.
        {
            let dir = coconut_storage::TempDir::new("fig10a-lsm")?;
            let before = w.stats.snapshot();
            let t0 = Instant::now();
            let lsm = LsmCoconut::new(config, opts.clone(), dir.path())?;
            lsm.ingest_upto(&w.dataset, initial)?;
            let mut update_s = 0.0;
            let mut covered = initial;
            let mut qi = 0usize;
            while covered < n {
                let hi = (covered + batch).min(n);
                let u0 = Instant::now();
                lsm.ingest_upto(&w.dataset, hi)?;
                update_s += u0.elapsed().as_secs_f64();
                covered = hi;
                for _ in 0..2 {
                    let q = &w.queries[qi % w.queries.len()];
                    qi += 1;
                    lsm.exact(q)?;
                }
            }
            let wall = t0.elapsed().as_secs_f64();
            let io = w.stats.snapshot().since(&before);
            table.push_row(vec![
                "CTree-LSM".into(),
                batch.to_string(),
                fmt_secs(wall),
                fmt_secs(update_s),
                fmt_secs(wall + io.modeled_seconds(&coconut_storage::DiskProfile::default())),
            ]);
        }
        // --- ADS+ with native top-down inserts.
        {
            let dir = coconut_storage::TempDir::new("fig10a-ads")?;
            let before = w.stats.snapshot();
            let t0 = Instant::now();
            let mut ads = AdsIndex::build_upto(
                &w.dataset,
                config.sax,
                env.scale.leaf_capacity,
                16 << 20,
                dir.path(),
                AdsVariant::Plus,
                env.scale.threads,
                initial,
            )?;
            let mut update_s = 0.0;
            let mut covered = initial;
            let mut qi = 0usize;
            while covered < n {
                let hi = (covered + batch).min(n);
                let u0 = Instant::now();
                ads.extend_to(hi)?;
                update_s += u0.elapsed().as_secs_f64();
                covered = hi;
                for _ in 0..2 {
                    let q = &w.queries[qi % w.queries.len()];
                    qi += 1;
                    ads.exact_search(q)?;
                }
            }
            let wall = t0.elapsed().as_secs_f64();
            let io = w.stats.snapshot().since(&before);
            table.push_row(vec![
                "ADS+".into(),
                batch.to_string(),
                fmt_secs(wall),
                fmt_secs(update_s),
                fmt_secs(wall + io.modeled_seconds(&coconut_storage::DiskProfile::default())),
            ]);
        }
    }
    table.emit(&env.results_dir)
}

fn run_complete(env: &Env, name: &str, kind: DataKind) -> Result<()> {
    let mut table = Table::new(
        name,
        &format!(
            "{} — complete workload: construction + exact queries vs memory",
            kind.name()
        ),
        &[
            "algorithm",
            "memory",
            "build",
            "queries",
            "total",
            "modeled_disk",
            "index_size",
        ],
    );
    let w = prepare(
        &env.work_dir,
        kind,
        env.scale.n,
        env.scale.series_len,
        env.scale.queries,
        7,
    )?;
    let raw = w.dataset.payload_bytes();
    for frac in [0.5f64, 0.1, 0.01] {
        let memory = ((raw as f64 * frac) as u64).max(4096);
        let params = BuildParams {
            leaf_capacity: env.scale.leaf_capacity,
            memory_bytes: memory,
            threads: env.scale.threads,
            shards: 1,
        };
        for algo in [Algo::CTree, Algo::CTreeFull, Algo::AdsPlus, Algo::AdsFull] {
            let dir = coconut_storage::TempDir::new("fig10bc")?;
            let before = w.stats.snapshot();
            let b0 = Instant::now();
            let idx = build_index(algo, &w, &params, dir.path())?;
            let build_s = b0.elapsed().as_secs_f64();
            let q0 = Instant::now();
            for q in &w.queries {
                idx.exact(q)?;
            }
            let query_s = q0.elapsed().as_secs_f64();
            let io = w.stats.snapshot().since(&before);
            let modeled =
                build_s + query_s + io.modeled_seconds(&coconut_storage::DiskProfile::default());
            table.push_row(vec![
                algo.name().to_string(),
                format!("{:.0}%", frac * 100.0),
                fmt_secs(build_s),
                fmt_secs(query_s),
                fmt_secs(build_s + query_s),
                fmt_secs(modeled),
                fmt_mib(idx.disk_bytes()),
            ]);
        }
    }
    table.emit(&env.results_dir)
}

/// Figure 10b: the astronomy complete workload.
pub fn run_10b(env: &Env) -> Result<()> {
    run_complete(env, "fig10b", DataKind::Astronomy)
}

/// Figure 10c: the seismic complete workload.
pub fn run_10c(env: &Env) -> Result<()> {
    run_complete(env, "fig10c", DataKind::Seismic)
}
