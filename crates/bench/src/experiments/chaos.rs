//! `repro chaos` — the distributed fabric under seeded fault schedules.
//!
//! Every round spawns real shard-worker processes (the same
//! `__shard-worker` re-exec the distributed experiment uses) and turns a
//! different screw:
//!
//! * **ingest faults** — workers run with `COCONUT_FAULTS` injecting
//!   fsync/spill errors into their build path; `BUILD` must either
//!   succeed or fail with a *typed* error and converge under retry;
//! * **socket faults** — dropped server reads/writes plus injected
//!   client-side connect/IO errors; the coordinator's retry budget must
//!   absorb them or surface a typed `unavailable`;
//! * **lossy link** — a seeded probabilistic drop on every reply write;
//! * **stalls** — injected read latency, absorbed under the deadline;
//! * **shard death** — a worker process is killed mid-workload; strict
//!   queries must refuse (`ERR unavailable`), degraded queries must name
//!   the dead slice and stay bit-exact over the live ones.
//!
//! The oracle is brute force: every `OK` reply is checked bit-for-bit
//! against an exhaustive scan of the dataset, restricted to the slices
//! the reply claims to cover. The run **hard-fails** unless every single
//! reply is bit-identical to that oracle or a correctly-typed
//! degraded/unavailable/deadline reply — a wrong answer, a panic, or an
//! untyped error is a divergence. Counters land in
//! `results/BENCH_chaos.json`.
//!
//! Schedules are randomized but seeded (`COCONUT_CHAOS_SEED` overrides
//! the default), so a failing run reproduces exactly.

use std::fmt::Write as _;
use std::ops::Range;
use std::time::Duration;

use coconut_series::dataset::Dataset;
use coconut_series::index::Answer;
use coconut_series::Value;
use coconut_server::{ClientConfig, CoordinatorEngine};
use coconut_storage::{fault, Error, Result};

use crate::data::{prepare, DataKind};
use crate::experiments::distributed::{
    field, fmt_query, parse_answer, parse_hits, same_answer, same_hits, spawn_worker,
};
use crate::experiments::Env;
use crate::harness::Table;

/// Shard worker processes per round.
const WORKERS: usize = 2;

/// k for the kNN queries.
const KNN_K: usize = 5;

/// Per-request deadline — generous; hitting it means a real hang.
const DEADLINE_MS: u64 = 30_000;

/// Attempts for `BUILD` to converge under injected ingest faults.
const BUILD_ATTEMPTS: usize = 8;

/// Default schedule seed (`COCONUT_CHAOS_SEED` overrides).
const DEFAULT_SEED: u64 = 0xC0C0_0009;

/// Queries per round (capped so retries under faults stay fast).
const QUERIES_PER_ROUND: usize = 8;

/// Deterministic schedule randomness (splitmix-style); no `rand`, no
/// wall-clock, so a seed reproduces the exact run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform pick from `lo..=hi`.
    fn pick(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// One fault schedule: what the workers get via `COCONUT_FAULTS`, what
/// the coordinator process installs locally, and whether a worker is
/// killed outright halfway through the workload.
struct Schedule {
    name: &'static str,
    worker_faults: Option<String>,
    client_faults: Option<String>,
    kill_worker: Option<usize>,
}

fn schedules(rng: &mut Rng) -> Vec<Schedule> {
    vec![
        Schedule {
            name: "ingest-faults",
            worker_faults: Some(format!(
                "atomic.fsync=err@{},extsort.spill=err@{}",
                rng.pick(1, 2),
                rng.pick(1, 3)
            )),
            client_faults: None,
            kill_worker: None,
        },
        Schedule {
            name: "socket-faults",
            worker_faults: Some(format!(
                "server.read=drop@{},server.write=drop@{}",
                rng.pick(2, 5),
                rng.pick(3, 6)
            )),
            client_faults: Some(format!(
                "client.io=err@{},client.connect=err@{}",
                rng.pick(1, 3),
                rng.pick(2, 4)
            )),
            kill_worker: None,
        },
        Schedule {
            name: "lossy-link",
            worker_faults: Some(format!("server.write=drop@p:0.{}", rng.pick(5, 15))),
            client_faults: None,
            kill_worker: None,
        },
        Schedule {
            name: "read-stalls",
            worker_faults: Some(format!(
                "server.read=stall:{}@every:{}",
                rng.pick(10, 40),
                rng.pick(2, 4)
            )),
            client_faults: None,
            kill_worker: None,
        },
        Schedule {
            name: "shard-death",
            worker_faults: None,
            client_faults: None,
            kill_worker: Some(1),
        },
    ]
}

/// A retry budget tuned for injected faults: enough attempts to absorb a
/// one-shot fault, short backoffs so a round stays fast, and a short
/// breaker hold-off so a killed shard fails fast but a recovered one is
/// re-probed within the same round.
fn client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(1000),
        request_timeout: Duration::from_millis(DEADLINE_MS),
        retries: 3,
        backoff_start: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(50),
        down_backoff_start: Duration::from_millis(100),
        down_backoff_cap: Duration::from_millis(500),
    }
}

/// Clears the process-global fault plan even when a round errors out.
struct FaultGuard;

impl Drop for FaultGuard {
    fn drop(&mut self) {
        fault::clear();
    }
}

/// What one reply turned out to be.
enum Verdict {
    /// `OK`, no hole, bit-identical to the full brute-force oracle.
    Identical,
    /// `OK degraded=1 missing=...`, bit-identical to the oracle over the
    /// slices it claims to cover.
    DegradedOk,
    /// A correctly-typed `ERR unavailable`/`ERR deadline` refusal.
    TypedFailure,
    /// Anything else: a wrong bit, a hit from a dead slice, an untyped
    /// error. One of these fails the whole run.
    Diverged(String),
}

/// Counters for one round.
#[derive(Default)]
struct RoundReport {
    requests: usize,
    identical: usize,
    degraded_ok: usize,
    typed_failures: usize,
    diverged: Vec<String>,
    build_retries: usize,
}

impl RoundReport {
    fn tally(&mut self, what: &str, v: Verdict) {
        self.requests += 1;
        match v {
            Verdict::Identical => self.identical += 1,
            Verdict::DegradedOk => self.degraded_ok += 1,
            Verdict::TypedFailure => self.typed_failures += 1,
            Verdict::Diverged(why) => self.diverged.push(format!("{what}: {why}")),
        }
    }
}

/// Parse the ` degraded=1 missing=a..b,c..d` suffix; no suffix means the
/// reply claims full coverage.
fn parse_missing(reply: &str, n: u64) -> std::result::Result<Vec<Range<u64>>, String> {
    if !reply.contains(" degraded=1 ") {
        return Ok(Vec::new());
    }
    let blob = field(reply, "missing=").map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    for part in blob.split(',') {
        let (a, b) = part
            .split_once("..")
            .ok_or_else(|| format!("bad missing slice {part:?} in {reply:?}"))?;
        let (a, b): (u64, u64) = match (a.parse(), b.parse()) {
            (Ok(a), Ok(b)) => (a, b),
            _ => return Err(format!("bad missing slice {part:?} in {reply:?}")),
        };
        if a >= b || b > n {
            return Err(format!("missing slice {part:?} out of bounds in {reply:?}"));
        }
        out.push(a..b);
    }
    Ok(out)
}

fn in_missing(missing: &[Range<u64>], pos: u64) -> bool {
    missing.iter().any(|r| r.contains(&pos))
}

/// Brute-force 1-NN over every position outside `missing` — the ground
/// truth a degraded reply must match bit for bit.
fn oracle_exact(ds: &Dataset, q: &[Value], missing: &[Range<u64>]) -> Result<Answer> {
    let mut best = Answer::none();
    for pos in 0..ds.len() {
        if in_missing(missing, pos) {
            continue;
        }
        let d = coconut_series::distance::euclidean(q, &ds.get(pos)?);
        if d < best.dist {
            best = Answer { pos, dist: d };
        }
    }
    Ok(best)
}

/// Brute-force hit list outside `missing`, merged exactly like the shard
/// fabric merges: `(dist, pos)` ascending.
fn oracle_hits(
    ds: &Dataset,
    q: &[Value],
    missing: &[Range<u64>],
    keep: impl Fn(f64) -> bool,
) -> Result<Vec<Answer>> {
    let mut all = Vec::new();
    for pos in 0..ds.len() {
        if in_missing(missing, pos) {
            continue;
        }
        let d = coconut_series::distance::euclidean(q, &ds.get(pos)?);
        if keep(d) {
            all.push(Answer { pos, dist: d });
        }
    }
    all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.pos.cmp(&b.pos)));
    Ok(all)
}

/// A typed refusal the chaos contract accepts.
fn typed_refusal(reply: &str) -> bool {
    reply.starts_with("ERR unavailable:") || reply.starts_with("ERR deadline:")
}

fn check_exact(reply: &str, ds: &Dataset, q: &[Value]) -> Result<Verdict> {
    if typed_refusal(reply) {
        return Ok(Verdict::TypedFailure);
    }
    if !reply.starts_with("OK exact ") {
        return Ok(Verdict::Diverged(reply.to_string()));
    }
    let missing = match parse_missing(reply, ds.len()) {
        Ok(m) => m,
        Err(why) => return Ok(Verdict::Diverged(why)),
    };
    let got = parse_answer(reply)?;
    let want = oracle_exact(ds, q, &missing)?;
    if !same_answer(&got, &want) {
        return Ok(Verdict::Diverged(format!(
            "exact answer {got:?} != oracle {want:?} in {reply:?}"
        )));
    }
    Ok(if missing.is_empty() {
        Verdict::Identical
    } else {
        Verdict::DegradedOk
    })
}

fn check_hits(
    reply: &str,
    ds: &Dataset,
    q: &[Value],
    prefix: &str,
    want_of: impl Fn(&[Range<u64>]) -> Result<Vec<Answer>>,
) -> Result<Verdict> {
    if typed_refusal(reply) {
        return Ok(Verdict::TypedFailure);
    }
    if !reply.starts_with(prefix) {
        return Ok(Verdict::Diverged(reply.to_string()));
    }
    let missing = match parse_missing(reply, ds.len()) {
        Ok(m) => m,
        Err(why) => return Ok(Verdict::Diverged(why)),
    };
    let got = parse_hits(reply)?;
    if let Some(hit) = got.iter().find(|a| in_missing(&missing, a.pos)) {
        return Ok(Verdict::Diverged(format!(
            "hit pos={} comes from a slice the reply claims is missing: {reply:?}",
            hit.pos
        )));
    }
    let want = want_of(&missing)?;
    if !same_hits(&got, &want) {
        return Ok(Verdict::Diverged(format!(
            "hits {got:?} != oracle {want:?} in {reply:?}"
        )));
    }
    let _ = q;
    Ok(if missing.is_empty() {
        Verdict::Identical
    } else {
        Verdict::DegradedOk
    })
}

/// Run one fault schedule end to end.
fn run_round(
    env: &Env,
    round: usize,
    sched: &Schedule,
    ds: &Dataset,
    data_path: &std::path::Path,
    queries: &[Vec<Value>],
    seed: u64,
) -> Result<RoundReport> {
    let n = ds.len();
    let leaf = env.scale.leaf_capacity;
    let mut report = RoundReport::default();

    // Workers, each with a fresh slice directory and the round's fault
    // schedule in its environment.
    let mut worker_envs: Vec<(&str, String)> = Vec::new();
    if let Some(faults) = &sched.worker_faults {
        worker_envs.push(("COCONUT_FAULTS", faults.clone()));
        worker_envs.push(("COCONUT_FAULT_SEED", (seed ^ round as u64).to_string()));
    }
    let mut workers = Vec::with_capacity(WORKERS);
    for i in 0..WORKERS {
        let dir = env.work_dir.join(format!("chaos-r{round}-s{i}"));
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        workers.push(spawn_worker(data_path, &dir, leaf, &worker_envs)?);
    }
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();

    // The coordinator's own process gets the client-side plan (connect
    // errors, mid-request resets on its shard sockets).
    let _guard = FaultGuard;
    if let Some(faults) = &sched.client_faults {
        fault::install(fault::FaultPlan::parse(faults, seed ^ round as u64)?);
    }

    let coord = CoordinatorEngine::new(
        &addrs,
        ds.clone(),
        client_config(),
        Some(Duration::from_millis(DEADLINE_MS)),
    )?;

    // BUILD must converge: a typed failure is acceptable per attempt (an
    // injected one-shot fault fires once), an untyped one never is.
    let mut built = false;
    for _ in 0..BUILD_ATTEMPTS {
        let reply = coord.execute_line(&format!("BUILD start=0 end={n}")).reply;
        if reply.starts_with("OK build") {
            let covered: u64 = field(&reply, "covered=")?
                .parse()
                .map_err(|_| Error::corrupt(format!("bad covered in {reply:?}")))?;
            if covered == n {
                built = true;
                break;
            }
            report.build_retries += 1;
        } else if typed_refusal(&reply) || reply.starts_with("ERR io:") {
            report.build_retries += 1;
        } else {
            return Err(Error::corrupt(format!(
                "round {}: BUILD answered an untyped error: {reply}",
                sched.name
            )));
        }
    }
    if !built {
        return Err(Error::corrupt(format!(
            "round {}: BUILD did not converge in {BUILD_ATTEMPTS} attempts",
            sched.name
        )));
    }

    for (qi, q) in queries.iter().enumerate() {
        // Mid-workload chaos: kill one worker outright.
        if qi == queries.len() / 2 {
            if let Some(idx) = sched.kill_worker {
                drop(workers.remove(idx));
                // Strict mode must now refuse with a typed error — an OK
                // over a dead slice would be silently wrong.
                let qs = fmt_query(&queries[0]);
                let reply = coord.execute_line(&format!("EXACT {qs}")).reply;
                let v = if typed_refusal(&reply) {
                    Verdict::TypedFailure
                } else {
                    Verdict::Diverged(format!("strict EXACT with a dead shard answered {reply:?}"))
                };
                report.tally("strict-after-kill", v);
            }
        }
        let qs = fmt_query(q);

        let reply = coord
            .execute_line(&format!(
                "EXACT {qs} mode=degraded deadline_ms={DEADLINE_MS}"
            ))
            .reply;
        report.tally("EXACT", check_exact(&reply, ds, q)?);

        let reply = coord
            .execute_line(&format!(
                "KNN k={KNN_K} {qs} mode=degraded deadline_ms={DEADLINE_MS}"
            ))
            .reply;
        report.tally(
            "KNN",
            check_hits(&reply, ds, q, "OK knn ", |missing| {
                let mut all = oracle_hits(ds, q, missing, |_| true)?;
                all.truncate(KNN_K);
                Ok(all)
            })?,
        );

        // A radius derived from the full-oracle 1-NN keeps hit lists
        // non-trivial but bounded.
        let full = oracle_exact(ds, q, &[])?;
        let eps = if full.is_some() && full.dist.is_finite() {
            (full.dist * 1.25).max(1e-3)
        } else {
            1.0
        };
        let reply = coord
            .execute_line(&format!(
                "RANGE eps={eps} {qs} mode=degraded deadline_ms={DEADLINE_MS}"
            ))
            .reply;
        report.tally(
            "RANGE",
            check_hits(&reply, ds, q, "OK range ", |missing| {
                oracle_hits(ds, q, missing, |d| d <= eps)
            })?,
        );
    }
    drop(workers); // kills the surviving children
    Ok(report)
}

/// Run the experiment and write `BENCH_chaos.json`.
pub fn run(env: &Env) -> Result<()> {
    let seed = std::env::var("COCONUT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let mut rng = Rng(seed);

    // Chaos cares about fault coverage, not scale: a small dataset keeps
    // the brute-force oracle instant and rounds under a few seconds.
    let n = env.scale.n.min(3_000);
    let w = prepare(
        &env.work_dir,
        DataKind::RandomWalk,
        n,
        env.scale.series_len,
        env.scale.queries.min(QUERIES_PER_ROUND),
        23,
    )?;

    let mut table = Table::new(
        "chaos",
        "the TCP fabric under seeded fault schedules, brute-force-oracle-checked",
        &[
            "round",
            "requests",
            "identical",
            "degraded_ok",
            "typed_failures",
            "build_retries",
            "diverged",
        ],
    );
    let mut rows = Vec::new();
    for (round, sched) in schedules(&mut rng).iter().enumerate() {
        println!(
            "   round {round} ({}): workers={:?} client={:?} kill={:?}",
            sched.name, sched.worker_faults, sched.client_faults, sched.kill_worker
        );
        let report = run_round(env, round, sched, &w.dataset, &w.path, &w.queries, seed)?;
        println!(
            "   round {round} ({}): {} requests — {} identical, {} degraded, {} typed failures, {} diverged",
            sched.name,
            report.requests,
            report.identical,
            report.degraded_ok,
            report.typed_failures,
            report.diverged.len()
        );
        for why in &report.diverged {
            eprintln!("   DIVERGED ({}): {why}", sched.name);
        }
        rows.push((sched.name, report));
    }

    let total_diverged: usize = rows.iter().map(|(_, r)| r.diverged.len()).sum();
    let total_degraded: usize = rows.iter().map(|(_, r)| r.degraded_ok).sum();
    let total_typed: usize = rows.iter().map(|(_, r)| r.typed_failures).sum();
    for (name, r) in &rows {
        table.push_row(vec![
            (*name).to_string(),
            r.requests.to_string(),
            r.identical.to_string(),
            r.degraded_ok.to_string(),
            r.typed_failures.to_string(),
            r.build_retries.to_string(),
            r.diverged.len().to_string(),
        ]);
    }
    table.emit(&env.results_dir)?;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"chaos\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"series\": {n},");
    let _ = writeln!(json, "  \"series_len\": {},", env.scale.series_len);
    let _ = writeln!(json, "  \"workers\": {WORKERS},");
    let _ = writeln!(json, "  \"diverged\": {total_diverged},");
    json.push_str("  \"rounds\": [\n");
    let count = rows.len();
    for (i, (name, r)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"round\": \"{name}\", \"requests\": {}, \"identical\": {}, \
             \"degraded_ok\": {}, \"typed_failures\": {}, \"build_retries\": {}, \
             \"diverged\": {}}}{}",
            r.requests,
            r.identical,
            r.degraded_ok,
            r.typed_failures,
            r.build_retries,
            r.diverged.len(),
            if i + 1 == count { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all(&env.results_dir)?;
    let path = env.results_dir.join("BENCH_chaos.json");
    std::fs::write(&path, json)?;
    println!("wrote {}", path.display());

    if total_diverged > 0 {
        return Err(Error::corrupt(format!(
            "{total_diverged} chaos replies diverged from the brute-force oracle"
        )));
    }
    // The contract is only meaningful if the schedules demonstrably
    // exercised both failure shapes.
    if total_degraded == 0 || total_typed == 0 {
        return Err(Error::corrupt(format!(
            "chaos schedules exercised too little: {total_degraded} degraded, \
             {total_typed} typed failures (expected at least one of each)"
        )));
    }
    println!(
        "   oracle check: every reply bit-identical to the brute-force oracle \
         or a correctly-typed degraded/unavailable reply\n"
    );
    Ok(())
}
