//! Experiment harness reproducing the Coconut paper's evaluation.
//!
//! Every figure of the paper's Section 5 has a runner in [`experiments`];
//! the `repro` binary dispatches to them (`repro fig8a`, `repro all`, ...).
//! Runners print the same rows/series the paper reports and write CSVs to
//! `results/`.
//!
//! Because the original testbed (5×2TB RAID0, 100–277 GB datasets) cannot
//! be reproduced on a laptop, every measurement reports **both** wall-clock
//! time and the modeled disk time of the I/O trace under a spinning-disk
//! profile ([`coconut_storage::DiskProfile`]) — the paper's claims are
//! about I/O behaviour, and the modeled column is hardware-independent.

pub mod data;
pub mod experiments;
pub mod harness;
pub mod zoo;

pub use coconut_storage::Result;
