//! The algorithm zoo: one uniform way to build every index in the paper.

use std::path::Path;

use coconut_baselines::{
    AdsIndex, AdsVariant, DsTree, Isax2Index, RTreeIndex, SerialScan, VerticalIndex,
};
use coconut_core::{BuildOptions, CoconutTree, CoconutTrie, IndexConfig};
use coconut_series::index::SeriesIndex;
use coconut_storage::Result;
use coconut_summary::SaxConfig;

use crate::data::Workload;

/// Every indexing algorithm evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Coconut-Tree, non-materialized.
    CTree,
    /// Coconut-Tree-Full (materialized).
    CTreeFull,
    /// Coconut-Trie, non-materialized.
    CTrie,
    /// Coconut-Trie-Full (materialized).
    CTrieFull,
    /// ADS+ (adaptive, non-materialized).
    AdsPlus,
    /// ADSFull (clustered, materialized).
    AdsFull,
    /// STR-bulk-loaded R-tree, materialized.
    RTree,
    /// R-tree+, non-materialized.
    RTreePlus,
    /// iSAX 2.0 (top-down inserts).
    Isax2,
    /// DSTree (adaptive segmentation, materialized).
    DsTreeAlgo,
    /// Vertical (stepwise DHWT).
    Vertical,
    /// Brute-force scan (no index).
    Scan,
}

impl Algo {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::CTree => "CTree",
            Algo::CTreeFull => "CTreeFull",
            Algo::CTrie => "CTrie",
            Algo::CTrieFull => "CTrieFull",
            Algo::AdsPlus => "ADS+",
            Algo::AdsFull => "ADSFull",
            Algo::RTree => "R-tree",
            Algo::RTreePlus => "R-tree+",
            Algo::Isax2 => "iSAX2.0",
            Algo::DsTreeAlgo => "DSTree",
            Algo::Vertical => "Vertical",
            Algo::Scan => "SerialScan",
        }
    }

    /// The materialized contestants of Figure 8a.
    pub fn materialized_set() -> &'static [Algo] {
        &[
            Algo::CTreeFull,
            Algo::CTrieFull,
            Algo::AdsFull,
            Algo::RTree,
            Algo::Vertical,
            Algo::DsTreeAlgo,
        ]
    }

    /// The non-materialized contestants of Figure 8b.
    pub fn non_materialized_set() -> &'static [Algo] {
        &[Algo::CTree, Algo::CTrie, Algo::AdsPlus, Algo::RTreePlus]
    }
}

/// Common build parameters for a fair comparison (same leaf size for all
/// indexes, as in the paper).
#[derive(Debug, Clone, Copy)]
pub struct BuildParams {
    /// Leaf capacity in records.
    pub leaf_capacity: usize,
    /// Memory available to the construction algorithm.
    pub memory_bytes: u64,
    /// Threads for the SIMS scans.
    pub threads: usize,
    /// Key-range shards for the build's scan/sort phase (1 = single sorter).
    pub shards: usize,
}

impl Default for BuildParams {
    fn default() -> Self {
        BuildParams {
            leaf_capacity: 200,
            memory_bytes: 64 << 20,
            threads: 4,
            shards: 1,
        }
    }
}

/// Build `algo` over the workload's dataset. Index files and sort scratch
/// go into `dir`.
pub fn build_index(
    algo: Algo,
    w: &Workload,
    params: &BuildParams,
    dir: &Path,
) -> Result<Box<dyn SeriesIndex>> {
    let len = w.dataset.series_len();
    let sax = SaxConfig::default_for_len(len);
    let config = IndexConfig {
        sax,
        leaf_capacity: params.leaf_capacity,
        fill_factor: 1.0,
        internal_fanout: 64,
        split_policy: coconut_core::SplitPolicyKind::Fixed,
    };
    let opts = BuildOptions {
        memory_bytes: params.memory_bytes,
        materialized: false,
        threads: params.threads,
        shards: params.shards,
    };
    Ok(match algo {
        Algo::CTree => Box::new(CoconutTree::build(&w.dataset, &config, dir, opts)?),
        Algo::CTreeFull => Box::new(CoconutTree::build(
            &w.dataset,
            &config,
            dir,
            opts.materialized(),
        )?),
        Algo::CTrie => Box::new(CoconutTrie::build(&w.dataset, &config, dir, opts)?),
        Algo::CTrieFull => Box::new(CoconutTrie::build(
            &w.dataset,
            &config,
            dir,
            opts.materialized(),
        )?),
        Algo::AdsPlus => Box::new(AdsIndex::build(
            &w.dataset,
            sax,
            params.leaf_capacity,
            params.memory_bytes,
            dir,
            AdsVariant::Plus,
            params.threads,
        )?),
        Algo::AdsFull => Box::new(AdsIndex::build(
            &w.dataset,
            sax,
            params.leaf_capacity,
            params.memory_bytes,
            dir,
            AdsVariant::Full,
            params.threads,
        )?),
        Algo::RTree => Box::new(RTreeIndex::build(
            &w.dataset,
            sax,
            params.leaf_capacity,
            true,
            dir,
        )?),
        Algo::RTreePlus => Box::new(RTreeIndex::build(
            &w.dataset,
            sax,
            params.leaf_capacity,
            false,
            dir,
        )?),
        Algo::Isax2 => Box::new(Isax2Index::build(
            &w.dataset,
            sax,
            params.leaf_capacity,
            params.memory_bytes,
            dir,
        )?),
        Algo::DsTreeAlgo => Box::new(DsTree::build(&w.dataset, params.leaf_capacity, dir)?),
        Algo::Vertical => Box::new(VerticalIndex::build(&w.dataset, dir)?),
        Algo::Scan => Box::new(SerialScan::new(&w.dataset)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{prepare, DataKind};
    use coconut_storage::TempDir;

    #[test]
    fn every_algo_builds_and_answers() {
        let dir = TempDir::new("zoo").unwrap();
        let w = prepare(dir.path(), DataKind::RandomWalk, 300, 64, 3, 11).unwrap();
        let params = BuildParams {
            leaf_capacity: 32,
            memory_bytes: 1 << 20,
            threads: 2,
            shards: 1,
        };
        let algos = [
            Algo::CTree,
            Algo::CTreeFull,
            Algo::CTrie,
            Algo::CTrieFull,
            Algo::AdsPlus,
            Algo::AdsFull,
            Algo::RTree,
            Algo::RTreePlus,
            Algo::Isax2,
            Algo::DsTreeAlgo,
            Algo::Vertical,
            Algo::Scan,
        ];
        // All exact answers must agree with the serial scan's.
        let scan = build_index(Algo::Scan, &w, &params, dir.path()).unwrap();
        let q = &w.queries[0];
        let (truth, _) = scan.exact(q).unwrap();
        for algo in algos {
            let idx = build_index(algo, &w, &params, dir.path()).unwrap();
            assert_eq!(idx.name(), algo.name());
            let (ans, _) = idx.exact(q).unwrap();
            assert_eq!(ans.pos, truth.pos, "{} disagrees with scan", algo.name());
            let approx = idx.approximate(q).unwrap();
            assert!(approx.dist + 1e-9 >= ans.dist, "{}", algo.name());
        }
    }
}
