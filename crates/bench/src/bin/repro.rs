//! `repro` — regenerate every table and figure of the Coconut paper.
//!
//! ```text
//! repro <experiment>... [--full] [--work-dir DIR] [--results-dir DIR]
//!                       [--n N] [--len L] [--queries Q]
//!
//! experiments: fig7 fig8a fig8b fig8c fig8d fig8e fig8f
//!              fig9a fig9b fig9c fig9d fig9e fig9f
//!              fig10a fig10b fig10c ablation scaling bench_distance
//!              streaming serve distributed occupancy
//!              fig8 fig9 fig10 all
//! ```
//!
//! `--full` uses the larger reporting scale (slower, smoother curves);
//! the default quick scale finishes the whole suite in minutes.

use std::path::PathBuf;
use std::process::ExitCode;

use coconut_bench::experiments::{self, Env, Scale};
use coconut_storage::TempDir;

const ALL: &[&str] = &[
    "fig7",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig8d",
    "fig8e",
    "fig8f",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig9d",
    "fig9e",
    "fig9f",
    "fig10a",
    "fig10b",
    "fig10c",
    "ablation",
    "scaling",
    "bench_distance",
    "streaming",
    "serve",
    "distributed",
    "occupancy",
    "chaos",
];

fn expand(arg: &str) -> Vec<&'static str> {
    match arg {
        "all" => ALL.to_vec(),
        "fig8" => ALL
            .iter()
            .copied()
            .filter(|e| e.starts_with("fig8"))
            .collect(),
        "fig9" => ALL
            .iter()
            .copied()
            .filter(|e| e.starts_with("fig9"))
            .collect(),
        "fig10" => ALL
            .iter()
            .copied()
            .filter(|e| e.starts_with("fig10"))
            .collect(),
        other => ALL.iter().copied().filter(|&e| e == other).collect(),
    }
}

fn run_experiment(name: &str, env: &Env) -> coconut_storage::Result<()> {
    match name {
        "fig7" => experiments::fig7::run(env),
        "fig8a" => experiments::fig8::run_8a(env),
        "fig8b" => experiments::fig8::run_8b(env),
        "fig8c" => experiments::fig8::run_8c(env),
        "fig8d" => experiments::fig8::run_8d(env),
        "fig8e" => experiments::fig8::run_8e(env),
        "fig8f" => experiments::fig8::run_8f(env),
        "fig9a" => experiments::fig9::run_9a(env),
        "fig9b" => experiments::fig9::run_9b(env),
        "fig9c" => experiments::fig9::run_9c(env),
        "fig9d" => experiments::fig9::run_9d(env),
        "fig9e" => experiments::fig9::run_9e(env),
        "fig9f" => experiments::fig9::run_9f(env),
        "fig10a" => experiments::fig10::run_10a(env),
        "fig10b" => experiments::fig10::run_10b(env),
        "fig10c" => experiments::fig10::run_10c(env),
        "ablation" => experiments::ablation::run(env),
        "scaling" => experiments::scaling::run(env),
        "bench_distance" => experiments::bench_distance::run(env),
        "streaming" => experiments::streaming::run(env),
        "serve" => experiments::serve::run(env),
        "distributed" => experiments::distributed::run(env),
        "occupancy" => experiments::occupancy::run(env),
        "chaos" => experiments::chaos::run(env),
        _ => unreachable!("expand() only yields known names"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Re-exec mode: the distributed experiment spawns this binary as its
    // shard worker processes.
    if args.first().map(String::as_str) == Some("__shard-worker") {
        return match experiments::distributed::worker_main(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("shard worker failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut experiments_to_run: Vec<&str> = Vec::new();
    let mut scale = Scale::quick();
    let mut work_dir: Option<PathBuf> = None;
    let mut results_dir = PathBuf::from("results");

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => scale = Scale::full(),
            "--work-dir" => {
                work_dir = it.next().map(PathBuf::from);
            }
            "--results-dir" => {
                if let Some(d) = it.next() {
                    results_dir = PathBuf::from(d);
                }
            }
            // Scale overrides, mainly for smoke tests of the process-
            // spawning experiments.
            "--n" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    scale.n = v;
                }
            }
            "--len" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    scale.series_len = v;
                }
            }
            "--queries" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    scale.queries = v;
                }
            }
            "-h" | "--help" => {
                println!(
                    "usage: repro <experiment>... [--full] [--work-dir DIR] [--results-dir DIR]\n\
                     \x20                          [--n N] [--len L] [--queries Q]\n\
                     experiments: {} fig8 fig9 fig10 all",
                    ALL.join(" ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                let expanded = expand(other);
                if expanded.is_empty() {
                    eprintln!("unknown experiment '{other}' (try --help)");
                    return ExitCode::FAILURE;
                }
                experiments_to_run.extend(expanded);
            }
        }
    }
    if experiments_to_run.is_empty() {
        eprintln!("no experiment given (try --help, or 'repro all')");
        return ExitCode::FAILURE;
    }

    // Scratch space: reused across experiments so datasets are generated
    // once; deleted at exit unless the caller chose a directory.
    let _tmp_guard;
    let work_dir = match work_dir {
        Some(d) => {
            if let Err(e) = std::fs::create_dir_all(&d) {
                eprintln!("cannot create work dir: {e}");
                return ExitCode::FAILURE;
            }
            d
        }
        None => {
            let tmp = TempDir::new("repro").expect("temp dir");
            let path = tmp.path().to_path_buf();
            _tmp_guard = tmp;
            path
        }
    };

    let env = Env {
        work_dir,
        results_dir,
        scale,
    };
    println!(
        "# Coconut reproduction — scale: {} series x {} points, {} queries\n",
        env.scale.n, env.scale.series_len, env.scale.queries
    );
    for name in experiments_to_run {
        println!("## running {name}\n");
        if let Err(e) = run_experiment(name, &env) {
            eprintln!("{name} failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
