//! Property-based tests for the summarization pipeline.
//!
//! These check the invariants the paper's correctness rests on, over
//! arbitrary inputs:
//!
//! 1. interleave/deinterleave is a bijection (sortable summarizations lose
//!    no information — Section 4.1);
//! 2. MINDIST lower-bounds the true Euclidean distance for every
//!    granularity (word, node mask, z-order key);
//! 3. refining an iSAX mask never loosens the bound;
//! 4. z-ordering preserves the prefix structure (a key's trie node always
//!    contains the key).

use coconut_series::distance::{euclidean, znormalize};
use coconut_series::Value;
use coconut_summary::breakpoints::symbol_for;
use coconut_summary::config::SaxConfig;
use coconut_summary::isax::IsaxMask;
use coconut_summary::mindist::{mindist_paa_isax, mindist_paa_sax, mindist_paa_zkey};
use coconut_summary::paa::paa;
use coconut_summary::sax::sax_word;
use coconut_summary::zorder::{deinterleave, interleave, lexicographic_key};
use proptest::prelude::*;

fn series_strategy(len: usize) -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(-1000.0f32..1000.0f32, len)
}

fn znormed(len: usize) -> impl Strategy<Value = Vec<Value>> {
    series_strategy(len).prop_map(|mut s| {
        znormalize(&mut s);
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn interleave_roundtrips(symbols in proptest::collection::vec(any::<u8>(), 1..=16)) {
        let key = interleave(&symbols, 8);
        prop_assert_eq!(deinterleave(key, symbols.len(), 8), symbols);
    }

    #[test]
    fn interleave_roundtrips_small_cardinality(
        symbols in proptest::collection::vec(0u8..16, 1..=32),
    ) {
        let key = interleave(&symbols, 4);
        prop_assert_eq!(deinterleave(key, symbols.len(), 4), symbols);
    }

    #[test]
    fn interleave_is_injective(
        a in proptest::collection::vec(any::<u8>(), 16),
        b in proptest::collection::vec(any::<u8>(), 16),
    ) {
        let ka = interleave(&a, 8);
        let kb = interleave(&b, 8);
        prop_assert_eq!(ka == kb, a == b);
    }

    #[test]
    fn mindist_word_lower_bounds_euclidean(
        q in znormed(64),
        s in znormed(64),
    ) {
        let cfg = SaxConfig { series_len: 64, segments: 8, card_bits: 8 };
        let qp = paa(&q, cfg.segments);
        let word = sax_word(&s, &cfg);
        let md = mindist_paa_sax(&qp, word.symbols(), &cfg);
        let ed = euclidean(&q, &s);
        prop_assert!(md <= ed + 1e-4, "mindist {} > euclidean {}", md, ed);
    }

    #[test]
    fn mindist_zkey_agrees_with_word(
        q in znormed(64),
        s in znormed(64),
    ) {
        let cfg = SaxConfig { series_len: 64, segments: 8, card_bits: 8 };
        let qp = paa(&q, cfg.segments);
        let word = sax_word(&s, &cfg);
        let key = interleave(word.symbols(), cfg.card_bits);
        let a = mindist_paa_sax(&qp, word.symbols(), &cfg);
        let b = mindist_paa_zkey(&qp, key, &cfg);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn mask_refinement_is_monotone(
        q in znormed(64),
        s in znormed(64),
        depth_a in 0usize..=64,
        depth_b in 0usize..=64,
    ) {
        let cfg = SaxConfig { series_len: 64, segments: 8, card_bits: 8 };
        let (lo, hi) = if depth_a <= depth_b { (depth_a, depth_b) } else { (depth_b, depth_a) };
        let qp = paa(&q, cfg.segments);
        let word = sax_word(&s, &cfg);
        let key = interleave(word.symbols(), cfg.card_bits);
        let coarse = mindist_paa_isax(&qp, &IsaxMask::from_zorder_prefix(key, lo, &cfg), &cfg);
        let fine = mindist_paa_isax(&qp, &IsaxMask::from_zorder_prefix(key, hi, &cfg), &cfg);
        prop_assert!(coarse <= fine + 1e-9);
        let ed = euclidean(&q, &s);
        prop_assert!(fine <= ed + 1e-4);
    }

    #[test]
    fn node_mask_contains_its_key(
        s in znormed(64),
        depth in 0usize..=64,
    ) {
        let cfg = SaxConfig { series_len: 64, segments: 8, card_bits: 8 };
        let word = sax_word(&s, &cfg);
        let key = interleave(word.symbols(), cfg.card_bits);
        let mask = IsaxMask::from_zorder_prefix(key, depth, &cfg);
        prop_assert!(mask.matches(word.symbols(), cfg.card_bits));
    }

    #[test]
    fn symbol_prefix_property_holds_for_all_values(v in -50.0f64..50.0) {
        let fine = symbol_for(8, v);
        for bits in 1..=8u8 {
            prop_assert_eq!(fine >> (8 - bits), symbol_for(bits, v));
        }
    }

    #[test]
    fn shared_zorder_prefix_implies_shared_sax_prefixes(
        a in proptest::collection::vec(any::<u8>(), 8),
        b in proptest::collection::vec(any::<u8>(), 8),
    ) {
        // If two keys agree on their first d interleaved bits, then for
        // every segment the symbols agree on their first (d assigned) bits.
        let cfg = SaxConfig { series_len: 64, segments: 8, card_bits: 8 };
        let ka = interleave(&a, 8);
        let kb = interleave(&b, 8);
        let total = cfg.word_bits();
        let mut common = 0usize;
        while common < total && ka.bit(common, total) == kb.bit(common, total) {
            common += 1;
        }
        let mask_a = IsaxMask::from_zorder_prefix(ka, common, &cfg);
        prop_assert!(mask_a.matches(&b, 8),
            "b must fall under a's node at the common depth {}", common);
    }

    #[test]
    fn lexicographic_key_sorts_by_first_segment(
        a in proptest::collection::vec(any::<u8>(), 4),
        b in proptest::collection::vec(any::<u8>(), 4),
    ) {
        // Sanity for the ablation: lexicographic keys compare first by
        // segment 0, ignoring all other segments unless tied.
        if a[0] != b[0] {
            let ka = lexicographic_key(&a, 8);
            let kb = lexicographic_key(&b, 8);
            prop_assert_eq!(ka < kb, a[0] < b[0]);
        }
    }

    #[test]
    fn batched_mindist_is_dispatch_invariant(
        q in znormed(64),
        words in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 8), 1..40),
    ) {
        // The batched kernel (block decode + table gather) must produce
        // bit-identical bounds to the one-key-at-a-time path on every
        // dispatch, for any key count (incl. non-multiple-of-8 remainders).
        use coconut_series::simd::Dispatch;
        use coconut_summary::mindist::QueryDistTable;
        let cfg = SaxConfig { series_len: 64, segments: 8, card_bits: 8 };
        let qp = paa(&q, cfg.segments);
        let keys: Vec<_> = words.iter().map(|w| interleave(w, cfg.card_bits)).collect();
        let table = QueryDistTable::new(&qp, &cfg);
        let expect: Vec<f64> =
            keys.iter().map(|&k| mindist_paa_zkey(&qp, k, &cfg)).collect();
        for dispatch in [Dispatch::Scalar, Dispatch::Avx2] {
            let mut out = vec![0.0f64; keys.len()];
            table.mindist_batch_into_with(dispatch, &keys, &mut out);
            for (got, want) in out.iter().zip(expect.iter()) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn batched_mindist_handles_wide_configs(
        q in znormed(120),
        words in proptest::collection::vec(proptest::collection::vec(0u8..16, 30), 1..20),
    ) {
        // 30 segments × 4 bits = 120-bit keys: exercises the high-word half
        // of the pext decode plan and the widest stack scratch.
        use coconut_series::simd::Dispatch;
        use coconut_summary::mindist::QueryDistTable;
        let cfg = SaxConfig { series_len: 120, segments: 30, card_bits: 4 };
        let qp = paa(&q, cfg.segments);
        let keys: Vec<_> = words.iter().map(|w| interleave(w, cfg.card_bits)).collect();
        let table = QueryDistTable::new(&qp, &cfg);
        for dispatch in [Dispatch::Scalar, Dispatch::Avx2] {
            let mut out = vec![0.0f64; keys.len()];
            table.mindist_batch_into_with(dispatch, &keys, &mut out);
            for (&got, &k) in out.iter().zip(keys.iter()) {
                prop_assert_eq!(got.to_bits(), mindist_paa_zkey(&qp, k, &cfg).to_bits());
            }
        }
    }
}
