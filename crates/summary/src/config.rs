//! The summarization configuration shared by all indexes.

use coconut_storage::{Error, Result};

/// Parameters of the SAX summarization: how a series of `series_len` points
/// becomes a word of `segments` symbols of `card_bits` bits each.
///
/// The workspace default matches the iSAX literature and the paper's setup:
/// 16 segments at cardinality 256 (8 bits), i.e. a 16-byte word per series —
/// "the SAX summaries of 1 billion data series occupy merely 16 GB".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaxConfig {
    /// Points per series.
    pub series_len: usize,
    /// Number of PAA segments (`w`).
    pub segments: usize,
    /// Bits per symbol (`b`); cardinality is `2^b`, at most 8.
    pub card_bits: u8,
}

impl SaxConfig {
    /// The standard configuration for a given series length: 16 segments ×
    /// 256 cardinality (fewer segments when the series is shorter than 16).
    pub fn default_for_len(series_len: usize) -> Self {
        SaxConfig {
            series_len,
            segments: 16.min(series_len.max(1)),
            card_bits: 8,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.series_len == 0 {
            return Err(Error::invalid("series_len must be positive"));
        }
        if self.segments == 0 || self.segments > self.series_len {
            return Err(Error::invalid(format!(
                "segments ({}) must be in 1..=series_len ({})",
                self.segments, self.series_len
            )));
        }
        if self.segments > 32 {
            // The query and summarization hot paths decode words into
            // fixed 32-byte stack scratch (`mindist`, `Summarizer`); more
            // segments than that would overrun it at query time.
            return Err(Error::invalid(format!(
                "segments ({}) exceeds the supported maximum of 32",
                self.segments
            )));
        }
        if self.card_bits == 0 || self.card_bits > 8 {
            return Err(Error::invalid("card_bits must be in 1..=8"));
        }
        if self.segments * self.card_bits as usize > 128 {
            return Err(Error::invalid(format!(
                "segments*card_bits = {} exceeds the 128-bit key budget",
                self.segments * self.card_bits as usize
            )));
        }
        Ok(())
    }

    /// Cardinality (`2^card_bits`).
    pub fn cardinality(&self) -> usize {
        1usize << self.card_bits
    }

    /// Total bits in a full-resolution word (`segments * card_bits`).
    pub fn word_bits(&self) -> usize {
        self.segments * self.card_bits as usize
    }

    /// Bytes used to store one SAX word (one byte per segment).
    pub fn word_bytes(&self) -> usize {
        self.segments
    }
}

impl Default for SaxConfig {
    fn default() -> Self {
        Self::default_for_len(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = SaxConfig::default();
        c.validate().unwrap();
        assert_eq!(c.series_len, 256);
        assert_eq!(c.segments, 16);
        assert_eq!(c.cardinality(), 256);
        assert_eq!(c.word_bits(), 128);
        assert_eq!(c.word_bytes(), 16);
    }

    #[test]
    fn short_series_get_fewer_segments() {
        let c = SaxConfig::default_for_len(8);
        c.validate().unwrap();
        assert_eq!(c.segments, 8);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SaxConfig {
            series_len: 0,
            segments: 1,
            card_bits: 8
        }
        .validate()
        .is_err());
        assert!(SaxConfig {
            series_len: 8,
            segments: 0,
            card_bits: 8
        }
        .validate()
        .is_err());
        assert!(SaxConfig {
            series_len: 8,
            segments: 9,
            card_bits: 8
        }
        .validate()
        .is_err());
        assert!(SaxConfig {
            series_len: 256,
            segments: 16,
            card_bits: 0
        }
        .validate()
        .is_err());
        assert!(SaxConfig {
            series_len: 256,
            segments: 16,
            card_bits: 9
        }
        .validate()
        .is_err());
        assert!(SaxConfig {
            series_len: 256,
            segments: 32,
            card_bits: 8
        }
        .validate()
        .is_err());
        // Fits the 128-bit key budget but overruns the 32-segment stack
        // scratch the query path decodes into.
        assert!(SaxConfig {
            series_len: 128,
            segments: 64,
            card_bits: 2
        }
        .validate()
        .is_err());
    }

    #[test]
    fn word_bits_fit_key_budget() {
        let c = SaxConfig {
            series_len: 256,
            segments: 32,
            card_bits: 4,
        };
        c.validate().unwrap();
        assert_eq!(c.word_bits(), 128);
    }
}
