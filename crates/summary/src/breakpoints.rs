//! Standard-normal quantile breakpoints for SAX.
//!
//! SAX discretizes the value axis into regions that are equiprobable under
//! N(0,1) — "more regions corresponding to values close to 0, and less
//! regions for the more extreme values" (paper Figure 1). The boundaries are
//! quantiles of the standard normal, computed with Acklam's rational
//! approximation of the inverse CDF (|relative error| < 1.2e-9, far below
//! the f32 precision of the data).
//!
//! Breakpoint tables are nested across cardinalities: the card-`2^k` table
//! is exactly every `2^(8-k)`-th entry of the card-256 table, because
//! `i/2^k == (i * 2^(8-k)) / 256` holds exactly in binary floating point.
//! This is what makes iSAX's multi-resolution prefixes consistent: the top
//! `k` bits of a card-256 symbol *are* the card-`2^k` symbol.

use std::sync::OnceLock;

/// Inverse CDF (quantile function) of the standard normal distribution,
/// valid for `0 < p < 1` (Acklam's algorithm).
pub fn inv_norm_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "quantile argument must be in (0,1), got {p}"
    );

    // Coefficients for the rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

fn tables() -> &'static [Vec<f64>; 9] {
    static TABLES: OnceLock<[Vec<f64>; 9]> = OnceLock::new();
    TABLES.get_or_init(|| {
        std::array::from_fn(|bits| {
            if bits == 0 {
                return Vec::new();
            }
            let card = 1usize << bits;
            (1..card)
                .map(|i| inv_norm_cdf(i as f64 / card as f64))
                .collect()
        })
    })
}

/// The `2^bits - 1` breakpoints for cardinality `2^bits` (`1 <= bits <= 8`),
/// in increasing order.
pub fn breakpoints(bits: u8) -> &'static [f64] {
    assert!((1..=8).contains(&bits), "bits must be in 1..=8, got {bits}");
    &tables()[bits as usize]
}

/// The SAX symbol of `value` at cardinality `2^bits`: the number of
/// breakpoints ≤ `value` (a value equal to a breakpoint belongs to the
/// region above it).
#[inline]
pub fn symbol_for(bits: u8, value: f64) -> u8 {
    let bp = breakpoints(bits);
    bp.partition_point(|&b| b <= value) as u8
}

/// Precomputed `[lo, hi)` bounds of every symbol at one cardinality, laid
/// out as two contiguous `f64` arrays (struct-of-arrays, ready to feed
/// vector lanes). Computing [`region`] inside a MINDIST inner loop costs a
/// table access plus bound branches per segment; this table removes both.
#[derive(Debug)]
pub struct RegionTable {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl RegionTable {
    fn new(bits: u8) -> Self {
        let bp = breakpoints(bits);
        let card = 1usize << bits;
        let lo = (0..card)
            .map(|s| if s == 0 { f64::NEG_INFINITY } else { bp[s - 1] })
            .collect();
        let hi = (0..card)
            .map(|s| if s == card - 1 { f64::INFINITY } else { bp[s] })
            .collect();
        RegionTable { lo, hi }
    }

    /// Lower bounds, indexed by symbol (`2^bits` entries).
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds, indexed by symbol (`2^bits` entries).
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// The `[lo, hi)` interval of `symbol`.
    #[inline]
    pub fn bounds(&self, symbol: u8) -> (f64, f64) {
        (self.lo[symbol as usize], self.hi[symbol as usize])
    }
}

/// The per-cardinality region lookup table (`1 <= bits <= 8`), built once
/// per process.
pub fn region_table(bits: u8) -> &'static RegionTable {
    static TABLES: OnceLock<[RegionTable; 9]> = OnceLock::new();
    assert!((1..=8).contains(&bits), "bits must be in 1..=8, got {bits}");
    &TABLES.get_or_init(|| std::array::from_fn(|b| RegionTable::new(b.max(1) as u8)))[bits as usize]
}

/// The value interval `[lo, hi)` covered by `symbol` at cardinality
/// `2^bits`; the extremes are unbounded.
#[inline]
pub fn region(bits: u8, symbol: u8) -> (f64, f64) {
    let t = region_table(bits);
    let card = 1usize << bits;
    let s = symbol as usize;
    assert!(s < card, "symbol {s} out of range for cardinality {card}");
    (t.lo[s], t.hi[s])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_cdf_known_values() {
        // Reference values from standard normal tables.
        assert!((inv_norm_cdf(0.5) - 0.0).abs() < 1e-9);
        assert!((inv_norm_cdf(0.975) - 1.959963985).abs() < 1e-6);
        assert!((inv_norm_cdf(0.025) + 1.959963985).abs() < 1e-6);
        assert!((inv_norm_cdf(0.84134474) - 1.0).abs() < 1e-6);
        assert!((inv_norm_cdf(0.99865010) - 3.0).abs() < 1e-5);
    }

    #[test]
    fn inverse_cdf_is_antisymmetric_and_monotone() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            assert!((inv_norm_cdf(p) + inv_norm_cdf(1.0 - p)).abs() < 1e-9);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 1..1000 {
            let v = inv_norm_cdf(i as f64 / 1000.0);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn card4_breakpoints_match_literature() {
        // The classic SAX alphabet-4 breakpoints: -0.6745, 0, 0.6745.
        let bp = breakpoints(2);
        assert_eq!(bp.len(), 3);
        assert!((bp[0] + 0.6744897).abs() < 1e-6);
        assert!(bp[1].abs() < 1e-9);
        assert!((bp[2] - 0.6744897).abs() < 1e-6);
    }

    #[test]
    fn tables_are_nested() {
        // Every coarse table is a stride of the card-256 table — required
        // for iSAX prefix consistency.
        let fine = breakpoints(8);
        for bits in 1..8u8 {
            let coarse = breakpoints(bits);
            let stride = 1usize << (8 - bits);
            for (i, &b) in coarse.iter().enumerate() {
                assert_eq!(b, fine[(i + 1) * stride - 1], "bits={bits} i={i}");
            }
        }
    }

    #[test]
    fn symbol_prefix_property() {
        // Top-k bits of the fine symbol == the coarse symbol, for any value.
        for i in -100..=100 {
            let v = i as f64 / 20.0;
            let fine = symbol_for(8, v);
            for bits in 1..=8u8 {
                let coarse = symbol_for(bits, v);
                assert_eq!(fine >> (8 - bits), coarse, "v={v} bits={bits}");
            }
        }
    }

    #[test]
    fn symbols_cover_all_regions() {
        assert_eq!(symbol_for(2, -10.0), 0);
        assert_eq!(symbol_for(2, -0.5), 1);
        assert_eq!(symbol_for(2, 0.5), 2);
        assert_eq!(symbol_for(2, 10.0), 3);
        // Boundary: exactly at a breakpoint goes up.
        assert_eq!(symbol_for(2, 0.0), 2);
    }

    #[test]
    fn region_roundtrip() {
        for bits in 1..=8u8 {
            let card = 1u16 << bits;
            for s in 0..card {
                let (lo, hi) = region(bits, s as u8);
                assert!(lo < hi);
                // A value strictly inside the region maps back to the symbol.
                let v = if lo.is_infinite() {
                    hi - 1.0
                } else if hi.is_infinite() {
                    lo + 1.0
                } else {
                    0.5 * (lo + hi)
                };
                assert_eq!(symbol_for(bits, v), s as u8, "bits={bits} s={s}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_bits_panics() {
        breakpoints(0);
    }
}
