//! SAX words: quantized PAA summarizations.
//!
//! A SAX word stores one symbol (at full cardinality, up to 256) per
//! segment. Words are stored symbol-per-byte; the sortable form lives in
//! [`crate::zorder`].

use coconut_series::Value;

use crate::breakpoints::symbol_for;
use crate::config::SaxConfig;
use crate::paa::paa_into;

/// A full-cardinality SAX word (one `u8` symbol per segment).
///
/// Comparison (`Ord`) is lexicographic over the segment symbols — exactly
/// the "unsortable" ordering the paper's Section 3 shows places similar
/// series far apart. Use [`crate::zorder::ZKey`] for the sortable ordering.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SaxWord {
    symbols: Box<[u8]>,
}

impl SaxWord {
    /// Build a word directly from symbols.
    pub fn from_symbols(symbols: impl Into<Box<[u8]>>) -> Self {
        SaxWord {
            symbols: symbols.into(),
        }
    }

    /// The symbols, one per segment.
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.symbols.len()
    }
}

/// Quantize a PAA vector into symbols at `card_bits` cardinality.
pub fn sax_from_paa_into(paa_values: &[f64], card_bits: u8, out: &mut [u8]) {
    debug_assert_eq!(paa_values.len(), out.len());
    for (o, &v) in out.iter_mut().zip(paa_values.iter()) {
        *o = symbol_for(card_bits, v);
    }
}

/// Summarize a raw series into a [`SaxWord`] under `config`.
pub fn sax_word(series: &[Value], config: &SaxConfig) -> SaxWord {
    debug_assert_eq!(series.len(), config.series_len);
    let mut paa_buf = vec![0.0f64; config.segments];
    paa_into(series, &mut paa_buf);
    let mut symbols = vec![0u8; config.segments].into_boxed_slice();
    sax_from_paa_into(&paa_buf, config.card_bits, &mut symbols);
    SaxWord { symbols }
}

/// A reusable summarizer that avoids per-series allocations — used by the
/// index-construction scans which summarize millions of series.
#[derive(Debug, Clone)]
pub struct Summarizer {
    config: SaxConfig,
    paa_buf: Vec<f64>,
}

impl Summarizer {
    /// A summarizer for `config`.
    pub fn new(config: SaxConfig) -> Self {
        Summarizer {
            config,
            paa_buf: vec![0.0; config.segments],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SaxConfig {
        &self.config
    }

    /// PAA of `series` (borrowing the internal buffer).
    pub fn paa(&mut self, series: &[Value]) -> &[f64] {
        paa_into(series, &mut self.paa_buf);
        &self.paa_buf
    }

    /// SAX symbols of `series` written into `out`.
    pub fn sax_into(&mut self, series: &[Value], out: &mut [u8]) {
        paa_into(series, &mut self.paa_buf);
        sax_from_paa_into(&self.paa_buf, self.config.card_bits, out);
    }

    /// The sortable z-order key of `series` (PAA → SAX → interleave).
    pub fn zkey(&mut self, series: &[Value]) -> crate::zorder::ZKey {
        let mut symbols = [0u8; 32];
        let w = self.config.segments;
        self.sax_into(series, &mut symbols[..w]);
        crate::zorder::interleave(&symbols[..w], self.config.card_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(len: usize, segs: usize, bits: u8) -> SaxConfig {
        SaxConfig {
            series_len: len,
            segments: segs,
            card_bits: bits,
        }
    }

    #[test]
    fn figure1_style_example() {
        // A series sweeping from low to high must produce increasing symbols.
        let series: Vec<Value> = (0..64).map(|i| (i as f32 - 32.0) / 10.0).collect();
        let w = sax_word(&series, &config(64, 8, 3));
        let s = w.symbols();
        assert!(s.windows(2).all(|p| p[0] <= p[1]), "{s:?}");
        assert_eq!(s[0], 0);
        assert_eq!(s[7], 7);
    }

    #[test]
    fn symbols_respect_cardinality() {
        let series: Vec<Value> = (0..256).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
        for bits in 1..=8u8 {
            let w = sax_word(&series, &config(256, 16, bits));
            let max = (1u16 << bits) - 1;
            assert!(
                w.symbols().iter().all(|&s| (s as u16) <= max),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn lexicographic_order_is_first_segment_dominated() {
        // The paper's Figure 2 pathology: S1=ec, S2=ee, S3=fc, S4=ge sort as
        // S1,S2,S3,S4 even though S1 is most similar to S3.
        let s1 = SaxWord::from_symbols(vec![4u8, 2]); // "ec"
        let s2 = SaxWord::from_symbols(vec![4u8, 4]); // "ee"
        let s3 = SaxWord::from_symbols(vec![5u8, 2]); // "fc"
        let s4 = SaxWord::from_symbols(vec![6u8, 4]); // "ge"
        let mut v = vec![s2.clone(), s4.clone(), s3.clone(), s1.clone()];
        v.sort();
        assert_eq!(v, vec![s1, s2, s3, s4]);
    }

    #[test]
    fn summarizer_matches_free_function() {
        let series: Vec<Value> = (0..128).map(|i| ((i * i) as f32 * 0.01).cos()).collect();
        let cfg = config(128, 16, 8);
        let mut s = Summarizer::new(cfg);
        let mut out = vec![0u8; 16];
        s.sax_into(&series, &mut out);
        assert_eq!(out.as_slice(), sax_word(&series, &cfg).symbols());
    }

    #[test]
    fn constant_series_lands_in_middle_region() {
        // A z-normalized constant series is all zeros; symbol must be the
        // first region at or above the median.
        let series = vec![0.0f32; 64];
        let w = sax_word(&series, &config(64, 8, 8));
        assert!(w.symbols().iter().all(|&s| s == 128), "{:?}", w.symbols());
    }
}
