//! Piecewise Aggregate Approximation.
//!
//! PAA cuts a series into `w` segments and represents each by its mean
//! (paper Figure 1, middle). When `w` does not divide the series length the
//! boundary points contribute fractionally to both neighbors, so every
//! segment covers exactly `len/w` points of mass — this keeps the
//! lower-bounding property of MINDIST intact for any (len, w) combination.

use coconut_series::Value;

/// Compute the `w`-segment PAA of `series` into `out` (`out.len() == w`).
pub fn paa_into(series: &[Value], out: &mut [f64]) {
    let n = series.len();
    let w = out.len();
    debug_assert!(w > 0 && w <= n);
    if n.is_multiple_of(w) {
        // Fast path: equal integer segments, summed by the dispatched
        // vector kernel (build-time summarization calls this per series).
        let seg = n / w;
        (coconut_series::simd::kernels().segment_sums)(series, seg, out);
        for o in out.iter_mut() {
            *o /= seg as f64;
        }
        return;
    }
    // General path: fractional segment boundaries. Floating-point rounding
    // can make `w * (n/w)` land a hair above `n`, so every index is clamped
    // to the series length.
    let seg = n as f64 / w as f64;
    for (j, o) in out.iter_mut().enumerate() {
        let lo = (j as f64 * seg).min(n as f64);
        let hi = (lo + seg).min(n as f64);
        let mut acc = 0.0f64;
        let mut i = lo.floor() as usize;
        while i < n && (i as f64) < hi {
            let p_lo = (i as f64).max(lo);
            let p_hi = ((i + 1) as f64).min(hi);
            acc += series[i] as f64 * (p_hi - p_lo);
            i += 1;
        }
        *o = acc / seg;
    }
}

/// Compute the `w`-segment PAA of `series` into a fresh vector.
pub fn paa(series: &[Value], w: usize) -> Vec<f64> {
    let mut out = vec![0.0; w];
    paa_into(series, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let s = [1.0f32, 1.0, 3.0, 3.0, 5.0, 5.0, 7.0, 7.0];
        assert_eq!(paa(&s, 4), vec![1.0, 3.0, 5.0, 7.0]);
        assert_eq!(paa(&s, 2), vec![2.0, 6.0]);
        assert_eq!(paa(&s, 1), vec![4.0]);
    }

    #[test]
    fn identity_when_w_equals_len() {
        let s = [1.5f32, -2.0, 0.25];
        assert_eq!(paa(&s, 3), vec![1.5, -2.0, 0.25]);
    }

    #[test]
    fn fractional_segments_preserve_mass() {
        // len=5, w=2: segments cover 2.5 points each.
        let s = [2.0f32, 2.0, 4.0, 6.0, 6.0];
        let p = paa(&s, 2);
        // First segment: 2 + 2 + 0.5*4 = 6 over 2.5 -> 2.4
        assert!((p[0] - 2.4).abs() < 1e-9);
        // Second: 0.5*4 + 6 + 6 = 14 over 2.5 -> 5.6
        assert!((p[1] - 5.6).abs() < 1e-9);
        // Total mass preserved: mean of PAA == mean of series.
        let mean_s: f64 = s.iter().map(|&v| v as f64).sum::<f64>() / 5.0;
        let mean_p: f64 = (p[0] + p[1]) / 2.0;
        assert!((mean_s - mean_p).abs() < 1e-9);
    }

    #[test]
    fn paa_of_constant_is_constant() {
        let s = vec![3.25f32; 97];
        for w in [1usize, 2, 5, 16, 97] {
            let p = paa(&s, w);
            assert!(p.iter().all(|&v| (v - 3.25).abs() < 1e-9), "w={w}");
        }
    }

    #[test]
    fn paa_mean_always_equals_series_mean() {
        // Mass preservation for awkward (len, w) pairs.
        let s: Vec<f32> = (0..101).map(|i| ((i * 37) % 17) as f32 - 8.0).collect();
        let mean_s: f64 = s.iter().map(|&v| v as f64).sum::<f64>() / s.len() as f64;
        for w in [1usize, 3, 7, 16, 50, 101] {
            let p = paa(&s, w);
            let mean_p: f64 = p.iter().sum::<f64>() / w as f64;
            assert!((mean_s - mean_p).abs() < 1e-9, "w={w}");
        }
    }
}
