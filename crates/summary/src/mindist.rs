//! Lower-bounding distances (MINDIST) between queries and summarizations.
//!
//! The pruning power of a SAX index rests on one invariant: for any query
//! `q` and any series `s`,
//!
//! ```text
//! mindist(PAA(q), SAX(s))  <=  euclidean(q, s)
//! ```
//!
//! so a node (or record) whose mindist exceeds the best-so-far can be
//! skipped without inspecting raw data. The sortable summarization inherits
//! the same bound because interleaving is a bijection (paper Section 4.1:
//! "we therefore do not lose anything in terms of the ability to prune").
//!
//! Three granularities are provided: full-cardinality SAX words (records),
//! iSAX masks (index nodes), and z-order keys (records in Coconut indexes,
//! decoded on the fly without allocation).

use crate::breakpoints::region;
use crate::config::SaxConfig;
use crate::isax::IsaxMask;
use crate::zorder::ZKey;

/// Squared distance from `value` to the interval `[lo, hi)`; zero inside.
#[inline]
fn dist_to_region_sq(value: f64, lo: f64, hi: f64) -> f64 {
    if value < lo {
        let d = lo - value;
        d * d
    } else if value > hi {
        let d = value - hi;
        d * d
    } else {
        0.0
    }
}

/// MINDIST between a query's PAA and a full-cardinality SAX word
/// (squared, unscaled). Multiply by `series_len / segments` and take the
/// square root via [`finish`] to obtain the distance bound.
#[inline]
pub fn mindist_sq_raw(query_paa: &[f64], symbols: &[u8], card_bits: u8) -> f64 {
    debug_assert_eq!(query_paa.len(), symbols.len());
    let mut acc = 0.0f64;
    for (&p, &s) in query_paa.iter().zip(symbols.iter()) {
        let (lo, hi) = region(card_bits, s);
        acc += dist_to_region_sq(p, lo, hi);
    }
    acc
}

/// Scale a raw squared mindist into a distance: `sqrt(len/w * raw)`.
#[inline]
pub fn finish(raw_sq: f64, config: &SaxConfig) -> f64 {
    (config.series_len as f64 / config.segments as f64 * raw_sq).sqrt()
}

/// MINDIST between a query's PAA and a SAX word, as a distance.
pub fn mindist_paa_sax(query_paa: &[f64], symbols: &[u8], config: &SaxConfig) -> f64 {
    finish(mindist_sq_raw(query_paa, symbols, config.card_bits), config)
}

/// MINDIST between a query's PAA and an iSAX node mask: segments with zero
/// prefix bits contribute nothing (their region is unbounded).
pub fn mindist_paa_isax(query_paa: &[f64], mask: &IsaxMask, config: &SaxConfig) -> f64 {
    debug_assert_eq!(query_paa.len(), mask.segments());
    let mut acc = 0.0f64;
    for ((&p, &b), &prefix) in query_paa.iter().zip(mask.bits()).zip(mask.prefix()) {
        if b == 0 {
            continue;
        }
        let (lo, hi) = region(b, prefix);
        acc += dist_to_region_sq(p, lo, hi);
    }
    finish(acc, config)
}

/// MINDIST between a query's PAA and a z-order key (allocation-free: the
/// key is decoded into a stack buffer). This is the inner loop of the SIMS
/// exact-search scan.
#[inline]
pub fn mindist_paa_zkey(query_paa: &[f64], key: ZKey, config: &SaxConfig) -> f64 {
    let mut symbols = [0u8; 32];
    crate::zorder::deinterleave_into(
        key,
        config.segments,
        config.card_bits,
        &mut symbols[..config.segments],
    );
    finish(
        mindist_sq_raw(query_paa, &symbols[..config.segments], config.card_bits),
        config,
    )
}

/// Squared distance between two intervals (0 when they overlap).
#[inline]
fn interval_dist_sq(a_lo: f64, a_hi: f64, b_lo: f64, b_hi: f64) -> f64 {
    if a_hi < b_lo {
        let d = b_lo - a_hi;
        d * d
    } else if b_hi < a_lo {
        let d = a_lo - b_hi;
        d * d
    } else {
        0.0
    }
}

/// DTW index bound: distance between the query envelope's per-segment
/// bounds (`env_lo[j] = min` of the lower envelope over segment `j`,
/// `env_hi[j] = max` of the upper envelope) and a SAX word's regions.
///
/// The chain `mindist_env <= LB_Keogh <= DTW` holds because (a) widening
/// the envelope to per-segment min/max intervals only lowers LB_Keogh,
/// (b) the per-point sum dominates `len_j * d(segment mean, interval)^2`
/// by convexity, and (c) the segment mean lies inside the SAX region.
pub fn mindist_env_sax(env_lo: &[f64], env_hi: &[f64], symbols: &[u8], config: &SaxConfig) -> f64 {
    debug_assert_eq!(env_lo.len(), symbols.len());
    let mut acc = 0.0f64;
    for ((&lo, &hi), &s) in env_lo.iter().zip(env_hi.iter()).zip(symbols.iter()) {
        let (r_lo, r_hi) = region(config.card_bits, s);
        acc += interval_dist_sq(lo, hi, r_lo, r_hi);
    }
    finish(acc, config)
}

/// [`mindist_env_sax`] against a z-order key (decoded on the fly).
#[inline]
pub fn mindist_env_zkey(env_lo: &[f64], env_hi: &[f64], key: ZKey, config: &SaxConfig) -> f64 {
    let mut symbols = [0u8; 32];
    crate::zorder::deinterleave_into(
        key,
        config.segments,
        config.card_bits,
        &mut symbols[..config.segments],
    );
    mindist_env_sax(env_lo, env_hi, &symbols[..config.segments], config)
}

/// Per-segment (min of lower, max of upper) bounds of a DTW query
/// envelope — the index-level companion of `coconut_series::dtw::Envelope`.
pub fn envelope_segment_bounds(
    env_lower: &[coconut_series::Value],
    env_upper: &[coconut_series::Value],
    segments: usize,
) -> (Vec<f64>, Vec<f64>) {
    let n = env_lower.len();
    debug_assert_eq!(n, env_upper.len());
    let mut lo = vec![f64::INFINITY; segments];
    let mut hi = vec![f64::NEG_INFINITY; segments];
    // Per-segment point ranges mirror the PAA segmentation (fractional
    // boundary points belong to both neighbors, keeping the bound valid).
    let seg = n as f64 / segments as f64;
    for j in 0..segments {
        let start = (j as f64 * seg).floor() as usize;
        let end = (((j + 1) as f64 * seg).ceil() as usize).min(n);
        for i in start..end {
            lo[j] = lo[j].min(env_lower[i] as f64);
            hi[j] = hi[j].max(env_upper[i] as f64);
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paa::paa;
    use crate::sax::sax_word;
    use crate::zorder::interleave;
    use coconut_series::distance::euclidean;
    use coconut_series::Value;

    fn cfg() -> SaxConfig {
        SaxConfig {
            series_len: 64,
            segments: 8,
            card_bits: 8,
        }
    }

    fn wavy(seed: u32, len: usize) -> Vec<Value> {
        let mut s: Vec<Value> = (0..len)
            .map(|i| ((i as f32 * 0.17 + seed as f32) * 1.3).sin() * (1.0 + (seed % 5) as f32))
            .collect();
        coconut_series::distance::znormalize(&mut s);
        s
    }

    #[test]
    fn mindist_lower_bounds_euclidean() {
        let c = cfg();
        for qa in 0..10u32 {
            let q = wavy(qa, c.series_len);
            let qp = paa(&q, c.segments);
            for sb in 10..30u32 {
                let s = wavy(sb, c.series_len);
                let word = sax_word(&s, &c);
                let md = mindist_paa_sax(&qp, word.symbols(), &c);
                let ed = euclidean(&q, &s);
                assert!(md <= ed + 1e-6, "mindist {md} > ed {ed} (q={qa} s={sb})");
            }
        }
    }

    #[test]
    fn zkey_mindist_equals_sax_mindist() {
        let c = cfg();
        let q = wavy(3, c.series_len);
        let qp = paa(&q, c.segments);
        for sb in 0..20u32 {
            let s = wavy(sb + 50, c.series_len);
            let word = sax_word(&s, &c);
            let key = interleave(word.symbols(), c.card_bits);
            let via_sax = mindist_paa_sax(&qp, word.symbols(), &c);
            let via_key = mindist_paa_zkey(&qp, key, &c);
            assert!((via_sax - via_key).abs() < 1e-12);
        }
    }

    #[test]
    fn isax_mindist_is_monotone_in_refinement() {
        // More prefix bits -> tighter (larger) bound, never looser, and the
        // full mask equals the SAX mindist.
        let c = cfg();
        let q = wavy(7, c.series_len);
        let qp = paa(&q, c.segments);
        let s = wavy(77, c.series_len);
        let word = sax_word(&s, &c);
        let key = interleave(word.symbols(), c.card_bits);
        let mut prev = -1.0f64;
        for depth in 0..=c.word_bits() {
            let mask = IsaxMask::from_zorder_prefix(key, depth, &c);
            let md = mindist_paa_isax(&qp, &mask, &c);
            assert!(md >= prev - 1e-12, "depth {depth}: {md} < {prev}");
            prev = md;
        }
        let full = mindist_paa_sax(&qp, word.symbols(), &c);
        assert!((prev - full).abs() < 1e-12);
    }

    #[test]
    fn node_mindist_lower_bounds_member_distance() {
        let c = cfg();
        let q = wavy(1, c.series_len);
        let qp = paa(&q, c.segments);
        for sb in 0..10u32 {
            let s = wavy(sb + 20, c.series_len);
            let word = sax_word(&s, &c);
            let key = interleave(word.symbols(), c.card_bits);
            let ed = euclidean(&q, &s);
            for depth in [0usize, 3, 8, 16, 64] {
                let mask = IsaxMask::from_zorder_prefix(key, depth, &c);
                let md = mindist_paa_isax(&qp, &mask, &c);
                assert!(md <= ed + 1e-6, "depth {depth}: {md} > {ed}");
            }
        }
    }

    #[test]
    fn mindist_zero_when_query_matches_regions() {
        let c = cfg();
        let s = wavy(9, c.series_len);
        let sp = paa(&s, c.segments);
        let word = sax_word(&s, &c);
        // A query with the same PAA is inside every region: mindist 0.
        let md = mindist_paa_sax(&sp, word.symbols(), &c);
        assert_eq!(md, 0.0);
    }

    #[test]
    fn root_mask_mindist_is_zero() {
        let c = cfg();
        let q = wavy(4, c.series_len);
        let qp = paa(&q, c.segments);
        let root = IsaxMask::root(c.segments);
        assert_eq!(mindist_paa_isax(&qp, &root, &c), 0.0);
    }

    #[test]
    fn envelope_mindist_lower_bounds_dtw() {
        use coconut_series::dtw::{dtw, Envelope};
        let c = cfg();
        for seed in 0..15u32 {
            let q = wavy(seed, c.series_len);
            let s = wavy(seed + 40, c.series_len);
            for band in [1usize, 4, 10] {
                let env = Envelope::new(&q, band);
                let (lo, hi) = envelope_segment_bounds(&env.lower, &env.upper, c.segments);
                let word = sax_word(&s, &c);
                let md = mindist_env_sax(&lo, &hi, word.symbols(), &c);
                let d = dtw(&q, &s, band);
                assert!(md <= d + 1e-5, "seed {seed} band {band}: {md} > {d}");
            }
        }
    }

    #[test]
    fn envelope_mindist_never_exceeds_ed_mindist() {
        // Band 0 envelope equals the query; the interval bound is at most
        // as tight as the point bound.
        use coconut_series::dtw::Envelope;
        let c = cfg();
        let q = wavy(3, c.series_len);
        let qp = paa(&q, c.segments);
        let env = Envelope::new(&q, 0);
        let (lo, hi) = envelope_segment_bounds(&env.lower, &env.upper, c.segments);
        for seed in 0..10u32 {
            let s = wavy(seed + 60, c.series_len);
            let word = sax_word(&s, &c);
            let env_md = mindist_env_sax(&lo, &hi, word.symbols(), &c);
            let ed_md = mindist_paa_sax(&qp, word.symbols(), &c);
            assert!(env_md <= ed_md + 1e-9);
        }
    }

    #[test]
    fn envelope_zkey_agrees_with_sax() {
        use coconut_series::dtw::Envelope;
        let c = cfg();
        let q = wavy(8, c.series_len);
        let env = Envelope::new(&q, 5);
        let (lo, hi) = envelope_segment_bounds(&env.lower, &env.upper, c.segments);
        let s = wavy(90, c.series_len);
        let word = sax_word(&s, &c);
        let key = interleave(word.symbols(), c.card_bits);
        let a = mindist_env_sax(&lo, &hi, word.symbols(), &c);
        let b = mindist_env_zkey(&lo, &hi, key, &c);
        assert!((a - b).abs() < 1e-12);
    }
}
