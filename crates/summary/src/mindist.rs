//! Lower-bounding distances (MINDIST) between queries and summarizations.
//!
//! The pruning power of a SAX index rests on one invariant: for any query
//! `q` and any series `s`,
//!
//! ```text
//! mindist(PAA(q), SAX(s))  <=  euclidean(q, s)
//! ```
//!
//! so a node (or record) whose mindist exceeds the best-so-far can be
//! skipped without inspecting raw data. The sortable summarization inherits
//! the same bound because interleaving is a bijection (paper Section 4.1:
//! "we therefore do not lose anything in terms of the ability to prune").
//!
//! Three granularities are provided: full-cardinality SAX words (records),
//! iSAX masks (index nodes), and z-order keys (records in Coconut indexes,
//! decoded on the fly without allocation).

use crate::breakpoints::{region, region_table};
use crate::config::SaxConfig;
use crate::isax::IsaxMask;
use crate::zorder::ZKey;
use coconut_series::simd::Dispatch;

/// Squared distance from `value` to the interval `[lo, hi)`; zero inside.
#[inline]
fn dist_to_region_sq(value: f64, lo: f64, hi: f64) -> f64 {
    if value < lo {
        let d = lo - value;
        d * d
    } else if value > hi {
        let d = value - hi;
        d * d
    } else {
        0.0
    }
}

/// MINDIST between a query's PAA and a full-cardinality SAX word
/// (squared, unscaled). Multiply by `series_len / segments` and take the
/// square root via [`finish`] to obtain the distance bound.
#[inline]
pub fn mindist_sq_raw(query_paa: &[f64], symbols: &[u8], card_bits: u8) -> f64 {
    debug_assert_eq!(query_paa.len(), symbols.len());
    let rt = region_table(card_bits);
    let (lo, hi) = (rt.lo(), rt.hi());
    let mut acc = 0.0f64;
    for (&p, &s) in query_paa.iter().zip(symbols.iter()) {
        acc += dist_to_region_sq(p, lo[s as usize], hi[s as usize]);
    }
    acc
}

/// Scale a raw squared mindist into a distance: `sqrt(len/w * raw)`.
#[inline]
pub fn finish(raw_sq: f64, config: &SaxConfig) -> f64 {
    (config.series_len as f64 / config.segments as f64 * raw_sq).sqrt()
}

/// MINDIST between a query's PAA and a SAX word, as a distance.
pub fn mindist_paa_sax(query_paa: &[f64], symbols: &[u8], config: &SaxConfig) -> f64 {
    finish(mindist_sq_raw(query_paa, symbols, config.card_bits), config)
}

/// MINDIST between a query's PAA and an iSAX node mask: segments with zero
/// prefix bits contribute nothing (their region is unbounded).
pub fn mindist_paa_isax(query_paa: &[f64], mask: &IsaxMask, config: &SaxConfig) -> f64 {
    debug_assert_eq!(query_paa.len(), mask.segments());
    let mut acc = 0.0f64;
    for ((&p, &b), &prefix) in query_paa.iter().zip(mask.bits()).zip(mask.prefix()) {
        if b == 0 {
            continue;
        }
        let (lo, hi) = region(b, prefix);
        acc += dist_to_region_sq(p, lo, hi);
    }
    finish(acc, config)
}

/// MINDIST between a query's PAA and a z-order key (allocation-free: the
/// key is decoded into a stack buffer). This is the inner loop of the SIMS
/// exact-search scan.
#[inline]
pub fn mindist_paa_zkey(query_paa: &[f64], key: ZKey, config: &SaxConfig) -> f64 {
    let mut symbols = [0u8; 32];
    crate::zorder::deinterleave_into(
        key,
        config.segments,
        config.card_bits,
        &mut symbols[..config.segments],
    );
    finish(
        mindist_sq_raw(query_paa, &symbols[..config.segments], config.card_bits),
        config,
    )
}

/// Squared distance between two intervals (0 when they overlap).
#[inline]
fn interval_dist_sq(a_lo: f64, a_hi: f64, b_lo: f64, b_hi: f64) -> f64 {
    if a_hi < b_lo {
        let d = b_lo - a_hi;
        d * d
    } else if b_hi < a_lo {
        let d = a_lo - b_hi;
        d * d
    } else {
        0.0
    }
}

/// DTW index bound: distance between the query envelope's per-segment
/// bounds (`env_lo[j] = min` of the lower envelope over segment `j`,
/// `env_hi[j] = max` of the upper envelope) and a SAX word's regions.
///
/// The chain `mindist_env <= LB_Keogh <= DTW` holds because (a) widening
/// the envelope to per-segment min/max intervals only lowers LB_Keogh,
/// (b) the per-point sum dominates `len_j * d(segment mean, interval)^2`
/// by convexity, and (c) the segment mean lies inside the SAX region.
pub fn mindist_env_sax(env_lo: &[f64], env_hi: &[f64], symbols: &[u8], config: &SaxConfig) -> f64 {
    debug_assert_eq!(env_lo.len(), symbols.len());
    let rt = region_table(config.card_bits);
    let mut acc = 0.0f64;
    for ((&lo, &hi), &s) in env_lo.iter().zip(env_hi.iter()).zip(symbols.iter()) {
        let (r_lo, r_hi) = rt.bounds(s);
        acc += interval_dist_sq(lo, hi, r_lo, r_hi);
    }
    finish(acc, config)
}

/// [`mindist_env_sax`] against a z-order key (decoded on the fly).
#[inline]
pub fn mindist_env_zkey(env_lo: &[f64], env_hi: &[f64], key: ZKey, config: &SaxConfig) -> f64 {
    let mut symbols = [0u8; 32];
    crate::zorder::deinterleave_into(
        key,
        config.segments,
        config.card_bits,
        &mut symbols[..config.segments],
    );
    mindist_env_sax(env_lo, env_hi, &symbols[..config.segments], config)
}

/// Per-segment (min of lower, max of upper) bounds of a DTW query
/// envelope — the index-level companion of `coconut_series::dtw::Envelope`.
pub fn envelope_segment_bounds(
    env_lower: &[coconut_series::Value],
    env_upper: &[coconut_series::Value],
    segments: usize,
) -> (Vec<f64>, Vec<f64>) {
    let n = env_lower.len();
    debug_assert_eq!(n, env_upper.len());
    let mut lo = vec![f64::INFINITY; segments];
    let mut hi = vec![f64::NEG_INFINITY; segments];
    // Per-segment point ranges mirror the PAA segmentation (fractional
    // boundary points belong to both neighbors, keeping the bound valid).
    let seg = n as f64 / segments as f64;
    for j in 0..segments {
        let start = (j as f64 * seg).floor() as usize;
        let end = (((j + 1) as f64 * seg).ceil() as usize).min(n);
        for i in start..end {
            lo[j] = lo[j].min(env_lower[i] as f64);
            hi[j] = hi[j].max(env_upper[i] as f64);
        }
    }
    (lo, hi)
}

/// Keys per block of the batched MINDIST kernel (one AVX2 gather pair).
pub const MINDIST_BATCH: usize = 8;

/// Most segments any stack scratch buffer supports (the workspace-wide
/// assumption already baked into [`mindist_paa_zkey`] and the summarizer).
const MAX_SEGMENTS: usize = 32;

/// Per-segment `pext` masks recovering SAX symbols from a z-order key in
/// two `PEXT` instructions per segment instead of `card_bits` shift/mask
/// steps per *bit*. Symbol `j`'s bits sit at key positions
/// `total-1-(card_bits-1-i)*segments-j` (LSB `i` first, matching
/// [`crate::zorder::interleave`]); `pext` packs them LSB-to-MSB, which is
/// exactly ascending `i`, so the extracted word *is* the symbol.
#[derive(Debug, Clone, Copy)]
struct PextMask {
    lo: u64,
    hi: u64,
    shift: u32,
}

fn pext_masks(segments: usize, card_bits: u8) -> Vec<PextMask> {
    let total = segments * card_bits as usize;
    (0..segments)
        .map(|j| {
            let (mut lo, mut hi) = (0u64, 0u64);
            for i in 0..card_bits as usize {
                let p = total - 1 - (card_bits as usize - 1 - i) * segments - j;
                if p < 64 {
                    lo |= 1u64 << p;
                } else {
                    hi |= 1u64 << (p - 64);
                }
            }
            PextMask {
                lo,
                hi,
                shift: lo.count_ones(),
            }
        })
        .collect()
}

/// A query's precomputed squared distances to every SAX region: entry
/// `j * cardinality + s` is `dist_to_region_sq(paa[j], region(s))`. With it,
/// a record's raw MINDIST is a pure sum of `segments` table loads — no
/// breakpoint lookups, no branches — which is what the batched kernel
/// vectorizes with AVX2 gathers. Built once per query (Algorithm 5 computes
/// millions of MINDISTs per query against one PAA).
///
/// All paths — single-key, scalar batch, AVX2 batch — add the same table
/// entries in the same segment order, so their results are bit-identical.
#[derive(Debug, Clone)]
pub struct QueryDistTable {
    config: SaxConfig,
    card: usize,
    scale: f64,
    table: Vec<f64>,
    masks: Vec<PextMask>,
}

impl QueryDistTable {
    /// Build the table for `query_paa` under `config`.
    pub fn new(query_paa: &[f64], config: &SaxConfig) -> Self {
        debug_assert_eq!(query_paa.len(), config.segments);
        debug_assert!(config.segments <= MAX_SEGMENTS);
        let card = config.cardinality();
        let rt = region_table(config.card_bits);
        let mut table = Vec::with_capacity(config.segments * card);
        for &p in query_paa {
            for s in 0..card {
                table.push(dist_to_region_sq(p, rt.lo()[s], rt.hi()[s]));
            }
        }
        QueryDistTable {
            config: *config,
            card,
            scale: config.series_len as f64 / config.segments as f64,
            table,
            masks: pext_masks(config.segments, config.card_bits),
        }
    }

    /// The configuration the table was built for.
    pub fn config(&self) -> &SaxConfig {
        &self.config
    }

    /// Raw squared MINDIST of a full-cardinality symbol vector.
    #[inline]
    pub fn mindist_sq_raw(&self, symbols: &[u8]) -> f64 {
        debug_assert_eq!(symbols.len(), self.config.segments);
        let mut acc = 0.0f64;
        for (j, &s) in symbols.iter().enumerate() {
            acc += self.table[j * self.card + s as usize];
        }
        acc
    }

    /// MINDIST of one z-order key, as a distance (decode + table sum).
    #[inline]
    pub fn mindist_zkey(&self, key: ZKey) -> f64 {
        let mut symbols = [0u8; MAX_SEGMENTS];
        let w = self.config.segments;
        crate::zorder::deinterleave_into(key, w, self.config.card_bits, &mut symbols[..w]);
        (self.scale * self.mindist_sq_raw(&symbols[..w])).sqrt()
    }

    /// MINDIST of every key into `out` (`out.len() == keys.len()`), using
    /// the process-wide dispatch: blocks of [`MINDIST_BATCH`] keys are
    /// decoded into a segment-major scratch buffer and summed 8 lanes at a
    /// time; the remainder runs per key. Results are bit-identical to
    /// [`QueryDistTable::mindist_zkey`] on every dispatch.
    pub fn mindist_batch_into(&self, keys: &[ZKey], out: &mut [f64]) {
        self.mindist_batch_into_with(coconut_series::simd::active(), keys, out);
    }

    /// [`QueryDistTable::mindist_batch_into`] with an explicit dispatch
    /// (exposed so tests and benchmarks can force either path).
    pub fn mindist_batch_into_with(&self, dispatch: Dispatch, keys: &[ZKey], out: &mut [f64]) {
        assert_eq!(keys.len(), out.len());
        let w = self.config.segments;
        // Segment-major scratch: symbol of key `b`, segment `j`, lives at
        // `j * MINDIST_BATCH + b`, so each segment's 8 symbols are one
        // contiguous 8-byte lane load.
        let mut sym = [0u8; MAX_SEGMENTS * MINDIST_BATCH];
        let sym = &mut sym[..w * MINDIST_BATCH];
        let n8 = keys.len() - keys.len() % MINDIST_BATCH;
        let mut i = 0;
        #[cfg(target_arch = "x86_64")]
        let use_avx2 = dispatch == Dispatch::Avx2 && std::arch::is_x86_feature_detected!("avx2");
        #[cfg(target_arch = "x86_64")]
        let use_pext = use_avx2 && std::arch::is_x86_feature_detected!("bmi2");
        #[cfg(not(target_arch = "x86_64"))]
        let _ = dispatch;
        while i < n8 {
            let block = &keys[i..i + MINDIST_BATCH];
            #[cfg(target_arch = "x86_64")]
            if use_pext {
                // SAFETY: BMI2 support verified above.
                unsafe { x86::decode_block_pext(&self.masks, block, sym) };
            } else {
                self.decode_block_scalar(block, sym);
            }
            #[cfg(not(target_arch = "x86_64"))]
            self.decode_block_scalar(block, sym);

            let mut raw = [0.0f64; MINDIST_BATCH];
            #[cfg(target_arch = "x86_64")]
            if use_avx2 {
                // SAFETY: AVX2 support verified above; `sym` holds `w`
                // 8-byte lanes and every index is below `w * card`.
                unsafe { x86::accumulate_block_avx2(&self.table, self.card, w, sym, &mut raw) };
            } else {
                accumulate_block_scalar(&self.table, self.card, w, sym, &mut raw);
            }
            #[cfg(not(target_arch = "x86_64"))]
            accumulate_block_scalar(&self.table, self.card, w, sym, &mut raw);

            for (o, &r) in out[i..i + MINDIST_BATCH].iter_mut().zip(raw.iter()) {
                *o = (self.scale * r).sqrt();
            }
            i += MINDIST_BATCH;
        }
        for (o, &k) in out[n8..].iter_mut().zip(keys[n8..].iter()) {
            *o = self.mindist_zkey(k);
        }
    }

    /// Decode [`MINDIST_BATCH`] keys into the segment-major scratch with
    /// the portable bit-by-bit deinterleave.
    fn decode_block_scalar(&self, keys: &[ZKey], sym: &mut [u8]) {
        let w = self.config.segments;
        let bits = self.config.card_bits;
        let mut row = [0u8; MAX_SEGMENTS];
        for (b, &k) in keys.iter().enumerate() {
            crate::zorder::deinterleave_into(k, w, bits, &mut row[..w]);
            for (j, &s) in row[..w].iter().enumerate() {
                sym[j * MINDIST_BATCH + b] = s;
            }
        }
    }
}

/// Scalar mirror of the AVX2 gather kernel: 8 independent per-key
/// accumulators, segments added in ascending order — the same additions in
/// the same order as both the vector path and the single-key path.
fn accumulate_block_scalar(
    table: &[f64],
    card: usize,
    segments: usize,
    sym: &[u8],
    out: &mut [f64; MINDIST_BATCH],
) {
    let mut acc = [0.0f64; MINDIST_BATCH];
    for j in 0..segments {
        let row = &table[j * card..(j + 1) * card];
        let lane = &sym[j * MINDIST_BATCH..(j + 1) * MINDIST_BATCH];
        for (a, &s) in acc.iter_mut().zip(lane.iter()) {
            *a += row[s as usize];
        }
    }
    *out = acc;
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{PextMask, ZKey, MINDIST_BATCH};
    use std::arch::x86_64::*;

    /// Decode a block of keys via BMI2 `PEXT`: two extracts per segment
    /// instead of one shift/mask step per bit. Bit-exact equal to
    /// [`crate::zorder::deinterleave_into`].
    ///
    /// # Safety
    /// Caller must verify BMI2 support; `sym` must hold
    /// `masks.len() * MINDIST_BATCH` bytes and `keys` exactly
    /// [`MINDIST_BATCH`] keys.
    #[target_feature(enable = "bmi2")]
    pub unsafe fn decode_block_pext(masks: &[PextMask], keys: &[ZKey], sym: &mut [u8]) {
        debug_assert_eq!(keys.len(), MINDIST_BATCH);
        for (b, &k) in keys.iter().enumerate() {
            let klo = k.0 as u64;
            let khi = (k.0 >> 64) as u64;
            for (j, m) in masks.iter().enumerate() {
                let s = _pext_u64(klo, m.lo) | (_pext_u64(khi, m.hi) << m.shift);
                sym[j * MINDIST_BATCH + b] = s as u8;
            }
        }
    }

    /// Sum the per-segment table entries of 8 keys at once: zero-extend
    /// each segment's 8 symbols to i32 lane indices, gather 2×4 `f64`
    /// distances, and add into two 4-lane accumulators.
    ///
    /// # Safety
    /// Caller must verify AVX2 support; `table` must hold
    /// `segments * card` entries and `sym` `segments` 8-byte lanes of
    /// symbols `< card`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn accumulate_block_avx2(
        table: &[f64],
        card: usize,
        segments: usize,
        sym: &[u8],
        out: &mut [f64; MINDIST_BATCH],
    ) {
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        let base = table.as_ptr();
        for j in 0..segments {
            let bytes = _mm_loadl_epi64(sym.as_ptr().add(j * MINDIST_BATCH) as *const __m128i);
            let idx = _mm256_cvtepu8_epi32(bytes);
            let idx = _mm256_add_epi32(idx, _mm256_set1_epi32((j * card) as i32));
            let idx_lo = _mm256_castsi256_si128(idx);
            let idx_hi = _mm256_extracti128_si256::<1>(idx);
            acc_lo = _mm256_add_pd(acc_lo, _mm256_i32gather_pd::<8>(base, idx_lo));
            acc_hi = _mm256_add_pd(acc_hi, _mm256_i32gather_pd::<8>(base, idx_hi));
        }
        _mm256_storeu_pd(out.as_mut_ptr(), acc_lo);
        _mm256_storeu_pd(out.as_mut_ptr().add(4), acc_hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paa::paa;
    use crate::sax::sax_word;
    use crate::zorder::interleave;
    use coconut_series::distance::euclidean;
    use coconut_series::Value;

    fn cfg() -> SaxConfig {
        SaxConfig {
            series_len: 64,
            segments: 8,
            card_bits: 8,
        }
    }

    fn wavy(seed: u32, len: usize) -> Vec<Value> {
        let mut s: Vec<Value> = (0..len)
            .map(|i| ((i as f32 * 0.17 + seed as f32) * 1.3).sin() * (1.0 + (seed % 5) as f32))
            .collect();
        coconut_series::distance::znormalize(&mut s);
        s
    }

    #[test]
    fn mindist_lower_bounds_euclidean() {
        let c = cfg();
        for qa in 0..10u32 {
            let q = wavy(qa, c.series_len);
            let qp = paa(&q, c.segments);
            for sb in 10..30u32 {
                let s = wavy(sb, c.series_len);
                let word = sax_word(&s, &c);
                let md = mindist_paa_sax(&qp, word.symbols(), &c);
                let ed = euclidean(&q, &s);
                assert!(md <= ed + 1e-6, "mindist {md} > ed {ed} (q={qa} s={sb})");
            }
        }
    }

    #[test]
    fn zkey_mindist_equals_sax_mindist() {
        let c = cfg();
        let q = wavy(3, c.series_len);
        let qp = paa(&q, c.segments);
        for sb in 0..20u32 {
            let s = wavy(sb + 50, c.series_len);
            let word = sax_word(&s, &c);
            let key = interleave(word.symbols(), c.card_bits);
            let via_sax = mindist_paa_sax(&qp, word.symbols(), &c);
            let via_key = mindist_paa_zkey(&qp, key, &c);
            assert!((via_sax - via_key).abs() < 1e-12);
        }
    }

    #[test]
    fn isax_mindist_is_monotone_in_refinement() {
        // More prefix bits -> tighter (larger) bound, never looser, and the
        // full mask equals the SAX mindist.
        let c = cfg();
        let q = wavy(7, c.series_len);
        let qp = paa(&q, c.segments);
        let s = wavy(77, c.series_len);
        let word = sax_word(&s, &c);
        let key = interleave(word.symbols(), c.card_bits);
        let mut prev = -1.0f64;
        for depth in 0..=c.word_bits() {
            let mask = IsaxMask::from_zorder_prefix(key, depth, &c);
            let md = mindist_paa_isax(&qp, &mask, &c);
            assert!(md >= prev - 1e-12, "depth {depth}: {md} < {prev}");
            prev = md;
        }
        let full = mindist_paa_sax(&qp, word.symbols(), &c);
        assert!((prev - full).abs() < 1e-12);
    }

    #[test]
    fn node_mindist_lower_bounds_member_distance() {
        let c = cfg();
        let q = wavy(1, c.series_len);
        let qp = paa(&q, c.segments);
        for sb in 0..10u32 {
            let s = wavy(sb + 20, c.series_len);
            let word = sax_word(&s, &c);
            let key = interleave(word.symbols(), c.card_bits);
            let ed = euclidean(&q, &s);
            for depth in [0usize, 3, 8, 16, 64] {
                let mask = IsaxMask::from_zorder_prefix(key, depth, &c);
                let md = mindist_paa_isax(&qp, &mask, &c);
                assert!(md <= ed + 1e-6, "depth {depth}: {md} > {ed}");
            }
        }
    }

    #[test]
    fn mindist_zero_when_query_matches_regions() {
        let c = cfg();
        let s = wavy(9, c.series_len);
        let sp = paa(&s, c.segments);
        let word = sax_word(&s, &c);
        // A query with the same PAA is inside every region: mindist 0.
        let md = mindist_paa_sax(&sp, word.symbols(), &c);
        assert_eq!(md, 0.0);
    }

    #[test]
    fn root_mask_mindist_is_zero() {
        let c = cfg();
        let q = wavy(4, c.series_len);
        let qp = paa(&q, c.segments);
        let root = IsaxMask::root(c.segments);
        assert_eq!(mindist_paa_isax(&qp, &root, &c), 0.0);
    }

    #[test]
    fn envelope_mindist_lower_bounds_dtw() {
        use coconut_series::dtw::{dtw, Envelope};
        let c = cfg();
        for seed in 0..15u32 {
            let q = wavy(seed, c.series_len);
            let s = wavy(seed + 40, c.series_len);
            for band in [1usize, 4, 10] {
                let env = Envelope::new(&q, band);
                let (lo, hi) = envelope_segment_bounds(&env.lower, &env.upper, c.segments);
                let word = sax_word(&s, &c);
                let md = mindist_env_sax(&lo, &hi, word.symbols(), &c);
                let d = dtw(&q, &s, band);
                assert!(md <= d + 1e-5, "seed {seed} band {band}: {md} > {d}");
            }
        }
    }

    #[test]
    fn envelope_mindist_never_exceeds_ed_mindist() {
        // Band 0 envelope equals the query; the interval bound is at most
        // as tight as the point bound.
        use coconut_series::dtw::Envelope;
        let c = cfg();
        let q = wavy(3, c.series_len);
        let qp = paa(&q, c.segments);
        let env = Envelope::new(&q, 0);
        let (lo, hi) = envelope_segment_bounds(&env.lower, &env.upper, c.segments);
        for seed in 0..10u32 {
            let s = wavy(seed + 60, c.series_len);
            let word = sax_word(&s, &c);
            let env_md = mindist_env_sax(&lo, &hi, word.symbols(), &c);
            let ed_md = mindist_paa_sax(&qp, word.symbols(), &c);
            assert!(env_md <= ed_md + 1e-9);
        }
    }

    #[test]
    fn query_dist_table_matches_per_key_mindist() {
        let c = cfg();
        let q = wavy(11, c.series_len);
        let qp = paa(&q, c.segments);
        let table = QueryDistTable::new(&qp, &c);
        for sb in 0..40u32 {
            let s = wavy(sb + 100, c.series_len);
            let word = sax_word(&s, &c);
            let key = interleave(word.symbols(), c.card_bits);
            let direct = mindist_paa_zkey(&qp, key, &c);
            let via_table = table.mindist_zkey(key);
            assert_eq!(direct.to_bits(), via_table.to_bits(), "seed {sb}");
        }
    }

    #[test]
    fn batch_mindist_matches_single_key_on_every_dispatch() {
        use coconut_series::simd::Dispatch;
        // Cover non-multiple-of-8 remainders and >64-bit keys.
        for (series_len, segments, card_bits, n) in [
            (64usize, 8usize, 8u8, 37usize),
            (256, 16, 8, 64),
            (60, 20, 3, 9),
        ] {
            let c = SaxConfig {
                series_len,
                segments,
                card_bits,
            };
            let q = wavy(5, series_len);
            let qp = paa(&q, segments);
            let table = QueryDistTable::new(&qp, &c);
            let keys: Vec<_> = (0..n as u32)
                .map(|i| {
                    let s = wavy(i + 200, series_len);
                    interleave(sax_word(&s, &c).symbols(), card_bits)
                })
                .collect();
            let expect: Vec<f64> = keys.iter().map(|&k| mindist_paa_zkey(&qp, k, &c)).collect();
            for dispatch in [Dispatch::Scalar, Dispatch::Avx2] {
                let mut out = vec![0.0f64; n];
                table.mindist_batch_into_with(dispatch, &keys, &mut out);
                for (i, (&got, &want)) in out.iter().zip(expect.iter()).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{dispatch:?} w={segments} b={card_bits} key {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn pext_masks_recover_symbols() {
        // The pext plan must describe exactly the interleave layout; check
        // by re-extracting bits with portable shifts.
        for (segments, bits) in [(16usize, 8u8), (8, 8), (20, 3), (32, 4), (1, 8), (3, 5)] {
            let symbols: Vec<u8> = (0..segments)
                .map(|j| ((j * 41 + 13) % (1usize << bits)) as u8)
                .collect();
            let key = interleave(&symbols, bits);
            let masks = pext_masks(segments, bits);
            let (klo, khi) = (key.0 as u64, (key.0 >> 64) as u64);
            for (j, m) in masks.iter().enumerate() {
                // Portable pext.
                let extract = |word: u64, mask: u64| -> u64 {
                    let mut out = 0u64;
                    let mut pos = 0;
                    for p in 0..64 {
                        if mask & (1u64 << p) != 0 {
                            out |= ((word >> p) & 1) << pos;
                            pos += 1;
                        }
                    }
                    out
                };
                let s = extract(klo, m.lo) | (extract(khi, m.hi) << m.shift);
                assert_eq!(s as u8, symbols[j], "w={segments} b={bits} j={j}");
            }
        }
    }

    #[test]
    fn envelope_zkey_agrees_with_sax() {
        use coconut_series::dtw::Envelope;
        let c = cfg();
        let q = wavy(8, c.series_len);
        let env = Envelope::new(&q, 5);
        let (lo, hi) = envelope_segment_bounds(&env.lower, &env.upper, c.segments);
        let s = wavy(90, c.series_len);
        let word = sax_word(&s, &c);
        let key = interleave(word.symbols(), c.card_bits);
        let a = mindist_env_sax(&lo, &hi, word.symbols(), &c);
        let b = mindist_env_zkey(&lo, &hi, key, &c);
        assert!((a - b).abs() < 1e-12);
    }
}
