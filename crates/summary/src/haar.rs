//! Orthonormal Discrete Haar Wavelet Transform.
//!
//! The *Vertical* baseline (Kashyap & Karras, paper Section 5) stores Haar
//! coefficients level by level ("vertically") and scans them resolution by
//! resolution, tightening a lower bound on each series' distance until the
//! candidate set is small. Because the orthonormal transform preserves the
//! Euclidean norm (Parseval), the distance over any coefficient prefix
//! lower-bounds the true distance.
//!
//! The transform requires a power-of-two length (all lengths used in the
//! paper's experiments — 64 to 512 — qualify).

use coconut_series::Value;
use coconut_storage::{Error, Result};

/// Whether the transform supports this length.
pub fn supported_len(n: usize) -> bool {
    n.is_power_of_two()
}

/// Orthonormal Haar transform. Output layout is coarse-first: index 0 is the
/// overall (scaled) average, followed by detail levels of sizes 1, 2, 4, ...
pub fn haar_transform(series: &[Value]) -> Result<Vec<f64>> {
    let n = series.len();
    if !supported_len(n) {
        return Err(Error::invalid(format!(
            "Haar transform needs a power-of-two length, got {n}"
        )));
    }
    let mut cur: Vec<f64> = series.iter().map(|&v| v as f64).collect();
    let mut out = vec![0.0f64; n];
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    let mut len = n;
    while len > 1 {
        let half = len / 2;
        // Details of this level land at out[half..len] (finest level last).
        for i in 0..half {
            let a = cur[2 * i];
            let b = cur[2 * i + 1];
            out[half + i] = (a - b) * inv_sqrt2;
            cur[i] = (a + b) * inv_sqrt2;
        }
        len = half;
    }
    out[0] = cur[0];
    Ok(out)
}

/// Inverse of [`haar_transform`] (used by tests to prove losslessness).
pub fn inverse_haar(coeffs: &[f64]) -> Result<Vec<Value>> {
    let n = coeffs.len();
    if !supported_len(n) {
        return Err(Error::invalid("inverse Haar needs a power-of-two length"));
    }
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    let mut cur = vec![0.0f64; n];
    cur[0] = coeffs[0];
    let mut len = 1usize;
    while len < n {
        // Expand averages cur[0..len] with details coeffs[len..2len].
        let mut next = vec![0.0f64; 2 * len];
        for i in 0..len {
            let a = cur[i];
            let d = coeffs[len + i];
            next[2 * i] = (a + d) * inv_sqrt2;
            next[2 * i + 1] = (a - d) * inv_sqrt2;
        }
        cur = next;
        len *= 2;
    }
    Ok(cur.into_iter().map(|v| v as Value).collect())
}

/// Sizes of the coefficient levels, coarse to fine: `[1, 1, 2, 4, ..., n/2]`.
pub fn level_sizes(n: usize) -> Vec<usize> {
    debug_assert!(supported_len(n));
    let mut sizes = vec![1usize];
    let mut s = 1usize;
    while s < n {
        sizes.push(s);
        s *= 2;
    }
    sizes
}

/// Squared distance over a coefficient prefix — a lower bound on the squared
/// Euclidean distance between the original series (Parseval).
#[inline]
pub fn prefix_dist_sq(a: &[f64], b: &[f64], prefix: usize) -> f64 {
    debug_assert!(prefix <= a.len() && prefix <= b.len());
    let mut acc = 0.0f64;
    for i in 0..prefix {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::distance::euclidean_sq;

    fn wavy(seed: u32, len: usize) -> Vec<Value> {
        (0..len)
            .map(|i| ((i as f32 * 0.31 + seed as f32) * 0.7).sin() * 2.0)
            .collect()
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(haar_transform(&[1.0, 2.0, 3.0]).is_err());
        assert!(inverse_haar(&[1.0, 2.0, 3.0]).is_err());
        assert!(supported_len(64));
        assert!(!supported_len(100));
    }

    #[test]
    fn known_transform_of_simple_vector() {
        // [1,1,1,1]: all energy in the average coefficient: 4 * (1/2)^2... the
        // orthonormal average of four ones is 1*sqrt(4) = 2.
        let t = haar_transform(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!((t[0] - 2.0).abs() < 1e-12);
        assert!(t[1..].iter().all(|&c| c.abs() < 1e-12));
    }

    #[test]
    fn roundtrip_is_lossless() {
        for len in [1usize, 2, 4, 64, 256] {
            let s = wavy(3, len);
            let t = haar_transform(&s).unwrap();
            let back = inverse_haar(&t).unwrap();
            for (a, b) in s.iter().zip(back.iter()) {
                assert!((a - b).abs() < 1e-4, "len={len}");
            }
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let s = wavy(5, 128);
        let t = haar_transform(&s).unwrap();
        let energy_s: f64 = s.iter().map(|&v| (v as f64).powi(2)).sum();
        let energy_t: f64 = t.iter().map(|&c| c * c).sum();
        assert!((energy_s - energy_t).abs() < 1e-9);
    }

    #[test]
    fn prefix_distance_lower_bounds_and_converges() {
        let a = wavy(1, 256);
        let b = wavy(9, 256);
        let ta = haar_transform(&a).unwrap();
        let tb = haar_transform(&b).unwrap();
        let true_sq = euclidean_sq(&a, &b);
        let mut prev = 0.0;
        for prefix in [1usize, 2, 4, 16, 64, 256] {
            let lb = prefix_dist_sq(&ta, &tb, prefix);
            assert!(lb <= true_sq + 1e-6, "prefix {prefix}: {lb} > {true_sq}");
            assert!(lb >= prev - 1e-12, "bound must be monotone");
            prev = lb;
        }
        assert!(
            (prev - true_sq).abs() < 1e-6,
            "full prefix must equal the true distance"
        );
    }

    #[test]
    fn level_sizes_sum_to_n() {
        for n in [1usize, 2, 8, 256] {
            let sizes = level_sizes(n);
            assert_eq!(sizes.iter().sum::<usize>(), n);
            assert_eq!(sizes[0], 1);
        }
    }
}
