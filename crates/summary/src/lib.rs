//! Data series summarizations, including the paper's sortable summarization.
//!
//! The pipeline (paper Figures 1, 2 and 4):
//!
//! 1. [`paa`] — Piecewise Aggregate Approximation: the series is cut into
//!    `w` equal segments and each segment is replaced by its mean.
//! 2. [`sax`] — Symbolic Aggregate approXimation: each PAA value is
//!    quantized into one of `2^b` regions whose boundaries ([`breakpoints`])
//!    are standard-normal quantiles, giving a `w`-symbol word.
//! 3. [`zorder`] — **the paper's contribution**: the bits of the `w` symbols
//!    are interleaved so that all most-significant bits precede all
//!    less-significant bits (Algorithm 1). The result is a single integer
//!    key; sorting by it arranges series along a z-order space-filling
//!    curve, keeping similar series adjacent — which is what enables
//!    bottom-up bulk loading.
//! 4. [`mindist`] — lower-bounding distances between a query and SAX words
//!    or iSAX node prefixes; pruning power is unchanged by the bit
//!    inversion because the transform is a bijection.
//!
//! [`isax`] provides the multi-resolution iSAX masks used by the trie-style
//! indexes, and [`haar`] the Discrete Haar Wavelet Transform used by the
//! Vertical baseline.

pub mod breakpoints;
pub mod config;
pub mod haar;
pub mod isax;
pub mod mindist;
pub mod paa;
pub mod sax;
pub mod zorder;

pub use coconut_storage::{Error, Result};
pub use config::SaxConfig;
pub use mindist::QueryDistTable;
pub use zorder::ZKey;
