//! Sortable summarizations: the paper's Algorithm 1.
//!
//! Existing summarizations lay segment symbols out one after another, so
//! sorting them lexicographically orders series by their *first* segment
//! only (paper Figure 2). `interleave` instead emits, for each bit level
//! from most to least significant, the bit of every segment in series order
//! — all significant bits precede all less significant bits. The resulting
//! integer positions the series on a z-order (Morton) space-filling curve
//! (paper Figure 4): sorting the keys keeps similar series adjacent.
//!
//! The transform is a bijection on the symbol vector, so it "contains the
//! same amount of information as the original summarization" — pruning
//! power is untouched, and [`deinterleave`] recovers the SAX word for
//! lower-bound computations.
//!
//! With the paper's default of 16 segments × 8 bits, a key is exactly one
//! `u128`; any configuration with `segments * card_bits <= 128` is
//! supported. Keys are kept in the **low** `segments * card_bits` bits, so
//! all keys of one index (same configuration) order consistently.

use crate::config::SaxConfig;

/// A sortable summarization: the bit-interleaved SAX word.
///
/// `Ord` on `ZKey` is the z-order curve ordering — the ordering that makes
/// bottom-up bulk loading possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ZKey(pub u128);

impl ZKey {
    /// The smallest key.
    pub const MIN: ZKey = ZKey(0);
    /// The largest possible key (for any configuration).
    pub const MAX: ZKey = ZKey(u128::MAX);

    /// Bit `level` of the key counting from the *top* of a
    /// `total_bits`-wide key: level 0 is the most significant interleaved
    /// bit (segment 0's top bit). Used by trie descent.
    #[inline]
    pub fn bit(&self, level: usize, total_bits: usize) -> u8 {
        debug_assert!(level < total_bits);
        ((self.0 >> (total_bits - 1 - level)) & 1) as u8
    }

    /// The value of the `width` bits starting at bit `level` from the top
    /// of a `total_bits`-wide key — the child slot a variable-fanout trie
    /// node of fanout `2^width` routes this key to. `bits(l, 1, t)` equals
    /// [`ZKey::bit`]`(l, t)`.
    #[inline]
    pub fn bits(&self, level: usize, width: usize, total_bits: usize) -> u32 {
        debug_assert!((1..=32).contains(&width));
        debug_assert!(level + width <= total_bits);
        let shift = total_bits - level - width;
        let mask = if width >= 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        };
        ((self.0 >> shift) & mask) as u32
    }

    /// The key truncated to its first `depth` (most significant) bits, with
    /// the rest zeroed — the smallest key in the node covering this prefix.
    #[inline]
    pub fn prefix(&self, depth: usize, total_bits: usize) -> ZKey {
        debug_assert!(depth <= total_bits);
        if depth == 0 {
            return ZKey(0);
        }
        let keep = u128::MAX << (total_bits - depth).min(127);
        let keep = if total_bits - depth >= 128 { 0 } else { keep };
        // Mask relative to the used width.
        let width_mask = if total_bits >= 128 {
            u128::MAX
        } else {
            (1u128 << total_bits) - 1
        };
        ZKey(self.0 & keep & width_mask)
    }
}

/// Interleave `symbols` (one per segment, each holding `card_bits`
/// significant bits) into a z-order key — Algorithm 1 (`invertSum`).
#[inline]
pub fn interleave(symbols: &[u8], card_bits: u8) -> ZKey {
    let w = symbols.len();
    debug_assert!(w * card_bits as usize <= 128);
    let mut key: u128 = 0;
    // "for each bit i of a segment (most significant first): for each
    //  segment j: append bit i of segment j"
    for i in (0..card_bits).rev() {
        for &s in symbols {
            key = (key << 1) | ((s >> i) & 1) as u128;
        }
    }
    ZKey(key)
}

/// Recover the SAX symbols from a z-order key (the inverse of
/// [`interleave`]).
#[inline]
pub fn deinterleave_into(key: ZKey, segments: usize, card_bits: u8, out: &mut [u8]) {
    debug_assert_eq!(out.len(), segments);
    out[..segments].fill(0);
    let total = segments * card_bits as usize;
    let mut pos = 0usize;
    for i in (0..card_bits).rev() {
        for symbol in out.iter_mut().take(segments) {
            let bit = ((key.0 >> (total - 1 - pos)) & 1) as u8;
            *symbol |= bit << i;
            pos += 1;
        }
    }
}

/// Recover the SAX symbols from a z-order key into a fresh vector.
pub fn deinterleave(key: ZKey, segments: usize, card_bits: u8) -> Vec<u8> {
    let mut out = vec![0u8; segments];
    deinterleave_into(key, segments, card_bits, &mut out);
    out
}

/// The *unsortable* ordering used as an ablation: symbols packed
/// segment-after-segment (plain lexicographic SAX order, paper Figure 2).
pub fn lexicographic_key(symbols: &[u8], card_bits: u8) -> ZKey {
    let w = symbols.len();
    debug_assert!(w * card_bits as usize <= 128);
    let mut key: u128 = 0;
    for &s in symbols {
        key = (key << card_bits) | (s as u128 & ((1u128 << card_bits) - 1));
    }
    ZKey(key)
}

/// Per-segment prefix lengths of a z-order trie node at `depth`: segment `j`
/// has `(depth + w - 1 - j) / w` assigned bits. A z-order prefix is exactly
/// an iSAX node whose per-segment cardinalities differ by at most one bit —
/// the paper's Coconut-Trie node shape.
pub fn prefix_bits_at_depth(depth: usize, config: &SaxConfig) -> Vec<u8> {
    let w = config.segments;
    (0..w).map(|j| ((depth + w - 1 - j) / w) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure4_example() {
        // S1=ec=(100,010), S2=ee=(100,100), S3=fc=(101,010), S4=ge=(110,100)
        // with 3-bit symbols. Sorted by z-order the similar pairs are
        // adjacent: S1,S3 then S2,S4 — unlike lexicographic order.
        let s1 = interleave(&[0b100, 0b010], 3);
        let s2 = interleave(&[0b100, 0b100], 3);
        let s3 = interleave(&[0b101, 0b010], 3);
        let s4 = interleave(&[0b110, 0b100], 3);
        assert_eq!(s1.0, 0b100100);
        assert_eq!(s2.0, 0b110000);
        assert_eq!(s3.0, 0b100110);
        assert_eq!(s4.0, 0b111000);
        let mut order = [("S1", s1), ("S2", s2), ("S3", s3), ("S4", s4)];
        order.sort_by_key(|&(_, k)| k);
        let names: Vec<&str> = order.iter().map(|&(n, _)| n).collect();
        assert_eq!(names, vec!["S1", "S3", "S2", "S4"]);

        // Lexicographic order shows the pathology: S1,S2 adjacent instead.
        let mut lex = [
            ("S1", lexicographic_key(&[0b100, 0b010], 3)),
            ("S2", lexicographic_key(&[0b100, 0b100], 3)),
            ("S3", lexicographic_key(&[0b101, 0b010], 3)),
            ("S4", lexicographic_key(&[0b110, 0b100], 3)),
        ];
        lex.sort_by_key(|&(_, k)| k);
        let names: Vec<&str> = lex.iter().map(|&(n, _)| n).collect();
        assert_eq!(names, vec!["S1", "S2", "S3", "S4"]);
    }

    #[test]
    fn roundtrip_all_widths() {
        for (w, bits) in [
            (1usize, 8u8),
            (2, 4),
            (4, 8),
            (16, 8),
            (32, 4),
            (16, 1),
            (3, 5),
        ] {
            let symbols: Vec<u8> = (0..w)
                .map(|j| ((j * 37 + 11) % (1 << bits)) as u8)
                .collect();
            let key = interleave(&symbols, bits);
            assert_eq!(deinterleave(key, w, bits), symbols, "w={w} bits={bits}");
        }
    }

    #[test]
    fn full_128_bit_key_roundtrip() {
        let symbols: Vec<u8> = (0..16).map(|j| (j * 17) as u8).collect();
        let key = interleave(&symbols, 8);
        assert_eq!(deinterleave(key, 16, 8), symbols);
        // All-ones uses all 128 bits.
        let ones = vec![0xffu8; 16];
        assert_eq!(interleave(&ones, 8).0, u128::MAX);
    }

    #[test]
    fn bit_accessor_walks_msb_first() {
        let key = interleave(&[0b10, 0b01], 2); // bits: 1,0 (level0) 0,1 (level1)
        let total = 4;
        assert_eq!(key.bit(0, total), 1);
        assert_eq!(key.bit(1, total), 0);
        assert_eq!(key.bit(2, total), 0);
        assert_eq!(key.bit(3, total), 1);
    }

    #[test]
    fn bits_accessor_matches_single_bit_walk() {
        let key = interleave(&[0b101, 0b011], 3); // 6-bit key
        let total = 6;
        // Width 1 agrees with bit() at every level.
        for level in 0..total {
            assert_eq!(key.bits(level, 1, total), key.bit(level, total) as u32);
        }
        // Wider windows are the concatenation of the single bits.
        for level in 0..total {
            for width in 1..=(total - level) {
                let mut want = 0u32;
                for l in level..level + width {
                    want = (want << 1) | key.bit(l, total) as u32;
                }
                assert_eq!(key.bits(level, width, total), want, "l={level} w={width}");
            }
        }
    }

    #[test]
    fn bits_accessor_full_width_key() {
        let key = ZKey(u128::MAX);
        assert_eq!(key.bits(0, 32, 128), u32::MAX);
        assert_eq!(key.bits(96, 32, 128), u32::MAX);
        let key = ZKey(1);
        assert_eq!(key.bits(96, 32, 128), 1);
        assert_eq!(key.bits(0, 32, 128), 0);
    }

    #[test]
    fn prefix_masks_low_bits() {
        let key = ZKey(0b101101);
        let total = 6;
        assert_eq!(key.prefix(0, total).0, 0);
        assert_eq!(key.prefix(2, total).0, 0b100000);
        assert_eq!(key.prefix(5, total).0, 0b101100);
        assert_eq!(key.prefix(6, total).0, 0b101101);
    }

    #[test]
    fn prefix_works_at_128_bits() {
        let key = ZKey(u128::MAX);
        assert_eq!(key.prefix(0, 128).0, 0);
        assert_eq!(key.prefix(1, 128).0, 1u128 << 127);
        assert_eq!(key.prefix(128, 128).0, u128::MAX);
    }

    #[test]
    fn more_significant_bits_dominate_ordering() {
        // Changing a high bit of any segment must move the key more than
        // changing any lower bit of any segment.
        let base = [0b1000u8, 0b1000, 0b1000, 0b1000];
        let base_key = interleave(&base, 4);
        let mut high = base;
        high[3] ^= 0b1000; // top bit of last segment
        let mut low = base;
        low[0] ^= 0b0001; // bottom bit of first segment
        let dh = interleave(&high, 4).0.abs_diff(base_key.0);
        let dl = interleave(&low, 4).0.abs_diff(base_key.0);
        assert!(dh > dl);
    }

    #[test]
    fn prefix_bits_at_depth_shape() {
        let cfg = SaxConfig {
            series_len: 64,
            segments: 4,
            card_bits: 2,
        };
        assert_eq!(prefix_bits_at_depth(0, &cfg), vec![0, 0, 0, 0]);
        assert_eq!(prefix_bits_at_depth(1, &cfg), vec![1, 0, 0, 0]);
        assert_eq!(prefix_bits_at_depth(4, &cfg), vec![1, 1, 1, 1]);
        assert_eq!(prefix_bits_at_depth(6, &cfg), vec![2, 2, 1, 1]);
        assert_eq!(prefix_bits_at_depth(8, &cfg), vec![2, 2, 2, 2]);
    }

    #[test]
    fn zkey_ordering_is_total_and_consistent() {
        let keys: Vec<ZKey> = (0..100u8)
            .map(|i| interleave(&[i, 100 - i, i / 2, 3], 8))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        for pair in sorted.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }
}
