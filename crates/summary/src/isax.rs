//! Multi-resolution iSAX masks.
//!
//! iSAX represents a *set* of series by a per-segment prefix: segment `j`
//! keeps only its `bits[j]` most significant symbol bits. Every node of an
//! iSAX-style index (iSAX 2.0, ADS, Coconut-Trie) is identified by such a
//! mask; splitting a node increases one segment's prefix by one bit
//! (paper Section 3.2, "prefix-based splitting").

use crate::config::SaxConfig;
use crate::zorder::{deinterleave, prefix_bits_at_depth, ZKey};

/// A per-segment prefix mask: `prefix[j]` holds the top `bits[j]` bits of
/// segment `j`'s symbol, right-aligned (so `prefix[j] < 2^bits[j]`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IsaxMask {
    prefix: Box<[u8]>,
    bits: Box<[u8]>,
}

impl IsaxMask {
    /// The root mask: zero bits in every segment (matches everything).
    pub fn root(segments: usize) -> Self {
        IsaxMask {
            prefix: vec![0u8; segments].into_boxed_slice(),
            bits: vec![0u8; segments].into_boxed_slice(),
        }
    }

    /// A mask from explicit prefixes and bit counts.
    pub fn new(prefix: Box<[u8]>, bits: Box<[u8]>) -> Self {
        debug_assert_eq!(prefix.len(), bits.len());
        debug_assert!(prefix
            .iter()
            .zip(bits.iter())
            .all(|(&p, &b)| b == 8 || p < (1 << b)));
        IsaxMask { prefix, bits }
    }

    /// The full-resolution mask of one SAX word.
    pub fn full(symbols: &[u8], card_bits: u8) -> Self {
        IsaxMask {
            prefix: symbols.into(),
            bits: vec![card_bits; symbols.len()].into_boxed_slice(),
        }
    }

    /// The mask of a z-order trie node: the first `depth` interleaved bits
    /// of `key` (paper Coconut-Trie node identity).
    pub fn from_zorder_prefix(key: ZKey, depth: usize, config: &SaxConfig) -> Self {
        let bits = prefix_bits_at_depth(depth, config);
        let symbols = deinterleave(key, config.segments, config.card_bits);
        let prefix: Vec<u8> = symbols
            .iter()
            .zip(bits.iter())
            .map(|(&s, &b)| {
                if b == 0 {
                    0
                } else {
                    s >> (config.card_bits - b)
                }
            })
            .collect();
        IsaxMask {
            prefix: prefix.into(),
            bits: bits.into(),
        }
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.prefix.len()
    }

    /// Prefix values, right-aligned per segment.
    pub fn prefix(&self) -> &[u8] {
        &self.prefix
    }

    /// Bits used per segment.
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }

    /// Whether a full-cardinality SAX word falls under this mask.
    pub fn matches(&self, symbols: &[u8], card_bits: u8) -> bool {
        debug_assert_eq!(symbols.len(), self.prefix.len());
        self.prefix
            .iter()
            .zip(self.bits.iter())
            .zip(symbols.iter())
            .all(|((&p, &b), &s)| b == 0 || (s >> (card_bits - b)) == p)
    }

    /// The two children produced by splitting on `segment` (adding one bit).
    /// Panics if the segment is already at full cardinality `card_bits`.
    pub fn split(&self, segment: usize, card_bits: u8) -> (IsaxMask, IsaxMask) {
        assert!(
            self.bits[segment] < card_bits,
            "segment {segment} already at full cardinality"
        );
        let mut bits = self.bits.clone();
        bits[segment] += 1;
        let mut left_prefix = self.prefix.clone();
        left_prefix[segment] <<= 1;
        let mut right_prefix = left_prefix.clone();
        right_prefix[segment] |= 1;
        (
            IsaxMask {
                prefix: left_prefix,
                bits: bits.clone(),
            },
            IsaxMask {
                prefix: right_prefix,
                bits,
            },
        )
    }

    /// Which child of a split on `segment` a word belongs to (0 or 1): the
    /// next unprefixed bit of that segment.
    pub fn child_of(&self, segment: usize, symbol: u8, card_bits: u8) -> usize {
        let b = self.bits[segment];
        debug_assert!(b < card_bits);
        ((symbol >> (card_bits - b - 1)) & 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zorder::interleave;

    #[test]
    fn root_matches_everything() {
        let m = IsaxMask::root(4);
        assert!(m.matches(&[0, 255, 17, 99], 8));
        assert!(m.matches(&[0, 0, 0, 0], 8));
    }

    #[test]
    fn full_matches_only_itself() {
        let m = IsaxMask::full(&[10, 20, 30], 8);
        assert!(m.matches(&[10, 20, 30], 8));
        assert!(!m.matches(&[10, 20, 31], 8));
        assert!(!m.matches(&[11, 20, 30], 8));
    }

    #[test]
    fn split_partitions_matching_words() {
        let root = IsaxMask::root(2);
        let (l, r) = root.split(0, 8);
        // Words with top bit 0 in segment 0 go left, top bit 1 right.
        assert!(l.matches(&[0x3f, 200], 8));
        assert!(!r.matches(&[0x3f, 200], 8));
        assert!(r.matches(&[0x80, 0], 8));
        assert!(!l.matches(&[0x80, 0], 8));
        assert_eq!(root.child_of(0, 0x3f, 8), 0);
        assert_eq!(root.child_of(0, 0x80, 8), 1);
        // Splitting further refines the same segment.
        let (ll, lr) = l.split(0, 8);
        assert!(ll.matches(&[0x20, 0], 8)); // 0b0010_0000 -> bits 00
        assert!(lr.matches(&[0x60, 0], 8)); // 0b0110_0000 -> bits 01
    }

    #[test]
    #[should_panic]
    fn split_at_full_cardinality_panics() {
        let m = IsaxMask::full(&[1, 2], 8);
        let _ = m.split(0, 8);
    }

    #[test]
    fn zorder_prefix_node_matches_member_keys() {
        let cfg = SaxConfig {
            series_len: 64,
            segments: 4,
            card_bits: 4,
        };
        let symbols = [0b1010u8, 0b0110, 0b0001, 0b1111];
        let key = interleave(&symbols, cfg.card_bits);
        for depth in 0..=16usize {
            let mask = IsaxMask::from_zorder_prefix(key, depth, &cfg);
            assert!(mask.matches(&symbols, cfg.card_bits), "depth {depth}");
            let total: usize = mask.bits().iter().map(|&b| b as usize).sum();
            assert_eq!(total, depth, "depth {depth}");
        }
    }

    #[test]
    fn zorder_prefix_excludes_non_members() {
        let cfg = SaxConfig {
            series_len: 64,
            segments: 2,
            card_bits: 4,
        };
        let a = [0b1010u8, 0b0110];
        let b = [0b0010u8, 0b0110]; // differs in segment 0's top bit
        let key_a = interleave(&a, 4);
        // Depth 1 assigns segment 0's top bit.
        let mask = IsaxMask::from_zorder_prefix(key_a, 1, &cfg);
        assert!(mask.matches(&a, 4));
        assert!(!mask.matches(&b, 4));
    }
}
