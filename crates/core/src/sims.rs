//! SIMS: exact search by Scanning In-Memory Summarizations (Algorithm 5).
//!
//! The paper's exact search keeps every record's sortable summarization in
//! main memory ("the SAX summaries of 1 billion data series occupy merely
//! 16 GB"), and answers a query in three steps:
//!
//! 1. seed a best-so-far (`bsf`) with an approximate search;
//! 2. compute a lower bound (MINDIST) for *every* record with multiple
//!    parallel threads over the in-memory array;
//! 3. walk the records in storage order, fetching the raw series only where
//!    the lower bound beats the current `bsf` — a *skip-sequential* scan,
//!    because the summary array is aligned with the on-disk order.
//!
//! The scan order differs per index flavor (raw-file order for
//! non-materialized indexes, leaf order for materialized ones); the fetch
//! is abstracted behind [`SeriesFetcher`].
//!
//! # Invariants
//!
//! * **Monotone fetches.** The scan visits indexes in strictly increasing
//!   order, and [`SeriesFetcher`] implementations rely on it: they are
//!   forward-only cursors, which is what makes the scan *skip-sequential*
//!   (every raw-file/leaf read moves forward, never seeks back).
//! * **Kernel dispatch is process-wide and answer-invariant.** The MINDIST
//!   batch kernel and the early-abandoning Euclidean distance go through
//!   `coconut_series::simd`'s runtime dispatch (AVX2 where available, a
//!   bit-identical scalar mirror otherwise). Setting the environment
//!   variable `COCONUT_FORCE_SCALAR=1` before the first query pins the
//!   scalar mirror; answers are bit-identical either way (enforced by
//!   `tests/simd_parity.rs` and the per-kernel property suites).
//! * **Threads share nothing but the bound array.** The parallel MINDIST
//!   pass splits the key array into disjoint chunks, one per worker, each
//!   with its own [`QueryDistTable`]-driven scratch. Note this is *query*
//!   parallelism; the *build*-side rule that concurrent workers divide the
//!   memory budget (K sorters get `budget / K` each) is documented on
//!   [`coconut_storage::ExternalSorter::new`] and `crate::shard`.
//! * **Split-policy independence.** SIMS scans the *full* sorted key
//!   array and visits records in storage order — neither step consults
//!   node boundaries — so answers are bit-identical no matter which
//!   [`crate::split::SplitPolicy`] shaped the trie above the keys. Only
//!   the approximate bsf-seeding descent touches nodes, and a different
//!   seed can only change *work*, never the exact answer.

use coconut_series::distance::euclidean_sq_early_abandon;
use coconut_series::dtw::{dtw_sq_early_abandon, lb_keogh_sq, Envelope};
use coconut_series::index::{Answer, QueryStats};
use coconut_series::Value;
use coconut_storage::{Deadline, Result};
use coconut_summary::mindist::{envelope_segment_bounds, mindist_env_zkey, QueryDistTable};
use coconut_summary::{SaxConfig, ZKey};

/// How many scan iterations pass between two [`Deadline`] checks. The scan
/// body is tens-to-hundreds of nanoseconds per record, so checking the
/// clock every 64 records bounds overrun to microseconds while keeping the
/// check itself off the per-record path.
const DEADLINE_STRIDE: usize = 64;

/// Check `deadline` once every [`DEADLINE_STRIDE`] iterations — the scan's
/// cancellation checkpoints sit at the same cadence as its early-abandon
/// cutoff tests.
#[inline]
fn checkpoint(deadline: Deadline, i: usize) -> Result<()> {
    if i.is_multiple_of(DEADLINE_STRIDE) {
        deadline.check()?;
    }
    Ok(())
}

/// Fetches the raw series for scan index `i` (in the summary array's order).
///
/// Implementations are stateful cursors: SIMS guarantees indexes arrive in
/// increasing order, so fetchers can stream forward (skip-sequentially).
pub trait SeriesFetcher {
    /// Fill `out` with the series at scan index `i`; return its raw-file
    /// position.
    fn fetch(&mut self, i: usize, out: &mut [Value]) -> Result<u64>;
}

/// Below this many keys the scan runs single-threaded: one mindist costs
/// ~100 ns, so spawning scoped OS threads only pays for itself once the
/// scan itself reaches tens of milliseconds (measured in `bench_query`'s
/// `sims_threads` group — at 20k keys extra threads *lose* ~35%).
pub const PARALLEL_MIN_KEYS: usize = 1 << 17;

/// Compute the MINDIST lower bound of every key against `query_paa`, using
/// `threads` worker threads (step 2 of Algorithm 5).
///
/// The scan is batched: the query's squared distance to every SAX region is
/// tabulated once ([`QueryDistTable`]), then keys are block-decoded into
/// struct-of-arrays scratch and bounded [`coconut_summary::mindist::MINDIST_BATCH`]
/// at a time by the runtime-dispatched vector kernel (AVX2 gathers + BMI2
/// decode where available, a bit-identical scalar mirror otherwise).
pub fn parallel_mindists(
    query_paa: &[f64],
    keys: &[ZKey],
    config: &SaxConfig,
    threads: usize,
) -> Vec<f64> {
    parallel_mindists_with_threshold(query_paa, keys, config, threads, PARALLEL_MIN_KEYS)
}

/// [`parallel_mindists`] with an explicit serial/parallel cutover (exposed
/// so tests and benchmarks can force either path).
pub fn parallel_mindists_with_threshold(
    query_paa: &[f64],
    keys: &[ZKey],
    config: &SaxConfig,
    threads: usize,
    min_parallel_keys: usize,
) -> Vec<f64> {
    let n = keys.len();
    let mut out = vec![0.0f64; n];
    let table = QueryDistTable::new(query_paa, config);
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n < min_parallel_keys {
        table.mindist_batch_into(keys, &mut out);
        return out;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (keys_chunk, out_chunk) in keys.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let table = &table;
            s.spawn(move || {
                table.mindist_batch_into(keys_chunk, out_chunk);
            });
        }
    });
    out
}

/// Exact 1-NN via SIMS. `keys[i]` must be the summarization of the record
/// the fetcher returns for scan index `i`; `bsf` is the approximate-search
/// seed (merged into the result). `deadline` is checked at the scan's
/// early-abandon checkpoints; an expired deadline aborts with
/// [`coconut_storage::Error::Deadline`].
#[allow(clippy::too_many_arguments)] // the full Algorithm 5 parameter set
pub fn sims_exact(
    query: &[Value],
    query_paa: &[f64],
    keys: &[ZKey],
    config: &SaxConfig,
    threads: usize,
    mut bsf: Answer,
    fetcher: &mut dyn SeriesFetcher,
    deadline: Deadline,
) -> Result<(Answer, QueryStats)> {
    let mut stats = QueryStats::default();
    deadline.check()?;
    let mindists = parallel_mindists(query_paa, keys, config, threads);
    stats.lower_bounds += keys.len() as u64;

    let mut buf = vec![0.0 as Value; query.len()];
    let mut bsf_sq = bsf.dist * bsf.dist;
    for (i, &md) in mindists.iter().enumerate() {
        checkpoint(deadline, i)?;
        if md >= bsf.dist {
            stats.pruned += 1;
            continue;
        }
        let pos = fetcher.fetch(i, &mut buf)?;
        stats.records_fetched += 1;
        if let Some(d_sq) = euclidean_sq_early_abandon(query, &buf, bsf_sq) {
            if d_sq < bsf_sq {
                bsf = Answer {
                    pos,
                    dist: d_sq.sqrt(),
                };
                bsf_sq = d_sq;
            }
        }
    }
    Ok((bsf, stats))
}

/// Exact range query via SIMS (extension): every record whose Euclidean
/// distance to `query` is at most `epsilon`, sorted by distance. `deadline`
/// is checked at the scan's early-abandon checkpoints.
#[allow(clippy::too_many_arguments)] // mirrors sims_exact plus epsilon
pub fn sims_range(
    query: &[Value],
    query_paa: &[f64],
    keys: &[ZKey],
    config: &SaxConfig,
    threads: usize,
    epsilon: f64,
    fetcher: &mut dyn SeriesFetcher,
    deadline: Deadline,
) -> Result<(Vec<Answer>, QueryStats)> {
    let mut stats = QueryStats::default();
    deadline.check()?;
    let mindists = parallel_mindists(query_paa, keys, config, threads);
    stats.lower_bounds += keys.len() as u64;
    // The inclusion test is `sqrt(d_sq) <= epsilon`, but the abandon cutoff
    // lives in squared space: epsilon² can round to just below the d_sq of a
    // boundary hit (sqrt/square is not an exact roundtrip), silently dropping
    // it. Pad the cutoff by a few ulps and re-test in distance space.
    let cutoff_sq = (epsilon * epsilon) * (1.0 + 8.0 * f64::EPSILON);
    let mut out = Vec::new();
    let mut buf = vec![0.0 as Value; query.len()];
    for (i, &md) in mindists.iter().enumerate() {
        checkpoint(deadline, i)?;
        if md > epsilon {
            stats.pruned += 1;
            continue;
        }
        let pos = fetcher.fetch(i, &mut buf)?;
        stats.records_fetched += 1;
        if let Some(d_sq) = euclidean_sq_early_abandon(query, &buf, cutoff_sq) {
            let dist = d_sq.sqrt();
            if dist <= epsilon {
                out.push(Answer { pos, dist });
            }
        }
    }
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist));
    Ok((out, stats))
}

/// Exact 1-NN under **Dynamic Time Warping** via SIMS (extension; the
/// paper notes DTW compatibility in Section 2). Pruning cascade per
/// record: index-level envelope bound → LB_Keogh on the raw series → full
/// banded DTW with early abandoning. `bsf` must hold a *DTW* distance (or
/// be `Answer::none()`). `deadline` is checked at the scan's early-abandon
/// checkpoints.
#[allow(clippy::too_many_arguments)] // mirrors sims_exact plus the warping band
pub fn sims_exact_dtw(
    query: &[Value],
    band: usize,
    keys: &[ZKey],
    config: &SaxConfig,
    threads: usize,
    mut bsf: Answer,
    fetcher: &mut dyn SeriesFetcher,
    deadline: Deadline,
) -> Result<(Answer, QueryStats)> {
    let mut stats = QueryStats::default();
    deadline.check()?;
    let envelope = Envelope::new(query, band);
    let (env_lo, env_hi) =
        envelope_segment_bounds(&envelope.lower, &envelope.upper, config.segments);

    // Parallel index-level lower bounds from the envelope.
    let n = keys.len();
    let mut index_lbs = vec![0.0f64; n];
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 || n < PARALLEL_MIN_KEYS {
        for (o, &k) in index_lbs.iter_mut().zip(keys.iter()) {
            *o = mindist_env_zkey(&env_lo, &env_hi, k, config);
        }
    } else {
        let chunk = n.div_ceil(workers);
        std::thread::scope(|s| {
            for (keys_chunk, out_chunk) in keys.chunks(chunk).zip(index_lbs.chunks_mut(chunk)) {
                let (env_lo, env_hi) = (&env_lo, &env_hi);
                s.spawn(move || {
                    for (o, &k) in out_chunk.iter_mut().zip(keys_chunk.iter()) {
                        *o = mindist_env_zkey(env_lo, env_hi, k, config);
                    }
                });
            }
        });
    }
    stats.lower_bounds += n as u64;

    let mut buf = vec![0.0 as Value; query.len()];
    let mut bsf_sq = bsf.dist * bsf.dist;
    for (i, &lb) in index_lbs.iter().enumerate() {
        checkpoint(deadline, i)?;
        if lb >= bsf.dist {
            stats.pruned += 1;
            continue;
        }
        let pos = fetcher.fetch(i, &mut buf)?;
        stats.records_fetched += 1;
        // Tighter point-level bound before paying for DTW.
        if lb_keogh_sq(&envelope, &buf) >= bsf_sq {
            continue;
        }
        if let Some(d_sq) = dtw_sq_early_abandon(query, &buf, band, bsf_sq) {
            if d_sq < bsf_sq {
                bsf = Answer {
                    pos,
                    dist: d_sq.sqrt(),
                };
                bsf_sq = d_sq;
            }
        }
    }
    Ok((bsf, stats))
}

/// Exact k-NN via SIMS (an extension beyond the paper, which reports 1-NN).
/// Returns up to `k` answers sorted by distance. `deadline` is checked at
/// the scan's early-abandon checkpoints.
#[allow(clippy::too_many_arguments)] // mirrors sims_exact plus (k, seeds)
pub fn sims_exact_knn(
    query: &[Value],
    query_paa: &[f64],
    keys: &[ZKey],
    config: &SaxConfig,
    threads: usize,
    k: usize,
    seed: &[Answer],
    fetcher: &mut dyn SeriesFetcher,
    deadline: Deadline,
) -> Result<(Vec<Answer>, QueryStats)> {
    sims_exact_knn_bounded(
        query,
        query_paa,
        keys,
        config,
        threads,
        k,
        f64::INFINITY,
        seed,
        fetcher,
        deadline,
    )
}

/// [`sims_exact_knn`] with an external pruning `bound`: only candidates
/// with distance below `bound` can enter the result. A scatter-gather
/// coordinator passes the k-th best distance merged from shards queried so
/// far, so later shards prune with earlier shards' results (candidates at
/// or beyond the bound could never displace the coordinator's existing
/// top-k under the global `(dist, pos)` order). Pass `f64::INFINITY` for
/// the plain unbounded scan — the two are then identical.
#[allow(clippy::too_many_arguments)] // mirrors sims_exact_knn plus bound
pub fn sims_exact_knn_bounded(
    query: &[Value],
    query_paa: &[f64],
    keys: &[ZKey],
    config: &SaxConfig,
    threads: usize,
    k: usize,
    bound: f64,
    seed: &[Answer],
    fetcher: &mut dyn SeriesFetcher,
    deadline: Deadline,
) -> Result<(Vec<Answer>, QueryStats)> {
    let mut stats = QueryStats::default();
    if k == 0 {
        return Ok((Vec::new(), stats));
    }
    deadline.check()?;
    // A simple bounded set: k is small (the paper's experiments use 1).
    let mut best: Vec<Answer> = Vec::with_capacity(k + 1);
    let insert = |best: &mut Vec<Answer>, a: Answer| {
        if best.iter().any(|b| b.pos == a.pos) {
            return;
        }
        let at = best.partition_point(|b| b.dist <= a.dist);
        best.insert(at, a);
        best.truncate(k);
    };
    for &a in seed {
        if a.is_some() {
            insert(&mut best, a);
        }
    }
    let mindists = parallel_mindists(query_paa, keys, config, threads);
    stats.lower_bounds += keys.len() as u64;

    let mut buf = vec![0.0 as Value; query.len()];
    for (i, &md) in mindists.iter().enumerate() {
        checkpoint(deadline, i)?;
        // The k-th best so far caps the scan as usual; the external bound
        // caps it even while the local set is not yet full (seeds may sit
        // beyond the bound, so take the min rather than trusting them).
        let cutoff = if best.len() == k {
            best[k - 1].dist.min(bound)
        } else {
            bound
        };
        if md >= cutoff {
            stats.pruned += 1;
            continue;
        }
        let pos = fetcher.fetch(i, &mut buf)?;
        stats.records_fetched += 1;
        let cutoff_sq = if cutoff.is_finite() {
            cutoff * cutoff
        } else {
            f64::INFINITY
        };
        if let Some(d_sq) = euclidean_sq_early_abandon(query, &buf, cutoff_sq) {
            insert(
                &mut best,
                Answer {
                    pos,
                    dist: d_sq.sqrt(),
                },
            );
        }
    }
    Ok((best, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::distance::{euclidean, znormalize};
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_summary::paa::paa;
    use coconut_summary::sax::Summarizer;

    struct VecFetcher<'a> {
        data: &'a [Vec<Value>],
    }

    impl SeriesFetcher for VecFetcher<'_> {
        fn fetch(&mut self, i: usize, out: &mut [Value]) -> Result<u64> {
            out.copy_from_slice(&self.data[i]);
            Ok(i as u64)
        }
    }

    fn setup(n: usize, len: usize) -> (Vec<Vec<Value>>, Vec<ZKey>, SaxConfig) {
        let config = SaxConfig::default_for_len(len);
        let mut g = RandomWalkGen::new(42);
        let mut summ = Summarizer::new(config);
        let mut data = Vec::with_capacity(n);
        let mut keys = Vec::with_capacity(n);
        for _ in 0..n {
            let mut s = g.generate(len);
            znormalize(&mut s);
            keys.push(summ.zkey(&s));
            data.push(s);
        }
        (data, keys, config)
    }

    fn brute_force(query: &[Value], data: &[Vec<Value>]) -> Answer {
        let mut best = Answer::none();
        for (i, s) in data.iter().enumerate() {
            best.merge(Answer {
                pos: i as u64,
                dist: euclidean(query, s),
            });
        }
        best
    }

    #[test]
    fn sims_matches_brute_force() {
        let (data, keys, config) = setup(500, 64);
        let mut g = RandomWalkGen::new(7);
        for _ in 0..20 {
            let mut q = g.generate(64);
            znormalize(&mut q);
            let qp = paa(&q, config.segments);
            let mut fetcher = VecFetcher { data: &data };
            let (ans, stats) = sims_exact(
                &q,
                &qp,
                &keys,
                &config,
                2,
                Answer::none(),
                &mut fetcher,
                Deadline::NONE,
            )
            .unwrap();
            let expect = brute_force(&q, &data);
            assert_eq!(ans.pos, expect.pos);
            assert!((ans.dist - expect.dist).abs() < 1e-9);
            assert_eq!(stats.lower_bounds, 500);
            assert_eq!(stats.pruned + stats.records_fetched, 500);
        }
    }

    #[test]
    fn good_seed_increases_pruning() {
        let (data, keys, config) = setup(2000, 64);
        let mut q = RandomWalkGen::new(9).generate(64);
        znormalize(&mut q);
        let qp = paa(&q, config.segments);
        let exact = brute_force(&q, &data);

        let mut f1 = VecFetcher { data: &data };
        let (_, cold) = sims_exact(
            &q,
            &qp,
            &keys,
            &config,
            1,
            Answer::none(),
            &mut f1,
            Deadline::NONE,
        )
        .unwrap();
        let mut f2 = VecFetcher { data: &data };
        let (ans, warm) =
            sims_exact(&q, &qp, &keys, &config, 1, exact, &mut f2, Deadline::NONE).unwrap();
        assert_eq!(ans.pos, exact.pos);
        assert!(
            warm.records_fetched <= cold.records_fetched,
            "seeding with the exact answer must not fetch more ({} > {})",
            warm.records_fetched,
            cold.records_fetched
        );
        assert!(warm.pruned >= cold.pruned);
    }

    #[test]
    fn parallel_mindists_match_serial() {
        let (_, keys, config) = setup(5000, 64);
        let mut q = RandomWalkGen::new(3).generate(64);
        znormalize(&mut q);
        let qp = paa(&q, config.segments);
        let serial = parallel_mindists(&qp, &keys, &config, 1);
        // Force the threaded path despite the small key count.
        let parallel = parallel_mindists_with_threshold(&qp, &keys, &config, 4, 1);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn knn_matches_brute_force_topk() {
        let (data, keys, config) = setup(300, 64);
        let mut q = RandomWalkGen::new(5).generate(64);
        znormalize(&mut q);
        let qp = paa(&q, config.segments);
        let mut fetcher = VecFetcher { data: &data };
        let (top, _) = sims_exact_knn(
            &q,
            &qp,
            &keys,
            &config,
            2,
            5,
            &[],
            &mut fetcher,
            Deadline::NONE,
        )
        .unwrap();
        let mut all: Vec<Answer> = data
            .iter()
            .enumerate()
            .map(|(i, s)| Answer {
                pos: i as u64,
                dist: euclidean(&q, s),
            })
            .collect();
        all.sort_by(|a, b| a.dist.total_cmp(&b.dist));
        assert_eq!(top.len(), 5);
        for (got, want) in top.iter().zip(all.iter().take(5)) {
            assert!((got.dist - want.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_k_zero_and_k_larger_than_n() {
        let (data, keys, config) = setup(10, 64);
        let mut q = RandomWalkGen::new(6).generate(64);
        znormalize(&mut q);
        let qp = paa(&q, config.segments);
        let mut fetcher = VecFetcher { data: &data };
        let (none, _) = sims_exact_knn(
            &q,
            &qp,
            &keys,
            &config,
            1,
            0,
            &[],
            &mut fetcher,
            Deadline::NONE,
        )
        .unwrap();
        assert!(none.is_empty());
        let mut fetcher = VecFetcher { data: &data };
        let (all, _) = sims_exact_knn(
            &q,
            &qp,
            &keys,
            &config,
            1,
            50,
            &[],
            &mut fetcher,
            Deadline::NONE,
        )
        .unwrap();
        assert_eq!(all.len(), 10);
        for w in all.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn expired_deadline_aborts_scan() {
        let (data, keys, config) = setup(200, 64);
        let mut q = RandomWalkGen::new(11).generate(64);
        znormalize(&mut q);
        let qp = paa(&q, config.segments);
        let expired = Deadline::at(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let mut fetcher = VecFetcher { data: &data };
        let err = sims_exact(
            &q,
            &qp,
            &keys,
            &config,
            1,
            Answer::none(),
            &mut fetcher,
            expired,
        )
        .unwrap_err();
        assert!(err.is_deadline(), "{err}");
        let mut fetcher = VecFetcher { data: &data };
        let err = sims_range(&q, &qp, &keys, &config, 1, 10.0, &mut fetcher, expired).unwrap_err();
        assert!(err.is_deadline(), "{err}");
        let mut fetcher = VecFetcher { data: &data };
        let err =
            sims_exact_knn(&q, &qp, &keys, &config, 1, 3, &[], &mut fetcher, expired).unwrap_err();
        assert!(err.is_deadline(), "{err}");
    }
}
