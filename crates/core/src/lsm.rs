//! LSM-style Coconut: crash-safe streaming ingest over bulk-loaded runs.
//!
//! The paper's conclusion suggests that "ideas from LSM trees could be used
//! to enable efficient updates"; the follow-up work (*"Coconut: Sortable
//! Summarizations for Scalable Indexes over Static and Streaming Data
//! Series"*) makes streaming a first-class workload. [`LsmCoconut`] is that
//! subsystem:
//!
//! * **Ingest** ([`LsmCoconut::ingest_upto`]): every revealed batch of the
//!   growing raw file is bulk-loaded bottom-up into a fresh Coconut-Tree
//!   *run* in its own `run-<id>/` directory — all large sequential writes,
//!   exactly the paper's construction path.
//! * **Compaction**: a [`CompactionPolicy`] (default
//!   [`TieredPolicy`]) decides which adjacent runs to merge; the merge
//!   itself is a K-way [`MergedStream`] over the runs' already-sorted leaf
//!   streams ([`CoconutTree::leaf_entries`]), bulk-loaded into a new run —
//!   **never** a re-sort of the raw range. Compactions execute on a
//!   dedicated worker thread, so ingest and queries proceed alongside them;
//!   [`LsmCoconut::wait_for_compactions`] is the synchronization point.
//! * **Crash safety**: the live run set lives in a versioned, checksummed
//!   [`crate::manifest::Manifest`] written atomically on every run addition
//!   and compaction. [`LsmCoconut::open`] recovers the exact committed run
//!   set after a crash, deletes orphaned run directories (from interrupted
//!   ingests or compactions) and leftover manifest temp files, and resumes.
//!   [`KillPoint`] injects simulated crashes at the three interesting
//!   instants for the crash-safety test suite; an installed
//!   [`coconut_storage::FaultPlan`] can schedule the same crashes (sites
//!   `manifest.before` / `manifest.torn` / `manifest.after`) plus run
//!   directory creation failures (`run.create`) on deterministic seeds.
//! * **Corruption handling**: every run's leaves carry CRCs (see
//!   [`crate::layout`]); [`LsmCoconut::scrub`] re-reads and verifies all of
//!   them, and a run whose index file no longer decodes is *quarantined* at
//!   open time — moved to `quarantine/` together with the runs after it
//!   (the covered prefix must stay contiguous) and dropped from a freshly
//!   committed manifest, so the index keeps serving the reduced prefix
//!   instead of failing outright.
//! * **Queries**: exact / kNN / range answers are merged across runs with
//!   per-run [`QueryStats`] aggregated into one set of work counters; read
//!   amplification is the run count, which the policy bounds.
//! * **Snapshot isolation** ([`LsmCoconut::snapshot`]): a query pins an
//!   immutable [`Snapshot`] — the committed run set plus its manifest
//!   sequence number — under one brief lock acquisition, then executes
//!   entirely lock-free. Concurrent ingests and compactions never block a
//!   pinned reader, and a compaction that obsoletes a run a snapshot still
//!   references defers the run directory's deletion until the last snapshot
//!   drops (refcount-based garbage collection; see
//!   [`LsmCoconut::collect_garbage`]).
//!
//! A dropped (or killed) `LsmCoconut` never loses committed data: anything
//! acknowledged by a successful `ingest_upto` return is durable. An ingest
//! or compaction that *fails* (including simulated kills) poisons the
//! instance — subsequent calls surface the error — mirroring a crashed
//! process; reopen from disk to continue.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use coconut_series::dataset::Dataset;
use coconut_series::index::{Answer, QueryStats, SeriesIndex};
use coconut_series::Value;
use coconut_storage::atomic::{atomic_write, atomic_write_torn, temp_path};
use coconut_storage::{fault, Deadline, Error, FaultAction, FaultPlan, MergedStream, Result};

use crate::compaction::{CompactionPolicy, TieredPolicy};
use crate::config::{BuildOptions, IndexConfig};
use crate::layout::ScrubReport;
use crate::manifest::{run_dir_name, Manifest, RunMeta};
use crate::records::{KeyPos, KeySeries};
use crate::tree::{CoconutTree, LeafEntryStream};

/// Simulated crash instants for the crash-safety test suite, armed with
/// [`LsmCoconut::set_kill_point`]. The *next* manifest commit (run addition
/// or compaction, whichever comes first) consumes the kill point, leaves
/// the on-disk state exactly as a real crash at that instant would, and
/// fails with an error — after which the instance behaves as poisoned and
/// should be reopened from disk, like a crashed process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Die before anything reaches disk: neither the manifest nor its temp
    /// file change. The operation's new run directory becomes an orphan.
    BeforeManifestWrite,
    /// Die halfway through writing the manifest temp file, before the
    /// rename: the committed manifest survives untouched and a torn
    /// `MANIFEST.tmp` is left for recovery to discard.
    MidManifestWrite,
    /// Die after the new manifest is durably renamed into place but before
    /// the obsolete run directories of a compaction are deleted: recovery
    /// must clean up the orphans.
    AfterManifestCommit,
}

/// One live run and its open index.
struct Run {
    meta: RunMeta,
    tree: Arc<CoconutTree>,
}

/// Per-run outcome of [`LsmCoconut::scrub`].
#[derive(Debug, Clone)]
pub struct RunScrub {
    /// Manifest run id.
    pub id: u64,
    /// First raw-file position the run covers.
    pub start: u64,
    /// End (exclusive) of the run's position range.
    pub end: u64,
    /// Leaves verified / legacy-unchecked when the scan succeeded.
    pub report: ScrubReport,
    /// The corruption the scan hit, if any (`None` = run is clean).
    pub error: Option<String>,
}

/// Mutable LSM state, guarded by one mutex (manifest commits happen under
/// it, so commits are serialized and always snapshot a consistent run set).
struct State {
    runs: Vec<Run>,
    covered_end: u64,
    next_run_id: u64,
    seq: u64,
    /// The freshest dataset handle seen; compactions build against it.
    dataset: Option<Dataset>,
}

/// A run retired by compaction whose directory may still be pinned by a
/// live [`Snapshot`]. The `tree` Arc doubles as the refcount: once the GC
/// list holds the only reference, no snapshot (or in-flight query) can
/// still read the run and its directory is safe to delete.
struct GcRun {
    tree: Arc<CoconutTree>,
    dir: PathBuf,
}

/// State shared with the compaction worker thread.
struct Shared {
    config: IndexConfig,
    opts: BuildOptions,
    dir: PathBuf,
    /// First raw-file position this index covers — 0 for a whole-dataset
    /// index, the slice start for a shard worker owning one key range.
    /// Fixed at creation and recorded in the manifest.
    base: u64,
    state: Mutex<State>,
    /// Serializes manifest commits *around* the state lock: a committer
    /// holds this across {mutate state, encode} and the manifest I/O, so
    /// commits hit disk in mutation order — while queries, which take only
    /// the brief `state` lock, never wait on an fsync.
    commit_order: Mutex<()>,
    /// Serializes ingest: building a run outside the state lock is only
    /// correct with a single writer, and holding this (not `&mut self`)
    /// lets a server share one `LsmCoconut` behind an `Arc` — ingest never
    /// blocks snapshot acquisition or queries.
    writer: Mutex<()>,
    /// Runs retired by compaction but possibly pinned by snapshots; swept
    /// by [`sweep_gc`] when snapshots drop.
    gc: Mutex<Vec<GcRun>>,
    policy: Mutex<Box<dyn CompactionPolicy>>,
    kill: Mutex<Option<KillPoint>>,
    /// Instance-scoped fault plan consulted *before* the process-global one
    /// at the LSM's sites — lets one index (or one test) inject faults
    /// without perturbing neighbors in the same process.
    fault_plan: Mutex<Option<Arc<FaultPlan>>>,
    /// First commit/compaction error; sticky — it poisons the instance
    /// (in-memory state may be ahead of the durable manifest, exactly like
    /// a crashed process; reopen from disk to continue).
    poisoned: Mutex<Option<String>>,
}

/// Work items for the compaction thread, processed in order.
enum Job {
    /// Apply the policy repeatedly until it proposes nothing.
    Maintain,
    /// Merge every live run into a single run.
    CompactAll,
    /// Acknowledge once every previously queued job has finished.
    Sync(Sender<()>),
}

/// An LSM collection of bulk-loaded Coconut-Tree runs with tiered
/// compaction and a crash-safe manifest. See the module docs for the
/// design; see [`LsmCoconut::new`] / [`LsmCoconut::open`] for the two ways
/// in.
pub struct LsmCoconut {
    shared: Arc<Shared>,
    jobs: Option<Sender<Job>>,
    worker: Option<JoinHandle<()>>,
}

impl LsmCoconut {
    /// Create a **fresh** LSM index in `dir` (created if missing). Errors
    /// if `dir` already holds an LSM index — a `MANIFEST` or `run-*`
    /// directories from a previous process — instead of silently mixing
    /// stale runs into a new build; use [`LsmCoconut::open`] to recover an
    /// existing index.
    pub fn new(config: IndexConfig, opts: BuildOptions, dir: impl Into<PathBuf>) -> Result<Self> {
        Self::new_based(config, opts, dir, 0)
    }

    /// [`LsmCoconut::new`] for an index that covers only the raw-file slice
    /// starting at `base` — the shard-worker flavor: a worker owning the
    /// key range `base..end` ingests and serves exactly that slice while
    /// the coordinator owns the partition map. `base` is recorded in the
    /// manifest, so [`LsmCoconut::open`] recovers it.
    pub fn new_based(
        config: IndexConfig,
        opts: BuildOptions,
        dir: impl Into<PathBuf>,
        base: u64,
    ) -> Result<Self> {
        config.validate()?;
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        if Manifest::path_in(&dir).exists() {
            return Err(Error::invalid(format!(
                "{} already contains an LSM index (MANIFEST present); \
                 use LsmCoconut::open to recover it",
                dir.display()
            )));
        }
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            if name.to_string_lossy().starts_with("run-") {
                return Err(Error::invalid(format!(
                    "{} contains stale run directory {:?} from a previous \
                     index; remove it or open the index it belongs to",
                    dir.display(),
                    name
                )));
            }
        }
        let shared = Arc::new(Shared {
            config,
            opts,
            dir,
            base,
            state: Mutex::new(State {
                runs: Vec::new(),
                covered_end: base,
                next_run_id: 0,
                seq: 0,
                dataset: None,
            }),
            commit_order: Mutex::new(()),
            writer: Mutex::new(()),
            gc: Mutex::new(Vec::new()),
            policy: Mutex::new(Box::new(TieredPolicy::default())),
            kill: Mutex::new(None),
            fault_plan: Mutex::new(None),
            poisoned: Mutex::new(None),
        });
        {
            // Commit the (empty) initial manifest so even a never-ingested
            // index can be reopened.
            let _order = shared.commit_order.lock();
            let bytes = {
                let mut st = shared.state.lock();
                st.seq += 1;
                encode_manifest(&shared, &st)
            };
            write_manifest(&shared, &bytes)?;
        }
        Self::spawn(shared)
    }

    /// Open (recover) the LSM index in `dir`: load the manifest, verify its
    /// checksum, reopen exactly the committed run set against `dataset`,
    /// and delete anything a crash left behind (orphaned `run-*`
    /// directories, a torn `MANIFEST.tmp`). The index configuration and
    /// materialization come from the manifest; `opts` supplies the runtime
    /// knobs (threads, memory budget, shards) for future builds.
    pub fn open(dir: impl Into<PathBuf>, dataset: &Dataset, opts: BuildOptions) -> Result<Self> {
        let dir = dir.into();
        let manifest = Manifest::load(&dir)?;
        if manifest.covered_end > dataset.len() {
            return Err(Error::corrupt(format!(
                "manifest covers {}..{} but the dataset holds only {} series",
                manifest.base,
                manifest.covered_end,
                dataset.len()
            )));
        }
        let mut opts = opts;
        opts.materialized = manifest.materialized;

        // Recovery cleanup: a torn manifest temp and run directories the
        // committed manifest does not reference.
        let _ = std::fs::remove_file(temp_path(&Manifest::path_in(&dir)));
        let live: HashSet<String> = manifest.runs.iter().map(|r| r.dir_name()).collect();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("run-") && !live.contains(&name) {
                let _ = std::fs::remove_dir_all(entry.path());
            }
        }

        let mut manifest = manifest;
        let mut runs = Vec::with_capacity(manifest.runs.len());
        let metas = manifest.runs.clone();
        for (i, meta) in metas.iter().enumerate() {
            match CoconutTree::open_range(
                &dir.join(&meta.file),
                dataset,
                opts.threads,
                meta.start..meta.end,
            ) {
                Ok(tree) => runs.push(Run {
                    meta: meta.clone(),
                    tree: Arc::new(tree),
                }),
                // Verify-on-open found damage: quarantine this run and
                // every later one (the covered prefix must stay contiguous)
                // and serve the reduced prefix instead of failing.
                Err(e) if e.is_corrupt() => {
                    quarantine_runs(&dir, &metas[i..], &e)?;
                    manifest.covered_end = meta.start;
                    manifest.runs.truncate(i);
                    manifest.seq += 1;
                    manifest.store(&dir)?;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        let shared = Arc::new(Shared {
            config: manifest.config,
            opts,
            dir,
            base: manifest.base,
            state: Mutex::new(State {
                runs,
                covered_end: manifest.covered_end,
                next_run_id: manifest.next_run_id,
                seq: manifest.seq,
                dataset: Some(dataset.clone()),
            }),
            commit_order: Mutex::new(()),
            writer: Mutex::new(()),
            gc: Mutex::new(Vec::new()),
            policy: Mutex::new(Box::new(TieredPolicy::default())),
            kill: Mutex::new(None),
            fault_plan: Mutex::new(None),
            poisoned: Mutex::new(None),
        });
        Self::spawn(shared)
    }

    fn spawn(shared: Arc<Shared>) -> Result<Self> {
        let (tx, rx) = std::sync::mpsc::channel();
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("coconut-lsm-compactor".into())
            .spawn(move || worker_loop(worker_shared, rx))?;
        Ok(LsmCoconut {
            shared,
            jobs: Some(tx),
            worker: Some(worker),
        })
    }

    /// Replace the compaction policy (takes effect from the next decision).
    pub fn set_policy(&self, policy: Box<dyn CompactionPolicy>) {
        *self.shared.policy.lock() = policy;
    }

    /// Bound read amplification: install a [`TieredPolicy`] that keeps at
    /// most `max_runs` live runs.
    pub fn set_max_runs(&self, max_runs: usize) {
        self.set_policy(Box::new(TieredPolicy::with_max_runs(max_runs)));
    }

    /// Arm (or clear) a simulated crash for the next manifest commit.
    pub fn set_kill_point(&self, kill: Option<KillPoint>) {
        *self.shared.kill.lock() = kill;
    }

    /// Install (or clear) an instance-scoped [`FaultPlan`], consulted
    /// before the process-global plan at this index's fault sites
    /// (`manifest.before` / `manifest.torn` / `manifest.after` /
    /// `run.create`).
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.shared.fault_plan.lock() = plan;
    }

    /// Surface a sticky worker error, mirroring a crashed process.
    fn check_poisoned(&self) -> Result<()> {
        if let Some(msg) = self.shared.poisoned.lock().clone() {
            return Err(Error::invalid(format!(
                "LSM instance poisoned by a failed commit (reopen the index \
                 from disk to recover): {msg}"
            )));
        }
        Ok(())
    }

    fn send(&self, job: Job) -> Result<()> {
        // `jobs` is only taken in Drop, but surface a typed error rather
        // than panicking if a send ever races shutdown.
        self.jobs
            .as_ref()
            .ok_or_else(|| Error::invalid("LSM index is shutting down"))?
            .send(job)
            .map_err(|_| Error::invalid("LSM compaction worker exited"))
    }

    /// Index every position of `dataset` not yet covered (the dataset must
    /// only ever grow) as one new run; compaction follows on the worker
    /// thread if the policy asks for it.
    pub fn ingest(&self, dataset: &Dataset) -> Result<()> {
        self.ingest_upto(dataset, dataset.len())
    }

    /// Index positions up to `upto` (exclusive) that are not yet covered —
    /// used by workloads that reveal an on-disk dataset in batches. On
    /// success the new run is committed to the manifest and durable.
    ///
    /// Takes `&self`: concurrent ingests serialize on an internal writer
    /// lock (never the state lock), so a server can share one `LsmCoconut`
    /// behind an [`Arc`] and queries pin snapshots while a batch builds.
    pub fn ingest_upto(&self, dataset: &Dataset, upto: u64) -> Result<()> {
        let _writer = self.shared.writer.lock();
        self.check_poisoned()?;
        if upto > dataset.len() {
            return Err(Error::invalid("upto exceeds the dataset length"));
        }
        let (start, run_id) = {
            let mut st = self.shared.state.lock();
            if upto < st.covered_end {
                return Err(Error::invalid("dataset shrank below the covered range"));
            }
            st.dataset = Some(dataset.clone());
            if upto == st.covered_end {
                return Ok(());
            }
            let id = st.next_run_id;
            st.next_run_id += 1;
            (st.covered_end, id)
        };

        // Build the run outside the lock: queries and compactions proceed.
        let run_dir = self.shared.dir.join(run_dir_name(run_id));
        lsm_check(&self.shared, "run.create")?;
        std::fs::create_dir_all(&run_dir)?;
        let tree = CoconutTree::build_range(
            dataset,
            start..upto,
            &self.shared.config,
            &run_dir,
            self.shared.opts.clone(),
        )?;
        // The index file is fsynced by the build; fsync the run directory
        // too, or a power loss after the manifest commit could lose the
        // file's directory entry and leave the manifest pointing nowhere.
        coconut_storage::atomic::sync_dir(&run_dir)?;
        let file = relative_index_path(&self.shared.dir, tree.index_path())?;

        let commit = {
            let _order = self.shared.commit_order.lock();
            let bytes = {
                let mut st = self.shared.state.lock();
                debug_assert_eq!(
                    st.covered_end, start,
                    "only ingest advances covered_end, under the writer lock"
                );
                st.runs.push(Run {
                    meta: RunMeta {
                        id: run_id,
                        start,
                        end: upto,
                        file,
                    },
                    tree: Arc::new(tree),
                });
                st.covered_end = upto;
                st.seq += 1;
                encode_manifest(&self.shared, &st)
            };
            write_manifest(&self.shared, &bytes)
        };
        if let Err(e) = commit {
            // In-memory state is now ahead of the durable manifest — the
            // situation a crash leaves behind. Poison the instance so every
            // subsequent call fails until the index is reopened from disk.
            *self.shared.poisoned.lock() = Some(e.to_string());
            return Err(e);
        }
        self.send(Job::Maintain)
    }

    /// Merge every live run into one and wait for it to finish — the
    /// "defragment everything" operation (CLI `compact`). The resulting
    /// single run is bit-identical to a from-scratch bulk load over the
    /// covered range.
    pub fn compact(&self) -> Result<()> {
        self.check_poisoned()?;
        self.send(Job::CompactAll)?;
        self.wait_for_compactions()
    }

    /// Block until every queued compaction has completed, then surface any
    /// worker error. Queries never need this — they see consistent
    /// snapshots throughout — but tests and benchmarks use it to observe a
    /// settled run count.
    pub fn wait_for_compactions(&self) -> Result<()> {
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        self.send(Job::Sync(ack_tx))?;
        ack_rx
            .recv()
            .map_err(|_| Error::invalid("LSM compaction worker exited"))?;
        self.check_poisoned()
    }

    /// Number of live runs (the read amplification of the next query).
    pub fn run_count(&self) -> usize {
        self.shared.state.lock().runs.len()
    }

    /// End (exclusive) of the covered raw-file position range.
    pub fn covered_end(&self) -> u64 {
        self.shared.state.lock().covered_end
    }

    /// First raw-file position this index covers (0 unless created with
    /// [`LsmCoconut::new_based`]).
    pub fn base(&self) -> u64 {
        self.shared.base
    }

    /// Total entries across runs.
    pub fn len(&self) -> u64 {
        self.shared
            .state
            .lock()
            .runs
            .iter()
            .map(|r| r.tree.len())
            .sum()
    }

    /// True when no run holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The directory this index lives in.
    pub fn dir(&self) -> PathBuf {
        self.shared.dir.clone()
    }

    /// The index configuration every run is (and will be) built with —
    /// fixed at [`LsmCoconut::new`] time and recovered from the manifest by
    /// [`LsmCoconut::open`].
    pub fn config(&self) -> IndexConfig {
        self.shared.config
    }

    /// Whether runs embed raw series (the `-Full` layout; recorded in the
    /// manifest, so it survives reopening).
    pub fn is_materialized(&self) -> bool {
        self.shared.opts.materialized
    }

    /// Pin a consistent, immutable view of the committed run set. The state
    /// lock is held only for the duration of the Arc clones; everything the
    /// returned [`Snapshot`] does afterwards — exact, kNN, and range
    /// queries — is lock-free, so concurrent ingests and compactions never
    /// stall a pinned reader. Run directories a compaction obsoletes while
    /// the snapshot is live are garbage-collected after the snapshot drops.
    pub fn snapshot(&self) -> Snapshot {
        let st = self.shared.state.lock();
        Snapshot {
            runs: st.runs.iter().map(|r| Arc::clone(&r.tree)).collect(),
            base: self.shared.base,
            covered_end: st.covered_end,
            seq: st.seq,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Delete the directories of compacted-away runs that are no longer
    /// pinned by any [`Snapshot`]; returns how many were removed. Runs are
    /// swept automatically when snapshots drop — this is for callers that
    /// want a deterministic cleanup point (tests, shutdown paths).
    pub fn collect_garbage(&self) -> usize {
        sweep_gc(&self.shared)
    }

    /// Number of compacted-away runs whose directories are still pinned by
    /// live snapshots (observability: `coconut_gc_pinned_runs`).
    pub fn pinned_garbage(&self) -> usize {
        self.shared.gc.lock().len()
    }

    /// Re-read and checksum-verify every leaf of every live run (the
    /// `coconut scrub` command). Never fails as a whole: each run reports
    /// either its clean [`ScrubReport`] or the corruption the scan hit, so
    /// an operator sees *all* damaged runs, not just the first.
    pub fn scrub(&self) -> Vec<RunScrub> {
        let runs: Vec<(RunMeta, Arc<CoconutTree>)> = {
            let st = self.shared.state.lock();
            st.runs
                .iter()
                .map(|r| (r.meta.clone(), Arc::clone(&r.tree)))
                .collect()
        };
        runs.into_iter()
            .map(|(meta, tree)| {
                let (report, error) = match tree.verify() {
                    Ok(rep) => (rep, None),
                    Err(e) => (ScrubReport::default(), Some(e.to_string())),
                };
                RunScrub {
                    id: meta.id,
                    start: meta.start,
                    end: meta.end,
                    report,
                    error,
                }
            })
            .collect()
    }

    /// Quarantine the live run `id` and every later run (the covered
    /// prefix must stay contiguous): commit a reduced manifest first, then
    /// move the evicted directories into [`QUARANTINE_DIR`] with a
    /// `.reason` file recording `reason`. Returns the new covered end.
    /// Pinned snapshots keep answering from the moved runs — their open
    /// file handles survive the rename — but new snapshots see only the
    /// reduced, verified prefix.
    pub fn quarantine_from(&self, id: u64, reason: &str) -> Result<u64> {
        let _writer = self.shared.writer.lock();
        self.check_poisoned()?;
        let _order = self.shared.commit_order.lock();
        let (bytes, evicted, new_end) = {
            let mut st = self.shared.state.lock();
            let Some(first) = st.runs.iter().position(|r| r.meta.id == id) else {
                return Err(Error::invalid(format!("run {id} is not live")));
            };
            let evicted = st.runs.split_off(first);
            let new_end = evicted[0].meta.start;
            st.covered_end = new_end;
            st.seq += 1;
            (encode_manifest(&self.shared, &st), evicted, new_end)
        };
        if let Err(e) = write_manifest(&self.shared, &bytes) {
            *self.shared.poisoned.lock() = Some(e.to_string());
            return Err(e);
        }
        let metas: Vec<RunMeta> = evicted.iter().map(|r| r.meta.clone()).collect();
        quarantine_runs(&self.shared.dir, &metas, &Error::corrupt(reason))?;
        Ok(new_end)
    }

    /// Bytes of index not yet merged into the largest run — the work a full
    /// compaction would perform now. Zero when at most one run is live;
    /// grows as ingest outpaces the policy (observability: the server
    /// exports this as `coconut_compaction_debt_bytes`).
    pub fn compaction_debt(&self) -> u64 {
        let snap = self.snapshot();
        let total: u64 = snap.runs.iter().map(|r| r.disk_bytes()).sum();
        let largest = snap.runs.iter().map(|r| r.disk_bytes()).max().unwrap_or(0);
        total - largest
    }

    /// Per-leaf fill fractions (entries / leaf capacity) across every live
    /// run, in run order. The server's `coconut_leaf_fill` histogram is
    /// rebuilt from this at scrape time; the occupancy experiment reads the
    /// same numbers for its fill report.
    pub fn leaf_fill_fractions(&self) -> Vec<f64> {
        let cap = self.shared.config.leaf_capacity.max(1) as f64;
        self.snapshot()
            .runs
            .iter()
            .flat_map(|r| r.leaf_entry_counts())
            .map(|n| n as f64 / cap)
            .collect()
    }

    /// Leaves forced beyond the configured capacity because identical keys
    /// could not be split further, summed across live runs (observability:
    /// `coconut_oversized_leaves`). Always zero for the median-packed
    /// Coconut-Tree runs the LSM builds today; surfaced uniformly so the
    /// metric needs no per-layout special case.
    pub fn oversized_leaves(&self) -> u64 {
        self.snapshot()
            .runs
            .iter()
            .map(|r| r.oversized_leaf_count())
            .sum()
    }

    /// Exact k-nearest-neighbors merged across runs (per-run answer lists
    /// are merged by distance; per-run stats are aggregated).
    pub fn exact_knn(&self, query: &[Value], k: usize) -> Result<(Vec<Answer>, QueryStats)> {
        self.snapshot().exact_knn(query, k, Deadline::NONE)
    }

    /// Exact range query merged across runs: every series within Euclidean
    /// distance `epsilon`, sorted by distance.
    pub fn exact_range(&self, query: &[Value], epsilon: f64) -> Result<(Vec<Answer>, QueryStats)> {
        self.snapshot().exact_range(query, epsilon, Deadline::NONE)
    }
}

/// An immutable, pinned view of an [`LsmCoconut`]'s committed run set.
///
/// Acquired by [`LsmCoconut::snapshot`] under one brief lock; every query
/// on it is lock-free and sees exactly the runs (and covered prefix) that
/// were committed at pin time, no matter how much ingest and compaction
/// churn happens meanwhile. Holding a snapshot pins the run files it
/// references: a compaction that obsoletes them defers directory deletion
/// until the last pinning snapshot is dropped.
pub struct Snapshot {
    runs: Vec<Arc<CoconutTree>>,
    base: u64,
    covered_end: u64,
    seq: u64,
    shared: Arc<Shared>,
}

impl Snapshot {
    /// End (exclusive) of the raw-file position range this snapshot covers.
    /// An oracle checking answers must brute-force exactly this prefix
    /// (from [`Snapshot::base`], which is 0 for a whole-dataset index).
    pub fn covered_end(&self) -> u64 {
        self.covered_end
    }

    /// First raw-file position this snapshot covers (the shard slice start;
    /// 0 unless the index was created with [`LsmCoconut::new_based`]).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The manifest sequence number this snapshot was pinned at.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of pinned runs (the read amplification of queries on this
    /// snapshot).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total entries across the pinned runs.
    pub fn len(&self) -> u64 {
        self.runs.iter().map(|r| r.len()).sum()
    }

    /// True when no pinned run holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate 1-NN over the pinned runs (best leaf per run, merged).
    pub fn approximate(&self, query: &[Value]) -> Result<Answer> {
        let mut best = Answer::none();
        for run in &self.runs {
            best.merge(run.approximate(query)?);
        }
        Ok(best)
    }

    /// Exact 1-NN merged across the pinned runs, under a cooperative
    /// `deadline` (pass [`Deadline::NONE`] for no limit).
    pub fn exact(&self, query: &[Value], deadline: Deadline) -> Result<(Answer, QueryStats)> {
        let mut best = Answer::none();
        let mut stats = QueryStats::default();
        for run in &self.runs {
            let (a, s) = run.exact_search_deadline(query, deadline)?;
            best.merge(a);
            stats.add(&s);
        }
        Ok((best, stats))
    }

    /// [`Snapshot::exact`] with an external pruning `bound`: the scan of
    /// every run starts with a best-so-far no higher than `bound` (which
    /// also tightens run to run), so records that cannot beat the caller's
    /// existing candidate are skipped. When nothing here beats the bound
    /// the returned answer has `is_some() == false` — the caller's
    /// candidate stands. `f64::INFINITY` recovers [`Snapshot::exact`]'s
    /// answer exactly.
    pub fn exact_bounded(
        &self,
        query: &[Value],
        bound: f64,
        deadline: Deadline,
    ) -> Result<(Answer, QueryStats)> {
        let mut best = Answer {
            pos: u64::MAX,
            dist: bound,
        };
        let mut stats = QueryStats::default();
        for run in &self.runs {
            let (a, s) = run.exact_search_bounded_deadline(query, best.dist, deadline)?;
            best.merge(a);
            stats.add(&s);
        }
        Ok((best, stats))
    }

    /// Exact k-NN merged across the pinned runs, under a cooperative
    /// `deadline`.
    pub fn exact_knn(
        &self,
        query: &[Value],
        k: usize,
        deadline: Deadline,
    ) -> Result<(Vec<Answer>, QueryStats)> {
        let mut all = Vec::new();
        let mut stats = QueryStats::default();
        for run in &self.runs {
            let (answers, s) = run.exact_knn_deadline(query, k, deadline)?;
            all.extend(answers);
            stats.add(&s);
        }
        all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.pos.cmp(&b.pos)));
        all.truncate(k);
        Ok((all, stats))
    }

    /// [`Snapshot::exact_knn`] with an external pruning `bound`: only
    /// candidates with distance below `bound` can enter the result, and the
    /// bound tightens run to run as the merged set fills (runs cover
    /// ascending position ranges, so a later tie at the bound would sort
    /// after the existing entries under the `(dist, pos)` order anyway).
    /// `f64::INFINITY` recovers [`Snapshot::exact_knn`]'s answer exactly.
    pub fn exact_knn_bounded(
        &self,
        query: &[Value],
        k: usize,
        bound: f64,
        deadline: Deadline,
    ) -> Result<(Vec<Answer>, QueryStats)> {
        let mut all: Vec<Answer> = Vec::new();
        let mut stats = QueryStats::default();
        if k == 0 {
            return Ok((all, stats));
        }
        for run in &self.runs {
            let local = if all.len() == k {
                all[k - 1].dist.min(bound)
            } else {
                bound
            };
            let (answers, s) = run.exact_knn_bounded_deadline(query, k, local, deadline)?;
            all.extend(answers);
            stats.add(&s);
            all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.pos.cmp(&b.pos)));
            all.truncate(k);
        }
        Ok((all, stats))
    }

    /// Exact range query merged across the pinned runs, under a cooperative
    /// `deadline`: every series within Euclidean distance `epsilon`, sorted
    /// by distance.
    pub fn exact_range(
        &self,
        query: &[Value],
        epsilon: f64,
        deadline: Deadline,
    ) -> Result<(Vec<Answer>, QueryStats)> {
        let mut all = Vec::new();
        let mut stats = QueryStats::default();
        for run in &self.runs {
            let (answers, s) = run.exact_range_deadline(query, epsilon, deadline)?;
            all.extend(answers);
            stats.add(&s);
        }
        all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.pos.cmp(&b.pos)));
        Ok((all, stats))
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        // Release the pins first, then sweep: runs this snapshot was the
        // last reader of become deletable in the same sweep.
        self.runs.clear();
        sweep_gc(&self.shared);
    }
}

/// Delete the run directories on the GC list whose trees nothing else
/// references anymore; returns how many directories were removed. The GC
/// lock is dropped before any filesystem work.
fn sweep_gc(shared: &Shared) -> usize {
    let doomed: Vec<GcRun> = {
        let mut gc = shared.gc.lock();
        // The GC list itself holds one reference; any second one is a
        // pinned snapshot or an in-flight query.
        let (doomed, keep) = std::mem::take(&mut *gc)
            .into_iter()
            .partition(|r| Arc::strong_count(&r.tree) == 1);
        *gc = keep;
        doomed
    };
    let n = doomed.len();
    for run in doomed {
        drop(run.tree); // close the file before unlinking its directory
        let _ = std::fs::remove_dir_all(&run.dir);
    }
    n
}

impl Drop for LsmCoconut {
    fn drop(&mut self) {
        // Closing the channel ends the worker loop; join so no compaction
        // outlives the index (its builds write into our directory).
        drop(self.jobs.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Subdirectory of the LSM dir where corrupt runs are moved aside. Never
/// touched by recovery's orphan cleanup (which only matches `run-*`), so a
/// quarantined run stays available for offline inspection or repair.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Move the given runs' directories into `quarantine/`, leaving a
/// `<run>.reason` file naming the corruption that evicted them. The caller
/// commits a reduced manifest afterwards so recovery never deletes the
/// moved directories' former names.
fn quarantine_runs(dir: &Path, metas: &[RunMeta], cause: &Error) -> Result<()> {
    let qdir = dir.join(QUARANTINE_DIR);
    std::fs::create_dir_all(&qdir)?;
    for meta in metas {
        let name = meta.dir_name();
        let from = dir.join(&name);
        if from.exists() {
            std::fs::rename(&from, qdir.join(&name))?;
        }
        let _ = std::fs::write(qdir.join(format!("{name}.reason")), cause.to_string());
    }
    coconut_storage::atomic::sync_dir(&qdir)?;
    coconut_storage::atomic::sync_dir(dir)?;
    Ok(())
}

/// Compute the manifest-relative path of a run's index file.
fn relative_index_path(dir: &Path, index_path: &Path) -> Result<String> {
    let rel = index_path
        .strip_prefix(dir)
        .map_err(|_| Error::invalid("run index file escaped the LSM directory"))?;
    rel.to_str()
        .map(String::from)
        .ok_or_else(|| Error::invalid("run index path is not UTF-8"))
}

fn simulated_crash(what: &str) -> Error {
    Error::invalid(format!("simulated crash: killed {what}"))
}

/// Consult the instance fault plan first, then the process-global one.
fn lsm_fires(shared: &Shared, site: &str) -> Option<FaultAction> {
    let plan = shared.fault_plan.lock().clone();
    if let Some(plan) = plan {
        if let Some(action) = plan.fires(site) {
            return Some(action);
        }
    }
    fault::fires(site)
}

/// [`lsm_fires`] mapped to a hard injected error, like [`fault::check`].
fn lsm_check(shared: &Shared, site: &str) -> Result<()> {
    match lsm_fires(shared, site) {
        Some(_) => Err(fault::injected_error(site)),
        None => Ok(()),
    }
}

/// Serialize the state to manifest bytes. The caller must have bumped
/// `st.seq` already, under the state lock and while holding `commit_order`.
fn encode_manifest(shared: &Shared, st: &State) -> Vec<u8> {
    Manifest {
        seq: st.seq,
        config: shared.config,
        materialized: shared.opts.materialized,
        base: shared.base,
        covered_end: st.covered_end,
        next_run_id: st.next_run_id,
        runs: st.runs.iter().map(|r| r.meta.clone()).collect(),
    }
    .encode()
}

/// The disk half of a commit: write the manifest atomically, honoring an
/// armed kill point. Called while holding `commit_order` but **not** the
/// state lock, so queries never wait on the fsyncs. Obsolete run
/// directories are *not* deleted here — the committer hands them to the GC
/// list, where pinned snapshots keep them alive until released.
fn write_manifest(shared: &Shared, bytes: &[u8]) -> Result<()> {
    let path = Manifest::path_in(&shared.dir);
    // An explicitly armed kill point wins; otherwise an installed fault
    // plan can schedule the same three crash instants deterministically
    // (`repro chaos` drives whole fault schedules through these sites).
    let kill = shared.kill.lock().take().or_else(|| {
        if lsm_fires(shared, "manifest.before").is_some() {
            Some(KillPoint::BeforeManifestWrite)
        } else if lsm_fires(shared, "manifest.torn").is_some() {
            Some(KillPoint::MidManifestWrite)
        } else if lsm_fires(shared, "manifest.after").is_some() {
            Some(KillPoint::AfterManifestCommit)
        } else {
            None
        }
    });
    match kill {
        Some(KillPoint::BeforeManifestWrite) => {
            return Err(simulated_crash("before the manifest write"))
        }
        Some(KillPoint::MidManifestWrite) => {
            atomic_write_torn(&path, bytes, bytes.len() / 2)?;
            return Err(simulated_crash("mid manifest write"));
        }
        Some(KillPoint::AfterManifestCommit) => {
            atomic_write(&path, bytes)?;
            return Err(simulated_crash("after the manifest commit"));
        }
        None => atomic_write(&path, bytes)?,
    }
    Ok(())
}

/// The compaction worker: drains jobs in order; the first error is sticky.
fn worker_loop(shared: Arc<Shared>, jobs: Receiver<Job>) {
    while let Ok(job) = jobs.recv() {
        if shared.poisoned.lock().is_some() {
            // Poisoned: only acknowledge syncs so waiters can observe it.
            if let Job::Sync(ack) = job {
                let _ = ack.send(());
            }
            continue;
        }
        let result = match job {
            Job::Maintain => maintain(&shared),
            Job::CompactAll => {
                let ids: Vec<u64> = shared.state.lock().runs.iter().map(|r| r.meta.id).collect();
                compact_ids(&shared, &ids)
            }
            Job::Sync(ack) => {
                let _ = ack.send(());
                Ok(())
            }
        };
        if let Err(e) = result {
            *shared.poisoned.lock() = Some(e.to_string());
        }
    }
}

/// Apply the policy until it proposes nothing (merges cascade).
fn maintain(shared: &Arc<Shared>) -> Result<()> {
    loop {
        let ids: Vec<u64> = {
            let st = shared.state.lock();
            let entries: Vec<u64> = st.runs.iter().map(|r| r.meta.entries()).collect();
            match shared.policy.lock().plan(&entries) {
                Some(window) if window.len() >= 2 && window.end <= st.runs.len() => {
                    st.runs[window].iter().map(|r| r.meta.id).collect()
                }
                _ => return Ok(()),
            }
        };
        compact_ids(shared, &ids)?;
    }
}

/// Merge the adjacent runs with the given ids into one new run: K-way merge
/// of their sorted leaf streams, bulk-loaded into a fresh `run-<id>/`,
/// swapped into the run set under the lock, committed to the manifest, and
/// only then are the old run directories deleted.
fn compact_ids(shared: &Arc<Shared>, ids: &[u64]) -> Result<()> {
    if ids.len() < 2 {
        return Ok(());
    }
    let (trees, start, end, new_id, dataset) = {
        let mut st = shared.state.lock();
        // The window may have been invalidated by the time the job runs
        // (only ever by our own earlier merges — the worker is the sole
        // remover of runs); skip silently if so.
        let Some(first) = st.runs.iter().position(|r| r.meta.id == ids[0]) else {
            return Ok(());
        };
        if first + ids.len() > st.runs.len()
            || !ids
                .iter()
                .enumerate()
                .all(|(i, id)| st.runs[first + i].meta.id == *id)
        {
            return Ok(());
        }
        let window = &st.runs[first..first + ids.len()];
        let start = window[0].meta.start;
        let end = window[ids.len() - 1].meta.end;
        let trees: Vec<Arc<CoconutTree>> = window.iter().map(|r| Arc::clone(&r.tree)).collect();
        let dataset = st
            .dataset
            .clone()
            .ok_or_else(|| Error::invalid("no dataset attached to the LSM index"))?;
        let id = st.next_run_id;
        st.next_run_id += 1;
        (trees, start, end, id, dataset)
    };

    // The expensive part runs without the lock: ingest and queries proceed.
    let run_dir = shared.dir.join(run_dir_name(new_id));
    lsm_check(shared, "run.create")?;
    std::fs::create_dir_all(&run_dir)?;
    let merged_tree = if shared.opts.materialized {
        merge_runs::<KeySeries>(shared, &trees, start..end, &dataset, &run_dir)?
    } else {
        merge_runs::<KeyPos>(shared, &trees, start..end, &dataset, &run_dir)?
    };
    // As in ingest: make the new run's directory entry durable before the
    // manifest can reference it.
    coconut_storage::atomic::sync_dir(&run_dir)?;
    let file = relative_index_path(&shared.dir, merged_tree.index_path())?;

    let _order = shared.commit_order.lock();
    let mut st = shared.state.lock();
    // The worker is the only remover of runs, so the window it validated
    // above must still be present; a typed error (not a panic) keeps a
    // would-be violation observable through the poisoned state.
    let first = st
        .runs
        .iter()
        .position(|r| r.meta.id == ids[0])
        .ok_or_else(|| {
            Error::corrupt(format!(
                "compaction window lost run {} between planning and commit",
                ids[0]
            ))
        })?;
    let replacement = Run {
        meta: RunMeta {
            id: new_id,
            start,
            end,
            file,
        },
        tree: Arc::new(merged_tree),
    };
    // `splice` removes the old runs from the live set; their trees stay
    // open (we still hold `trees`) so pinned snapshots keep reading them.
    drop(
        st.runs
            .splice(first..first + ids.len(), std::iter::once(replacement)),
    );
    st.seq += 1;
    let bytes = encode_manifest(shared, &st);
    drop(st); // queries proceed while the commit hits disk
    write_manifest(shared, &bytes)?;
    // The commit is durable: retire the old runs to the GC list (snapshots
    // pinned before the swap keep their directories alive) and sweep
    // whatever is already unpinned. On commit *failure* nothing is queued —
    // recovery deletes the unreferenced directories, same as a crash.
    {
        let mut gc = shared.gc.lock();
        for (tree, id) in trees.into_iter().zip(ids.iter()) {
            gc.push(GcRun {
                tree,
                dir: shared.dir.join(run_dir_name(*id)),
            });
        }
    }
    sweep_gc(shared);
    Ok(())
}

/// K-way merge `trees`' sorted leaf streams and bulk-load the result as one
/// new run in `run_dir`. `R` selects the record flavor and must match
/// `shared.opts.materialized`.
fn merge_runs<R: crate::records::SortedRecord>(
    shared: &Shared,
    trees: &[Arc<CoconutTree>],
    range: std::ops::Range<u64>,
    dataset: &Dataset,
    run_dir: &Path,
) -> Result<CoconutTree> {
    let streams: Vec<LeafEntryStream<'_, R>> = trees.iter().map(|t| t.leaf_entries()).collect();
    let mut merged = MergedStream::new(streams)?;
    CoconutTree::build_range_from_stream(
        dataset,
        range,
        &shared.config,
        run_dir,
        shared.opts.clone(),
        &mut merged,
    )
}

impl SeriesIndex for LsmCoconut {
    fn name(&self) -> String {
        "CTree-LSM".into()
    }

    fn approximate(&self, query: &[Value]) -> Result<Answer> {
        self.snapshot().approximate(query)
    }

    fn exact(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.snapshot().exact(query, Deadline::NONE)
    }

    fn disk_bytes(&self) -> u64 {
        self.snapshot().runs.iter().map(|r| r.disk_bytes()).sum()
    }

    fn leaf_count(&self) -> u64 {
        self.snapshot().runs.iter().map(|r| r.leaf_count()).sum()
    }

    fn avg_leaf_fill(&self) -> f64 {
        let snap = self.snapshot();
        let leaves: u64 = snap.runs.iter().map(|r| r.leaf_count()).sum();
        if leaves == 0 {
            return 0.0;
        }
        snap.runs
            .iter()
            .map(|r| r.avg_leaf_fill() * r.leaf_count() as f64)
            .sum::<f64>()
            / leaves as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::dataset::DatasetWriter;
    use coconut_series::distance::{euclidean, znormalize};
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_storage::{IoStats, TempDir};

    const LEN: usize = 64;

    fn small_config() -> IndexConfig {
        let mut c = IndexConfig::default_for_len(LEN);
        c.leaf_capacity = 32;
        c
    }

    /// Append `n` series to the dataset file at `path` (creating it if
    /// needed) and reopen it.
    fn grow_dataset(
        path: &std::path::Path,
        stats: &Arc<IoStats>,
        gen: &mut RandomWalkGen,
        existing: &[Vec<Value>],
        n: usize,
    ) -> (Dataset, Vec<Vec<Value>>) {
        let mut all = existing.to_vec();
        for _ in 0..n {
            let mut s = gen.generate(LEN);
            znormalize(&mut s);
            all.push(s);
        }
        let mut w = DatasetWriter::create(path, LEN, true, Arc::clone(stats)).unwrap();
        for s in &all {
            w.append(s).unwrap();
        }
        w.finish().unwrap();
        (Dataset::open(path, Arc::clone(stats)).unwrap(), all)
    }

    fn brute_force(all: &[Vec<Value>], q: &[Value]) -> Answer {
        let mut best = Answer::none();
        for (i, s) in all.iter().enumerate() {
            best.merge(Answer {
                pos: i as u64,
                dist: euclidean(q, s),
            });
        }
        best
    }

    fn query(seed: u64) -> Vec<Value> {
        let mut q = RandomWalkGen::new(seed).generate(LEN);
        znormalize(&mut q);
        q
    }

    #[test]
    fn ingest_batches_and_query_exactly() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(31);
        let lsm = LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
        lsm.set_max_runs(3);

        let mut all = Vec::new();
        for round in 0..6 {
            let (ds, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 150);
            all = new_all;
            lsm.ingest(&ds).unwrap();
            assert_eq!(lsm.len(), all.len() as u64, "round {round}");
            let (ans, stats_q) = lsm.exact(&query(100 + round)).unwrap();
            let expect = brute_force(&all, &query(100 + round));
            assert_eq!(ans.pos, expect.pos, "round {round}");
            assert!(stats_q.lower_bounds >= all.len() as u64, "round {round}");
        }
        lsm.wait_for_compactions().unwrap();
        assert!(
            lsm.run_count() <= 3,
            "{} runs after settling",
            lsm.run_count()
        );
        // Queries stay exact after compaction settles too.
        let q = query(999);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
    }

    #[test]
    fn approximate_over_runs_is_upper_bound_of_exact() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(77);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &[], 300);
        lsm.ingest(&ds).unwrap();
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &all, 100);
        lsm.ingest(&ds).unwrap();
        assert_eq!(all.len(), 400);
        let q = query(5);
        let approx = lsm.approximate(&q).unwrap();
        let (exact, _) = lsm.exact(&q).unwrap();
        assert!(exact.dist <= approx.dist + 1e-9);
    }

    #[test]
    fn empty_and_noop_ingest() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(1);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        assert!(lsm.is_empty());
        let (ds, _) = grow_dataset(&path, &stats, &mut gen, &[], 50);
        lsm.ingest(&ds).unwrap();
        let runs = lsm.run_count();
        lsm.ingest(&ds).unwrap(); // nothing new
        assert_eq!(lsm.run_count(), runs);
        assert_eq!(lsm.len(), 50);
        assert_eq!(lsm.covered_end(), 50);
    }

    #[test]
    fn compaction_reduces_runs_and_removes_directories() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(13);
        let lsm = LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
        lsm.set_max_runs(2);
        let mut all = Vec::new();
        for _ in 0..5 {
            let (ds, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 60);
            all = new_all;
            lsm.ingest(&ds).unwrap();
        }
        lsm.wait_for_compactions().unwrap();
        assert!(lsm.run_count() <= 2, "{} runs", lsm.run_count());
        // Only the live runs' directories remain on disk.
        let run_dirs = std::fs::read_dir(&idx_dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("run-")
            })
            .count();
        assert_eq!(run_dirs, lsm.run_count());
        // Answers survive the merges.
        let q = query(44);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
    }

    #[test]
    fn full_compaction_is_bit_identical_to_direct_bulk_load() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(5);
        for materialized in [false, true] {
            let opts = BuildOptions {
                materialized,
                ..BuildOptions::default()
            };
            let idx_dir = dir.path().join(format!("idx-{materialized}"));
            let lsm = LsmCoconut::new(small_config(), opts.clone(), &idx_dir).unwrap();
            let mut all = Vec::new();
            let mut ds = None;
            for _ in 0..4 {
                let (d, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 110);
                all = new_all;
                lsm.ingest(&d).unwrap();
                ds = Some(d);
            }
            lsm.compact().unwrap();
            assert_eq!(lsm.run_count(), 1);
            // The single surviving run's file equals a from-scratch build.
            let run_file = {
                let st = lsm.shared.state.lock();
                lsm.shared.dir.join(&st.runs[0].meta.file)
            };
            let lsm_bytes = std::fs::read(run_file).unwrap();
            let ref_dir = dir.path().join(format!("ref-{materialized}"));
            std::fs::create_dir_all(&ref_dir).unwrap();
            let reference =
                CoconutTree::build(ds.as_ref().unwrap(), &small_config(), &ref_dir, opts).unwrap();
            let ref_bytes = std::fs::read(reference.index_path()).unwrap();
            assert_eq!(lsm_bytes, ref_bytes, "materialized={materialized}");
        }
    }

    #[test]
    fn knn_and_range_merge_across_runs() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(21);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        let mut all = Vec::new();
        for _ in 0..3 {
            let (ds, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 120);
            all = new_all;
            lsm.ingest(&ds).unwrap();
        }
        let q = query(7);
        // kNN: matches the brute-force top-k.
        let mut dists: Vec<(u64, f64)> = all
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, euclidean(&q, s)))
            .collect();
        dists.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let (top, stats_q) = lsm.exact_knn(&q, 5).unwrap();
        assert_eq!(top.len(), 5);
        for (got, want) in top.iter().zip(dists.iter()) {
            assert_eq!(got.pos, want.0);
        }
        assert!(stats_q.lower_bounds >= all.len() as u64);
        // Range: every series within the 8th-nearest distance.
        let eps = dists[7].1;
        let (hits, _) = lsm.exact_range(&q, eps).unwrap();
        let expected: Vec<u64> = dists
            .iter()
            .take_while(|&&(_, d)| d <= eps)
            .map(|&(p, _)| p)
            .collect();
        let mut got: Vec<u64> = hits.iter().map(|a| a.pos).collect();
        got.sort_unstable();
        let mut want = expected;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn new_refuses_stale_directories_and_open_recovers() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(3);
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &[], 200);
        {
            let lsm = LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
            lsm.ingest(&ds).unwrap();
            lsm.wait_for_compactions().unwrap();
        }
        // The satellite fix: a fresh `new` over a stale index errors...
        let err = match LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir) {
            Ok(_) => panic!("new over a stale index must fail"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("LsmCoconut::open"), "{err}");
        // ...while `open` recovers it with answers intact.
        let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
        assert_eq!(lsm.len(), 200);
        let q = query(17);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
    }

    #[test]
    fn kill_points_crash_then_open_recovers_consistently() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(9);
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &[], 240);

        for (i, kill) in [
            KillPoint::BeforeManifestWrite,
            KillPoint::MidManifestWrite,
            KillPoint::AfterManifestCommit,
        ]
        .into_iter()
        .enumerate()
        {
            let idx_dir = dir.path().join(format!("idx-{i}"));
            let committed_end;
            {
                let lsm =
                    LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
                lsm.ingest_upto(&ds, 120).unwrap();
                lsm.wait_for_compactions().unwrap();
                committed_end = lsm.covered_end();
                // Crash while committing the second run.
                lsm.set_kill_point(Some(kill));
                let err = lsm.ingest_upto(&ds, 240).unwrap_err();
                assert!(err.to_string().contains("simulated crash"), "{err}");
                // The instance is poisoned from here on — like a dead
                // process, everything else must go through recovery. In
                // particular the "failed" batch can never be silently
                // committed by a later call.
                let err = lsm.ingest_upto(&ds, 240).unwrap_err();
                assert!(err.to_string().contains("poisoned"), "{err}");
                assert!(lsm.compact().unwrap_err().to_string().contains("poisoned"));
            }
            let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
            match kill {
                // The commit never (or only torn) reached disk: the second
                // run is lost, recovery restores the first commit exactly.
                KillPoint::BeforeManifestWrite | KillPoint::MidManifestWrite => {
                    assert_eq!(lsm.covered_end(), committed_end, "{kill:?}");
                }
                // The commit is durable; only cleanup was skipped.
                KillPoint::AfterManifestCommit => {
                    assert_eq!(lsm.covered_end(), 240, "{kill:?}");
                }
            }
            // No orphan run directories survive recovery, and no manifest
            // temp file either.
            let on_disk: Vec<String> = std::fs::read_dir(&idx_dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .filter(|n| n.starts_with("run-"))
                .collect();
            assert_eq!(on_disk.len(), lsm.run_count(), "{kill:?}: {on_disk:?}");
            assert!(!temp_path(&Manifest::path_in(&idx_dir)).exists());
            // Queries over the recovered prefix match the oracle.
            let covered = lsm.covered_end() as usize;
            let q = query(60 + i as u64);
            let (ans, _) = lsm.exact(&q).unwrap();
            assert_eq!(ans.pos, brute_force(&all[..covered], &q).pos, "{kill:?}");
        }
    }

    #[test]
    fn snapshot_pins_run_set_and_covered_prefix_across_churn() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(51);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        let (ds, all_1) = grow_dataset(&path, &stats, &mut gen, &[], 200);
        lsm.ingest(&ds).unwrap();

        let snap = lsm.snapshot();
        assert_eq!(snap.covered_end(), 200);
        let pinned_seq = snap.seq();

        // Churn after the pin: more ingest and a full compaction.
        let (ds, all_2) = grow_dataset(&path, &stats, &mut gen, &all_1, 200);
        lsm.ingest(&ds).unwrap();
        lsm.compact().unwrap();
        assert_eq!(lsm.covered_end(), 400);

        // The pinned snapshot still answers over exactly its 200-prefix.
        let q = query(23);
        let (ans, _) = snap.exact(&q, Deadline::NONE).unwrap();
        assert_eq!(ans.pos, brute_force(&all_1, &q).pos);
        assert_eq!(snap.covered_end(), 200);
        assert_eq!(snap.seq(), pinned_seq);

        // A fresh snapshot sees the full 400.
        let snap2 = lsm.snapshot();
        let (ans, _) = snap2.exact(&q, Deadline::NONE).unwrap();
        assert_eq!(ans.pos, brute_force(&all_2, &q).pos);
        assert!(snap2.seq() > pinned_seq);
    }

    #[test]
    fn gc_defers_run_deletion_until_snapshot_drops() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(61);
        let lsm = LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
        let mut all = Vec::new();
        for _ in 0..3 {
            let (ds, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 80);
            all = new_all;
            lsm.ingest(&ds).unwrap();
        }
        lsm.wait_for_compactions().unwrap();
        let run_dirs = |d: &std::path::Path| {
            std::fs::read_dir(d)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .starts_with("run-")
                })
                .count()
        };
        let before = run_dirs(&idx_dir);
        assert!(before >= 2, "need multiple runs to compact, got {before}");

        // Pin, then compact everything: the pinned runs' directories must
        // survive as long as the snapshot does.
        let snap = lsm.snapshot();
        let pinned_runs = snap.run_count();
        lsm.compact().unwrap();
        assert_eq!(lsm.run_count(), 1);
        assert_eq!(lsm.pinned_garbage(), pinned_runs);
        assert_eq!(run_dirs(&idx_dir), before + 1, "old dirs + the merged run");

        // The pinned snapshot still reads the retired runs.
        let q = query(31);
        let (ans, _) = snap.exact(&q, Deadline::NONE).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);

        // Dropping the snapshot sweeps them.
        drop(snap);
        assert_eq!(lsm.pinned_garbage(), 0);
        assert_eq!(run_dirs(&idx_dir), 1);
        assert_eq!(lsm.collect_garbage(), 0, "nothing left to sweep");
    }

    #[test]
    fn expired_deadline_fails_snapshot_queries_with_typed_error() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(71);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        let (ds, _) = grow_dataset(&path, &stats, &mut gen, &[], 150);
        lsm.ingest(&ds).unwrap();
        let snap = lsm.snapshot();
        let q = query(3);
        let expired = Deadline::at(std::time::Instant::now() - std::time::Duration::from_millis(1));
        assert!(snap.exact(&q, expired).unwrap_err().is_deadline());
        assert!(snap.exact_knn(&q, 3, expired).unwrap_err().is_deadline());
        assert!(snap
            .exact_range(&q, 1.0, expired)
            .unwrap_err()
            .is_deadline());
        // And an unexpired one leaves answers intact.
        let far = Deadline::after(std::time::Duration::from_secs(3600));
        let (a1, _) = snap.exact(&q, far).unwrap();
        let (a2, _) = snap.exact(&q, Deadline::NONE).unwrap();
        assert_eq!(a1.pos, a2.pos);
    }

    #[test]
    fn compaction_debt_shrinks_after_compaction() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(81);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        let mut all = Vec::new();
        for _ in 0..3 {
            let (ds, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 70);
            all = new_all;
            lsm.ingest(&ds).unwrap();
        }
        lsm.wait_for_compactions().unwrap();
        if lsm.run_count() > 1 {
            assert!(lsm.compaction_debt() > 0);
        }
        lsm.compact().unwrap();
        assert_eq!(lsm.run_count(), 1);
        assert_eq!(lsm.compaction_debt(), 0);
    }

    /// Ingest three batches without compaction so three runs stay live.
    fn three_run_index(dir: &TempDir, seed: u64) -> (std::path::PathBuf, Dataset, Vec<Vec<Value>>) {
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(seed);
        let lsm = LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
        lsm.set_max_runs(100); // no compaction: keep all three runs
        let mut all = Vec::new();
        let mut ds = None;
        for _ in 0..3 {
            let (d, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 80);
            all = new_all;
            lsm.ingest(&d).unwrap();
            ds = Some(d);
        }
        lsm.wait_for_compactions().unwrap();
        assert_eq!(lsm.run_count(), 3);
        (idx_dir, ds.unwrap(), all)
    }

    #[test]
    fn corrupt_run_is_quarantined_on_open_and_prefix_serves() {
        let dir = TempDir::new("lsm").unwrap();
        let (idx_dir, ds, all) = three_run_index(&dir, 101);
        // Corrupt the middle run's index file header region.
        let manifest = Manifest::load(&idx_dir).unwrap();
        assert_eq!(manifest.runs.len(), 3);
        let victim = &manifest.runs[1];
        let victim_start = victim.start;
        let victim_file = idx_dir.join(&victim.file);
        let bytes = std::fs::read(&victim_file).unwrap();
        let mut broken = bytes.clone();
        broken[8] ^= 0xFF; // header payload byte -> header CRC mismatch
        std::fs::write(&victim_file, &broken).unwrap();

        let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
        // Runs 1 and 2 are gone; the index serves the reduced prefix.
        assert_eq!(lsm.run_count(), 1);
        assert_eq!(lsm.covered_end(), victim_start);
        let q = query(55);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all[..victim_start as usize], &q).pos);
        // The evicted runs sit in quarantine/ with reason files.
        let qdir = idx_dir.join(QUARANTINE_DIR);
        let mut names: Vec<String> = std::fs::read_dir(&qdir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names.len(), 4, "2 run dirs + 2 reason files: {names:?}");
        assert!(names.iter().any(|n| n.ends_with(".reason")));
        // Reopen works without further quarantine (manifest was reduced).
        drop(lsm);
        let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
        assert_eq!(lsm.covered_end(), victim_start);
        // And ingest resumes from the reduced prefix.
        lsm.ingest(&ds).unwrap();
        assert_eq!(lsm.covered_end(), all.len() as u64);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
    }

    #[test]
    fn scrub_reports_bit_rot_and_quarantine_reduces_prefix() {
        let dir = TempDir::new("lsm").unwrap();
        let (idx_dir, ds, all) = three_run_index(&dir, 103);
        {
            let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
            let clean = lsm.scrub();
            assert_eq!(clean.len(), 3);
            assert!(clean.iter().all(|r| r.error.is_none()), "{clean:?}");
            assert!(clean.iter().all(|r| r.report.checked > 0), "{clean:?}");
            assert!(clean.iter().all(|r| r.report.unchecked == 0));
        }
        // Flip one byte inside the last run's leaf region (bit rot the
        // header/directory checks cannot see).
        let manifest = Manifest::load(&idx_dir).unwrap();
        let victim = manifest.runs[2].clone();
        let victim_file = idx_dir.join(&victim.file);
        let mut bytes = std::fs::read(&victim_file).unwrap();
        bytes[crate::layout::LEAF_REGION_OFFSET as usize + 7] ^= 0x20;
        std::fs::write(&victim_file, &bytes).unwrap();

        let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
        assert_eq!(lsm.run_count(), 3, "leaf rot is invisible to open");
        let outcomes = lsm.scrub();
        let bad: Vec<&RunScrub> = outcomes.iter().filter(|r| r.error.is_some()).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].id, victim.id);
        assert!(
            bad[0].error.as_deref().unwrap().contains("failed checksum"),
            "{:?}",
            bad[0].error
        );
        // Quarantine from the damaged run: the prefix keeps serving.
        let new_end = lsm
            .quarantine_from(victim.id, bad[0].error.as_deref().unwrap())
            .unwrap();
        assert_eq!(new_end, victim.start);
        assert_eq!(lsm.run_count(), 2);
        let q = query(77);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all[..new_end as usize], &q).pos);
        // Scrub is clean again.
        assert!(lsm.scrub().iter().all(|r| r.error.is_none()));
    }

    #[test]
    fn fault_plan_schedules_manifest_crashes_like_kill_points() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(11);
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &[], 160);
        for (i, site) in ["manifest.before", "manifest.torn", "manifest.after"]
            .into_iter()
            .enumerate()
        {
            let idx_dir = dir.path().join(format!("idx-{i}"));
            let committed_end;
            {
                let lsm =
                    LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
                lsm.ingest_upto(&ds, 80).unwrap();
                lsm.wait_for_compactions().unwrap();
                committed_end = lsm.covered_end();
                // The fault plan arms the same crash the kill point would
                // (instance-scoped, so parallel tests are unaffected).
                let plan = FaultPlan::parse(&format!("{site}=err@1"), 42).unwrap();
                lsm.set_fault_plan(Some(Arc::new(plan)));
                let err = lsm.ingest_upto(&ds, 160).unwrap_err();
                assert!(err.to_string().contains("simulated crash"), "{err}");
            }
            let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
            let expect = if site == "manifest.after" {
                160
            } else {
                committed_end
            };
            assert_eq!(lsm.covered_end(), expect, "{site}");
            let covered = lsm.covered_end() as usize;
            let q = query(200 + i as u64);
            let (ans, _) = lsm.exact(&q).unwrap();
            assert_eq!(ans.pos, brute_force(&all[..covered], &q).pos, "{site}");
        }
    }

    #[test]
    fn mid_compaction_crash_recovers_and_reingests() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(29);
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &[], 300);
        {
            let lsm = LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
            for upto in [100, 200, 300] {
                lsm.ingest_upto(&ds, upto).unwrap();
            }
            lsm.wait_for_compactions().unwrap();
            // Crash inside the compaction's manifest commit.
            lsm.set_kill_point(Some(KillPoint::MidManifestWrite));
            let err = lsm.compact().unwrap_err();
            assert!(err.to_string().contains("simulated crash"), "{err}");
        }
        // Recovery: the pre-compaction run set answers exactly; the torn
        // temp and the half-built merged run are gone.
        let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
        assert_eq!(lsm.covered_end(), 300);
        let q = query(88);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
        let run_dirs = std::fs::read_dir(&idx_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("run-"))
            .count();
        assert_eq!(run_dirs, lsm.run_count());
        // And the recovered index keeps working: compact for real this time.
        lsm.compact().unwrap();
        assert_eq!(lsm.run_count(), 1);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
    }
}
