//! LSM-style Coconut: the paper's future-work proposal, implemented.
//!
//! The conclusion of the paper suggests that "ideas from LSM trees could be
//! used to enable efficient updates". `LsmCoconut` does exactly that: new
//! batches are bulk-loaded into fresh Coconut-Tree *runs* (each covering a
//! contiguous position range of the growing raw file), and when the number
//! of runs exceeds a threshold, adjacent runs are merged by re-bulk-loading
//! their combined range — every write stays a large sequential write, at
//! the cost of queries consulting several runs (classic LSM read
//! amplification).

use std::path::PathBuf;

use coconut_series::dataset::Dataset;
use coconut_series::index::{Answer, QueryStats, SeriesIndex};
use coconut_series::Value;
use coconut_storage::{Error, Result};

use crate::config::{BuildOptions, IndexConfig};
use crate::tree::CoconutTree;

/// An LSM collection of bulk-loaded Coconut-Tree runs.
pub struct LsmCoconut {
    config: IndexConfig,
    opts: BuildOptions,
    dir: PathBuf,
    runs: Vec<CoconutTree>,
    /// Merge when the number of runs exceeds this.
    max_runs: usize,
    /// End of the covered position range.
    covered_end: u64,
}

impl LsmCoconut {
    /// An empty LSM index that will build its runs in `dir`.
    pub fn new(config: IndexConfig, opts: BuildOptions, dir: impl Into<PathBuf>) -> Result<Self> {
        config.validate()?;
        Ok(LsmCoconut {
            config,
            opts,
            dir: dir.into(),
            runs: Vec::new(),
            max_runs: 4,
            covered_end: 0,
        })
    }

    /// Change the run threshold that triggers merging.
    pub fn set_max_runs(&mut self, max_runs: usize) {
        self.max_runs = max_runs.max(1);
    }

    /// Index every position of `dataset` not yet covered (the dataset must
    /// only ever grow) as one new run, merging if the run count overflows.
    pub fn ingest(&mut self, dataset: &Dataset) -> Result<()> {
        self.ingest_upto(dataset, dataset.len())
    }

    /// Index positions up to `upto` (exclusive) that are not yet covered —
    /// used by workloads that reveal an on-disk dataset in batches.
    pub fn ingest_upto(&mut self, dataset: &Dataset, upto: u64) -> Result<()> {
        if upto > dataset.len() {
            return Err(Error::invalid("upto exceeds the dataset length"));
        }
        if upto < self.covered_end {
            return Err(Error::invalid("dataset shrank below the covered range"));
        }
        if upto == self.covered_end {
            return Ok(());
        }
        let range = self.covered_end..upto;
        let run = CoconutTree::build_range(
            dataset,
            range.clone(),
            &self.config,
            &self.dir,
            self.opts.clone(),
        )?;
        self.covered_end = range.end;
        self.runs.push(run);
        self.maybe_merge(dataset)?;
        Ok(())
    }

    fn maybe_merge(&mut self, dataset: &Dataset) -> Result<()> {
        while self.runs.len() > self.max_runs {
            // Merge the adjacent pair with the smallest combined size
            // (runs cover contiguous, increasing ranges).
            let mut best = 0usize;
            let mut best_size = u64::MAX;
            for i in 0..self.runs.len() - 1 {
                let size = self.runs[i].len() + self.runs[i + 1].len();
                if size < best_size {
                    best_size = size;
                    best = i;
                }
            }
            let lo = self.runs[best].covered_range().start;
            let hi = self.runs[best + 1].covered_range().end;
            let merged = CoconutTree::build_range(
                dataset,
                lo..hi,
                &self.config,
                &self.dir,
                self.opts.clone(),
            )?;
            // Drop the two old runs (their files are removed).
            let old_b = self.runs.remove(best + 1);
            let old_a = self.runs.remove(best);
            let _ = std::fs::remove_file(old_a.index_path());
            let _ = std::fs::remove_file(old_b.index_path());
            self.runs.insert(best, merged);
        }
        Ok(())
    }

    /// Number of live runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total entries across runs.
    pub fn len(&self) -> u64 {
        self.runs.iter().map(|r| r.len()).sum()
    }

    /// True when no run holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SeriesIndex for LsmCoconut {
    fn name(&self) -> String {
        "CTree-LSM".into()
    }

    fn approximate(&self, query: &[Value]) -> Result<Answer> {
        let mut best = Answer::none();
        for run in &self.runs {
            best.merge(run.approximate(query)?);
        }
        Ok(best)
    }

    fn exact(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        let mut best = Answer::none();
        let mut stats = QueryStats::default();
        for run in &self.runs {
            let (a, s) = run.exact(query)?;
            best.merge(a);
            stats.add(&s);
        }
        Ok((best, stats))
    }

    fn disk_bytes(&self) -> u64 {
        self.runs.iter().map(|r| r.disk_bytes()).sum()
    }

    fn leaf_count(&self) -> u64 {
        self.runs.iter().map(|r| r.leaf_count()).sum()
    }

    fn avg_leaf_fill(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        let leaves: u64 = self.runs.iter().map(|r| r.leaf_count()).sum();
        if leaves == 0 {
            return 0.0;
        }
        self.runs
            .iter()
            .map(|r| r.avg_leaf_fill() * r.leaf_count() as f64)
            .sum::<f64>()
            / leaves as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::dataset::DatasetWriter;
    use coconut_series::distance::{euclidean, znormalize};
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_storage::{IoStats, TempDir};
    use std::sync::Arc;

    const LEN: usize = 64;

    fn small_config() -> IndexConfig {
        let mut c = IndexConfig::default_for_len(LEN);
        c.leaf_capacity = 32;
        c
    }

    /// Append `n` series to the dataset file at `path` (creating it if
    /// needed) and reopen it.
    fn grow_dataset(
        path: &std::path::Path,
        stats: &Arc<IoStats>,
        gen: &mut RandomWalkGen,
        existing: &[Vec<Value>],
        n: usize,
    ) -> (Dataset, Vec<Vec<Value>>) {
        let mut all = existing.to_vec();
        for _ in 0..n {
            let mut s = gen.generate(LEN);
            znormalize(&mut s);
            all.push(s);
        }
        let mut w = DatasetWriter::create(path, LEN, true, Arc::clone(stats)).unwrap();
        for s in &all {
            w.append(s).unwrap();
        }
        w.finish().unwrap();
        (Dataset::open(path, Arc::clone(stats)).unwrap(), all)
    }

    fn brute_force(all: &[Vec<Value>], q: &[Value]) -> Answer {
        let mut best = Answer::none();
        for (i, s) in all.iter().enumerate() {
            best.merge(Answer {
                pos: i as u64,
                dist: euclidean(q, s),
            });
        }
        best
    }

    #[test]
    fn ingest_batches_and_query_exactly() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(31);
        let mut lsm = LsmCoconut::new(small_config(), BuildOptions::default(), dir.path()).unwrap();
        lsm.set_max_runs(3);

        let mut all = Vec::new();
        for round in 0..6 {
            let (ds, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 150);
            all = new_all;
            lsm.ingest(&ds).unwrap();
            assert_eq!(lsm.len(), all.len() as u64, "round {round}");
            assert!(
                lsm.run_count() <= 3,
                "round {round}: {} runs",
                lsm.run_count()
            );

            let mut q = RandomWalkGen::new(100 + round).generate(LEN);
            znormalize(&mut q);
            let (ans, _) = lsm.exact(&q).unwrap();
            let expect = brute_force(&all, &q);
            assert_eq!(ans.pos, expect.pos, "round {round}");
        }
    }

    #[test]
    fn approximate_over_runs_is_upper_bound_of_exact() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(77);
        let mut lsm = LsmCoconut::new(small_config(), BuildOptions::default(), dir.path()).unwrap();
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &[], 300);
        lsm.ingest(&ds).unwrap();
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &all, 100);
        lsm.ingest(&ds).unwrap();
        assert_eq!(all.len(), 400);
        let mut q = RandomWalkGen::new(5).generate(LEN);
        znormalize(&mut q);
        let approx = lsm.approximate(&q).unwrap();
        let (exact, _) = lsm.exact(&q).unwrap();
        assert!(exact.dist <= approx.dist + 1e-9);
    }

    #[test]
    fn empty_and_noop_ingest() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(1);
        let mut lsm = LsmCoconut::new(small_config(), BuildOptions::default(), dir.path()).unwrap();
        assert!(lsm.is_empty());
        let (ds, _) = grow_dataset(&path, &stats, &mut gen, &[], 50);
        lsm.ingest(&ds).unwrap();
        let runs = lsm.run_count();
        lsm.ingest(&ds).unwrap(); // nothing new
        assert_eq!(lsm.run_count(), runs);
        assert_eq!(lsm.len(), 50);
    }

    #[test]
    fn merging_reduces_runs_and_removes_files() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(13);
        let mut lsm = LsmCoconut::new(small_config(), BuildOptions::default(), dir.path()).unwrap();
        lsm.set_max_runs(2);
        let mut all = Vec::new();
        for _ in 0..5 {
            let (ds, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 60);
            all = new_all;
            lsm.ingest(&ds).unwrap();
        }
        assert!(lsm.run_count() <= 2);
        // Only the live runs' index files remain.
        let idx_files = std::fs::read_dir(dir.path())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("ctree-")
            })
            .count();
        assert_eq!(idx_files, lsm.run_count());
    }
}
