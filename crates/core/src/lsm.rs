//! LSM-style Coconut: crash-safe streaming ingest over bulk-loaded runs.
//!
//! The paper's conclusion suggests that "ideas from LSM trees could be used
//! to enable efficient updates"; the follow-up work (*"Coconut: Sortable
//! Summarizations for Scalable Indexes over Static and Streaming Data
//! Series"*) makes streaming a first-class workload. [`LsmCoconut`] is that
//! subsystem:
//!
//! * **Ingest** ([`LsmCoconut::ingest_upto`]): every revealed batch of the
//!   growing raw file is bulk-loaded bottom-up into a fresh Coconut-Tree
//!   *run* in its own `run-<id>/` directory — all large sequential writes,
//!   exactly the paper's construction path.
//! * **Multi-writer group commit** ([`LsmCoconut::writer`]): N writer
//!   handles claim disjoint contiguous position ranges up front (so runs
//!   stay gap-free no matter which build finishes first), build and fsync
//!   their run files concurrently, and park the finished runs in a commit
//!   queue. Whichever writer finds the queue holding the run that extends
//!   the covered prefix becomes the *group committer*: it folds the whole
//!   contiguous chain into **one** atomic manifest commit, amortizing the
//!   fsync across the batch. A batch is acknowledged only after that
//!   commit is durable — a crash between a run-file fsync and the manifest
//!   commit leaves orphan directories for recovery to delete, never an
//!   acknowledged batch.
//! * **Compaction**: a [`CompactionPolicy`] (default
//!   [`TieredPolicy`]; [`crate::compaction::LeveledPolicy`] selectable via
//!   the manifest-recorded [`CompactionPolicyKind`]) decides which
//!   adjacent runs to merge; the merge itself is a K-way [`MergedStream`]
//!   over the runs' already-sorted leaf streams
//!   ([`CoconutTree::leaf_entries`]), bulk-loaded into a new run —
//!   **never** a re-sort of the raw range. Merges execute on a small
//!   worker pool: a scheduler thread plans non-overlapping windows
//!   (contiguous segments of runs not already being merged) and dispatches
//!   them to parallel merge threads, while manifest commits stay
//!   serialized in mutation order under one commit lock.
//!   [`LsmCoconut::wait_for_compactions`] is the synchronization point.
//! * **Crash safety**: the live run set lives in a versioned, checksummed
//!   [`crate::manifest::Manifest`] written atomically on every run addition
//!   and compaction. [`LsmCoconut::open`] recovers the exact committed run
//!   set after a crash, deletes orphaned run directories (from interrupted
//!   ingests or compactions) and leftover manifest temp files, and resumes.
//!   [`KillPoint`] injects simulated crashes at the three interesting
//!   instants for the crash-safety test suite; an installed
//!   [`coconut_storage::FaultPlan`] can schedule the same crashes (sites
//!   `manifest.before` / `manifest.torn` / `manifest.after`) plus run
//!   directory creation failures (`run.create`) on deterministic seeds.
//! * **Corruption handling**: every run's leaves carry CRCs (see
//!   [`crate::layout`]); [`LsmCoconut::scrub`] re-reads and verifies all of
//!   them, and a run whose index file no longer decodes is *quarantined* at
//!   open time — moved to `quarantine/` together with the runs after it
//!   (the covered prefix must stay contiguous) and dropped from a freshly
//!   committed manifest, so the index keeps serving the reduced prefix
//!   instead of failing outright.
//! * **Queries**: exact / kNN / range answers are merged across runs with
//!   per-run [`QueryStats`] aggregated into one set of work counters; read
//!   amplification is the run count, which the policy bounds.
//! * **Snapshot isolation** ([`LsmCoconut::snapshot`]): a query pins an
//!   immutable [`Snapshot`] — the committed run set plus its manifest
//!   sequence number — under one brief lock acquisition, then executes
//!   entirely lock-free. Concurrent ingests and compactions never block a
//!   pinned reader, and a compaction that obsoletes a run a snapshot still
//!   references defers the run directory's deletion until the last snapshot
//!   drops (refcount-based garbage collection; see
//!   [`LsmCoconut::collect_garbage`]).
//!
//! A dropped (or killed) `LsmCoconut` never loses committed data: anything
//! acknowledged by a successful `ingest_upto` return is durable. An ingest
//! or compaction that *fails* (including simulated kills) poisons the
//! instance — subsequent calls surface the error — mirroring a crashed
//! process; reopen from disk to continue.

use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;

use parking_lot::Mutex;

use coconut_series::dataset::Dataset;
use coconut_series::index::{Answer, QueryStats, SeriesIndex};
use coconut_series::Value;
use coconut_storage::atomic::{atomic_write, atomic_write_torn, temp_path};
use coconut_storage::{fault, Deadline, Error, FaultAction, FaultPlan, MergedStream, Result};

use crate::compaction::{CompactionPolicy, CompactionPolicyKind, TieredPolicy};
use crate::config::{BuildOptions, IndexConfig};
use crate::layout::ScrubReport;
use crate::manifest::{run_dir_name, Manifest, RunMeta};
use crate::records::{KeyPos, KeySeries};
use crate::tree::{CoconutTree, LeafEntryStream};

/// Simulated crash instants for the crash-safety test suite, armed with
/// [`LsmCoconut::set_kill_point`]. The *next* manifest commit (run addition
/// or compaction, whichever comes first) consumes the kill point, leaves
/// the on-disk state exactly as a real crash at that instant would, and
/// fails with an error — after which the instance behaves as poisoned and
/// should be reopened from disk, like a crashed process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Die before anything reaches disk: neither the manifest nor its temp
    /// file change. The operation's new run directory becomes an orphan.
    BeforeManifestWrite,
    /// Die halfway through writing the manifest temp file, before the
    /// rename: the committed manifest survives untouched and a torn
    /// `MANIFEST.tmp` is left for recovery to discard.
    MidManifestWrite,
    /// Die after the new manifest is durably renamed into place but before
    /// the obsolete run directories of a compaction are deleted: recovery
    /// must clean up the orphans.
    AfterManifestCommit,
}

/// One live run and its open index.
struct Run {
    meta: RunMeta,
    tree: Arc<CoconutTree>,
}

/// Per-run outcome of [`LsmCoconut::scrub`].
#[derive(Debug, Clone)]
pub struct RunScrub {
    /// Manifest run id.
    pub id: u64,
    /// First raw-file position the run covers.
    pub start: u64,
    /// End (exclusive) of the run's position range.
    pub end: u64,
    /// Leaves verified / legacy-unchecked when the scan succeeded.
    pub report: ScrubReport,
    /// The corruption the scan hit, if any (`None` = run is clean).
    pub error: Option<String>,
}

/// Mutable LSM state, guarded by one mutex (manifest commits happen under
/// it, so commits are serialized and always snapshot a consistent run set).
struct State {
    runs: Vec<Run>,
    covered_end: u64,
    next_run_id: u64,
    seq: u64,
    /// The freshest dataset handle seen; compactions build against it.
    dataset: Option<Dataset>,
}

/// A run retired by compaction whose directory may still be pinned by a
/// live [`Snapshot`]. The `tree` Arc doubles as the refcount: once the GC
/// list holds the only reference, no snapshot (or in-flight query) can
/// still read the run and its directory is safe to delete.
struct GcRun {
    tree: Arc<CoconutTree>,
    dir: PathBuf,
}

/// A writer's reservation of the contiguous position range `start..end`
/// (and the run id that will hold it), handed out by [`claim_range`].
/// Ranges are assigned at claim time, so however the concurrent builds
/// interleave, the finished runs always reassemble into a gap-free prefix.
struct Claim {
    start: u64,
    end: u64,
    run_id: u64,
}

/// A built, fsynced run waiting in the commit queue for the group
/// committer to fold it into a manifest commit.
struct PendingRun {
    meta: RunMeta,
    tree: CoconutTree,
}

/// Multi-writer ingest coordination: range claims, the queue of completed
/// runs, and the durable watermark writers block on. Uses the std mutex +
/// condvar pair (not `parking_lot`) because waiters need a condition
/// variable.
struct IngestQueue {
    inner: StdMutex<IngestState>,
    cv: Condvar,
}

struct IngestState {
    /// End (exclusive) of the highest range handed to any writer; always
    /// `>= durable_end`. New claims start here.
    claimed_end: u64,
    /// Claims whose runs are still building (claimed, not yet submitted).
    in_flight: usize,
    /// Completed runs awaiting the group committer, keyed by start
    /// position. The committer drains the maximal contiguous chain
    /// starting at `durable_end`.
    done: BTreeMap<u64, PendingRun>,
    /// End of the durably committed prefix — `state.covered_end` as of the
    /// last successful manifest commit. Writers are acknowledged once this
    /// passes their claim's end.
    durable_end: u64,
    /// Set when ingest can no longer make progress (a failed build left a
    /// coverage hole, or a commit failed); wakes every waiter to surface
    /// the poisoned state.
    failed: bool,
}

impl IngestQueue {
    fn new(covered_end: u64) -> Self {
        IngestQueue {
            inner: StdMutex::new(IngestState {
                claimed_end: covered_end,
                in_flight: 0,
                done: BTreeMap::new(),
                durable_end: covered_end,
                failed: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, IngestState> {
        // A writer thread that panics mid-ingest poisons the std mutex;
        // the instance is already unusable at that point, so propagate.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Monotone write-path counters backing the amplification gauges.
#[derive(Default)]
struct WriteCounters {
    /// Entries committed by ingest (the first write of each entry).
    ingested: AtomicU64,
    /// Entries rewritten by compaction merges.
    rewritten: AtomicU64,
    /// Manifest commits that folded at least one ingest run.
    ingest_commits: AtomicU64,
    /// Ingest runs folded across those commits; the excess over
    /// `ingest_commits` is the fsyncs group commit amortized away.
    runs_committed: AtomicU64,
}

/// A point-in-time copy of the write-path counters
/// ([`LsmCoconut::write_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Entries committed by ingest since this instance started.
    pub entries_ingested: u64,
    /// Entries rewritten by compaction merges.
    pub entries_rewritten: u64,
    /// Manifest commits that folded at least one ingest run.
    pub ingest_commits: u64,
    /// Ingest runs folded across those commits (`>= ingest_commits`; the
    /// gap is what group commit amortized).
    pub runs_committed: u64,
}

/// State shared with the compaction worker thread.
struct Shared {
    config: IndexConfig,
    opts: BuildOptions,
    dir: PathBuf,
    /// First raw-file position this index covers — 0 for a whole-dataset
    /// index, the slice start for a shard worker owning one key range.
    /// Fixed at creation and recorded in the manifest.
    base: u64,
    state: Mutex<State>,
    /// Serializes manifest commits *around* the state lock: a committer
    /// holds this across {mutate state, encode} and the manifest I/O, so
    /// commits hit disk in mutation order — while queries, which take only
    /// the brief `state` lock, never wait on an fsync.
    commit_order: Mutex<()>,
    /// Multi-writer ingest coordination: claims, the completed-run queue,
    /// and the durable watermark (see [`IngestQueue`]). Lock order:
    /// `commit_order` → `ingest.inner` → `state`.
    ingest: IngestQueue,
    /// Runs retired by compaction but possibly pinned by snapshots; swept
    /// by [`sweep_gc`] when snapshots drop.
    gc: Mutex<Vec<GcRun>>,
    policy: Mutex<Box<dyn CompactionPolicy>>,
    /// The policy family recorded in every manifest commit; kept in sync
    /// with `policy` by [`LsmCoconut::set_policy`].
    compaction_kind: Mutex<CompactionPolicyKind>,
    /// Write-path counters backing the amplification gauges.
    stats: WriteCounters,
    kill: Mutex<Option<KillPoint>>,
    /// Instance-scoped fault plan consulted *before* the process-global one
    /// at the LSM's sites — lets one index (or one test) inject faults
    /// without perturbing neighbors in the same process.
    fault_plan: Mutex<Option<Arc<FaultPlan>>>,
    /// First commit/compaction error; sticky — it poisons the instance
    /// (in-memory state may be ahead of the durable manifest, exactly like
    /// a crashed process; reopen from disk to continue).
    poisoned: Mutex<Option<String>>,
}

/// Work items for the compaction scheduler, processed in order.
enum Job {
    /// Re-plan and dispatch merges until the policy proposes nothing.
    Maintain,
    /// Merge every live run into a single run.
    CompactAll,
    /// Acknowledge once every previously queued job has finished.
    Sync(Sender<()>),
}

/// Everything the scheduler thread receives: caller jobs, merge-worker
/// completions, and the shutdown marker [`LsmCoconut::drop`] sends so the
/// scheduler can drain in-flight merges, retire the pool, and exit.
enum Msg {
    Job(Job),
    /// A merge worker finished the window holding these run ids.
    Done {
        ids: Vec<u64>,
        result: Result<()>,
    },
    Shutdown,
}

/// A non-overlapping merge window dispatched to the worker pool.
struct MergeTask {
    ids: Vec<u64>,
}

/// An LSM collection of bulk-loaded Coconut-Tree runs with tiered
/// compaction and a crash-safe manifest. See the module docs for the
/// design; see [`LsmCoconut::new`] / [`LsmCoconut::open`] for the two ways
/// in.
pub struct LsmCoconut {
    shared: Arc<Shared>,
    jobs: Option<Sender<Msg>>,
    worker: Option<JoinHandle<()>>,
}

impl LsmCoconut {
    /// Create a **fresh** LSM index in `dir` (created if missing). Errors
    /// if `dir` already holds an LSM index — a `MANIFEST` or `run-*`
    /// directories from a previous process — instead of silently mixing
    /// stale runs into a new build; use [`LsmCoconut::open`] to recover an
    /// existing index.
    pub fn new(config: IndexConfig, opts: BuildOptions, dir: impl Into<PathBuf>) -> Result<Self> {
        Self::create(config, opts, dir, 0, CompactionPolicyKind::default())
    }

    /// [`LsmCoconut::new`] for an index that covers only the raw-file slice
    /// starting at `base` — the shard-worker flavor: a worker owning the
    /// key range `base..end` ingests and serves exactly that slice while
    /// the coordinator owns the partition map. `base` is recorded in the
    /// manifest, so [`LsmCoconut::open`] recovers it.
    pub fn new_based(
        config: IndexConfig,
        opts: BuildOptions,
        dir: impl Into<PathBuf>,
        base: u64,
    ) -> Result<Self> {
        Self::create(config, opts, dir, base, CompactionPolicyKind::default())
    }

    /// The full constructor: [`LsmCoconut::new_based`] with an explicit
    /// compaction policy family, recorded in the initial manifest commit so
    /// even a never-ingested index reopens under the policy it was created
    /// with (the CLI's `--compaction` flag lands here).
    pub fn create(
        config: IndexConfig,
        opts: BuildOptions,
        dir: impl Into<PathBuf>,
        base: u64,
        compaction: CompactionPolicyKind,
    ) -> Result<Self> {
        config.validate()?;
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        if Manifest::path_in(&dir).exists() {
            return Err(Error::invalid(format!(
                "{} already contains an LSM index (MANIFEST present); \
                 use LsmCoconut::open to recover it",
                dir.display()
            )));
        }
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            if name.to_string_lossy().starts_with("run-") {
                return Err(Error::invalid(format!(
                    "{} contains stale run directory {:?} from a previous \
                     index; remove it or open the index it belongs to",
                    dir.display(),
                    name
                )));
            }
        }
        let shared = Arc::new(Shared {
            config,
            opts,
            dir,
            base,
            state: Mutex::new(State {
                runs: Vec::new(),
                covered_end: base,
                next_run_id: 0,
                seq: 0,
                dataset: None,
            }),
            commit_order: Mutex::new(()),
            ingest: IngestQueue::new(base),
            gc: Mutex::new(Vec::new()),
            policy: Mutex::new(compaction.policy()),
            compaction_kind: Mutex::new(compaction),
            stats: WriteCounters::default(),
            kill: Mutex::new(None),
            fault_plan: Mutex::new(None),
            poisoned: Mutex::new(None),
        });
        {
            // Commit the (empty) initial manifest so even a never-ingested
            // index can be reopened.
            let _order = shared.commit_order.lock();
            let bytes = {
                let mut st = shared.state.lock();
                st.seq += 1;
                encode_manifest(&shared, &st)
            };
            write_manifest(&shared, &bytes)?;
        }
        Self::spawn(shared)
    }

    /// Open (recover) the LSM index in `dir`: load the manifest, verify its
    /// checksum, reopen exactly the committed run set against `dataset`,
    /// and delete anything a crash left behind (orphaned `run-*`
    /// directories, a torn `MANIFEST.tmp`). The index configuration and
    /// materialization come from the manifest; `opts` supplies the runtime
    /// knobs (threads, memory budget, shards) for future builds.
    pub fn open(dir: impl Into<PathBuf>, dataset: &Dataset, opts: BuildOptions) -> Result<Self> {
        let dir = dir.into();
        let manifest = Manifest::load(&dir)?;
        if manifest.covered_end > dataset.len() {
            return Err(Error::corrupt(format!(
                "manifest covers {}..{} but the dataset holds only {} series",
                manifest.base,
                manifest.covered_end,
                dataset.len()
            )));
        }
        let mut opts = opts;
        opts.materialized = manifest.materialized;

        // Recovery cleanup: a torn manifest temp and run directories the
        // committed manifest does not reference.
        let _ = std::fs::remove_file(temp_path(&Manifest::path_in(&dir)));
        let live: HashSet<String> = manifest.runs.iter().map(|r| r.dir_name()).collect();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("run-") && !live.contains(&name) {
                let _ = std::fs::remove_dir_all(entry.path());
            }
        }

        let mut manifest = manifest;
        let mut runs = Vec::with_capacity(manifest.runs.len());
        let metas = manifest.runs.clone();
        for (i, meta) in metas.iter().enumerate() {
            match CoconutTree::open_range(
                &dir.join(&meta.file),
                dataset,
                opts.threads,
                meta.start..meta.end,
            ) {
                Ok(tree) => runs.push(Run {
                    meta: meta.clone(),
                    tree: Arc::new(tree),
                }),
                // Verify-on-open found damage: quarantine this run and
                // every later one (the covered prefix must stay contiguous)
                // and serve the reduced prefix instead of failing.
                Err(e) if e.is_corrupt() => {
                    quarantine_runs(&dir, &metas[i..], &e)?;
                    manifest.covered_end = meta.start;
                    manifest.runs.truncate(i);
                    manifest.seq += 1;
                    manifest.store(&dir)?;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        let shared = Arc::new(Shared {
            config: manifest.config,
            opts,
            dir,
            base: manifest.base,
            state: Mutex::new(State {
                runs,
                covered_end: manifest.covered_end,
                next_run_id: manifest.next_run_id,
                seq: manifest.seq,
                dataset: Some(dataset.clone()),
            }),
            commit_order: Mutex::new(()),
            ingest: IngestQueue::new(manifest.covered_end),
            gc: Mutex::new(Vec::new()),
            policy: Mutex::new(manifest.compaction.policy()),
            compaction_kind: Mutex::new(manifest.compaction),
            stats: WriteCounters::default(),
            kill: Mutex::new(None),
            fault_plan: Mutex::new(None),
            poisoned: Mutex::new(None),
        });
        Self::spawn(shared)
    }

    fn spawn(shared: Arc<Shared>) -> Result<Self> {
        let (tx, rx) = std::sync::mpsc::channel();
        let worker_shared = Arc::clone(&shared);
        let worker_tx = tx.clone();
        let worker = std::thread::Builder::new()
            .name("coconut-lsm-compactor".into())
            .spawn(move || scheduler_loop(worker_shared, rx, worker_tx))?;
        Ok(LsmCoconut {
            shared,
            jobs: Some(tx),
            worker: Some(worker),
        })
    }

    /// Replace the compaction policy (takes effect from the next
    /// decision). The policy's [`CompactionPolicy::kind`] is recorded in
    /// every subsequent manifest commit.
    pub fn set_policy(&self, policy: Box<dyn CompactionPolicy>) {
        *self.shared.compaction_kind.lock() = policy.kind();
        *self.shared.policy.lock() = policy;
    }

    /// The compaction policy family the index is grown under (what the
    /// manifest records and `--compaction` selects).
    pub fn compaction_kind(&self) -> CompactionPolicyKind {
        *self.shared.compaction_kind.lock()
    }

    /// Bound read amplification: install a [`TieredPolicy`] that keeps at
    /// most `max_runs` live runs.
    pub fn set_max_runs(&self, max_runs: usize) {
        self.set_policy(Box::new(TieredPolicy::with_max_runs(max_runs)));
    }

    /// Arm (or clear) a simulated crash for the next manifest commit.
    pub fn set_kill_point(&self, kill: Option<KillPoint>) {
        *self.shared.kill.lock() = kill;
    }

    /// Install (or clear) an instance-scoped [`FaultPlan`], consulted
    /// before the process-global plan at this index's fault sites
    /// (`manifest.before` / `manifest.torn` / `manifest.after` /
    /// `run.create`).
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.shared.fault_plan.lock() = plan;
    }

    /// Surface a sticky worker error, mirroring a crashed process.
    fn check_poisoned(&self) -> Result<()> {
        if let Some(msg) = self.shared.poisoned.lock().clone() {
            return Err(Error::invalid(format!(
                "LSM instance poisoned by a failed commit (reopen the index \
                 from disk to recover): {msg}"
            )));
        }
        Ok(())
    }

    fn send(&self, job: Job) -> Result<()> {
        // `jobs` is only taken in Drop, but surface a typed error rather
        // than panicking if a send ever races shutdown.
        self.jobs
            .as_ref()
            .ok_or_else(|| Error::invalid("LSM index is shutting down"))?
            .send(Msg::Job(job))
            .map_err(|_| Error::invalid("LSM compaction worker exited"))
    }

    /// Index every position of `dataset` not yet covered (the dataset must
    /// only ever grow) as one new run; compaction follows on the worker
    /// thread if the policy asks for it.
    pub fn ingest(&self, dataset: &Dataset) -> Result<()> {
        self.ingest_upto(dataset, dataset.len())
    }

    /// Index positions up to `upto` (exclusive) that are not yet covered —
    /// used by workloads that reveal an on-disk dataset in batches. On
    /// success the covered prefix reaches `upto` and is durable.
    ///
    /// Takes `&self`: a server can share one `LsmCoconut` behind an
    /// [`Arc`] and queries pin snapshots while a batch builds. Concurrent
    /// callers cooperate through the group-commit queue: each claims the
    /// unclaimed tail (if any), and all of them return once the covered
    /// prefix is durably committed past `upto` — by whichever writer
    /// became the group committer. For explicit N-writer ingest, use
    /// [`LsmCoconut::writer`] handles instead.
    pub fn ingest_upto(&self, dataset: &Dataset, upto: u64) -> Result<()> {
        self.check_poisoned()?;
        if upto > dataset.len() {
            return Err(Error::invalid("upto exceeds the dataset length"));
        }
        match claim_range(&self.shared, dataset, upto, u64::MAX)? {
            Some(claim) => {
                build_and_commit(&self.shared, dataset, claim)?;
                self.send(Job::Maintain)
            }
            // The tail up to `upto` is already claimed (possibly by a
            // concurrent writer still committing): wait until it is
            // durable.
            None => wait_durable(&self.shared, upto),
        }
    }

    /// A handle for one writer thread of a multi-writer ingest. All
    /// handles of one index feed the same group-commit queue: their runs
    /// build concurrently, and completed batches are folded into shared
    /// manifest commits (one fsync per group). Handles borrow the index,
    /// so spawn writer threads with `std::thread::scope`.
    pub fn writer(&self) -> IngestWriter<'_> {
        IngestWriter { lsm: self }
    }

    /// Merge every live run into one and wait for it to finish — the
    /// "defragment everything" operation (CLI `compact`). The resulting
    /// single run is bit-identical to a from-scratch bulk load over the
    /// covered range.
    pub fn compact(&self) -> Result<()> {
        self.check_poisoned()?;
        self.send(Job::CompactAll)?;
        self.wait_for_compactions()
    }

    /// Block until every queued compaction has completed, then surface any
    /// worker error. Queries never need this — they see consistent
    /// snapshots throughout — but tests and benchmarks use it to observe a
    /// settled run count.
    pub fn wait_for_compactions(&self) -> Result<()> {
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        self.send(Job::Sync(ack_tx))?;
        ack_rx
            .recv()
            .map_err(|_| Error::invalid("LSM compaction worker exited"))?;
        self.check_poisoned()
    }

    /// Number of live runs (the read amplification of the next query).
    pub fn run_count(&self) -> usize {
        self.shared.state.lock().runs.len()
    }

    /// End (exclusive) of the covered raw-file position range.
    pub fn covered_end(&self) -> u64 {
        self.shared.state.lock().covered_end
    }

    /// First raw-file position this index covers (0 unless created with
    /// [`LsmCoconut::new_based`]).
    pub fn base(&self) -> u64 {
        self.shared.base
    }

    /// Total entries across runs.
    pub fn len(&self) -> u64 {
        self.shared
            .state
            .lock()
            .runs
            .iter()
            .map(|r| r.tree.len())
            .sum()
    }

    /// True when no run holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The directory this index lives in.
    pub fn dir(&self) -> PathBuf {
        self.shared.dir.clone()
    }

    /// The index configuration every run is (and will be) built with —
    /// fixed at [`LsmCoconut::new`] time and recovered from the manifest by
    /// [`LsmCoconut::open`].
    pub fn config(&self) -> IndexConfig {
        self.shared.config
    }

    /// Whether runs embed raw series (the `-Full` layout; recorded in the
    /// manifest, so it survives reopening).
    pub fn is_materialized(&self) -> bool {
        self.shared.opts.materialized
    }

    /// Pin a consistent, immutable view of the committed run set. The state
    /// lock is held only for the duration of the Arc clones; everything the
    /// returned [`Snapshot`] does afterwards — exact, kNN, and range
    /// queries — is lock-free, so concurrent ingests and compactions never
    /// stall a pinned reader. Run directories a compaction obsoletes while
    /// the snapshot is live are garbage-collected after the snapshot drops.
    pub fn snapshot(&self) -> Snapshot {
        let st = self.shared.state.lock();
        Snapshot {
            runs: st.runs.iter().map(|r| Arc::clone(&r.tree)).collect(),
            base: self.shared.base,
            covered_end: st.covered_end,
            seq: st.seq,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Delete the directories of compacted-away runs that are no longer
    /// pinned by any [`Snapshot`]; returns how many were removed. Runs are
    /// swept automatically when snapshots drop — this is for callers that
    /// want a deterministic cleanup point (tests, shutdown paths).
    pub fn collect_garbage(&self) -> usize {
        sweep_gc(&self.shared)
    }

    /// Number of compacted-away runs whose directories are still pinned by
    /// live snapshots (observability: `coconut_gc_pinned_runs`).
    pub fn pinned_garbage(&self) -> usize {
        self.shared.gc.lock().len()
    }

    /// Point-in-time write-path counters (entries ingested/rewritten,
    /// ingest commits, runs folded) for the amplification gauges and the
    /// streaming benchmark. Counters start at zero per instance — they
    /// measure this process's work, not the on-disk history.
    pub fn write_stats(&self) -> WriteStats {
        WriteStats {
            entries_ingested: self.shared.stats.ingested.load(Ordering::Relaxed),
            entries_rewritten: self.shared.stats.rewritten.load(Ordering::Relaxed),
            ingest_commits: self.shared.stats.ingest_commits.load(Ordering::Relaxed),
            runs_committed: self.shared.stats.runs_committed.load(Ordering::Relaxed),
        }
    }

    /// Write amplification so far: entries written (first writes plus
    /// compaction rewrites) per entry ingested. 1.0 until the first merge;
    /// grows with compaction eagerness (observability:
    /// `coconut_write_amp`).
    pub fn write_amplification(&self) -> f64 {
        let s = self.write_stats();
        if s.entries_ingested == 0 {
            return 1.0;
        }
        (s.entries_ingested + s.entries_rewritten) as f64 / s.entries_ingested as f64
    }

    /// Space amplification: bytes held by all `run-*` directories on disk
    /// (live runs, snapshot-pinned garbage, in-flight builds) per byte of
    /// live run. 1.0 when nothing but the live runs exists (observability:
    /// `coconut_space_amp`).
    pub fn space_amplification(&self) -> f64 {
        let live: u64 = {
            let st = self.shared.state.lock();
            st.runs.iter().map(|r| r.tree.disk_bytes()).sum()
        };
        if live == 0 {
            return 1.0;
        }
        let mut total = 0u64;
        if let Ok(entries) = std::fs::read_dir(&self.shared.dir) {
            for entry in entries.flatten() {
                if !entry.file_name().to_string_lossy().starts_with("run-") {
                    continue;
                }
                if let Ok(files) = std::fs::read_dir(entry.path()) {
                    for f in files.flatten() {
                        total += f.metadata().map(|m| m.len()).unwrap_or(0);
                    }
                }
            }
        }
        total.max(live) as f64 / live as f64
    }

    /// Live runs bucketed by size level — level `L` holds runs with
    /// `fanout^L <= entries < fanout^(L+1)` for the default fanout of 4 —
    /// a policy-agnostic shape summary (observability:
    /// `coconut_runs_level_<L>`; the read amplification is the sum).
    pub fn level_run_counts(&self) -> Vec<usize> {
        let st = self.shared.state.lock();
        let mut counts = Vec::new();
        for run in &st.runs {
            let mut level = 0usize;
            let mut v = run.meta.entries().max(1);
            while v >= 4 {
                v /= 4;
                level += 1;
            }
            if counts.len() <= level {
                counts.resize(level + 1, 0);
            }
            counts[level] += 1;
        }
        counts
    }

    /// Re-read and checksum-verify every leaf of every live run (the
    /// `coconut scrub` command). Never fails as a whole: each run reports
    /// either its clean [`ScrubReport`] or the corruption the scan hit, so
    /// an operator sees *all* damaged runs, not just the first.
    pub fn scrub(&self) -> Vec<RunScrub> {
        let runs: Vec<(RunMeta, Arc<CoconutTree>)> = {
            let st = self.shared.state.lock();
            st.runs
                .iter()
                .map(|r| (r.meta.clone(), Arc::clone(&r.tree)))
                .collect()
        };
        runs.into_iter()
            .map(|(meta, tree)| {
                let (report, error) = match tree.verify() {
                    Ok(rep) => (rep, None),
                    Err(e) => (ScrubReport::default(), Some(e.to_string())),
                };
                RunScrub {
                    id: meta.id,
                    start: meta.start,
                    end: meta.end,
                    report,
                    error,
                }
            })
            .collect()
    }

    /// Quarantine the live run `id` and every later run (the covered
    /// prefix must stay contiguous): commit a reduced manifest first, then
    /// move the evicted directories into [`QUARANTINE_DIR`] with a
    /// `.reason` file recording `reason`. Returns the new covered end.
    /// Pinned snapshots keep answering from the moved runs — their open
    /// file handles survive the rename — but new snapshots see only the
    /// reduced, verified prefix.
    pub fn quarantine_from(&self, id: u64, reason: &str) -> Result<u64> {
        self.check_poisoned()?;
        let _order = self.shared.commit_order.lock();
        // Hold the ingest queue lock for the whole eviction: truncating the
        // covered prefix under the feet of in-flight claims would leave
        // pending runs stranded beyond a hole, so quarantine requires a
        // quiesced write path (and blocks new claims while it runs).
        let mut q = self.shared.ingest.lock();
        if q.in_flight > 0 || !q.done.is_empty() || q.claimed_end != q.durable_end {
            return Err(Error::invalid(
                "cannot quarantine while ingest batches are in flight; \
                 wait for writers to finish and retry",
            ));
        }
        let (bytes, evicted, new_end) = {
            let mut st = self.shared.state.lock();
            let Some(first) = st.runs.iter().position(|r| r.meta.id == id) else {
                return Err(Error::invalid(format!("run {id} is not live")));
            };
            let evicted = st.runs.split_off(first);
            let new_end = evicted[0].meta.start;
            st.covered_end = new_end;
            st.seq += 1;
            (encode_manifest(&self.shared, &st), evicted, new_end)
        };
        if let Err(e) = write_manifest(&self.shared, &bytes) {
            *self.shared.poisoned.lock() = Some(e.to_string());
            q.failed = true;
            self.shared.ingest.cv.notify_all();
            return Err(e);
        }
        q.claimed_end = new_end;
        q.durable_end = new_end;
        let metas: Vec<RunMeta> = evicted.iter().map(|r| r.meta.clone()).collect();
        quarantine_runs(&self.shared.dir, &metas, &Error::corrupt(reason))?;
        Ok(new_end)
    }

    /// Bytes of index not yet merged into the largest run — the work a full
    /// compaction would perform now. Zero when at most one run is live;
    /// grows as ingest outpaces the policy (observability: the server
    /// exports this as `coconut_compaction_debt_bytes`).
    pub fn compaction_debt(&self) -> u64 {
        let snap = self.snapshot();
        let total: u64 = snap.runs.iter().map(|r| r.disk_bytes()).sum();
        let largest = snap.runs.iter().map(|r| r.disk_bytes()).max().unwrap_or(0);
        total - largest
    }

    /// Per-leaf fill fractions (entries / leaf capacity) across every live
    /// run, in run order. The server's `coconut_leaf_fill` histogram is
    /// rebuilt from this at scrape time; the occupancy experiment reads the
    /// same numbers for its fill report.
    pub fn leaf_fill_fractions(&self) -> Vec<f64> {
        let cap = self.shared.config.leaf_capacity.max(1) as f64;
        self.snapshot()
            .runs
            .iter()
            .flat_map(|r| r.leaf_entry_counts())
            .map(|n| n as f64 / cap)
            .collect()
    }

    /// Leaves forced beyond the configured capacity because identical keys
    /// could not be split further, summed across live runs (observability:
    /// `coconut_oversized_leaves`). Always zero for the median-packed
    /// Coconut-Tree runs the LSM builds today; surfaced uniformly so the
    /// metric needs no per-layout special case.
    pub fn oversized_leaves(&self) -> u64 {
        self.snapshot()
            .runs
            .iter()
            .map(|r| r.oversized_leaf_count())
            .sum()
    }

    /// Exact k-nearest-neighbors merged across runs (per-run answer lists
    /// are merged by distance; per-run stats are aggregated).
    pub fn exact_knn(&self, query: &[Value], k: usize) -> Result<(Vec<Answer>, QueryStats)> {
        self.snapshot().exact_knn(query, k, Deadline::NONE)
    }

    /// Exact range query merged across runs: every series within Euclidean
    /// distance `epsilon`, sorted by distance.
    pub fn exact_range(&self, query: &[Value], epsilon: f64) -> Result<(Vec<Answer>, QueryStats)> {
        self.snapshot().exact_range(query, epsilon, Deadline::NONE)
    }
}

/// One writer of a multi-writer ingest ([`LsmCoconut::writer`]).
///
/// Each call to [`IngestWriter::ingest_next`] claims the next unclaimed
/// contiguous slice of the dataset tail, builds and fsyncs its run
/// concurrently with the other writers, and returns once the slice is
/// durably committed — usually by a group commit that folded several
/// writers' runs into one manifest fsync.
pub struct IngestWriter<'a> {
    lsm: &'a LsmCoconut,
}

impl IngestWriter<'_> {
    /// Claim and durably ingest the next uncovered batch of at most
    /// `max_batch` series from `dataset`'s tail. Returns the committed
    /// position range, or `None` when the tail is fully claimed (this
    /// writer's loop is done; other writers may still be committing).
    pub fn ingest_next(
        &self,
        dataset: &Dataset,
        max_batch: u64,
    ) -> Result<Option<std::ops::Range<u64>>> {
        self.ingest_next_upto(dataset, dataset.len(), max_batch)
    }

    /// Like [`IngestWriter::ingest_next`] but bounds the claim frontier at
    /// `upto` (exclusive) instead of the dataset's current end — for phased
    /// workloads that reveal the raw file one prefix at a time.
    pub fn ingest_next_upto(
        &self,
        dataset: &Dataset,
        upto: u64,
        max_batch: u64,
    ) -> Result<Option<std::ops::Range<u64>>> {
        self.lsm.check_poisoned()?;
        if upto > dataset.len() {
            return Err(Error::invalid("upto exceeds the dataset length"));
        }
        let Some(claim) = claim_range(&self.lsm.shared, dataset, upto, max_batch.max(1))? else {
            return Ok(None);
        };
        let range = claim.start..claim.end;
        build_and_commit(&self.lsm.shared, dataset, claim)?;
        self.lsm.send(Job::Maintain)?;
        Ok(Some(range))
    }
}

/// An immutable, pinned view of an [`LsmCoconut`]'s committed run set.
///
/// Acquired by [`LsmCoconut::snapshot`] under one brief lock; every query
/// on it is lock-free and sees exactly the runs (and covered prefix) that
/// were committed at pin time, no matter how much ingest and compaction
/// churn happens meanwhile. Holding a snapshot pins the run files it
/// references: a compaction that obsoletes them defers directory deletion
/// until the last pinning snapshot is dropped.
pub struct Snapshot {
    runs: Vec<Arc<CoconutTree>>,
    base: u64,
    covered_end: u64,
    seq: u64,
    shared: Arc<Shared>,
}

impl Snapshot {
    /// End (exclusive) of the raw-file position range this snapshot covers.
    /// An oracle checking answers must brute-force exactly this prefix
    /// (from [`Snapshot::base`], which is 0 for a whole-dataset index).
    pub fn covered_end(&self) -> u64 {
        self.covered_end
    }

    /// First raw-file position this snapshot covers (the shard slice start;
    /// 0 unless the index was created with [`LsmCoconut::new_based`]).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The manifest sequence number this snapshot was pinned at.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of pinned runs (the read amplification of queries on this
    /// snapshot).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total entries across the pinned runs.
    pub fn len(&self) -> u64 {
        self.runs.iter().map(|r| r.len()).sum()
    }

    /// True when no pinned run holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate 1-NN over the pinned runs (best leaf per run, merged).
    pub fn approximate(&self, query: &[Value]) -> Result<Answer> {
        let mut best = Answer::none();
        for run in &self.runs {
            best.merge(run.approximate(query)?);
        }
        Ok(best)
    }

    /// Exact 1-NN merged across the pinned runs, under a cooperative
    /// `deadline` (pass [`Deadline::NONE`] for no limit).
    pub fn exact(&self, query: &[Value], deadline: Deadline) -> Result<(Answer, QueryStats)> {
        let mut best = Answer::none();
        let mut stats = QueryStats::default();
        for run in &self.runs {
            let (a, s) = run.exact_search_deadline(query, deadline)?;
            best.merge(a);
            stats.add(&s);
        }
        Ok((best, stats))
    }

    /// [`Snapshot::exact`] with an external pruning `bound`: the scan of
    /// every run starts with a best-so-far no higher than `bound` (which
    /// also tightens run to run), so records that cannot beat the caller's
    /// existing candidate are skipped. When nothing here beats the bound
    /// the returned answer has `is_some() == false` — the caller's
    /// candidate stands. `f64::INFINITY` recovers [`Snapshot::exact`]'s
    /// answer exactly.
    pub fn exact_bounded(
        &self,
        query: &[Value],
        bound: f64,
        deadline: Deadline,
    ) -> Result<(Answer, QueryStats)> {
        let mut best = Answer {
            pos: u64::MAX,
            dist: bound,
        };
        let mut stats = QueryStats::default();
        for run in &self.runs {
            let (a, s) = run.exact_search_bounded_deadline(query, best.dist, deadline)?;
            best.merge(a);
            stats.add(&s);
        }
        Ok((best, stats))
    }

    /// Exact k-NN merged across the pinned runs, under a cooperative
    /// `deadline`.
    pub fn exact_knn(
        &self,
        query: &[Value],
        k: usize,
        deadline: Deadline,
    ) -> Result<(Vec<Answer>, QueryStats)> {
        let mut all = Vec::new();
        let mut stats = QueryStats::default();
        for run in &self.runs {
            let (answers, s) = run.exact_knn_deadline(query, k, deadline)?;
            all.extend(answers);
            stats.add(&s);
        }
        all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.pos.cmp(&b.pos)));
        all.truncate(k);
        Ok((all, stats))
    }

    /// [`Snapshot::exact_knn`] with an external pruning `bound`: only
    /// candidates with distance below `bound` can enter the result, and the
    /// bound tightens run to run as the merged set fills (runs cover
    /// ascending position ranges, so a later tie at the bound would sort
    /// after the existing entries under the `(dist, pos)` order anyway).
    /// `f64::INFINITY` recovers [`Snapshot::exact_knn`]'s answer exactly.
    pub fn exact_knn_bounded(
        &self,
        query: &[Value],
        k: usize,
        bound: f64,
        deadline: Deadline,
    ) -> Result<(Vec<Answer>, QueryStats)> {
        let mut all: Vec<Answer> = Vec::new();
        let mut stats = QueryStats::default();
        if k == 0 {
            return Ok((all, stats));
        }
        for run in &self.runs {
            let local = if all.len() == k {
                all[k - 1].dist.min(bound)
            } else {
                bound
            };
            let (answers, s) = run.exact_knn_bounded_deadline(query, k, local, deadline)?;
            all.extend(answers);
            stats.add(&s);
            all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.pos.cmp(&b.pos)));
            all.truncate(k);
        }
        Ok((all, stats))
    }

    /// Exact range query merged across the pinned runs, under a cooperative
    /// `deadline`: every series within Euclidean distance `epsilon`, sorted
    /// by distance.
    pub fn exact_range(
        &self,
        query: &[Value],
        epsilon: f64,
        deadline: Deadline,
    ) -> Result<(Vec<Answer>, QueryStats)> {
        let mut all = Vec::new();
        let mut stats = QueryStats::default();
        for run in &self.runs {
            let (answers, s) = run.exact_range_deadline(query, epsilon, deadline)?;
            all.extend(answers);
            stats.add(&s);
        }
        all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.pos.cmp(&b.pos)));
        Ok((all, stats))
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        // Release the pins first, then sweep: runs this snapshot was the
        // last reader of become deletable in the same sweep.
        self.runs.clear();
        sweep_gc(&self.shared);
    }
}

/// Delete the run directories on the GC list whose trees nothing else
/// references anymore; returns how many directories were removed. The GC
/// lock is dropped before any filesystem work.
fn sweep_gc(shared: &Shared) -> usize {
    let doomed: Vec<GcRun> = {
        let mut gc = shared.gc.lock();
        // The GC list itself holds one reference; any second one is a
        // pinned snapshot or an in-flight query.
        let (doomed, keep) = std::mem::take(&mut *gc)
            .into_iter()
            .partition(|r| Arc::strong_count(&r.tree) == 1);
        *gc = keep;
        doomed
    };
    let n = doomed.len();
    for run in doomed {
        drop(run.tree); // close the file before unlinking its directory
        let _ = std::fs::remove_dir_all(&run.dir);
    }
    n
}

impl Drop for LsmCoconut {
    fn drop(&mut self) {
        // Ask the scheduler to drain in-flight merges and exit, then join
        // so no compaction outlives the index (its builds write into our
        // directory). A plain channel close is not enough: the merge
        // workers hold sender clones, so the scheduler's `recv` would
        // never disconnect on its own.
        if let Some(jobs) = self.jobs.take() {
            let _ = jobs.send(Msg::Shutdown);
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Subdirectory of the LSM dir where corrupt runs are moved aside. Never
/// touched by recovery's orphan cleanup (which only matches `run-*`), so a
/// quarantined run stays available for offline inspection or repair.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Move the given runs' directories into `quarantine/`, leaving a
/// `<run>.reason` file naming the corruption that evicted them. The caller
/// commits a reduced manifest afterwards so recovery never deletes the
/// moved directories' former names.
fn quarantine_runs(dir: &Path, metas: &[RunMeta], cause: &Error) -> Result<()> {
    let qdir = dir.join(QUARANTINE_DIR);
    std::fs::create_dir_all(&qdir)?;
    for meta in metas {
        let name = meta.dir_name();
        let from = dir.join(&name);
        if from.exists() {
            std::fs::rename(&from, qdir.join(&name))?;
        }
        let _ = std::fs::write(qdir.join(format!("{name}.reason")), cause.to_string());
    }
    coconut_storage::atomic::sync_dir(&qdir)?;
    coconut_storage::atomic::sync_dir(dir)?;
    Ok(())
}

/// Compute the manifest-relative path of a run's index file.
fn relative_index_path(dir: &Path, index_path: &Path) -> Result<String> {
    let rel = index_path
        .strip_prefix(dir)
        .map_err(|_| Error::invalid("run index file escaped the LSM directory"))?;
    rel.to_str()
        .map(String::from)
        .ok_or_else(|| Error::invalid("run index path is not UTF-8"))
}

fn simulated_crash(what: &str) -> Error {
    Error::invalid(format!("simulated crash: killed {what}"))
}

/// Consult the instance fault plan first, then the process-global one.
fn lsm_fires(shared: &Shared, site: &str) -> Option<FaultAction> {
    let plan = shared.fault_plan.lock().clone();
    if let Some(plan) = plan {
        if let Some(action) = plan.fires(site) {
            return Some(action);
        }
    }
    fault::fires(site)
}

/// [`lsm_fires`] mapped to a hard injected error, like [`fault::check`].
fn lsm_check(shared: &Shared, site: &str) -> Result<()> {
    match lsm_fires(shared, site) {
        Some(_) => Err(fault::injected_error(site)),
        None => Ok(()),
    }
}

/// Serialize the state to manifest bytes. The caller must have bumped
/// `st.seq` already, under the state lock and while holding `commit_order`.
fn encode_manifest(shared: &Shared, st: &State) -> Vec<u8> {
    Manifest {
        seq: st.seq,
        config: shared.config,
        materialized: shared.opts.materialized,
        base: shared.base,
        covered_end: st.covered_end,
        next_run_id: st.next_run_id,
        runs: st.runs.iter().map(|r| r.meta.clone()).collect(),
        compaction: *shared.compaction_kind.lock(),
    }
    .encode()
}

/// The disk half of a commit: write the manifest atomically, honoring an
/// armed kill point. Called while holding `commit_order` but **not** the
/// state lock, so queries never wait on the fsyncs. Obsolete run
/// directories are *not* deleted here — the committer hands them to the GC
/// list, where pinned snapshots keep them alive until released.
fn write_manifest(shared: &Shared, bytes: &[u8]) -> Result<()> {
    let path = Manifest::path_in(&shared.dir);
    // An explicitly armed kill point wins; otherwise an installed fault
    // plan can schedule the same three crash instants deterministically
    // (`repro chaos` drives whole fault schedules through these sites).
    let kill = shared.kill.lock().take().or_else(|| {
        if lsm_fires(shared, "manifest.before").is_some() {
            Some(KillPoint::BeforeManifestWrite)
        } else if lsm_fires(shared, "manifest.torn").is_some() {
            Some(KillPoint::MidManifestWrite)
        } else if lsm_fires(shared, "manifest.after").is_some() {
            Some(KillPoint::AfterManifestCommit)
        } else {
            None
        }
    });
    match kill {
        Some(KillPoint::BeforeManifestWrite) => {
            return Err(simulated_crash("before the manifest write"))
        }
        Some(KillPoint::MidManifestWrite) => {
            atomic_write_torn(&path, bytes, bytes.len() / 2)?;
            return Err(simulated_crash("mid manifest write"));
        }
        Some(KillPoint::AfterManifestCommit) => {
            atomic_write(&path, bytes)?;
            return Err(simulated_crash("after the manifest commit"));
        }
        None => atomic_write(&path, bytes)?,
    }
    Ok(())
}

/// A typed "instance is poisoned" error (same shape as
/// [`LsmCoconut::check_poisoned`] produces) for the ingest path.
fn poisoned_error(shared: &Shared) -> Error {
    let msg = shared
        .poisoned
        .lock()
        .clone()
        .unwrap_or_else(|| "a concurrent ingest writer failed".into());
    Error::invalid(format!(
        "LSM instance poisoned by a failed commit (reopen the index \
         from disk to recover): {msg}"
    ))
}

/// Reserve the next unclaimed contiguous slice of `base..upto`, at most
/// `max_batch` long, and allocate its run id. Assigning the covered range
/// here — not at commit time — is what keeps concurrently built runs
/// gap-free: whatever order the builds finish, the chain reassembles.
fn claim_range(
    shared: &Shared,
    dataset: &Dataset,
    upto: u64,
    max_batch: u64,
) -> Result<Option<Claim>> {
    let mut q = shared.ingest.lock();
    if q.failed {
        return Err(poisoned_error(shared));
    }
    if upto < q.durable_end {
        return Err(Error::invalid("dataset shrank below the covered range"));
    }
    // Refresh the dataset handle compactions build against.
    shared.state.lock().dataset = Some(dataset.clone());
    if q.claimed_end >= upto {
        return Ok(None);
    }
    let start = q.claimed_end;
    let end = upto.min(start.saturating_add(max_batch));
    let run_id = {
        let mut st = shared.state.lock();
        let id = st.next_run_id;
        st.next_run_id += 1;
        id
    };
    q.claimed_end = end;
    q.in_flight += 1;
    Ok(Some(Claim { start, end, run_id }))
}

/// Build and fsync the run for a claim — the expensive half of ingest,
/// executed without any lock so writers, compactions, and queries overlap.
fn build_run(shared: &Shared, dataset: &Dataset, claim: &Claim) -> Result<PendingRun> {
    let run_dir = shared.dir.join(run_dir_name(claim.run_id));
    lsm_check(shared, "run.create")?;
    std::fs::create_dir_all(&run_dir)?;
    let tree = CoconutTree::build_range(
        dataset,
        claim.start..claim.end,
        &shared.config,
        &run_dir,
        shared.opts.clone(),
    )?;
    // The index file is fsynced by the build; fsync the run directory
    // too, or a power loss after the manifest commit could lose the
    // file's directory entry and leave the manifest pointing nowhere.
    coconut_storage::atomic::sync_dir(&run_dir)?;
    let file = relative_index_path(&shared.dir, tree.index_path())?;
    Ok(PendingRun {
        meta: RunMeta {
            id: claim.run_id,
            start: claim.start,
            end: claim.end,
            file,
        },
        tree,
    })
}

/// Drive a claim through build → submit → durable group commit.
fn build_and_commit(shared: &Shared, dataset: &Dataset, claim: Claim) -> Result<()> {
    match build_run(shared, dataset, &claim) {
        Ok(pending) => submit_and_wait(shared, pending),
        Err(e) => {
            abort_claim(shared, &claim, &e);
            Err(e)
        }
    }
}

/// A claim's build failed before anything reached the manifest. If the
/// claim is still the frontier, hand the range back so a retry can
/// re-claim it; if later claims already extend past it, the coverage hole
/// can never be filled — poison the instance like a failed commit.
fn abort_claim(shared: &Shared, claim: &Claim, cause: &Error) {
    let mut q = shared.ingest.lock();
    q.in_flight -= 1;
    if q.claimed_end == claim.end {
        q.claimed_end = claim.start;
    } else if !q.failed {
        q.failed = true;
        *shared.poisoned.lock() = Some(format!(
            "ingest writer failed leaving an uncovered hole at {}..{}: {cause}",
            claim.start, claim.end
        ));
    }
    shared.ingest.cv.notify_all();
}

/// Park a completed run in the commit queue and block until it is durably
/// committed. Whichever writer finds the chain head (the run starting at
/// the durable watermark) becomes the group committer and folds the whole
/// contiguous chain into **one** manifest commit; everyone else sleeps on
/// the condvar. A writer is only ever acknowledged (returns `Ok`) after
/// the manifest referencing its run is on disk.
fn submit_and_wait(shared: &Shared, pending: PendingRun) -> Result<()> {
    let my_end = pending.meta.end;
    {
        let mut q = shared.ingest.lock();
        if q.failed {
            // The group can no longer commit; this run directory becomes
            // an orphan for recovery to delete.
            q.in_flight -= 1;
            return Err(poisoned_error(shared));
        }
        q.done.insert(pending.meta.start, pending);
        q.in_flight -= 1;
        shared.ingest.cv.notify_all();
    }
    loop {
        // Try to become the group committer. `commit_order` is acquired
        // before the queue lock (lock order: commit_order → ingest →
        // state) and held across {drain chain, mutate state, manifest
        // I/O}, so commits hit disk serialized in mutation order.
        {
            let _order = shared.commit_order.lock();
            let chain: Vec<PendingRun> = {
                let mut q = shared.ingest.lock();
                if q.failed {
                    return Err(poisoned_error(shared));
                }
                if q.durable_end >= my_end {
                    return Ok(());
                }
                let mut chain = Vec::new();
                let mut next = q.durable_end;
                while let Some(run) = q.done.remove(&next) {
                    next = run.meta.end;
                    chain.push(run);
                }
                chain
            };
            if !chain.is_empty() {
                match commit_group(shared, chain) {
                    Ok(new_end) => {
                        let mut q = shared.ingest.lock();
                        q.durable_end = new_end;
                        shared.ingest.cv.notify_all();
                        if new_end >= my_end {
                            return Ok(());
                        }
                    }
                    Err(e) => {
                        // In-memory state is ahead of the durable manifest
                        // — the situation a crash leaves behind. Poison so
                        // every waiter and subsequent call fails until the
                        // index is reopened from disk.
                        *shared.poisoned.lock() = Some(e.to_string());
                        let mut q = shared.ingest.lock();
                        q.failed = true;
                        shared.ingest.cv.notify_all();
                        return Err(e);
                    }
                }
            }
        }
        // Not durable yet and nothing to commit (a gap below us is still
        // building): sleep until the watermark passes us, a committable
        // chain head appears (then race for the committer role), or the
        // group fails.
        let mut q = shared.ingest.lock();
        while !q.failed && q.durable_end < my_end && !q.done.contains_key(&q.durable_end) {
            q = shared.ingest.cv.wait(q).unwrap_or_else(|e| e.into_inner());
        }
        if q.failed {
            return Err(poisoned_error(shared));
        }
        if q.durable_end >= my_end {
            return Ok(());
        }
    }
}

/// Fold a contiguous chain of completed runs into one atomic manifest
/// commit (one fsync for the whole group). The caller holds
/// `commit_order`; on error the in-memory state is ahead of disk and the
/// caller must poison the instance.
fn commit_group(shared: &Shared, chain: Vec<PendingRun>) -> Result<u64> {
    let entries: u64 = chain.iter().map(|r| r.meta.entries()).sum();
    let folded = chain.len() as u64;
    let (bytes, new_end) = {
        let mut st = shared.state.lock();
        let mut new_end = st.covered_end;
        for run in chain {
            debug_assert_eq!(
                run.meta.start, new_end,
                "group chains are contiguous from the covered prefix"
            );
            new_end = run.meta.end;
            st.runs.push(Run {
                meta: run.meta,
                tree: Arc::new(run.tree),
            });
        }
        st.covered_end = new_end;
        st.seq += 1;
        (encode_manifest(shared, &st), new_end)
    };
    write_manifest(shared, &bytes)?;
    shared.stats.ingested.fetch_add(entries, Ordering::Relaxed);
    shared.stats.ingest_commits.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .runs_committed
        .fetch_add(folded, Ordering::Relaxed);
    Ok(new_end)
}

/// Block until the durable covered prefix reaches `upto` (a concurrent
/// writer holds the claim) or ingest fails.
fn wait_durable(shared: &Shared, upto: u64) -> Result<()> {
    let mut q = shared.ingest.lock();
    while !q.failed && q.durable_end < upto {
        q = shared.ingest.cv.wait(q).unwrap_or_else(|e| e.into_inner());
    }
    if q.failed {
        return Err(poisoned_error(shared));
    }
    Ok(())
}

/// How many parallel merge workers the pool runs: derived from the build
/// thread budget, at least 2 so disjoint windows actually overlap, capped
/// small — merges are I/O-heavy and share the machine with ingest and
/// queries.
fn merge_worker_count(shared: &Shared) -> usize {
    shared.opts.threads.clamp(2, 4)
}

/// The compaction scheduler: receives caller jobs and merge completions,
/// plans non-overlapping windows, and dispatches them to the worker pool.
/// Manifest commits happen inside [`compact_ids`] on the workers,
/// serialized by `commit_order`; the scheduler itself never blocks on an
/// fsync. The first merge error is sticky (poisons the instance), after
/// which only syncs are acknowledged so waiters can observe it.
fn scheduler_loop(shared: Arc<Shared>, rx: Receiver<Msg>, tx: Sender<Msg>) {
    let (task_tx, task_rx) = std::sync::mpsc::channel::<MergeTask>();
    let task_rx = Arc::new(StdMutex::new(task_rx));
    let mut pool = Vec::new();
    for i in 0..merge_worker_count(&shared) {
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        let task_rx = Arc::clone(&task_rx);
        let handle = std::thread::Builder::new()
            .name(format!("coconut-lsm-merge-{i}"))
            .spawn(move || merge_worker_loop(shared, task_rx, tx));
        if let Ok(h) = handle {
            pool.push(h);
        }
    }
    // The scheduler's own clone of the message sender was only needed to
    // seed the workers; the workers and `LsmCoconut` hold the live ones.
    drop(tx);

    let mut busy: HashSet<u64> = HashSet::new();
    let mut in_flight = 0usize;
    let mut compact_all = false;
    let mut syncs: Vec<Sender<()>> = Vec::new();
    let mut shutting_down = false;

    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Job(Job::Maintain) => {}
            Msg::Job(Job::CompactAll) => compact_all = true,
            Msg::Job(Job::Sync(ack)) => syncs.push(ack),
            Msg::Done { ids, result } => {
                for id in &ids {
                    busy.remove(id);
                }
                in_flight -= 1;
                if let Err(e) = result {
                    *shared.poisoned.lock() = Some(e.to_string());
                }
            }
            Msg::Shutdown => shutting_down = true,
        }
        if !shutting_down && shared.poisoned.lock().is_none() {
            // CompactAll needs the whole run set as its window: wait for
            // in-flight merges to drain, then run it inline.
            if compact_all && in_flight == 0 {
                compact_all = false;
                if let Err(e) = compact_everything(&shared) {
                    *shared.poisoned.lock() = Some(e.to_string());
                }
            }
            if shared.poisoned.lock().is_none() {
                dispatch_merges(&shared, &mut busy, &mut in_flight, &task_tx);
            }
        }
        let poisoned = shared.poisoned.lock().is_some();
        if in_flight == 0 && (poisoned || !compact_all) {
            // Idle (or failed): every queued job has finished; ack waiters.
            for ack in syncs.drain(..) {
                let _ = ack.send(());
            }
        }
        if shutting_down && in_flight == 0 {
            break;
        }
    }
    // Retire the pool: closing the task channel ends the workers.
    drop(task_tx);
    for h in pool {
        let _ = h.join();
    }
}

/// One merge worker: take a planned window, execute it, report back.
fn merge_worker_loop(
    shared: Arc<Shared>,
    tasks: Arc<StdMutex<Receiver<MergeTask>>>,
    tx: Sender<Msg>,
) {
    loop {
        // Hold the receiver lock only while waiting for the next task;
        // the merge itself runs outside it, so workers overlap.
        let task = {
            let rx = tasks.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(task) = task else { break };
        let result = compact_ids(&shared, &task.ids);
        if tx
            .send(Msg::Done {
                ids: task.ids,
                result,
            })
            .is_err()
        {
            break;
        }
    }
}

/// Plan merge windows over maximal contiguous segments of runs not
/// currently being merged and dispatch them to the pool; repeats until a
/// full pass proposes nothing, so several disjoint windows run
/// concurrently. Because planning always re-runs over the *whole* run
/// list once merges drain, global invariants like `TieredPolicy`'s
/// `max_runs` cap are re-checked after a group commit lands several runs
/// in one manifest commit.
fn dispatch_merges(
    shared: &Arc<Shared>,
    busy: &mut HashSet<u64>,
    in_flight: &mut usize,
    task_tx: &Sender<MergeTask>,
) {
    loop {
        let window: Option<Vec<u64>> = {
            let st = shared.state.lock();
            let policy = shared.policy.lock();
            plan_one_window(&st.runs, busy, policy.as_ref())
        };
        let Some(ids) = window else { return };
        busy.extend(ids.iter().copied());
        *in_flight += 1;
        if task_tx.send(MergeTask { ids: ids.clone() }).is_err() {
            // Pool is gone (shutdown); undo the bookkeeping.
            for id in &ids {
                busy.remove(id);
            }
            *in_flight -= 1;
            return;
        }
    }
}

/// Find the first window the policy proposes in any maximal contiguous
/// segment of non-busy runs; returns the window's run ids. Windows never
/// include a busy run, so concurrent merge jobs cannot overlap.
fn plan_one_window(
    runs: &[Run],
    busy: &HashSet<u64>,
    policy: &dyn CompactionPolicy,
) -> Option<Vec<u64>> {
    let mut seg_start = 0;
    for i in 0..=runs.len() {
        if i < runs.len() && !busy.contains(&runs[i].meta.id) {
            continue;
        }
        let segment = &runs[seg_start..i];
        seg_start = i + 1;
        if segment.len() < 2 {
            continue;
        }
        let entries: Vec<u64> = segment.iter().map(|r| r.meta.entries()).collect();
        if let Some(w) = policy.plan(&entries) {
            if w.len() >= 2 && w.end <= segment.len() {
                return Some(segment[w].iter().map(|r| r.meta.id).collect());
            }
        }
    }
    None
}

/// Merge every live run into a single run (the `CompactAll` job). Runs
/// inline on the scheduler with the pool drained, so the window is the
/// entire committed run set.
fn compact_everything(shared: &Arc<Shared>) -> Result<()> {
    let ids: Vec<u64> = shared.state.lock().runs.iter().map(|r| r.meta.id).collect();
    compact_ids(shared, &ids)
}

/// Merge the adjacent runs with the given ids into one new run: K-way merge
/// of their sorted leaf streams, bulk-loaded into a fresh `run-<id>/`,
/// swapped into the run set under the lock, committed to the manifest, and
/// only then are the old run directories deleted.
fn compact_ids(shared: &Arc<Shared>, ids: &[u64]) -> Result<()> {
    if ids.len() < 2 {
        return Ok(());
    }
    let (trees, start, end, new_id, dataset) = {
        let mut st = shared.state.lock();
        // The window may have been invalidated by the time the job runs
        // (merge jobs are planned over disjoint windows, but a CompactAll
        // or quarantine may have rewritten the set); skip silently if so.
        let Some(first) = st.runs.iter().position(|r| r.meta.id == ids[0]) else {
            return Ok(());
        };
        if first + ids.len() > st.runs.len()
            || !ids
                .iter()
                .enumerate()
                .all(|(i, id)| st.runs[first + i].meta.id == *id)
        {
            return Ok(());
        }
        let window = &st.runs[first..first + ids.len()];
        let start = window[0].meta.start;
        let end = window[ids.len() - 1].meta.end;
        let trees: Vec<Arc<CoconutTree>> = window.iter().map(|r| Arc::clone(&r.tree)).collect();
        let dataset = st
            .dataset
            .clone()
            .ok_or_else(|| Error::invalid("no dataset attached to the LSM index"))?;
        let id = st.next_run_id;
        st.next_run_id += 1;
        (trees, start, end, id, dataset)
    };

    // The expensive part runs without the lock: ingest and queries proceed.
    let run_dir = shared.dir.join(run_dir_name(new_id));
    lsm_check(shared, "run.create")?;
    std::fs::create_dir_all(&run_dir)?;
    let merged_tree = if shared.opts.materialized {
        merge_runs::<KeySeries>(shared, &trees, start..end, &dataset, &run_dir)?
    } else {
        merge_runs::<KeyPos>(shared, &trees, start..end, &dataset, &run_dir)?
    };
    // As in ingest: make the new run's directory entry durable before the
    // manifest can reference it.
    coconut_storage::atomic::sync_dir(&run_dir)?;
    let file = relative_index_path(&shared.dir, merged_tree.index_path())?;

    let _order = shared.commit_order.lock();
    let mut st = shared.state.lock();
    // Concurrent merge jobs never overlap this window, so it must still
    // be present; a typed error (not a panic) keeps a would-be violation
    // observable through the poisoned state.
    let first = st
        .runs
        .iter()
        .position(|r| r.meta.id == ids[0])
        .ok_or_else(|| {
            Error::corrupt(format!(
                "compaction window lost run {} between planning and commit",
                ids[0]
            ))
        })?;
    let replacement = Run {
        meta: RunMeta {
            id: new_id,
            start,
            end,
            file,
        },
        tree: Arc::new(merged_tree),
    };
    // `splice` removes the old runs from the live set; their trees stay
    // open (we still hold `trees`) so pinned snapshots keep reading them.
    drop(
        st.runs
            .splice(first..first + ids.len(), std::iter::once(replacement)),
    );
    st.seq += 1;
    let bytes = encode_manifest(shared, &st);
    drop(st); // queries proceed while the commit hits disk
    write_manifest(shared, &bytes)?;
    // Every entry in the window was rewritten into the merged run: that
    // is exactly the write-amplification cost of this compaction.
    shared
        .stats
        .rewritten
        .fetch_add(end - start, Ordering::Relaxed);
    // The commit is durable: retire the old runs to the GC list (snapshots
    // pinned before the swap keep their directories alive) and sweep
    // whatever is already unpinned. On commit *failure* nothing is queued —
    // recovery deletes the unreferenced directories, same as a crash.
    {
        let mut gc = shared.gc.lock();
        for (tree, id) in trees.into_iter().zip(ids.iter()) {
            gc.push(GcRun {
                tree,
                dir: shared.dir.join(run_dir_name(*id)),
            });
        }
    }
    sweep_gc(shared);
    Ok(())
}

/// K-way merge `trees`' sorted leaf streams and bulk-load the result as one
/// new run in `run_dir`. `R` selects the record flavor and must match
/// `shared.opts.materialized`.
fn merge_runs<R: crate::records::SortedRecord>(
    shared: &Shared,
    trees: &[Arc<CoconutTree>],
    range: std::ops::Range<u64>,
    dataset: &Dataset,
    run_dir: &Path,
) -> Result<CoconutTree> {
    let streams: Vec<LeafEntryStream<'_, R>> = trees.iter().map(|t| t.leaf_entries()).collect();
    let mut merged = MergedStream::new(streams)?;
    CoconutTree::build_range_from_stream(
        dataset,
        range,
        &shared.config,
        run_dir,
        shared.opts.clone(),
        &mut merged,
    )
}

impl SeriesIndex for LsmCoconut {
    fn name(&self) -> String {
        "CTree-LSM".into()
    }

    fn approximate(&self, query: &[Value]) -> Result<Answer> {
        self.snapshot().approximate(query)
    }

    fn exact(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.snapshot().exact(query, Deadline::NONE)
    }

    fn disk_bytes(&self) -> u64 {
        self.snapshot().runs.iter().map(|r| r.disk_bytes()).sum()
    }

    fn leaf_count(&self) -> u64 {
        self.snapshot().runs.iter().map(|r| r.leaf_count()).sum()
    }

    fn avg_leaf_fill(&self) -> f64 {
        let snap = self.snapshot();
        let leaves: u64 = snap.runs.iter().map(|r| r.leaf_count()).sum();
        if leaves == 0 {
            return 0.0;
        }
        snap.runs
            .iter()
            .map(|r| r.avg_leaf_fill() * r.leaf_count() as f64)
            .sum::<f64>()
            / leaves as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::dataset::DatasetWriter;
    use coconut_series::distance::{euclidean, znormalize};
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_storage::{IoStats, TempDir};

    const LEN: usize = 64;

    fn small_config() -> IndexConfig {
        let mut c = IndexConfig::default_for_len(LEN);
        c.leaf_capacity = 32;
        c
    }

    /// Append `n` series to the dataset file at `path` (creating it if
    /// needed) and reopen it.
    fn grow_dataset(
        path: &std::path::Path,
        stats: &Arc<IoStats>,
        gen: &mut RandomWalkGen,
        existing: &[Vec<Value>],
        n: usize,
    ) -> (Dataset, Vec<Vec<Value>>) {
        let mut all = existing.to_vec();
        for _ in 0..n {
            let mut s = gen.generate(LEN);
            znormalize(&mut s);
            all.push(s);
        }
        let mut w = DatasetWriter::create(path, LEN, true, Arc::clone(stats)).unwrap();
        for s in &all {
            w.append(s).unwrap();
        }
        w.finish().unwrap();
        (Dataset::open(path, Arc::clone(stats)).unwrap(), all)
    }

    fn brute_force(all: &[Vec<Value>], q: &[Value]) -> Answer {
        let mut best = Answer::none();
        for (i, s) in all.iter().enumerate() {
            best.merge(Answer {
                pos: i as u64,
                dist: euclidean(q, s),
            });
        }
        best
    }

    fn query(seed: u64) -> Vec<Value> {
        let mut q = RandomWalkGen::new(seed).generate(LEN);
        znormalize(&mut q);
        q
    }

    #[test]
    fn ingest_batches_and_query_exactly() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(31);
        let lsm = LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
        lsm.set_max_runs(3);

        let mut all = Vec::new();
        for round in 0..6 {
            let (ds, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 150);
            all = new_all;
            lsm.ingest(&ds).unwrap();
            assert_eq!(lsm.len(), all.len() as u64, "round {round}");
            let (ans, stats_q) = lsm.exact(&query(100 + round)).unwrap();
            let expect = brute_force(&all, &query(100 + round));
            assert_eq!(ans.pos, expect.pos, "round {round}");
            assert!(stats_q.lower_bounds >= all.len() as u64, "round {round}");
        }
        lsm.wait_for_compactions().unwrap();
        assert!(
            lsm.run_count() <= 3,
            "{} runs after settling",
            lsm.run_count()
        );
        // Queries stay exact after compaction settles too.
        let q = query(999);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
    }

    #[test]
    fn approximate_over_runs_is_upper_bound_of_exact() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(77);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &[], 300);
        lsm.ingest(&ds).unwrap();
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &all, 100);
        lsm.ingest(&ds).unwrap();
        assert_eq!(all.len(), 400);
        let q = query(5);
        let approx = lsm.approximate(&q).unwrap();
        let (exact, _) = lsm.exact(&q).unwrap();
        assert!(exact.dist <= approx.dist + 1e-9);
    }

    #[test]
    fn empty_and_noop_ingest() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(1);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        assert!(lsm.is_empty());
        let (ds, _) = grow_dataset(&path, &stats, &mut gen, &[], 50);
        lsm.ingest(&ds).unwrap();
        let runs = lsm.run_count();
        lsm.ingest(&ds).unwrap(); // nothing new
        assert_eq!(lsm.run_count(), runs);
        assert_eq!(lsm.len(), 50);
        assert_eq!(lsm.covered_end(), 50);
    }

    #[test]
    fn compaction_reduces_runs_and_removes_directories() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(13);
        let lsm = LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
        lsm.set_max_runs(2);
        let mut all = Vec::new();
        for _ in 0..5 {
            let (ds, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 60);
            all = new_all;
            lsm.ingest(&ds).unwrap();
        }
        lsm.wait_for_compactions().unwrap();
        assert!(lsm.run_count() <= 2, "{} runs", lsm.run_count());
        // Only the live runs' directories remain on disk.
        let run_dirs = std::fs::read_dir(&idx_dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("run-")
            })
            .count();
        assert_eq!(run_dirs, lsm.run_count());
        // Answers survive the merges.
        let q = query(44);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
    }

    #[test]
    fn full_compaction_is_bit_identical_to_direct_bulk_load() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(5);
        for materialized in [false, true] {
            let opts = BuildOptions {
                materialized,
                ..BuildOptions::default()
            };
            let idx_dir = dir.path().join(format!("idx-{materialized}"));
            let lsm = LsmCoconut::new(small_config(), opts.clone(), &idx_dir).unwrap();
            let mut all = Vec::new();
            let mut ds = None;
            for _ in 0..4 {
                let (d, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 110);
                all = new_all;
                lsm.ingest(&d).unwrap();
                ds = Some(d);
            }
            lsm.compact().unwrap();
            assert_eq!(lsm.run_count(), 1);
            // The single surviving run's file equals a from-scratch build.
            let run_file = {
                let st = lsm.shared.state.lock();
                lsm.shared.dir.join(&st.runs[0].meta.file)
            };
            let lsm_bytes = std::fs::read(run_file).unwrap();
            let ref_dir = dir.path().join(format!("ref-{materialized}"));
            std::fs::create_dir_all(&ref_dir).unwrap();
            let reference =
                CoconutTree::build(ds.as_ref().unwrap(), &small_config(), &ref_dir, opts).unwrap();
            let ref_bytes = std::fs::read(reference.index_path()).unwrap();
            assert_eq!(lsm_bytes, ref_bytes, "materialized={materialized}");
        }
    }

    #[test]
    fn knn_and_range_merge_across_runs() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(21);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        let mut all = Vec::new();
        for _ in 0..3 {
            let (ds, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 120);
            all = new_all;
            lsm.ingest(&ds).unwrap();
        }
        let q = query(7);
        // kNN: matches the brute-force top-k.
        let mut dists: Vec<(u64, f64)> = all
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, euclidean(&q, s)))
            .collect();
        dists.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let (top, stats_q) = lsm.exact_knn(&q, 5).unwrap();
        assert_eq!(top.len(), 5);
        for (got, want) in top.iter().zip(dists.iter()) {
            assert_eq!(got.pos, want.0);
        }
        assert!(stats_q.lower_bounds >= all.len() as u64);
        // Range: every series within the 8th-nearest distance.
        let eps = dists[7].1;
        let (hits, _) = lsm.exact_range(&q, eps).unwrap();
        let expected: Vec<u64> = dists
            .iter()
            .take_while(|&&(_, d)| d <= eps)
            .map(|&(p, _)| p)
            .collect();
        let mut got: Vec<u64> = hits.iter().map(|a| a.pos).collect();
        got.sort_unstable();
        let mut want = expected;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn new_refuses_stale_directories_and_open_recovers() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(3);
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &[], 200);
        {
            let lsm = LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
            lsm.ingest(&ds).unwrap();
            lsm.wait_for_compactions().unwrap();
        }
        // The satellite fix: a fresh `new` over a stale index errors...
        let err = match LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir) {
            Ok(_) => panic!("new over a stale index must fail"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("LsmCoconut::open"), "{err}");
        // ...while `open` recovers it with answers intact.
        let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
        assert_eq!(lsm.len(), 200);
        let q = query(17);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
    }

    #[test]
    fn kill_points_crash_then_open_recovers_consistently() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(9);
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &[], 240);

        for (i, kill) in [
            KillPoint::BeforeManifestWrite,
            KillPoint::MidManifestWrite,
            KillPoint::AfterManifestCommit,
        ]
        .into_iter()
        .enumerate()
        {
            let idx_dir = dir.path().join(format!("idx-{i}"));
            let committed_end;
            {
                let lsm =
                    LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
                lsm.ingest_upto(&ds, 120).unwrap();
                lsm.wait_for_compactions().unwrap();
                committed_end = lsm.covered_end();
                // Crash while committing the second run.
                lsm.set_kill_point(Some(kill));
                let err = lsm.ingest_upto(&ds, 240).unwrap_err();
                assert!(err.to_string().contains("simulated crash"), "{err}");
                // The instance is poisoned from here on — like a dead
                // process, everything else must go through recovery. In
                // particular the "failed" batch can never be silently
                // committed by a later call.
                let err = lsm.ingest_upto(&ds, 240).unwrap_err();
                assert!(err.to_string().contains("poisoned"), "{err}");
                assert!(lsm.compact().unwrap_err().to_string().contains("poisoned"));
            }
            let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
            match kill {
                // The commit never (or only torn) reached disk: the second
                // run is lost, recovery restores the first commit exactly.
                KillPoint::BeforeManifestWrite | KillPoint::MidManifestWrite => {
                    assert_eq!(lsm.covered_end(), committed_end, "{kill:?}");
                }
                // The commit is durable; only cleanup was skipped.
                KillPoint::AfterManifestCommit => {
                    assert_eq!(lsm.covered_end(), 240, "{kill:?}");
                }
            }
            // No orphan run directories survive recovery, and no manifest
            // temp file either.
            let on_disk: Vec<String> = std::fs::read_dir(&idx_dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .filter(|n| n.starts_with("run-"))
                .collect();
            assert_eq!(on_disk.len(), lsm.run_count(), "{kill:?}: {on_disk:?}");
            assert!(!temp_path(&Manifest::path_in(&idx_dir)).exists());
            // Queries over the recovered prefix match the oracle.
            let covered = lsm.covered_end() as usize;
            let q = query(60 + i as u64);
            let (ans, _) = lsm.exact(&q).unwrap();
            assert_eq!(ans.pos, brute_force(&all[..covered], &q).pos, "{kill:?}");
        }
    }

    #[test]
    fn snapshot_pins_run_set_and_covered_prefix_across_churn() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(51);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        let (ds, all_1) = grow_dataset(&path, &stats, &mut gen, &[], 200);
        lsm.ingest(&ds).unwrap();

        let snap = lsm.snapshot();
        assert_eq!(snap.covered_end(), 200);
        let pinned_seq = snap.seq();

        // Churn after the pin: more ingest and a full compaction.
        let (ds, all_2) = grow_dataset(&path, &stats, &mut gen, &all_1, 200);
        lsm.ingest(&ds).unwrap();
        lsm.compact().unwrap();
        assert_eq!(lsm.covered_end(), 400);

        // The pinned snapshot still answers over exactly its 200-prefix.
        let q = query(23);
        let (ans, _) = snap.exact(&q, Deadline::NONE).unwrap();
        assert_eq!(ans.pos, brute_force(&all_1, &q).pos);
        assert_eq!(snap.covered_end(), 200);
        assert_eq!(snap.seq(), pinned_seq);

        // A fresh snapshot sees the full 400.
        let snap2 = lsm.snapshot();
        let (ans, _) = snap2.exact(&q, Deadline::NONE).unwrap();
        assert_eq!(ans.pos, brute_force(&all_2, &q).pos);
        assert!(snap2.seq() > pinned_seq);
    }

    #[test]
    fn gc_defers_run_deletion_until_snapshot_drops() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(61);
        let lsm = LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
        let mut all = Vec::new();
        for _ in 0..3 {
            let (ds, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 80);
            all = new_all;
            lsm.ingest(&ds).unwrap();
        }
        lsm.wait_for_compactions().unwrap();
        let run_dirs = |d: &std::path::Path| {
            std::fs::read_dir(d)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .starts_with("run-")
                })
                .count()
        };
        let before = run_dirs(&idx_dir);
        assert!(before >= 2, "need multiple runs to compact, got {before}");

        // Pin, then compact everything: the pinned runs' directories must
        // survive as long as the snapshot does.
        let snap = lsm.snapshot();
        let pinned_runs = snap.run_count();
        lsm.compact().unwrap();
        assert_eq!(lsm.run_count(), 1);
        assert_eq!(lsm.pinned_garbage(), pinned_runs);
        assert_eq!(run_dirs(&idx_dir), before + 1, "old dirs + the merged run");

        // The pinned snapshot still reads the retired runs.
        let q = query(31);
        let (ans, _) = snap.exact(&q, Deadline::NONE).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);

        // Dropping the snapshot sweeps them.
        drop(snap);
        assert_eq!(lsm.pinned_garbage(), 0);
        assert_eq!(run_dirs(&idx_dir), 1);
        assert_eq!(lsm.collect_garbage(), 0, "nothing left to sweep");
    }

    #[test]
    fn expired_deadline_fails_snapshot_queries_with_typed_error() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(71);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        let (ds, _) = grow_dataset(&path, &stats, &mut gen, &[], 150);
        lsm.ingest(&ds).unwrap();
        let snap = lsm.snapshot();
        let q = query(3);
        let expired = Deadline::at(std::time::Instant::now() - std::time::Duration::from_millis(1));
        assert!(snap.exact(&q, expired).unwrap_err().is_deadline());
        assert!(snap.exact_knn(&q, 3, expired).unwrap_err().is_deadline());
        assert!(snap
            .exact_range(&q, 1.0, expired)
            .unwrap_err()
            .is_deadline());
        // And an unexpired one leaves answers intact.
        let far = Deadline::after(std::time::Duration::from_secs(3600));
        let (a1, _) = snap.exact(&q, far).unwrap();
        let (a2, _) = snap.exact(&q, Deadline::NONE).unwrap();
        assert_eq!(a1.pos, a2.pos);
    }

    #[test]
    fn compaction_debt_shrinks_after_compaction() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(81);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        let mut all = Vec::new();
        for _ in 0..3 {
            let (ds, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 70);
            all = new_all;
            lsm.ingest(&ds).unwrap();
        }
        lsm.wait_for_compactions().unwrap();
        if lsm.run_count() > 1 {
            assert!(lsm.compaction_debt() > 0);
        }
        lsm.compact().unwrap();
        assert_eq!(lsm.run_count(), 1);
        assert_eq!(lsm.compaction_debt(), 0);
    }

    /// Ingest three batches without compaction so three runs stay live.
    fn three_run_index(dir: &TempDir, seed: u64) -> (std::path::PathBuf, Dataset, Vec<Vec<Value>>) {
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(seed);
        let lsm = LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
        lsm.set_max_runs(100); // no compaction: keep all three runs
        let mut all = Vec::new();
        let mut ds = None;
        for _ in 0..3 {
            let (d, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 80);
            all = new_all;
            lsm.ingest(&d).unwrap();
            ds = Some(d);
        }
        lsm.wait_for_compactions().unwrap();
        assert_eq!(lsm.run_count(), 3);
        (idx_dir, ds.unwrap(), all)
    }

    #[test]
    fn corrupt_run_is_quarantined_on_open_and_prefix_serves() {
        let dir = TempDir::new("lsm").unwrap();
        let (idx_dir, ds, all) = three_run_index(&dir, 101);
        // Corrupt the middle run's index file header region.
        let manifest = Manifest::load(&idx_dir).unwrap();
        assert_eq!(manifest.runs.len(), 3);
        let victim = &manifest.runs[1];
        let victim_start = victim.start;
        let victim_file = idx_dir.join(&victim.file);
        let bytes = std::fs::read(&victim_file).unwrap();
        let mut broken = bytes.clone();
        broken[8] ^= 0xFF; // header payload byte -> header CRC mismatch
        std::fs::write(&victim_file, &broken).unwrap();

        let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
        // Runs 1 and 2 are gone; the index serves the reduced prefix.
        assert_eq!(lsm.run_count(), 1);
        assert_eq!(lsm.covered_end(), victim_start);
        let q = query(55);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all[..victim_start as usize], &q).pos);
        // The evicted runs sit in quarantine/ with reason files.
        let qdir = idx_dir.join(QUARANTINE_DIR);
        let mut names: Vec<String> = std::fs::read_dir(&qdir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names.len(), 4, "2 run dirs + 2 reason files: {names:?}");
        assert!(names.iter().any(|n| n.ends_with(".reason")));
        // Reopen works without further quarantine (manifest was reduced).
        drop(lsm);
        let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
        assert_eq!(lsm.covered_end(), victim_start);
        // And ingest resumes from the reduced prefix.
        lsm.ingest(&ds).unwrap();
        assert_eq!(lsm.covered_end(), all.len() as u64);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
    }

    #[test]
    fn scrub_reports_bit_rot_and_quarantine_reduces_prefix() {
        let dir = TempDir::new("lsm").unwrap();
        let (idx_dir, ds, all) = three_run_index(&dir, 103);
        {
            let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
            let clean = lsm.scrub();
            assert_eq!(clean.len(), 3);
            assert!(clean.iter().all(|r| r.error.is_none()), "{clean:?}");
            assert!(clean.iter().all(|r| r.report.checked > 0), "{clean:?}");
            assert!(clean.iter().all(|r| r.report.unchecked == 0));
        }
        // Flip one byte inside the last run's leaf region (bit rot the
        // header/directory checks cannot see).
        let manifest = Manifest::load(&idx_dir).unwrap();
        let victim = manifest.runs[2].clone();
        let victim_file = idx_dir.join(&victim.file);
        let mut bytes = std::fs::read(&victim_file).unwrap();
        bytes[crate::layout::LEAF_REGION_OFFSET as usize + 7] ^= 0x20;
        std::fs::write(&victim_file, &bytes).unwrap();

        let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
        assert_eq!(lsm.run_count(), 3, "leaf rot is invisible to open");
        let outcomes = lsm.scrub();
        let bad: Vec<&RunScrub> = outcomes.iter().filter(|r| r.error.is_some()).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].id, victim.id);
        assert!(
            bad[0].error.as_deref().unwrap().contains("failed checksum"),
            "{:?}",
            bad[0].error
        );
        // Quarantine from the damaged run: the prefix keeps serving.
        let new_end = lsm
            .quarantine_from(victim.id, bad[0].error.as_deref().unwrap())
            .unwrap();
        assert_eq!(new_end, victim.start);
        assert_eq!(lsm.run_count(), 2);
        let q = query(77);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all[..new_end as usize], &q).pos);
        // Scrub is clean again.
        assert!(lsm.scrub().iter().all(|r| r.error.is_none()));
    }

    #[test]
    fn fault_plan_schedules_manifest_crashes_like_kill_points() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(11);
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &[], 160);
        for (i, site) in ["manifest.before", "manifest.torn", "manifest.after"]
            .into_iter()
            .enumerate()
        {
            let idx_dir = dir.path().join(format!("idx-{i}"));
            let committed_end;
            {
                let lsm =
                    LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
                lsm.ingest_upto(&ds, 80).unwrap();
                lsm.wait_for_compactions().unwrap();
                committed_end = lsm.covered_end();
                // The fault plan arms the same crash the kill point would
                // (instance-scoped, so parallel tests are unaffected).
                let plan = FaultPlan::parse(&format!("{site}=err@1"), 42).unwrap();
                lsm.set_fault_plan(Some(Arc::new(plan)));
                let err = lsm.ingest_upto(&ds, 160).unwrap_err();
                assert!(err.to_string().contains("simulated crash"), "{err}");
            }
            let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
            let expect = if site == "manifest.after" {
                160
            } else {
                committed_end
            };
            assert_eq!(lsm.covered_end(), expect, "{site}");
            let covered = lsm.covered_end() as usize;
            let q = query(200 + i as u64);
            let (ans, _) = lsm.exact(&q).unwrap();
            assert_eq!(ans.pos, brute_force(&all[..covered], &q).pos, "{site}");
        }
    }

    #[test]
    fn mid_compaction_crash_recovers_and_reingests() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(29);
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &[], 300);
        {
            let lsm = LsmCoconut::new(small_config(), BuildOptions::default(), &idx_dir).unwrap();
            for upto in [100, 200, 300] {
                lsm.ingest_upto(&ds, upto).unwrap();
            }
            lsm.wait_for_compactions().unwrap();
            // Crash inside the compaction's manifest commit.
            lsm.set_kill_point(Some(KillPoint::MidManifestWrite));
            let err = lsm.compact().unwrap_err();
            assert!(err.to_string().contains("simulated crash"), "{err}");
        }
        // Recovery: the pre-compaction run set answers exactly; the torn
        // temp and the half-built merged run are gone.
        let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
        assert_eq!(lsm.covered_end(), 300);
        let q = query(88);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
        let run_dirs = std::fs::read_dir(&idx_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("run-"))
            .count();
        assert_eq!(run_dirs, lsm.run_count());
        // And the recovered index keeps working: compact for real this time.
        lsm.compact().unwrap();
        assert_eq!(lsm.run_count(), 1);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
    }

    /// Claim and build `k` equal slices of `ds` concurrently-buildable
    /// runs, park every run *except* the chain head in the commit queue,
    /// then submit the head last — deterministically forcing one writer to
    /// become the group committer for the whole chain. Returns the built
    /// head run once all tails are parked.
    fn park_tail_runs(
        lsm: &LsmCoconut,
        ds: &Dataset,
        k: u64,
        slice: u64,
    ) -> (PendingRun, Vec<std::thread::JoinHandle<Result<()>>>) {
        let claims: Vec<Claim> = (0..k)
            .map(|i| {
                claim_range(&lsm.shared, ds, (i + 1) * slice, slice)
                    .unwrap()
                    .unwrap()
            })
            .collect();
        let mut head = None;
        let mut tails = Vec::new();
        for claim in claims {
            let run = build_run(&lsm.shared, ds, &claim).unwrap();
            if run.meta.start == 0 {
                head = Some(run);
                continue;
            }
            let shared = Arc::clone(&lsm.shared);
            tails.push(std::thread::spawn(move || submit_and_wait(&shared, run)));
        }
        // Wait until every tail run is parked awaiting the chain head.
        loop {
            if lsm.shared.ingest.lock().done.len() == (k - 1) as usize {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        (head.unwrap(), tails)
    }

    #[test]
    fn group_commit_folds_concurrent_runs_into_one_manifest_commit() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(9);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &[], 200);

        const K: u64 = 4;
        let seq_before = lsm.snapshot().seq();
        let (head, tails) = park_tail_runs(&lsm, &ds, K, 50);
        // The head run completes the chain: whoever wakes first folds all
        // K runs into ONE atomic manifest commit.
        submit_and_wait(&lsm.shared, head).unwrap();
        for t in tails {
            t.join().unwrap().unwrap();
        }

        let ws = lsm.write_stats();
        assert_eq!(ws.ingest_commits, 1, "one fsync for the whole group");
        assert_eq!(ws.runs_committed, K, "all runs landed in that commit");
        assert_eq!(ws.entries_ingested, 200);
        assert_eq!(
            lsm.snapshot().seq(),
            seq_before + 1,
            "one seq bump for the fold"
        );
        assert_eq!(lsm.len(), 200);
        let q = query(4242);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);

        // A reopen sees exactly the folded state: the group was atomic.
        drop(lsm);
        let lsm = LsmCoconut::open(dir.path().join("i"), &ds, BuildOptions::default()).unwrap();
        assert_eq!(lsm.covered_end(), 200);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
    }

    /// Regression (ISSUE 10): `TieredPolicy::with_max_runs` read-amp cap
    /// must be re-checked after a group commit lands K runs in a single
    /// manifest commit — the planner only ever saw one new run per commit
    /// before group commit existed.
    #[test]
    fn max_runs_cap_recovers_after_k_run_group_commit() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(17);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        lsm.set_max_runs(3);
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &[], 250);

        const K: u64 = 5;
        let (head, tails) = park_tail_runs(&lsm, &ds, K, 50);
        submit_and_wait(&lsm.shared, head).unwrap();
        for t in tails {
            t.join().unwrap().unwrap();
        }
        assert_eq!(lsm.write_stats().ingest_commits, 1);
        assert_eq!(lsm.run_count(), K as usize, "group landed K runs at once");

        // The scheduler must notice the K-run pile-up and compact it back
        // under the cap (the sync job itself re-plans on arrival).
        lsm.wait_for_compactions().unwrap();
        assert!(
            lsm.run_count() <= 3,
            "{} runs still live after a K-run group commit",
            lsm.run_count()
        );
        let q = query(71);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
    }

    #[test]
    fn concurrent_writers_cover_contiguously_and_answer_exactly() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let mut gen = RandomWalkGen::new(23);
        let lsm = LsmCoconut::new(
            small_config(),
            BuildOptions::default(),
            dir.path().join("i"),
        )
        .unwrap();
        let (ds, all) = grow_dataset(&path, &stats, &mut gen, &[], 240);

        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let w = lsm.writer();
                    while w.ingest_next(&ds, 40).unwrap().is_some() {}
                });
            }
        });

        assert_eq!(lsm.len(), 240);
        assert_eq!(lsm.covered_end(), 240);
        let ws = lsm.write_stats();
        assert_eq!(ws.entries_ingested, 240, "every entry acknowledged once");
        assert!(
            ws.ingest_commits <= ws.runs_committed,
            "group commit can only fold, never split"
        );
        for seed in [301, 302, 303] {
            let q = query(seed);
            let (ans, _) = lsm.exact(&q).unwrap();
            assert_eq!(ans.pos, brute_force(&all, &q).pos, "seed {seed}");
        }
        // Full compaction after concurrent ingest still collapses to the
        // single-run, bit-identical-to-bulk-load shape.
        lsm.compact().unwrap();
        assert_eq!(lsm.run_count(), 1);
        let q = query(304);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
    }

    #[test]
    fn leveled_policy_round_trips_through_manifest_and_answers_exactly() {
        let dir = TempDir::new("lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        let idx = dir.path().join("i");
        let mut gen = RandomWalkGen::new(41);
        let mut all = Vec::new();
        {
            let lsm = LsmCoconut::create(
                small_config(),
                BuildOptions::default(),
                &idx,
                0,
                CompactionPolicyKind::Leveled,
            )
            .unwrap();
            assert_eq!(lsm.compaction_kind(), CompactionPolicyKind::Leveled);
            for _ in 0..5 {
                let (ds, new_all) = grow_dataset(&path, &stats, &mut gen, &all, 120);
                all = new_all;
                lsm.ingest(&ds).unwrap();
            }
            lsm.wait_for_compactions().unwrap();
            let q = query(500);
            let (ans, _) = lsm.exact(&q).unwrap();
            assert_eq!(ans.pos, brute_force(&all, &q).pos);
        }
        // The policy family is manifest state: a plain reopen recovers it.
        let ds = Dataset::open(&path, Arc::clone(&stats)).unwrap();
        let lsm = LsmCoconut::open(&idx, &ds, BuildOptions::default()).unwrap();
        assert_eq!(lsm.compaction_kind(), CompactionPolicyKind::Leveled);
        let q = query(501);
        let (ans, _) = lsm.exact(&q).unwrap();
        assert_eq!(ans.pos, brute_force(&all, &q).pos);
    }
}
