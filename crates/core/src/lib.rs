//! Coconut-Tree and Coconut-Trie: the paper's contribution.
//!
//! Both indexes organize data series by their **sortable summarization**
//! (the z-order key of [`coconut_summary::zorder`]), which lets them be
//! bulk-loaded *bottom-up* from an externally sorted stream — eliminating
//! the random I/O, non-contiguous leaves and sparse nodes of top-down
//! insertion (paper Section 3):
//!
//! * [`trie::CoconutTrie`] (Algorithm 2) splits nodes by SAX *prefixes* like
//!   the state of the art, but builds bottom-up from sorted keys and
//!   compacts sibling leaves, so leaves are contiguous on disk.
//! * [`tree::CoconutTree`] (Algorithm 3) drops the common-prefix constraint
//!   entirely: a balanced B+-tree bulk-loaded with *median-based* splits
//!   (UB-tree style), densely packed to a configurable fill factor.
//!
//! Both come in non-materialized (leaves hold `(key, position)` pointers
//! into the raw file) and materialized / `-Full` (leaves hold the raw
//! series) flavors, and both answer:
//!
//! * **approximate** queries (Algorithm 4) — visit the leaf where the query
//!   would live, plus `radius` neighboring leaves (contiguous on disk);
//! * **exact** queries (Algorithm 5, *CoconutTreeSIMS*) — a skip-sequential
//!   scan over in-memory summarizations, pruned by the approximate answer,
//!   with lower bounds computed by parallel threads.
//!
//! [`lsm::LsmCoconut`] grows the paper's future-work suggestion into a
//! streaming subsystem: batches bulk-load into LSM runs, a
//! [`compaction::CompactionPolicy`] merges them on a worker thread (K-way
//! merges of sorted leaf streams, never re-sorts), and a crash-safe
//! [`manifest::Manifest`] makes the run set durable across process
//! restarts. Readers pin an immutable [`lsm::Snapshot`] and query it
//! lock-free under an optional cooperative [`Deadline`] — the concurrency
//! model the query server (`coconut-server`) is built on.
//!
//! [`shard`] parallelizes construction: the scan→summarize→sort phase runs
//! on K worker threads over disjoint key-range shards, and the per-shard
//! sorted streams are K-way merged into the same bulk loaders, producing
//! bit-identical indexes (enable via [`BuildOptions::shards`]).
//!
//! [`backend`] promotes a shard to a deployment boundary: a
//! [`backend::ShardBackend`] is one key-range slice's query surface, and a
//! [`backend::ShardSet`] owns the partition map and scatter-gathers exact
//! answers across shards with pruning-bound sharing — the in-process
//! [`backend::LocalShard`] is the correctness oracle for the remote fabric
//! in `coconut-server`.

#![deny(missing_docs)]
// Everything in this crate is reachable from the query server, where a
// stray panic kills a worker thread: unwrap/expect are denied outside
// tests, with explicit per-site `allow`s where an invariant makes the
// panic unreachable (see [`le`] for the decode helpers).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod builder;
pub mod compaction;
pub mod config;
pub mod layout;
mod le;
pub mod lsm;
pub mod manifest;
pub mod records;
pub mod shard;
pub mod sims;
pub mod split;
pub mod tree;
pub mod trie;

pub use backend::{LocalShard, Partial, ShardBackend, ShardInfo, ShardSet};
pub use coconut_storage::{Deadline, Error, Result};
pub use compaction::{CompactionPolicy, CompactionPolicyKind, LeveledPolicy, TieredPolicy};
pub use config::{BuildOptions, IndexConfig};
pub use layout::ScrubReport;
pub use lsm::{
    IngestWriter, KillPoint, LsmCoconut, RunScrub, Snapshot, WriteStats, QUARANTINE_DIR,
};
pub use split::{AdaptivePolicy, FixedBinaryPolicy, SplitPolicy, SplitPolicyKind};
pub use tree::CoconutTree;
pub use trie::CoconutTrie;
