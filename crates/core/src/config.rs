//! Index configuration and build options.

use coconut_storage::{Error, Result};
use coconut_summary::SaxConfig;

use crate::split::SplitPolicyKind;

/// Structural parameters of a Coconut index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexConfig {
    /// Summarization parameters (series length, segments, cardinality).
    pub sax: SaxConfig,
    /// Maximum entries per leaf node. The paper uses 2000 records for every
    /// index it evaluates.
    pub leaf_capacity: usize,
    /// Bulk-loading target occupancy in (0, 1]: Coconut-Tree packs
    /// `floor(leaf_capacity * fill_factor)` entries per leaf ("a fill-factor
    /// that can be controlled by the user", Section 4.3).
    pub fill_factor: f64,
    /// Fan-out of the in-memory internal B+-tree levels.
    pub internal_fanout: usize,
    /// How Coconut-Trie nodes split the sorted key range (see
    /// [`crate::split`]). Irrelevant to Coconut-Tree's median-based packing
    /// but recorded uniformly so LSM recovery can reject conflicting flags.
    pub split_policy: SplitPolicyKind,
}

impl IndexConfig {
    /// The paper's defaults for a given series length: 16×256 SAX,
    /// 2000-record leaves, full fill, fan-out 64.
    pub fn default_for_len(series_len: usize) -> Self {
        IndexConfig {
            sax: SaxConfig::default_for_len(series_len),
            leaf_capacity: 2000,
            fill_factor: 1.0,
            internal_fanout: 64,
            split_policy: SplitPolicyKind::Fixed,
        }
    }

    /// Same config under a different split policy.
    pub fn with_split_policy(mut self, policy: SplitPolicyKind) -> Self {
        self.split_policy = policy;
        self
    }

    /// Validate all parameters.
    pub fn validate(&self) -> Result<()> {
        self.sax.validate()?;
        if self.leaf_capacity == 0 {
            return Err(Error::invalid("leaf_capacity must be positive"));
        }
        if !(self.fill_factor > 0.0 && self.fill_factor <= 1.0) {
            return Err(Error::invalid("fill_factor must be in (0, 1]"));
        }
        if self.internal_fanout < 2 {
            return Err(Error::invalid("internal_fanout must be at least 2"));
        }
        Ok(())
    }

    /// Entries per leaf targeted by bulk loading (at least 1).
    pub fn bulk_leaf_entries(&self) -> usize {
        ((self.leaf_capacity as f64 * self.fill_factor) as usize).max(1)
    }
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self::default_for_len(256)
    }
}

/// Options controlling one build.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Memory available to the build (external-sort buffers). This is the
    /// `M` of the paper's cost model and the x-axis of Figures 8a/8b.
    pub memory_bytes: u64,
    /// Store raw series inside the leaves (the `-Full` variants).
    pub materialized: bool,
    /// Threads used by the parallel SIMS lower-bound scan.
    pub threads: usize,
    /// Key-range shards for the build's scan→summarize→sort phase: each
    /// shard runs on its own worker thread with `memory_bytes / shards` of
    /// sort budget, and the per-shard sorted streams are K-way merged into
    /// the bulk loader. `0` and `1` both mean the single-sorter path; any
    /// shard count produces a bit-identical index (see
    /// `crate::shard`).
    pub shards: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            memory_bytes: 256 << 20,
            materialized: false,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            shards: 1,
        }
    }
}

impl BuildOptions {
    /// Same options but materialized.
    pub fn materialized(mut self) -> Self {
        self.materialized = true;
        self
    }

    /// Same options with a specific memory budget.
    pub fn with_memory(mut self, bytes: u64) -> Self {
        self.memory_bytes = bytes;
        self
    }

    /// Same options with `shards` build shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_defaults() {
        let c = IndexConfig::default();
        c.validate().unwrap();
        assert_eq!(c.leaf_capacity, 2000);
        assert_eq!(c.sax.segments, 16);
        assert_eq!(c.bulk_leaf_entries(), 2000);
        assert_eq!(c.split_policy, SplitPolicyKind::Fixed);
        let c = c.with_split_policy(SplitPolicyKind::Adaptive);
        c.validate().unwrap();
        assert_eq!(c.split_policy, SplitPolicyKind::Adaptive);
    }

    #[test]
    fn fill_factor_scales_bulk_entries() {
        let mut c = IndexConfig {
            fill_factor: 0.5,
            ..IndexConfig::default()
        };
        assert_eq!(c.bulk_leaf_entries(), 1000);
        c.fill_factor = 0.0004; // floor would be 0 -> clamped to 1
        assert_eq!(c.bulk_leaf_entries(), 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = IndexConfig {
            leaf_capacity: 0,
            ..IndexConfig::default()
        };
        assert!(c.validate().is_err());
        let c = IndexConfig {
            fill_factor: 0.0,
            ..IndexConfig::default()
        };
        assert!(c.validate().is_err());
        let c = IndexConfig {
            fill_factor: 1.5,
            ..IndexConfig::default()
        };
        assert!(c.validate().is_err());
        let c = IndexConfig {
            internal_fanout: 1,
            ..IndexConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn build_options_builders() {
        let o = BuildOptions::default()
            .materialized()
            .with_memory(1024)
            .with_shards(4);
        assert!(o.materialized);
        assert_eq!(o.memory_bytes, 1024);
        assert!(o.threads >= 1);
        assert_eq!(o.shards, 4);
        assert_eq!(BuildOptions::default().shards, 1);
    }
}
