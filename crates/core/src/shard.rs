//! Sharded, multi-threaded bottom-up construction.
//!
//! The paper's construction recipe (scan → summarize → external sort →
//! bulk load) is embarrassingly parallel in its first three stages: split
//! `0..dataset.len()` into K contiguous position ranges, run each shard's
//! pipeline on its own worker thread — each with its own [`ExternalSorter`],
//! tmp subdirectory, private [`IoStats`], and `1/K` of the memory budget —
//! and K-way merge the per-shard sorted streams into the existing tree /
//! trie bulk loaders.
//!
//! Two invariants make this safe and exact:
//!
//! * **One pass over the raw file.** Shards scan *disjoint* ranges via
//!   [`Dataset::scan_range`], whose reads never extend past the shard
//!   boundary, so a K-shard build reads every data byte exactly once
//!   (the bug this module was built on top of: the old skip-scan restarted
//!   at position 0 per shard, making partitioned builds quadratic).
//! * **Deterministic total order.** Records are ordered by the unique
//!   `(key, position)` pair, so merging K sorted shard streams yields the
//!   exact sequence one big sort would — sharded builds are bit-identical
//!   to single-sorter builds, only faster. This holds for every
//!   [`crate::split::SplitPolicy`]: splitting consumes the merged stream
//!   *after* the shard merge, so the policy sees the same key sequence
//!   regardless of shard count and produces the same index file bytes.

use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use coconut_series::dataset::Dataset;
use coconut_series::Value;
use coconut_storage::{
    Codec, Error, ExternalSorter, IoSnapshot, IoStats, MergedStream, RecordStream, Result,
    SortReport, SortedStream,
};
use coconut_summary::sax::Summarizer;
use coconut_summary::SaxConfig;

use crate::records::{KeyPos, KeyPosCodec, KeySeries, KeySeriesCodec};

/// Uniquifies scratch directories so concurrent builds sharing one tmp dir
/// never collide.
static SHARD_BUILD_ID: AtomicU64 = AtomicU64::new(0);

/// A scratch directory removed (recursively) on drop.
struct ScratchDir(PathBuf);

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Per-worker guard over `shard-i`: a worker that errors or panics deletes
/// its own spill files *immediately* (mirroring the sorter's `RunFiles`
/// guard) instead of leaving them to bloat the disk until the whole
/// build's scratch tree unwinds — under fault injection the surviving
/// workers may keep sorting for a long time. A successful worker disarms
/// the guard: its sorted runs are read back lazily during the merge, and
/// the enclosing [`ScratchDir`] removes the directory afterwards.
struct ShardDirGuard {
    dir: PathBuf,
    armed: bool,
}

impl ShardDirGuard {
    fn new(dir: PathBuf) -> Self {
        ShardDirGuard { dir, armed: true }
    }

    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for ShardDirGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

/// Split `range` into at most `shards` contiguous, non-empty, gap-free
/// subranges of near-equal size (sizes differ by at most one).
pub fn shard_ranges(range: Range<u64>, shards: usize) -> Vec<Range<u64>> {
    let n = range.end.saturating_sub(range.start);
    if n == 0 {
        return Vec::new();
    }
    let k = (shards.max(1) as u64).min(n);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k as usize);
    let mut start = range.start;
    for i in 0..k {
        let len = base + u64::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, range.end);
    out
}

/// The output of a sharded sort: a K-way [`MergedStream`] plus the
/// bookkeeping that keeps I/O accounting and scratch space exact.
///
/// Each worker accounts I/O into a private [`IoStats`] (the join folds
/// those into the shared sink promptly), but spilled runs are *read back*
/// lazily on the caller's thread as the merge is consumed — still through
/// the worker's private sink. Dropping this stream absorbs that residual
/// into the shared sink and removes the build's scratch directory, so
/// nothing is lost and nothing is left behind.
pub struct ShardedStream<C: Codec>
where
    C::Item: Ord,
{
    inner: MergedStream<SortedStream<C>>,
    shared: Arc<IoStats>,
    /// Per-worker private sinks with the snapshot already absorbed at join.
    workers: Vec<(Arc<IoStats>, IoSnapshot)>,
    /// Dropped after `inner` (declaration order), i.e. after the run files
    /// inside it are deleted.
    _scratch: ScratchDir,
}

impl<C: Codec> ShardedStream<C>
where
    C::Item: Ord,
{
    /// The next record in global key order, or `None` when exhausted.
    pub fn next_item(&mut self) -> Result<Option<C::Item>> {
        self.inner.next_item()
    }

    /// The aggregated sort report.
    pub fn report(&self) -> SortReport {
        self.inner.report()
    }

    /// Drain into a vector (tests and small merges).
    pub fn collect_all(mut self) -> Result<Vec<C::Item>> {
        let mut out = Vec::new();
        while let Some(item) = self.next_item()? {
            out.push(item);
        }
        Ok(out)
    }
}

impl<C: Codec> RecordStream for ShardedStream<C>
where
    C::Item: Ord,
{
    type Item = C::Item;

    fn next_item(&mut self) -> Result<Option<C::Item>> {
        ShardedStream::next_item(self)
    }

    fn report(&self) -> SortReport {
        ShardedStream::report(self)
    }
}

impl<C: Codec> Drop for ShardedStream<C>
where
    C::Item: Ord,
{
    fn drop(&mut self) {
        // Fold the merge-phase run reads (accounted privately after the
        // join snapshot) into the shared sink.
        for (worker, absorbed) in &self.workers {
            self.shared.absorb(&worker.snapshot().since(absorbed));
        }
    }
}

/// The generic sharded pipeline: one worker thread per shard, each scanning
/// its range, summarizing, and sorting under `memory_bytes / K`; the sorted
/// shard streams are returned as one K-way merge.
///
/// Workers account I/O into private [`IoStats`]; the totals are folded into
/// `stats` when the workers join, and the remainder (run reads during merge
/// consumption) when the returned stream drops. Raw-file reads go through
/// the dataset's own shared sink as usual. All sort scratch lives in one
/// unique subdirectory of `tmp_dir`, removed when the stream drops.
#[allow(clippy::too_many_arguments)]
fn sharded_sort<C, F>(
    dataset: &Dataset,
    range: Range<u64>,
    sax: SaxConfig,
    memory_bytes: u64,
    tmp_dir: &Path,
    stats: &Arc<IoStats>,
    shards: usize,
    codec: C,
    make_record: F,
) -> Result<ShardedStream<C>>
where
    C: Codec + Copy + Send,
    C::Item: Ord + Send,
    F: Fn(&mut Summarizer, u64, &[Value]) -> C::Item + Sync,
{
    debug_assert!(range.end <= dataset.len());
    let ranges = shard_ranges(range, shards);
    // The budget invariant on `ExternalSorter::new`: K concurrent sorters
    // share the build's memory, so each gets 1/K of it.
    let per_shard_budget = (memory_bytes / ranges.len().max(1) as u64).max(1);
    // One unique scratch tree per build (concurrent builds may share
    // `tmp_dir`); the guard removes it on every exit path — declared before
    // the streams so it drops after them.
    let scratch = ScratchDir(tmp_dir.join(format!(
        "shards-{}-{}",
        std::process::id(),
        SHARD_BUILD_ID.fetch_add(1, Ordering::Relaxed)
    )));
    let make_record = &make_record;
    type WorkerOut<C> = (SortedStream<C>, Arc<IoStats>, IoSnapshot);
    type Joined<C> = (Vec<SortedStream<C>>, Vec<(Arc<IoStats>, IoSnapshot)>);
    let (streams, workers) = std::thread::scope(|scope| -> Result<Joined<C>> {
        let mut handles = Vec::with_capacity(ranges.len());
        for (i, shard_range) in ranges.into_iter().enumerate() {
            let shard_dir = scratch.0.join(format!("shard-{i}"));
            std::fs::create_dir_all(&shard_dir)?;
            handles.push(scope.spawn(move || -> Result<WorkerOut<C>> {
                let guard = ShardDirGuard::new(shard_dir.clone());
                let shard_stats = Arc::new(IoStats::new());
                let mut summarizer = Summarizer::new(sax);
                let mut sorter = ExternalSorter::new(
                    codec,
                    per_shard_budget,
                    &shard_dir,
                    Arc::clone(&shard_stats),
                )?;
                let mut scan = dataset.scan_range(shard_range);
                while let Some((pos, series)) = scan.next_series()? {
                    sorter.push(make_record(&mut summarizer, pos, series))?;
                }
                let stream = sorter.finish()?;
                let snap = shard_stats.snapshot();
                guard.disarm();
                Ok((stream, shard_stats, snap))
            }));
        }
        let mut streams = Vec::with_capacity(handles.len());
        let mut workers = Vec::with_capacity(handles.len());
        for handle in handles {
            let (stream, shard_stats, snap) = handle
                .join()
                .map_err(|_| Error::invalid("shard worker panicked"))??;
            stats.absorb(&snap);
            streams.push(stream);
            workers.push((shard_stats, snap));
        }
        Ok((streams, workers))
    })?;
    Ok(ShardedStream {
        inner: MergedStream::new(streams)?,
        shared: Arc::clone(stats),
        workers,
        _scratch: scratch,
    })
}

/// Sharded counterpart of [`crate::builder::sorted_key_pos`]: the
/// non-materialized pipeline, parallelized over `shards` key-range shards.
/// Yields the identical record sequence.
#[allow(clippy::too_many_arguments)]
pub fn sorted_key_pos_sharded(
    dataset: &Dataset,
    range: Range<u64>,
    sax: &SaxConfig,
    memory_bytes: u64,
    tmp_dir: &Path,
    stats: &Arc<IoStats>,
    shards: usize,
) -> Result<ShardedStream<KeyPosCodec>> {
    sharded_sort(
        dataset,
        range,
        *sax,
        memory_bytes,
        tmp_dir,
        stats,
        shards,
        KeyPosCodec,
        |summarizer, pos, series| KeyPos {
            key: summarizer.zkey(series),
            pos,
        },
    )
}

/// Sharded counterpart of [`crate::builder::sorted_key_series`]: the
/// materialized (`-Full`) pipeline, parallelized over `shards` shards.
#[allow(clippy::too_many_arguments)]
pub fn sorted_key_series_sharded(
    dataset: &Dataset,
    range: Range<u64>,
    sax: &SaxConfig,
    memory_bytes: u64,
    tmp_dir: &Path,
    stats: &Arc<IoStats>,
    shards: usize,
) -> Result<ShardedStream<KeySeriesCodec>> {
    sharded_sort(
        dataset,
        range,
        *sax,
        memory_bytes,
        tmp_dir,
        stats,
        shards,
        KeySeriesCodec::new(dataset.series_len()),
        |summarizer, pos, series| KeySeries {
            key: summarizer.zkey(series),
            pos,
            series: series.to_vec(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{sorted_key_pos, sorted_key_series};
    use coconut_series::dataset::write_dataset;
    use coconut_series::gen::RandomWalkGen;
    use coconut_storage::TempDir;

    fn small_dataset(dir: &TempDir, n: u64, len: usize) -> (Dataset, Arc<IoStats>) {
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        write_dataset(&path, &mut RandomWalkGen::new(41), n, len, &stats).unwrap();
        (Dataset::open(&path, Arc::clone(&stats)).unwrap(), stats)
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        assert_eq!(shard_ranges(0..10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(shard_ranges(5..8, 1), vec![5..8]);
        // More shards than items: one shard per item, never an empty shard.
        assert_eq!(shard_ranges(2..4, 16), vec![2..3, 3..4]);
        assert!(shard_ranges(7..7, 4).is_empty());
        assert_eq!(shard_ranges(0..10, 0), vec![0..10]);
    }

    #[test]
    fn sharded_key_pos_equals_single_sorter() {
        let dir = TempDir::new("shard").unwrap();
        let (ds, stats) = small_dataset(&dir, 1200, 32);
        let sax = SaxConfig::default_for_len(32);
        let expected = sorted_key_pos(&ds, 0..1200, &sax, 1 << 20, dir.path(), &stats)
            .unwrap()
            .collect_all()
            .unwrap();
        for shards in [1usize, 2, 3, 7, 64] {
            let got =
                sorted_key_pos_sharded(&ds, 0..1200, &sax, 1 << 20, dir.path(), &stats, shards)
                    .unwrap()
                    .collect_all()
                    .unwrap();
            assert_eq!(got, expected, "shards={shards}");
        }
    }

    #[test]
    fn sharded_key_series_equals_single_sorter_with_spills() {
        let dir = TempDir::new("shard").unwrap();
        let (ds, stats) = small_dataset(&dir, 500, 32);
        let sax = SaxConfig::default_for_len(32);
        let expected = sorted_key_series(&ds, 0..500, &sax, 1 << 20, dir.path(), &stats)
            .unwrap()
            .collect_all()
            .unwrap();
        // A budget small enough that every shard spills.
        let merged =
            sorted_key_series_sharded(&ds, 0..500, &sax, 16 << 10, dir.path(), &stats, 4).unwrap();
        assert!(merged.report().runs >= 4, "{:?}", merged.report());
        let got = merged.collect_all().unwrap();
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected.iter()) {
            assert_eq!((g.key, g.pos), (e.key, e.pos));
            assert_eq!(g.series, e.series);
        }
    }

    #[test]
    fn sharded_build_reads_dataset_exactly_once() {
        // The acceptance bar: total raw-file bytes read by a K-shard build
        // equal one full pass, not K passes.
        let dir = TempDir::new("shard").unwrap();
        let (ds, stats) = small_dataset(&dir, 2000, 64);
        let sax = SaxConfig::default_for_len(64);
        let before = stats.snapshot();
        let mut merged =
            sorted_key_pos_sharded(&ds, 0..2000, &sax, 1 << 20, dir.path(), &stats, 8).unwrap();
        let mut n = 0u64;
        while merged.next_item().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 2000);
        let delta = stats.snapshot().since(&before);
        assert_eq!(
            delta.bytes_read,
            ds.payload_bytes(),
            "K shards must read one pass, not K"
        );
    }

    #[test]
    fn sharded_sub_range_respects_bounds() {
        let dir = TempDir::new("shard").unwrap();
        let (ds, stats) = small_dataset(&dir, 300, 32);
        let sax = SaxConfig::default_for_len(32);
        let expected = sorted_key_pos(&ds, 60..260, &sax, 1 << 20, dir.path(), &stats)
            .unwrap()
            .collect_all()
            .unwrap();
        let got = sorted_key_pos_sharded(&ds, 60..260, &sax, 1 << 20, dir.path(), &stats, 5)
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(got, expected);
        assert!(got.iter().all(|kp| (60..260).contains(&kp.pos)));
    }

    #[test]
    fn empty_range_yields_empty_stream() {
        let dir = TempDir::new("shard").unwrap();
        let (ds, stats) = small_dataset(&dir, 10, 32);
        let sax = SaxConfig::default_for_len(32);
        let mut merged =
            sorted_key_pos_sharded(&ds, 0..0, &sax, 1 << 20, dir.path(), &stats, 4).unwrap();
        assert!(merged.next_item().unwrap().is_none());
        assert_eq!(merged.report().items, 0);
    }

    #[test]
    fn shard_spill_io_is_absorbed_into_shared_stats() {
        let dir = TempDir::new("shard").unwrap();
        let (ds, stats) = small_dataset(&dir, 800, 32);
        let sax = SaxConfig::default_for_len(32);
        let before = stats.snapshot();
        // Tiny budget: every shard spills runs through its private stats.
        let merged =
            sorted_key_pos_sharded(&ds, 0..800, &sax, 2048, dir.path(), &stats, 4).unwrap();
        assert!(merged.report().runs >= 4);
        let delta = stats.snapshot().since(&before);
        // Spilled run bytes (24 bytes per record, written at least once)
        // must show up in the shared sink after the workers join.
        assert!(
            delta.bytes_written >= 800 * 24,
            "spill writes not absorbed: {delta:?}"
        );
        // Draining the merge reads the runs back on this thread; dropping
        // the stream must fold those reads into the shared sink too.
        let n = merged.collect_all().unwrap().len();
        assert_eq!(n, 800);
        let delta = stats.snapshot().since(&before);
        let raw = ds.payload_bytes();
        assert!(
            delta.bytes_read >= raw + 800 * 24,
            "merge-phase run reads not absorbed: {delta:?}"
        );
    }

    #[test]
    fn panicking_worker_leaks_no_scratch() {
        let dir = TempDir::new("shard").unwrap();
        let (ds, stats) = small_dataset(&dir, 600, 32);
        let sax = SaxConfig::default_for_len(32);
        let tmp = dir.path().join("tmp");
        std::fs::create_dir_all(&tmp).unwrap();
        // A tiny budget makes every worker spill runs before position 450
        // (inside the last of 4 shards) blows up.
        let result = sharded_sort(
            &ds,
            0..600,
            sax,
            2048,
            &tmp,
            &stats,
            4,
            KeyPosCodec,
            |summarizer, pos, series| {
                assert!(pos != 450, "injected worker panic");
                KeyPos {
                    key: summarizer.zkey(series),
                    pos,
                }
            },
        );
        assert!(result.is_err(), "a panicked worker must surface an error");
        assert!(
            std::fs::read_dir(&tmp).unwrap().next().is_none(),
            "a panicking worker must not leak spill files"
        );
    }

    #[test]
    fn scratch_dirs_are_removed_after_stream_drop() {
        let dir = TempDir::new("shard").unwrap();
        let (ds, stats) = small_dataset(&dir, 400, 32);
        let sax = SaxConfig::default_for_len(32);
        let tmp = dir.path().join("tmp");
        std::fs::create_dir_all(&tmp).unwrap();
        let merged = sorted_key_pos_sharded(&ds, 0..400, &sax, 1024, &tmp, &stats, 3).unwrap();
        assert!(
            std::fs::read_dir(&tmp).unwrap().next().is_some(),
            "scratch tree should exist while the stream lives"
        );
        let _ = merged.collect_all().unwrap();
        assert!(
            std::fs::read_dir(&tmp).unwrap().next().is_none(),
            "scratch tree must be removed once the stream is dropped"
        );
    }
}
