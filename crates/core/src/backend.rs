//! The shard fabric: query partitioning/merge behind [`ShardBackend`].
//!
//! PR 3 parallelized *construction* over key-range shards inside one
//! process ([`crate::shard`]); this module promotes a shard to a deployment
//! boundary. A [`ShardBackend`] is one shard's query surface — build its
//! slice, answer EXACT/KNN/RANGE over it — and a [`ShardSet`] owns the
//! key-space partition map and merges per-shard candidates into globally
//! exact answers. Two implementations exist:
//!
//! * [`LocalShard`] (here): an in-process [`LsmCoconut`] over one slice —
//!   the correctness oracle. A `ShardSet<LocalShard>` answers bit-identically
//!   to a single whole-dataset index, with either node-splitting policy:
//!   the scatter-gather merge works on `(dist, pos)` pairs and never sees
//!   node shapes, so per-shard [`crate::split::SplitPolicy`] choices cannot
//!   change merged answers (only per-shard pruning work).
//! * `RemoteShard` (in `coconut-server`): the same surface spoken over the
//!   line protocol to a `serve --shard` worker process.
//!
//! # Scatter-gather with pruning-bound sharing
//!
//! EXACT and KNN queries visit shards **in ascending position order**,
//! passing each shard the best bound merged from the shards before it (the
//! best distance for 1-NN, the k-th best for k-NN). A later shard therefore
//! prunes with earlier shards' results and returns only candidates that
//! could still enter the global answer. Dropping candidates at or beyond
//! the bound is exact, not heuristic: the global order is `(dist, pos)`,
//! and every existing entry at the bound has a strictly lower position
//! (earlier shard), so a later tie could never displace it. RANGE queries
//! have no bound to share and scatter to all shards concurrently.
//!
//! # Graceful degradation
//!
//! The strict methods ([`ShardSet::exact`], [`ShardSet::knn`],
//! [`ShardSet::range`]) fail the whole query when any shard fails — the
//! answer is bit-identical to a single index or it is an error. The
//! `*_degraded` variants instead skip shards that are unreachable or out
//! of deadline budget and return a [`Partial`]: the exact answer over the
//! live slices plus the *named* missing slices ([`ShardBackend::slice`] is
//! static partition-map data, so a dead shard can still be named). A
//! degraded answer is never silently wrong — every position it could have
//! missed is listed in [`Partial::missing`]. Non-availability errors
//! (corrupt replies, invalid requests) still fail the query: degradation
//! covers *absence*, not *disagreement*.

use std::ops::Range;

use coconut_series::index::Answer;
use coconut_series::Value;
use coconut_storage::{Deadline, Error, Result};

use crate::lsm::LsmCoconut;
use crate::shard::shard_ranges;
use coconut_series::dataset::Dataset;

/// One shard's identity and progress, as reported by [`ShardBackend::info`]
/// (the wire `SHARD-INFO` verb serializes exactly these fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// First raw-file position of the shard's assigned slice.
    pub start: u64,
    /// One past the last position of the assigned slice.
    pub end: u64,
    /// Ingest progress: the slice is indexed up to (exclusive) here;
    /// equals `start` before the first build and `end` when fully built.
    pub covered_end: u64,
    /// The shard index's manifest sequence number.
    pub seq: u64,
    /// Live run count (the shard's read amplification).
    pub runs: u64,
}

/// One shard of the fabric: a key-range slice that can build itself and
/// answer exact queries over whatever prefix of the slice it has indexed.
///
/// All query methods take a pruning `bound` where the global merge can
/// supply one (`f64::INFINITY` disables it) and a cooperative [`Deadline`].
pub trait ShardBackend {
    /// The shard's assigned slice, known statically from the partition
    /// map — available without a round trip even when the shard is down,
    /// which is what lets degraded answers *name* the missing slices.
    fn slice(&self) -> Range<u64>;

    /// The shard's assigned range and ingest progress.
    fn info(&self) -> Result<ShardInfo>;

    /// Index the shard's slice up to `upto` (clamped to the assigned
    /// range); returns the post-build [`ShardInfo`].
    fn build(&self, upto: u64) -> Result<ShardInfo>;

    /// Exact 1-NN over the shard's indexed prefix, pruned by `bound`. When
    /// nothing beats the bound the returned answer has
    /// `is_some() == false` — the caller's candidate stands.
    fn exact(&self, query: &[Value], bound: f64, deadline: Deadline) -> Result<Answer>;

    /// Exact k-NN over the shard's indexed prefix; only candidates with
    /// distance below `bound` are returned.
    fn knn(&self, query: &[Value], k: usize, bound: f64, deadline: Deadline)
        -> Result<Vec<Answer>>;

    /// All series within Euclidean distance `epsilon`, sorted by distance.
    fn range(&self, query: &[Value], epsilon: f64, deadline: Deadline) -> Result<Vec<Answer>>;
}

/// The in-process [`ShardBackend`]: an [`LsmCoconut`] created with
/// [`LsmCoconut::new_based`] at the slice start, querying through the same
/// snapshot merge paths as a whole-dataset index — the correctness oracle
/// the remote fabric is checked against.
pub struct LocalShard {
    lsm: std::sync::Arc<LsmCoconut>,
    dataset: Dataset,
    range: Range<u64>,
}

impl LocalShard {
    /// Wrap an open shard index assigned `range`. The index's base must
    /// match the slice start.
    pub fn new(
        lsm: std::sync::Arc<LsmCoconut>,
        dataset: Dataset,
        range: Range<u64>,
    ) -> Result<Self> {
        if lsm.base() != range.start {
            return Err(Error::invalid(format!(
                "shard index base {} does not match the assigned slice start {}",
                lsm.base(),
                range.start
            )));
        }
        Ok(LocalShard {
            lsm,
            dataset,
            range,
        })
    }

    /// The underlying index (tests use it to inspect runs).
    pub fn lsm(&self) -> &std::sync::Arc<LsmCoconut> {
        &self.lsm
    }
}

impl ShardBackend for LocalShard {
    fn slice(&self) -> Range<u64> {
        self.range.clone()
    }

    fn info(&self) -> Result<ShardInfo> {
        let snap = self.lsm.snapshot();
        Ok(ShardInfo {
            start: self.range.start,
            end: self.range.end,
            covered_end: snap.covered_end(),
            seq: snap.seq(),
            runs: snap.run_count() as u64,
        })
    }

    fn build(&self, upto: u64) -> Result<ShardInfo> {
        let upto = upto.clamp(self.range.start, self.range.end);
        self.lsm.ingest_upto(&self.dataset, upto)?;
        self.info()
    }

    fn exact(&self, query: &[Value], bound: f64, deadline: Deadline) -> Result<Answer> {
        Ok(self.lsm.snapshot().exact_bounded(query, bound, deadline)?.0)
    }

    fn knn(
        &self,
        query: &[Value],
        k: usize,
        bound: f64,
        deadline: Deadline,
    ) -> Result<Vec<Answer>> {
        Ok(self
            .lsm
            .snapshot()
            .exact_knn_bounded(query, k, bound, deadline)?
            .0)
    }

    fn range(&self, query: &[Value], epsilon: f64, deadline: Deadline) -> Result<Vec<Answer>> {
        Ok(self.lsm.snapshot().exact_range(query, epsilon, deadline)?.0)
    }
}

/// A possibly-degraded scatter-gather answer: the exact result over every
/// *reachable* shard, plus the slices that could not be consulted. When
/// [`Partial::missing`] is empty the value is the full strict answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Partial<T> {
    /// The exact answer over the shards that responded.
    pub value: T,
    /// Slices of unreachable / timed-out shards, in ascending position
    /// order. Positions in these ranges were *not* considered.
    pub missing: Vec<Range<u64>>,
}

impl<T> Partial<T> {
    /// True when every shard answered (the value is the strict answer).
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }
}

/// Whether a shard error means the shard is *absent* (degradable) rather
/// than *wrong* (always fatal).
fn degradable(e: &Error) -> bool {
    e.is_unavailable() || e.is_deadline()
}

/// The key-space partition map plus the scatter-gather merge over a set of
/// [`ShardBackend`]s (in-process or remote). Shards must be supplied in
/// ascending position order — [`ShardSet::new`] enforces contiguity lazily
/// via [`ShardSet::infos`]; [`partition`] produces conforming ranges.
pub struct ShardSet<B> {
    shards: Vec<B>,
}

/// Split `0..n` into `k` contiguous near-equal slices — the canonical
/// partition map (re-exported from [`crate::shard::shard_ranges`]).
pub fn partition(n: u64, k: usize) -> Vec<Range<u64>> {
    shard_ranges(0..n, k)
}

impl<B: ShardBackend> ShardSet<B> {
    /// Build a set over shards listed in ascending position order.
    pub fn new(shards: Vec<B>) -> Result<Self> {
        if shards.is_empty() {
            return Err(Error::invalid("a shard set needs at least one shard"));
        }
        Ok(ShardSet { shards })
    }

    /// The shards, in partition order.
    pub fn shards(&self) -> &[B] {
        &self.shards
    }

    /// Every shard's [`ShardInfo`], validated to form one contiguous
    /// gap-free partition of `0..end`.
    pub fn infos(&self) -> Result<Vec<ShardInfo>> {
        let mut infos = Vec::with_capacity(self.shards.len());
        let mut expected = 0u64;
        for shard in &self.shards {
            let info = shard.info()?;
            if info.start != expected || info.end < info.start {
                return Err(Error::corrupt(format!(
                    "shard partition map has a gap: shard covers {}..{} but the \
                     previous shard ended at {expected}",
                    info.start, info.end
                )));
            }
            expected = info.end;
            infos.push(info);
        }
        Ok(infos)
    }

    /// The contiguously-covered global prefix: positions `0..covered` are
    /// indexed by the fabric (the first shard with an unfinished slice caps
    /// it, exactly like a single index's `covered_end`).
    pub fn covered_end(&self) -> Result<u64> {
        let mut covered = 0u64;
        for info in self.infos()? {
            covered = info.covered_end;
            if info.covered_end < info.end {
                break;
            }
        }
        Ok(covered)
    }

    /// Dispatch builds so the whole fabric is indexed up to `upto`
    /// (each shard clamps to its slice); returns the per-shard infos.
    pub fn build(&self, upto: u64) -> Result<Vec<ShardInfo>>
    where
        B: Sync,
    {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(move || shard.build(upto)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| Error::invalid("shard build worker panicked"))?
                })
                .collect()
        })
    }

    /// Exact 1-NN: query shards in ascending position order, each pruned by
    /// the best distance merged so far. Bit-identical to a single
    /// whole-dataset index's answer.
    pub fn exact(&self, query: &[Value], deadline: Deadline) -> Result<Answer> {
        let mut best = Answer::none();
        for shard in &self.shards {
            let a = shard.exact(query, best.dist, deadline)?;
            best.merge(a);
        }
        Ok(best)
    }

    /// Exact k-NN: query shards in ascending position order, each pruned by
    /// the k-th best distance merged so far (infinity until the merged set
    /// fills). Bit-identical to a single whole-dataset index's answer.
    pub fn knn(&self, query: &[Value], k: usize, deadline: Deadline) -> Result<Vec<Answer>> {
        let mut all: Vec<Answer> = Vec::new();
        if k == 0 {
            return Ok(all);
        }
        for shard in &self.shards {
            let bound = if all.len() == k {
                all[k - 1].dist
            } else {
                f64::INFINITY
            };
            let answers = shard.knn(query, k, bound, deadline)?;
            all.extend(answers);
            all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.pos.cmp(&b.pos)));
            all.truncate(k);
        }
        Ok(all)
    }

    /// Range query: no bound to share, so scatter to every shard
    /// concurrently and merge-sort the hits by `(dist, pos)`.
    pub fn range(&self, query: &[Value], epsilon: f64, deadline: Deadline) -> Result<Vec<Answer>>
    where
        B: Sync,
    {
        let per_shard: Vec<Vec<Answer>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(move || shard.range(query, epsilon, deadline)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| Error::invalid("shard range worker panicked"))?
                })
                .collect::<Result<Vec<_>>>()
        })?;
        let mut all: Vec<Answer> = per_shard.into_iter().flatten().collect();
        all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.pos.cmp(&b.pos)));
        Ok(all)
    }

    /// [`ShardSet::exact`] with graceful degradation: an unreachable or
    /// timed-out shard contributes its slice to [`Partial::missing`]
    /// instead of failing the query. Later shards still prune with the
    /// bound merged from the live shards before them, so the value is the
    /// exact 1-NN over the non-missing slices.
    pub fn exact_degraded(&self, query: &[Value], deadline: Deadline) -> Result<Partial<Answer>> {
        let mut best = Answer::none();
        let mut missing = Vec::new();
        for shard in &self.shards {
            match shard.exact(query, best.dist, deadline) {
                Ok(a) => best.merge(a),
                Err(e) if degradable(&e) => missing.push(shard.slice()),
                Err(e) => return Err(e),
            }
        }
        Ok(Partial {
            value: best,
            missing,
        })
    }

    /// [`ShardSet::knn`] with graceful degradation (see
    /// [`ShardSet::exact_degraded`]); the value is the exact top-k over
    /// the non-missing slices.
    pub fn knn_degraded(
        &self,
        query: &[Value],
        k: usize,
        deadline: Deadline,
    ) -> Result<Partial<Vec<Answer>>> {
        let mut all: Vec<Answer> = Vec::new();
        let mut missing = Vec::new();
        if k == 0 {
            return Ok(Partial {
                value: all,
                missing,
            });
        }
        for shard in &self.shards {
            let bound = if all.len() == k {
                all[k - 1].dist
            } else {
                f64::INFINITY
            };
            match shard.knn(query, k, bound, deadline) {
                Ok(answers) => {
                    all.extend(answers);
                    all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.pos.cmp(&b.pos)));
                    all.truncate(k);
                }
                Err(e) if degradable(&e) => missing.push(shard.slice()),
                Err(e) => return Err(e),
            }
        }
        Ok(Partial {
            value: all,
            missing,
        })
    }

    /// [`ShardSet::range`] with graceful degradation (see
    /// [`ShardSet::exact_degraded`]); the value is every in-range hit from
    /// the non-missing slices, merge-sorted by `(dist, pos)`.
    pub fn range_degraded(
        &self,
        query: &[Value],
        epsilon: f64,
        deadline: Deadline,
    ) -> Result<Partial<Vec<Answer>>>
    where
        B: Sync,
    {
        let per_shard: Vec<Result<Vec<Answer>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(move || shard.range(query, epsilon, deadline)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(Error::invalid("shard range worker panicked")))
                })
                .collect()
        });
        let mut all: Vec<Answer> = Vec::new();
        let mut missing = Vec::new();
        for (shard, result) in self.shards.iter().zip(per_shard) {
            match result {
                Ok(hits) => all.extend(hits),
                Err(e) if degradable(&e) => missing.push(shard.slice()),
                Err(e) => return Err(e),
            }
        }
        all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.pos.cmp(&b.pos)));
        Ok(Partial {
            value: all,
            missing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BuildOptions, IndexConfig};
    use coconut_series::dataset::write_dataset;
    use coconut_series::distance::znormalize;
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_storage::{IoStats, TempDir};
    use std::sync::Arc;

    const LEN: usize = 64;

    fn small_config() -> IndexConfig {
        let mut c = IndexConfig::default_for_len(LEN);
        c.leaf_capacity = 32;
        c
    }

    fn setup(dir: &TempDir, n: u64) -> Dataset {
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        write_dataset(&path, &mut RandomWalkGen::new(11), n, LEN, &stats).unwrap();
        Dataset::open(&path, stats).unwrap()
    }

    fn local_set(dir: &TempDir, ds: &Dataset, k: usize) -> ShardSet<LocalShard> {
        let mut shards = Vec::new();
        for (i, range) in partition(ds.len(), k).into_iter().enumerate() {
            let lsm = Arc::new(
                LsmCoconut::new_based(
                    small_config(),
                    BuildOptions::default(),
                    dir.path().join(format!("shard-{i}")),
                    range.start,
                )
                .unwrap(),
            );
            shards.push(LocalShard::new(lsm, ds.clone(), range).unwrap());
        }
        let set = ShardSet::new(shards).unwrap();
        set.build(ds.len()).unwrap();
        set
    }

    fn query(seed: u64) -> Vec<Value> {
        let mut q = RandomWalkGen::new(seed).generate(LEN);
        znormalize(&mut q);
        q
    }

    #[test]
    fn partition_map_is_contiguous_and_validated() {
        let ranges = partition(10, 3);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        let dir = TempDir::new("backend").unwrap();
        let ds = setup(&dir, 90);
        let set = local_set(&dir, &ds, 3);
        let infos = set.infos().unwrap();
        assert_eq!(infos.len(), 3);
        assert_eq!(infos[0].start, 0);
        assert_eq!(infos[2].end, 90);
        assert_eq!(set.covered_end().unwrap(), 90);
    }

    #[test]
    fn sharded_answers_match_single_index_bit_for_bit() {
        let dir = TempDir::new("backend").unwrap();
        let ds = setup(&dir, 600);
        // The single whole-dataset reference.
        let single = Arc::new(
            LsmCoconut::new(
                small_config(),
                BuildOptions::default(),
                dir.path().join("single"),
            )
            .unwrap(),
        );
        single.ingest(&ds).unwrap();
        for k in [1usize, 2, 4] {
            let sub = TempDir::new("backend-k").unwrap();
            let set = local_set(&sub, &ds, k);
            for seed in 0..8u64 {
                let q = query(100 + seed);
                let snap = single.snapshot();
                let (want, _) = snap.exact(&q, Deadline::NONE).unwrap();
                let got = set.exact(&q, Deadline::NONE).unwrap();
                assert_eq!(
                    (got.pos, got.dist.to_bits()),
                    (want.pos, want.dist.to_bits())
                );

                let (want_k, _) = snap.exact_knn(&q, 5, Deadline::NONE).unwrap();
                let got_k = set.knn(&q, 5, Deadline::NONE).unwrap();
                assert_eq!(got_k.len(), want_k.len(), "k={k}");
                for (g, w) in got_k.iter().zip(want_k.iter()) {
                    assert_eq!((g.pos, g.dist.to_bits()), (w.pos, w.dist.to_bits()));
                }

                let eps = want_k.last().unwrap().dist;
                let (want_r, _) = snap.exact_range(&q, eps, Deadline::NONE).unwrap();
                let got_r = set.range(&q, eps, Deadline::NONE).unwrap();
                assert_eq!(got_r.len(), want_r.len(), "k={k}");
                for (g, w) in got_r.iter().zip(want_r.iter()) {
                    assert_eq!((g.pos, g.dist.to_bits()), (w.pos, w.dist.to_bits()));
                }
            }
        }
    }

    #[test]
    fn bounded_queries_recover_unbounded_answers() {
        let dir = TempDir::new("backend").unwrap();
        let ds = setup(&dir, 300);
        let set = local_set(&dir, &ds, 2);
        let q = query(9);
        let shard = &set.shards()[0];
        let unbounded = shard.exact(&q, f64::INFINITY, Deadline::NONE).unwrap();
        assert!(unbounded.is_some());
        // A bound below the shard's best suppresses the candidate entirely.
        let suppressed = shard
            .exact(&q, unbounded.dist / 2.0, Deadline::NONE)
            .unwrap();
        assert!(!suppressed.is_some());
        // A bound just above it returns the identical answer.
        let loose = shard
            .exact(&q, unbounded.dist * 2.0, Deadline::NONE)
            .unwrap();
        assert_eq!(
            (loose.pos, loose.dist.to_bits()),
            (unbounded.pos, unbounded.dist.to_bits())
        );
    }

    #[test]
    fn partial_build_caps_covered_prefix() {
        let dir = TempDir::new("backend").unwrap();
        let ds = setup(&dir, 100);
        let mut shards = Vec::new();
        for (i, range) in partition(ds.len(), 2).into_iter().enumerate() {
            let lsm = Arc::new(
                LsmCoconut::new_based(
                    small_config(),
                    BuildOptions::default(),
                    dir.path().join(format!("s{i}")),
                    range.start,
                )
                .unwrap(),
            );
            shards.push(LocalShard::new(lsm, ds.clone(), range).unwrap());
        }
        let set = ShardSet::new(shards).unwrap();
        // Build only the first 30 positions: shard 0 partially covered,
        // shard 1 untouched (its slice starts at 50).
        set.build(30).unwrap();
        assert_eq!(set.covered_end().unwrap(), 30);
        set.build(100).unwrap();
        assert_eq!(set.covered_end().unwrap(), 100);
    }

    /// A [`LocalShard`] that can be "killed": while dead every request
    /// fails with a typed Unavailable, like a crashed worker process.
    struct FlakyShard {
        inner: LocalShard,
        dead: std::sync::atomic::AtomicBool,
    }

    impl FlakyShard {
        fn check(&self) -> Result<()> {
            if self.dead.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(Error::unavailable("shard is down (test)"));
            }
            Ok(())
        }
    }

    impl ShardBackend for FlakyShard {
        fn slice(&self) -> Range<u64> {
            self.inner.slice()
        }
        fn info(&self) -> Result<ShardInfo> {
            self.check()?;
            self.inner.info()
        }
        fn build(&self, upto: u64) -> Result<ShardInfo> {
            self.check()?;
            self.inner.build(upto)
        }
        fn exact(&self, query: &[Value], bound: f64, deadline: Deadline) -> Result<Answer> {
            self.check()?;
            self.inner.exact(query, bound, deadline)
        }
        fn knn(
            &self,
            query: &[Value],
            k: usize,
            bound: f64,
            deadline: Deadline,
        ) -> Result<Vec<Answer>> {
            self.check()?;
            self.inner.knn(query, k, bound, deadline)
        }
        fn range(&self, query: &[Value], epsilon: f64, deadline: Deadline) -> Result<Vec<Answer>> {
            self.check()?;
            self.inner.range(query, epsilon, deadline)
        }
    }

    fn flaky_set(dir: &TempDir, ds: &Dataset, k: usize) -> ShardSet<FlakyShard> {
        let mut shards = Vec::new();
        for (i, range) in partition(ds.len(), k).into_iter().enumerate() {
            let lsm = Arc::new(
                LsmCoconut::new_based(
                    small_config(),
                    BuildOptions::default(),
                    dir.path().join(format!("flaky-{i}")),
                    range.start,
                )
                .unwrap(),
            );
            shards.push(FlakyShard {
                inner: LocalShard::new(lsm, ds.clone(), range).unwrap(),
                dead: std::sync::atomic::AtomicBool::new(false),
            });
        }
        let set = ShardSet::new(shards).unwrap();
        set.build(ds.len()).unwrap();
        set
    }

    /// Brute-force 1-NN over every position outside `missing`.
    fn oracle_excluding(ds: &Dataset, q: &[Value], missing: &[Range<u64>]) -> Answer {
        let mut best = Answer::none();
        for pos in 0..ds.len() {
            if missing.iter().any(|r| r.contains(&pos)) {
                continue;
            }
            let s = ds.get(pos).unwrap();
            let d = coconut_series::distance::euclidean(q, &s);
            if d < best.dist || (d == best.dist && pos < best.pos) {
                best.merge(Answer { pos, dist: d });
            }
        }
        best
    }

    #[test]
    fn degraded_equals_strict_when_every_shard_answers() {
        let dir = TempDir::new("backend-deg").unwrap();
        let ds = setup(&dir, 200);
        let set = flaky_set(&dir, &ds, 3);
        let q = query(31);
        let strict = set.exact(&q, Deadline::NONE).unwrap();
        let partial = set.exact_degraded(&q, Deadline::NONE).unwrap();
        assert!(partial.is_complete());
        assert_eq!(
            (partial.value.pos, partial.value.dist.to_bits()),
            (strict.pos, strict.dist.to_bits())
        );
        let strict_k = set.knn(&q, 5, Deadline::NONE).unwrap();
        let partial_k = set.knn_degraded(&q, 5, Deadline::NONE).unwrap();
        assert!(partial_k.is_complete());
        assert_eq!(partial_k.value.len(), strict_k.len());
        for (g, w) in partial_k.value.iter().zip(strict_k.iter()) {
            assert_eq!((g.pos, g.dist.to_bits()), (w.pos, w.dist.to_bits()));
        }
    }

    #[test]
    fn dead_shard_yields_named_missing_slice_not_wrong_answer() {
        let dir = TempDir::new("backend-deg").unwrap();
        let ds = setup(&dir, 300);
        let set = flaky_set(&dir, &ds, 3);
        let victim = 1usize;
        let victim_slice = set.shards()[victim].slice();
        set.shards()[victim]
            .dead
            .store(true, std::sync::atomic::Ordering::Relaxed);

        for seed in 0..4u64 {
            let q = query(200 + seed);
            // Strict mode refuses rather than answering over a hole.
            let err = set.exact(&q, Deadline::NONE).unwrap_err();
            assert!(err.is_unavailable(), "{err}");

            // Degraded mode answers over the live slices and names the hole.
            let partial = set.exact_degraded(&q, Deadline::NONE).unwrap();
            assert_eq!(partial.missing, vec![victim_slice.clone()]);
            let want = oracle_excluding(&ds, &q, &partial.missing);
            assert_eq!(
                (partial.value.pos, partial.value.dist.to_bits()),
                (want.pos, want.dist.to_bits())
            );

            let partial_k = set.knn_degraded(&q, 3, Deadline::NONE).unwrap();
            assert_eq!(partial_k.missing, vec![victim_slice.clone()]);
            for hit in &partial_k.value {
                assert!(!victim_slice.contains(&hit.pos), "hit from a dead slice");
            }

            let eps = partial.value.dist * 2.0;
            let partial_r = set.range_degraded(&q, eps, Deadline::NONE).unwrap();
            assert_eq!(partial_r.missing, vec![victim_slice.clone()]);
            for hit in &partial_r.value {
                assert!(!victim_slice.contains(&hit.pos), "hit from a dead slice");
            }
        }

        // Recovery: the shard comes back and degraded answers are complete
        // (and bit-identical to strict) again.
        set.shards()[victim]
            .dead
            .store(false, std::sync::atomic::Ordering::Relaxed);
        let q = query(207);
        let partial = set.exact_degraded(&q, Deadline::NONE).unwrap();
        assert!(partial.is_complete());
        let strict = set.exact(&q, Deadline::NONE).unwrap();
        assert_eq!(
            (partial.value.pos, partial.value.dist.to_bits()),
            (strict.pos, strict.dist.to_bits())
        );
    }

    #[test]
    fn mismatched_base_is_rejected() {
        let dir = TempDir::new("backend").unwrap();
        let ds = setup(&dir, 40);
        let lsm = Arc::new(
            LsmCoconut::new(
                small_config(),
                BuildOptions::default(),
                dir.path().join("x"),
            )
            .unwrap(),
        );
        assert!(LocalShard::new(lsm, ds, 20..40).is_err());
    }
}
