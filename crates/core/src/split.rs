//! Node-splitting policies for the bottom-up Coconut-Trie builder.
//!
//! The original builder hardcoded binary prefix recursion: every internal
//! node consumes exactly one interleaved key bit. That is faithful to the
//! paper's Coconut-Trie (and is kept, bit-identically, as
//! [`FixedBinaryPolicy`]), but on skewed key distributions it produces the
//! occupancy pathology Figure 8c measures — long one-child chains and
//! near-empty leaves next to dense regions.
//!
//! [`AdaptivePolicy`] is the Dumpy-style fix (arXiv:2304.08264): at every
//! subtree it *measures* how the entries would distribute across fanouts
//! `2, 4, .., 2^max_bits` and picks the fanout whose children — after
//! greedily merging undersized consecutive siblings into shared leaves —
//! pack entries closest to `leaf_capacity`. A wider fanout is only chosen
//! when its occupancy score beats the binary split by more than a
//! confidence margin, so near-ties resolve to the shallow, conservative
//! split instead of an overconfident deep one.
//!
//! **Answer invariance:** a split policy only changes how the sorted key
//! range is *partitioned into leaves* (and therefore the trie skeleton used
//! to seed approximate search). Exact, kNN and range answers are produced
//! by the SIMS scan over the full sorted key array with MINDIST pruning
//! ([`crate::sims`]), which is seed-independent — so any two policies yield
//! bit-identical exact answers over the same data. The `prop_split`
//! integration suite and the `repro occupancy` experiment enforce this.

use std::fmt;
use std::str::FromStr;

use coconut_storage::{Error, Result};
use coconut_summary::ZKey;

/// Which split policy a trie is (or will be) built with. Recorded in the
/// index-file header and the LSM manifest so reopening needs no
/// out-of-band configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicyKind {
    /// The paper's binary prefix split: one interleaved bit per node.
    /// Byte-identical index files to pre-policy builds.
    #[default]
    Fixed,
    /// Dumpy-style variable fanout driven by measured child occupancy.
    Adaptive,
}

impl SplitPolicyKind {
    /// Every valid kind, in CLI/display order.
    pub const ALL: [SplitPolicyKind; 2] = [SplitPolicyKind::Fixed, SplitPolicyKind::Adaptive];

    /// Stable one-byte encoding for headers and manifests.
    pub fn as_u8(self) -> u8 {
        match self {
            SplitPolicyKind::Fixed => 0,
            SplitPolicyKind::Adaptive => 1,
        }
    }

    /// Decode [`SplitPolicyKind::as_u8`]; unknown bytes are corruption.
    pub fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(SplitPolicyKind::Fixed),
            1 => Ok(SplitPolicyKind::Adaptive),
            other => Err(Error::corrupt(format!(
                "unknown split-policy byte {other} (expected 0=fixed or 1=adaptive)"
            ))),
        }
    }

    /// The policy implementation for this kind, with default parameters.
    pub fn policy(self) -> Box<dyn SplitPolicy> {
        match self {
            SplitPolicyKind::Fixed => Box::new(FixedBinaryPolicy),
            SplitPolicyKind::Adaptive => Box::new(AdaptivePolicy::default()),
        }
    }
}

impl fmt::Display for SplitPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SplitPolicyKind::Fixed => "fixed",
            SplitPolicyKind::Adaptive => "adaptive",
        })
    }
}

impl FromStr for SplitPolicyKind {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "fixed" => Ok(SplitPolicyKind::Fixed),
            "adaptive" => Ok(SplitPolicyKind::Adaptive),
            other => Err(Error::invalid(format!(
                "unknown split policy '{other}' (valid options: fixed, adaptive)"
            ))),
        }
    }
}

/// How one subtree of the sorted key range should be split.
///
/// The builder consults the policy only when a subtree does **not** fit one
/// leaf and key bits remain; the returned bit count `b` means "consume `b`
/// interleaved bits here" — fanout `2^b`. Implementations must be
/// deterministic functions of their inputs so that sharded and single-
/// sorter builds stay bit-identical.
pub trait SplitPolicy: Send + Sync {
    /// The serializable kind of this policy.
    fn kind(&self) -> SplitPolicyKind;

    /// Bits to consume at this node. `keys` is the subtree's sorted key
    /// slice (`len > leaf_capacity`), `depth` the first unconsumed bit,
    /// `total_bits` the key width. Must return a value in
    /// `1..=(total_bits - depth)`.
    fn choose_bits(
        &self,
        keys: &[ZKey],
        depth: usize,
        total_bits: usize,
        leaf_capacity: usize,
    ) -> usize;
}

/// The paper's split rule: always one bit. Builds produced under this
/// policy are byte-identical to the pre-policy builder.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedBinaryPolicy;

impl SplitPolicy for FixedBinaryPolicy {
    fn kind(&self) -> SplitPolicyKind {
        SplitPolicyKind::Fixed
    }

    fn choose_bits(&self, _: &[ZKey], _: usize, _: usize, _: usize) -> usize {
        1
    }
}

/// Dumpy-style density-driven fanout choice.
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePolicy {
    /// Widest split considered (fanout `2^max_bits`).
    pub max_bits: usize,
    /// A wider-than-binary fanout must beat the best narrower candidate's
    /// occupancy score by this margin — the guard against "overconfident
    /// splits" on distributions where the extra depth buys nothing.
    pub confidence: f64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        // Fanout up to 16 resolves four binary levels at once; 0.02 keeps
        // near-ties at the conservative shallow split.
        AdaptivePolicy {
            max_bits: 4,
            confidence: 0.02,
        }
    }
}

impl SplitPolicy for AdaptivePolicy {
    fn kind(&self) -> SplitPolicyKind {
        SplitPolicyKind::Adaptive
    }

    fn choose_bits(
        &self,
        keys: &[ZKey],
        depth: usize,
        total_bits: usize,
        leaf_capacity: usize,
    ) -> usize {
        let max_b = self.max_bits.max(1).min(total_bits - depth);
        let mut best_b = 1;
        let mut best_score = occupancy_score(
            &child_counts(keys, depth, 1, total_bits),
            keys.len(),
            leaf_capacity,
        );
        for b in 2..=max_b {
            let score = occupancy_score(
                &child_counts(keys, depth, b, total_bits),
                keys.len(),
                leaf_capacity,
            );
            // Strictly-greater-plus-margin: ties and near-ties keep the
            // narrower (cheaper, safer) fanout.
            if score > best_score + self.confidence {
                best_score = score;
                best_b = b;
            }
        }
        best_b
    }
}

/// Entry counts of the `2^width` children a split at `depth` consuming
/// `width` bits would produce. `keys` must be sorted; each boundary is a
/// binary search, so the whole histogram costs `O(2^width * log n)`.
pub fn child_counts(keys: &[ZKey], depth: usize, width: usize, total_bits: usize) -> Vec<usize> {
    let fanout = 1usize << width;
    let mut counts = vec![0usize; fanout];
    let mut start = 0usize;
    for (slot, count) in counts.iter_mut().enumerate().take(fanout - 1) {
        let end = start
            + keys[start..].partition_point(|k| k.bits(depth, width, total_bits) <= slot as u32);
        *count = end - start;
        start = end;
    }
    counts[fanout - 1] = keys.len() - start;
    counts
}

/// One greedily merged group of consecutive child slots: slots
/// `slots.start..slots.end` holding `entries` entries together. Groups with
/// `entries <= leaf_capacity` become one shared leaf; a group over capacity
/// is always a single slot and recurses deeper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotGroup {
    /// The covered child-slot range.
    pub slots: std::ops::Range<usize>,
    /// Total entries across the covered slots.
    pub entries: usize,
}

/// Greedily merge consecutive child slots so undersized siblings share a
/// leaf: walk the slots left to right, extending the current group while
/// its total stays within `leaf_capacity`; a slot that alone exceeds
/// capacity becomes its own group (it will recurse). Empty slots never
/// start a standalone group — they extend whichever group is open so every
/// slot belongs to exactly one group and descent stays total.
pub fn merge_slots(counts: &[usize], leaf_capacity: usize) -> Vec<SlotGroup> {
    let mut groups: Vec<SlotGroup> = Vec::new();
    let mut start = 0usize;
    let mut total = 0usize;
    for (i, &c) in counts.iter().enumerate() {
        if c > leaf_capacity {
            if i > start {
                groups.push(SlotGroup {
                    slots: start..i,
                    entries: total,
                });
            }
            groups.push(SlotGroup {
                slots: i..i + 1,
                entries: c,
            });
            start = i + 1;
            total = 0;
        } else if total + c > leaf_capacity {
            groups.push(SlotGroup {
                slots: start..i,
                entries: total,
            });
            start = i;
            total = c;
        } else {
            total += c;
        }
    }
    if start < counts.len() {
        groups.push(SlotGroup {
            slots: start..counts.len(),
            entries: total,
        });
    }
    groups
}

/// Score a candidate fanout: the fraction of entries that would settle into
/// within-capacity leaves right here, weighted by how full those leaves
/// would be. Oversized children (which must recurse) and empty slots both
/// pull the score down, so the maximizing fanout is the one that resolves
/// the most entries into the fullest leaves.
pub fn occupancy_score(counts: &[usize], n: usize, leaf_capacity: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let mut settled = 0usize;
    let mut leaf_groups = 0usize;
    for g in merge_slots(counts, leaf_capacity) {
        if g.entries > 0 && g.entries <= leaf_capacity {
            settled += g.entries;
            leaf_groups += 1;
        }
    }
    if leaf_groups == 0 {
        return 0.0;
    }
    let settled_frac = settled as f64 / n as f64;
    let avg_fill = settled as f64 / (leaf_groups * leaf_capacity) as f64;
    settled_frac * avg_fill
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_summary::zorder::interleave;

    #[test]
    fn kind_roundtrips_and_parses() {
        for kind in SplitPolicyKind::ALL {
            assert_eq!(SplitPolicyKind::from_u8(kind.as_u8()).unwrap(), kind);
            assert_eq!(kind.to_string().parse::<SplitPolicyKind>().unwrap(), kind);
            assert_eq!(kind.policy().kind(), kind);
        }
        assert_eq!(SplitPolicyKind::default(), SplitPolicyKind::Fixed);
        assert!(SplitPolicyKind::from_u8(9).is_err());
        let err = "median".parse::<SplitPolicyKind>().unwrap_err().to_string();
        assert!(err.contains("fixed") && err.contains("adaptive"), "{err}");
    }

    #[test]
    fn child_counts_partition_sorted_keys() {
        // 4-bit keys 0..16, three copies each, sorted.
        let mut keys: Vec<ZKey> = Vec::new();
        for v in 0..16u128 {
            for _ in 0..3 {
                keys.push(ZKey(v));
            }
        }
        let c = child_counts(&keys, 0, 2, 4);
        assert_eq!(c, vec![12, 12, 12, 12]);
        let c = child_counts(&keys, 2, 2, 4);
        // At depth 2 the slice is not partitioned by the low bits uniformly,
        // but counts must still sum to n.
        assert_eq!(c.iter().sum::<usize>(), keys.len());
        let c = child_counts(&keys, 0, 4, 4);
        assert_eq!(c, vec![3; 16]);
    }

    #[test]
    fn merge_slots_packs_and_isolates() {
        // capacity 10: [3,3,3,12,0,4] -> [0..3)=9, [3..4)=12 (oversized),
        // [4..6)=4 (empty slot riding along).
        let groups = merge_slots(&[3, 3, 3, 12, 0, 4], 10);
        assert_eq!(
            groups,
            vec![
                SlotGroup {
                    slots: 0..3,
                    entries: 9
                },
                SlotGroup {
                    slots: 3..4,
                    entries: 12
                },
                SlotGroup {
                    slots: 4..6,
                    entries: 4
                },
            ]
        );
        // Every slot is covered exactly once.
        let covered: usize = groups.iter().map(|g| g.slots.len()).sum();
        assert_eq!(covered, 6);
        // Leading empty slots join the first real group.
        let groups = merge_slots(&[0, 0, 7], 10);
        assert_eq!(
            groups,
            vec![SlotGroup {
                slots: 0..3,
                entries: 7
            }]
        );
    }

    #[test]
    fn occupancy_score_prefers_full_leaves() {
        // Perfect packing scores 1.0; half-empty leaves score lower;
        // everything-oversized scores 0.
        assert_eq!(occupancy_score(&[10, 10], 20, 10), 1.0);
        assert!(occupancy_score(&[5, 5], 10, 10) > occupancy_score(&[5, 0], 5, 10));
        assert_eq!(occupancy_score(&[40], 40, 10), 0.0);
        assert_eq!(occupancy_score(&[], 0, 10), 0.0);
    }

    #[test]
    fn adaptive_widens_on_uniform_dense_subtrees() {
        // 256 uniform 8-bit keys, capacity 16: a binary split leaves both
        // children oversized (score 0) while a 4-bit fanout packs each of
        // the 16 children to capacity exactly.
        let keys: Vec<ZKey> = (0..256u128).map(ZKey).collect();
        let p = AdaptivePolicy::default();
        assert_eq!(p.choose_bits(&keys, 0, 8, 16), 4);
        // Binary stays optimal when one bit already separates two full
        // leaves.
        let two: Vec<ZKey> = (0..32u128).map(ZKey).collect();
        assert_eq!(p.choose_bits(&two, 0, 5, 16), 1);
    }

    #[test]
    fn adaptive_respects_remaining_bits() {
        let keys: Vec<ZKey> = (0..8u128)
            .flat_map(|v| std::iter::repeat_n(ZKey(v), 4))
            .collect();
        let p = AdaptivePolicy::default();
        // Only 2 bits remain: never ask for more.
        for depth in [1usize, 2] {
            let b = p.choose_bits(&keys, depth, 3, 4);
            assert!(b >= 1 && b <= 3 - depth, "depth={depth} b={b}");
        }
    }

    #[test]
    fn policies_are_deterministic() {
        let keys: Vec<ZKey> = (0..200u8)
            .map(|i| interleave(&[i, i.wrapping_mul(31)], 8))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        let p = AdaptivePolicy::default();
        let a = p.choose_bits(&sorted, 0, 16, 8);
        let b = p.choose_bits(&sorted, 0, 16, 8);
        assert_eq!(a, b);
    }
}
