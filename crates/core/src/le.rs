//! Infallible little-endian decodes of literal-width slices.
//!
//! `clippy::unwrap_used` is denied on this crate's non-test code because
//! it is reachable from the query server, where a stray panic kills a
//! worker. These helpers are the one sanctioned escape hatch: every
//! caller passes a slice whose width is a literal matching the target
//! type, so the `try_into` can only fail on a programming error — and
//! that *should* panic loudly rather than corrupt a decode.

#![allow(clippy::unwrap_used)]

#[inline]
pub(crate) fn u16(b: &[u8]) -> u16 {
    u16::from_le_bytes(b.try_into().unwrap())
}

#[inline]
pub(crate) fn u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b.try_into().unwrap())
}

#[inline]
pub(crate) fn u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b.try_into().unwrap())
}

#[inline]
pub(crate) fn u128(b: &[u8]) -> u128 {
    u128::from_le_bytes(b.try_into().unwrap())
}

#[inline]
pub(crate) fn f32(b: &[u8]) -> f32 {
    f32::from_le_bytes(b.try_into().unwrap())
}
