//! The crash-safe LSM manifest: the single source of truth for which runs
//! are live in an [`crate::lsm::LsmCoconut`] directory.
//!
//! The manifest is one small binary file (`MANIFEST`) in the index
//! directory, rewritten **atomically** on every run addition and every
//! compaction (write sibling temp, fsync, rename, fsync dir — via
//! [`coconut_storage::atomic`]). It records:
//!
//! * a monotonically increasing sequence number (bumped on every commit),
//! * the index configuration (so `open` needs no out-of-band config),
//! * the covered position range of the raw file (`base..covered_end` —
//!   `base` is 0 for a whole-dataset index and the slice start for a
//!   shard-worker index that owns only a key range),
//! * the next run id to allocate, and
//! * the live run set: for each run its id, covered `start..end` range, and
//!   index-file path relative to the index directory.
//!
//! The payload is guarded by a CRC-64 checksum and a format version, so a
//! torn or corrupted file is *detected* (an error) rather than parsed.
//! Because replacement is atomic, a crash at any point leaves either the
//! previous manifest or the new one — recovery
//! ([`crate::lsm::LsmCoconut::open`]) then deletes whatever run directories
//! the surviving manifest does not reference (orphans of an interrupted
//! ingest or compaction) plus any leftover temporary file.
//!
//! **Invariant:** the run set always covers `base..covered_end`
//! contiguously — `runs[0].start == base`, each run starts where the
//! previous one ends, and the last run ends at `covered_end`.
//! [`Manifest::decode`] rejects manifests that violate this, so a bug
//! cannot persist an inconsistent run set that recovery would then trust.
//!
//! Format version 2 added the `base` field; version-1 manifests (which
//! always covered `0..covered_end`) still decode, with `base = 0`.
//! Version 3 added the split-policy byte ([`crate::split::SplitPolicyKind`])
//! after `internal_fanout`; version-1/2 manifests decode with the fixed
//! policy, which is what they were built under. Version 4 added the
//! compaction-policy byte ([`crate::compaction::CompactionPolicyKind`])
//! right after it; version-1/2/3 manifests decode as tiered, the only
//! policy that existed before v4.

use std::path::{Path, PathBuf};

use coconut_storage::atomic::{atomic_write, crc64, read_all};
use coconut_storage::{Error, Result};
use coconut_summary::SaxConfig;

use crate::compaction::CompactionPolicyKind;
use crate::config::IndexConfig;
use crate::split::SplitPolicyKind;

/// File name of the manifest inside an LSM index directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

const MAGIC: &[u8; 8] = b"CNUTMAN1";
const VERSION: u32 = 4;
/// Oldest format version [`Manifest::decode`] still accepts.
const MIN_VERSION: u32 = 1;
/// magic + version + payload length + crc64.
const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// One live run: a bulk-loaded Coconut-Tree covering a contiguous position
/// range of the raw file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Unique, monotonically allocated run id (also names the run's
    /// directory, `run-<id>`).
    pub id: u64,
    /// First covered raw-file position.
    pub start: u64,
    /// One past the last covered raw-file position.
    pub end: u64,
    /// Index-file path relative to the LSM directory
    /// (e.g. `run-3/ctree-17-ptr.idx`).
    pub file: String,
}

impl RunMeta {
    /// Number of entries the run holds.
    pub fn entries(&self) -> u64 {
        self.end - self.start
    }

    /// The run's directory name (`run-<id>`).
    pub fn dir_name(&self) -> String {
        run_dir_name(self.id)
    }
}

/// The directory name used for run `id`.
pub fn run_dir_name(id: u64) -> String {
    format!("run-{id}")
}

/// The decoded manifest contents.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Commit sequence number; bumped by one on every write.
    pub seq: u64,
    /// The index configuration every run was (and will be) built with.
    pub config: IndexConfig,
    /// Whether runs embed raw series (`-Full` layout).
    pub materialized: bool,
    /// The compaction policy family the index is grown under.
    pub compaction: CompactionPolicyKind,
    /// First raw-file position this index covers: 0 for a whole-dataset
    /// index, the slice start for a shard worker's key-range slice.
    pub base: u64,
    /// The raw file is covered up to (exclusive) this position.
    pub covered_end: u64,
    /// Next run id to allocate.
    pub next_run_id: u64,
    /// Live runs in position order (contiguous, gap-free).
    pub runs: Vec<RunMeta>,
}

impl Manifest {
    /// Path of the manifest file inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Serialize to the on-disk format (header + checksummed payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + self.runs.len() * 48);
        push_u64(&mut payload, self.seq);
        push_u64(&mut payload, self.config.sax.series_len as u64);
        push_u64(&mut payload, self.config.sax.segments as u64);
        payload.push(self.config.sax.card_bits);
        payload.push(self.materialized as u8);
        push_u64(&mut payload, self.config.leaf_capacity as u64);
        push_u64(&mut payload, self.config.fill_factor.to_bits());
        push_u64(&mut payload, self.config.internal_fanout as u64);
        payload.push(self.config.split_policy.as_u8());
        payload.push(self.compaction.as_u8());
        push_u64(&mut payload, self.base);
        push_u64(&mut payload, self.covered_end);
        push_u64(&mut payload, self.next_run_id);
        push_u64(&mut payload, self.runs.len() as u64);
        for run in &self.runs {
            push_u64(&mut payload, run.id);
            push_u64(&mut payload, run.start);
            push_u64(&mut payload, run.end);
            push_u64(&mut payload, run.file.len() as u64);
            payload.extend_from_slice(run.file.as_bytes());
        }

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parse and validate bytes written by [`Manifest::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < HEADER_LEN {
            return Err(Error::corrupt("manifest shorter than its header"));
        }
        if &bytes[..8] != MAGIC {
            return Err(Error::corrupt("bad manifest magic"));
        }
        let version = crate::le::u32(&bytes[8..12]);
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(Error::corrupt(format!(
                "unsupported manifest version {version} (expected {MIN_VERSION}..={VERSION})"
            )));
        }
        let payload_len = crate::le::u64(&bytes[12..20]) as usize;
        let checksum = crate::le::u64(&bytes[20..28]);
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != payload_len {
            return Err(Error::corrupt(format!(
                "manifest payload truncated: {} of {payload_len} bytes",
                payload.len()
            )));
        }
        if crc64(payload) != checksum {
            return Err(Error::corrupt("manifest checksum mismatch"));
        }

        let mut r = Reader(payload);
        let seq = r.u64()?;
        let series_len = r.u64()? as usize;
        let segments = r.u64()? as usize;
        let card_bits = r.u8()?;
        let materialized = r.u8()? != 0;
        let leaf_capacity = r.u64()? as usize;
        let fill_factor = f64::from_bits(r.u64()?);
        let internal_fanout = r.u64()? as usize;
        let split_policy = if version >= 3 {
            SplitPolicyKind::from_u8(r.u8()?)?
        } else {
            SplitPolicyKind::Fixed
        };
        let compaction = if version >= 4 {
            CompactionPolicyKind::from_u8(r.u8()?)?
        } else {
            CompactionPolicyKind::Tiered
        };
        let base = if version >= 2 { r.u64()? } else { 0 };
        let covered_end = r.u64()?;
        let next_run_id = r.u64()?;
        let run_count = r.u64()? as usize;
        let mut runs = Vec::with_capacity(run_count);
        for _ in 0..run_count {
            let id = r.u64()?;
            let start = r.u64()?;
            let end = r.u64()?;
            let name_len = r.u64()? as usize;
            let file = String::from_utf8(r.bytes(name_len)?.to_vec())
                .map_err(|_| Error::corrupt("manifest run path is not UTF-8"))?;
            runs.push(RunMeta {
                id,
                start,
                end,
                file,
            });
        }

        let config = IndexConfig {
            sax: SaxConfig {
                series_len,
                segments,
                card_bits,
            },
            leaf_capacity,
            fill_factor,
            internal_fanout,
            split_policy,
        };
        config.validate()?;
        let manifest = Manifest {
            seq,
            config,
            materialized,
            compaction,
            base,
            covered_end,
            next_run_id,
            runs,
        };
        manifest.check_runs()?;
        Ok(manifest)
    }

    /// Enforce the contiguity invariant documented on the module.
    fn check_runs(&self) -> Result<()> {
        if self.covered_end < self.base {
            return Err(Error::corrupt(format!(
                "manifest covered_end {} is below base {}",
                self.covered_end, self.base
            )));
        }
        let mut expected_start = self.base;
        for run in &self.runs {
            if run.start != expected_start || run.end <= run.start {
                return Err(Error::corrupt(format!(
                    "manifest run {} covers {}..{} but the previous run ended at {expected_start}",
                    run.id, run.start, run.end
                )));
            }
            if run.id >= self.next_run_id {
                return Err(Error::corrupt(format!(
                    "manifest run id {} >= next_run_id {}",
                    run.id, self.next_run_id
                )));
            }
            expected_start = run.end;
        }
        if expected_start != self.covered_end {
            return Err(Error::corrupt(format!(
                "manifest runs cover {}..{expected_start} but covered_end is {}",
                self.base, self.covered_end
            )));
        }
        Ok(())
    }

    /// Atomically replace the manifest in `dir` with this one.
    pub fn store(&self, dir: &Path) -> Result<()> {
        atomic_write(&Self::path_in(dir), &self.encode())
    }

    /// Load and validate the manifest from `dir`.
    pub fn load(dir: &Path) -> Result<Self> {
        Self::decode(&read_all(&Self::path_in(dir), "LSM manifest")?)
    }
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian payload reader.
struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.0.len() < n {
            return Err(Error::corrupt("manifest payload ends unexpectedly"));
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(crate::le::u64(self.bytes(8)?))
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_storage::TempDir;

    fn sample() -> Manifest {
        Manifest {
            seq: 7,
            config: IndexConfig::default_for_len(128),
            materialized: true,
            compaction: CompactionPolicyKind::Tiered,
            base: 0,
            covered_end: 500,
            next_run_id: 5,
            runs: vec![
                RunMeta {
                    id: 2,
                    start: 0,
                    end: 300,
                    file: "run-2/ctree-0-full.idx".into(),
                },
                RunMeta {
                    id: 4,
                    start: 300,
                    end: 500,
                    file: "run-4/ctree-1-full.idx".into(),
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        let empty = Manifest {
            runs: Vec::new(),
            covered_end: 0,
            ..sample()
        };
        assert_eq!(Manifest::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn store_load_roundtrip() {
        let dir = TempDir::new("manifest").unwrap();
        let m = sample();
        m.store(dir.path()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap(), m);
        // A second store replaces the first.
        let mut m2 = m;
        m2.seq = 8;
        m2.store(dir.path()).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap().seq, 8);
    }

    #[test]
    fn corruption_is_detected() {
        let m = sample();
        let good = m.encode();

        // Flip one payload byte: checksum mismatch.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x40;
        assert!(Manifest::decode(&bad).is_err());

        // Truncate: payload length mismatch.
        assert!(Manifest::decode(&good[..good.len() - 3]).is_err());
        // Torn down to less than a header.
        assert!(Manifest::decode(&good[..10]).is_err());

        // Wrong magic and wrong version.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(Manifest::decode(&bad).is_err());
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(Manifest::decode(&bad).is_err());
    }

    #[test]
    fn based_slice_roundtrips() {
        // A shard worker's manifest covers base..covered_end, not 0.. .
        let mut m = sample();
        m.base = 300;
        m.runs.remove(0);
        m.runs[0] = RunMeta {
            start: 300,
            ..m.runs[0].clone()
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);

        // Runs starting below base violate contiguity from base.
        let mut bad = sample();
        bad.base = 300;
        assert!(Manifest::decode(&bad.encode()).is_err());
        // covered_end below base is inconsistent.
        let mut bad = sample();
        bad.base = 900;
        bad.runs.clear();
        assert!(Manifest::decode(&bad.encode()).is_err());
    }

    fn frame(version: u32, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc64(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    // Offset of the split-policy byte in a v3/v4 payload: seq + series_len
    // + segments = 24, card_bits + materialized = 2, leaf + fill + fanout =
    // 24. In a v4 payload the compaction-policy byte follows it.
    const POLICY_OFF: usize = 8 * 3 + 2 + 8 * 3;
    const COMPACTION_OFF: usize = POLICY_OFF + 1;

    #[test]
    fn version1_manifests_still_decode() {
        // Re-encode sample() as a v1 frame (no policy bytes, no base field)
        // by hand and check decode fills fixed/tiered policies and base = 0.
        let m = sample();
        let v4 = m.encode();
        let payload = &v4[HEADER_LEN..];
        let mut v1_payload = Vec::with_capacity(payload.len() - 10);
        v1_payload.extend_from_slice(&payload[..POLICY_OFF]);
        v1_payload.extend_from_slice(&payload[POLICY_OFF + 2 + 8..]);
        let decoded = Manifest::decode(&frame(1, &v1_payload)).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.base, 0);
        assert_eq!(decoded.config.split_policy, SplitPolicyKind::Fixed);
        assert_eq!(decoded.compaction, CompactionPolicyKind::Tiered);
    }

    #[test]
    fn version2_manifests_still_decode() {
        // v2 = v4 minus both policy bytes; decodes as fixed/tiered.
        let m = sample();
        let v4 = m.encode();
        let payload = &v4[HEADER_LEN..];
        let mut v2_payload = Vec::with_capacity(payload.len() - 2);
        v2_payload.extend_from_slice(&payload[..POLICY_OFF]);
        v2_payload.extend_from_slice(&payload[POLICY_OFF + 2..]);
        let decoded = Manifest::decode(&frame(2, &v2_payload)).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.config.split_policy, SplitPolicyKind::Fixed);
        assert_eq!(decoded.compaction, CompactionPolicyKind::Tiered);
    }

    #[test]
    fn version3_manifests_still_decode() {
        // v3 = v4 minus the compaction byte; decodes as tiered.
        let m = sample();
        let v4 = m.encode();
        let payload = &v4[HEADER_LEN..];
        let mut v3_payload = Vec::with_capacity(payload.len() - 1);
        v3_payload.extend_from_slice(&payload[..COMPACTION_OFF]);
        v3_payload.extend_from_slice(&payload[COMPACTION_OFF + 1..]);
        let decoded = Manifest::decode(&frame(3, &v3_payload)).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.compaction, CompactionPolicyKind::Tiered);
    }

    #[test]
    fn split_policy_roundtrips_in_v3() {
        let mut m = sample();
        m.config.split_policy = SplitPolicyKind::Adaptive;
        let decoded = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded.config.split_policy, SplitPolicyKind::Adaptive);
        // An unknown policy byte is corruption, not a silent default.
        let encoded = m.encode();
        let mut bad_payload = encoded[HEADER_LEN..].to_vec();
        bad_payload[POLICY_OFF] = 9;
        assert!(Manifest::decode(&frame(4, &bad_payload)).is_err());
    }

    #[test]
    fn compaction_policy_roundtrips_in_v4() {
        let mut m = sample();
        m.compaction = CompactionPolicyKind::Leveled;
        let decoded = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded.compaction, CompactionPolicyKind::Leveled);
        // An unknown compaction byte is corruption, not a silent default.
        let encoded = m.encode();
        let mut bad_payload = encoded[HEADER_LEN..].to_vec();
        bad_payload[COMPACTION_OFF] = 9;
        assert!(Manifest::decode(&frame(4, &bad_payload)).is_err());
    }

    #[test]
    fn inconsistent_run_sets_rejected() {
        // Gap between runs.
        let mut m = sample();
        m.runs[1].start = 350;
        assert!(Manifest::decode(&m.encode()).is_err());
        // covered_end disagrees with the last run.
        let mut m = sample();
        m.covered_end = 999;
        assert!(Manifest::decode(&m.encode()).is_err());
        // Run id not below next_run_id.
        let mut m = sample();
        m.runs[0].id = 5;
        assert!(Manifest::decode(&m.encode()).is_err());
        // Empty run.
        let mut m = sample();
        m.runs[0].end = 0;
        assert!(Manifest::decode(&m.encode()).is_err());
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let dir = TempDir::new("manifest").unwrap();
        assert!(Manifest::load(dir.path()).is_err());
    }
}
