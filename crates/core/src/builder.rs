//! The shared bottom-up build pipeline: scan → summarize → external sort.
//!
//! Both Coconut indexes start the same way (Algorithms 2 and 3, lines 2–12):
//! scan the raw file sequentially, compute each series' sortable
//! summarization (`invSAX`), and sort the records externally under the
//! memory budget. Non-materialized builds sort only `(key, position)`
//! pairs; `-Full` builds sort whole records.

use std::path::Path;
use std::sync::Arc;

use coconut_series::dataset::Dataset;
use coconut_storage::{ExternalSorter, IoStats, Result, SortReport, SortedStream};
use coconut_summary::sax::Summarizer;
use coconut_summary::SaxConfig;

use crate::records::{KeyPos, KeyPosCodec, KeySeries, KeySeriesCodec};

/// Scan `positions` of `dataset` (a contiguous range) and return the
/// `(key, position)` pairs sorted by key — the non-materialized pipeline.
pub fn sorted_key_pos(
    dataset: &Dataset,
    range: std::ops::Range<u64>,
    sax: &SaxConfig,
    memory_bytes: u64,
    tmp_dir: &Path,
    stats: &Arc<IoStats>,
) -> Result<SortedStream<KeyPosCodec>> {
    debug_assert!(range.end <= dataset.len());
    let mut summarizer = Summarizer::new(*sax);
    let mut sorter = ExternalSorter::new(KeyPosCodec, memory_bytes, tmp_dir, Arc::clone(stats))?;
    // Seek straight to `range.start`: partitioned builds scan K disjoint
    // ranges, and skip-scanning from position 0 would read the raw file K
    // times end-to-end (quadratic in the shard count).
    let mut scan = dataset.scan_range(range);
    while let Some((pos, series)) = scan.next_series()? {
        let key = summarizer.zkey(series);
        sorter.push(KeyPos { key, pos })?;
    }
    sorter.finish()
}

/// Scan `positions` of `dataset` and return whole `(key, position, series)`
/// records sorted by key — the materialized (`-Full`) pipeline. This is the
/// expensive sort the paper attributes most of Coconut-Tree-Full's build
/// time to.
pub fn sorted_key_series(
    dataset: &Dataset,
    range: std::ops::Range<u64>,
    sax: &SaxConfig,
    memory_bytes: u64,
    tmp_dir: &Path,
    stats: &Arc<IoStats>,
) -> Result<SortedStream<KeySeriesCodec>> {
    debug_assert!(range.end <= dataset.len());
    let mut summarizer = Summarizer::new(*sax);
    let codec = KeySeriesCodec::new(dataset.series_len());
    let mut sorter = ExternalSorter::new(codec, memory_bytes, tmp_dir, Arc::clone(stats))?;
    // Positioned scan for the same reason as `sorted_key_pos`.
    let mut scan = dataset.scan_range(range);
    while let Some((pos, series)) = scan.next_series()? {
        let key = summarizer.zkey(series);
        sorter.push(KeySeries {
            key,
            pos,
            series: series.to_vec(),
        })?;
    }
    sorter.finish()
}

/// A summary of how a build went, reported by the experiment harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildReport {
    /// Records indexed.
    pub items: u64,
    /// External-sort behaviour (runs, merge passes).
    pub sort: SortReport,
    /// Leaf nodes created.
    pub leaves: u64,
    /// Leaves forced beyond `leaf_capacity` because identical keys could
    /// not be split further (see `CoconutTrie`'s carve). Zero for
    /// Coconut-Tree builds, which pack by median instead of prefix.
    pub oversized_leaves: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::dataset::write_dataset;
    use coconut_series::gen::RandomWalkGen;
    use coconut_storage::TempDir;

    fn small_dataset(dir: &TempDir, n: u64, len: usize) -> (Dataset, Arc<IoStats>) {
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        write_dataset(&path, &mut RandomWalkGen::new(99), n, len, &stats).unwrap();
        (Dataset::open(&path, Arc::clone(&stats)).unwrap(), stats)
    }

    #[test]
    fn key_pos_stream_is_sorted_and_complete() {
        let dir = TempDir::new("builder").unwrap();
        let (ds, stats) = small_dataset(&dir, 500, 64);
        let sax = SaxConfig::default_for_len(64);
        let mut stream = sorted_key_pos(&ds, 0..500, &sax, 1 << 20, dir.path(), &stats).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut prev = None;
        while let Some(kp) = stream.next_item().unwrap() {
            if let Some(p) = prev {
                assert!(p <= kp, "stream must be sorted");
            }
            assert!(seen.insert(kp.pos), "duplicate position {}", kp.pos);
            prev = Some(kp);
        }
        assert_eq!(seen.len(), 500);
    }

    #[test]
    fn key_series_stream_carries_correct_payloads() {
        let dir = TempDir::new("builder").unwrap();
        let (ds, stats) = small_dataset(&dir, 100, 32);
        let sax = SaxConfig::default_for_len(32);
        let mut stream = sorted_key_series(&ds, 0..100, &sax, 1 << 16, dir.path(), &stats).unwrap();
        let mut n = 0;
        while let Some(ks) = stream.next_item().unwrap() {
            let expected = ds.get(ks.pos).unwrap();
            assert_eq!(ks.series, expected, "payload mismatch at pos {}", ks.pos);
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn range_restricts_positions() {
        let dir = TempDir::new("builder").unwrap();
        let (ds, stats) = small_dataset(&dir, 200, 32);
        let sax = SaxConfig::default_for_len(32);
        let mut stream = sorted_key_pos(&ds, 50..150, &sax, 1 << 20, dir.path(), &stats).unwrap();
        let mut n = 0;
        while let Some(kp) = stream.next_item().unwrap() {
            assert!((50..150).contains(&kp.pos));
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn tail_range_reads_io_proportional_to_range() {
        // The headline bugfix: building over `start..end` must seek to
        // `start`, not skip-scan from position 0.
        let dir = TempDir::new("builder").unwrap();
        let (ds, stats) = small_dataset(&dir, 2000, 64);
        let sax = SaxConfig::default_for_len(64);
        let before = stats.snapshot();
        let mut stream =
            sorted_key_pos(&ds, 1900..2000, &sax, 1 << 20, dir.path(), &stats).unwrap();
        let mut n = 0;
        while let Some(kp) = stream.next_item().unwrap() {
            assert!((1900..2000).contains(&kp.pos));
            n += 1;
        }
        assert_eq!(n, 100);
        let delta = stats.snapshot().since(&before);
        // Exactly the 100-series tail (100 * 64 points * 4 bytes), not the
        // 2000-series file.
        assert_eq!(delta.bytes_read, 100 * 64 * 4, "tail build read too much");
    }

    #[test]
    fn tiny_memory_budget_spills_runs() {
        let dir = TempDir::new("builder").unwrap();
        let (ds, stats) = small_dataset(&dir, 2000, 32);
        let sax = SaxConfig::default_for_len(32);
        let stream = sorted_key_pos(&ds, 0..2000, &sax, 1024, dir.path(), &stats).unwrap();
        assert!(
            stream.report().runs > 1,
            "expected spills, got {:?}",
            stream.report()
        );
    }
}
