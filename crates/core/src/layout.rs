//! On-disk layout shared by Coconut-Tree and Coconut-Trie.
//!
//! An index file is:
//!
//! ```text
//! [ header, 4 KiB reserved ]
//! [ leaf block 0 ][ leaf block 1 ] ...      <- written bottom-up, in order
//! [ directory: LeafMeta per logical leaf ]
//! [ index-specific tail (e.g. trie nodes) ]
//! ```
//!
//! Leaf blocks are fixed-size (`leaf_capacity * entry_bytes`), so occupancy
//! below capacity shows up as on-disk slack — exactly how the paper's
//! Figure 8c space-overhead comparison works. Bulk loading writes blocks
//! strictly left-to-right (sequential I/O); only post-build inserts can
//! append out-of-order blocks and break contiguity.
//!
//! Entries are `key (16B) | position (8B) [| series payload]`, the payload
//! being present in materialized (`-Full`) indexes.
//!
//! ## Checksums (layout checksum version 1)
//!
//! Current writers emit a `DIR2` directory carrying one CRC per leaf (over
//! that leaf's packed entry bytes) plus a whole-directory CRC, and a header
//! whose byte 50 records the checksum version with a header CRC in bytes
//! 60..64. [`LeafStore::read_leaf`] verifies a leaf's CRC on every read, so
//! bit rot surfaces as a typed [`Error::Corrupt`] instead of a wrong
//! answer. Legacy files (`DIR1`, header byte 50 zero) still decode — their
//! leaves carry CRC 0, meaning *unchecked*, and answer exactly as before.

use std::sync::Arc;

use coconut_series::Value;
use coconut_storage::cache::PageKey;
use coconut_storage::{crc64, CountedFile, Error, PageCache, Result};
use coconut_summary::ZKey;

/// Offset of the first leaf block (the header page).
pub const LEAF_REGION_OFFSET: u64 = 4096;

const HEADER_MAGIC: &[u8; 8] = b"CCNTIX01";
/// Legacy directory format: 28-byte records, no checksums.
const DIR_MAGIC_V1: &[u8; 4] = b"DIR1";
/// Checksummed directory format: per-leaf CRC + whole-directory CRC.
const DIR_MAGIC_V2: &[u8; 4] = b"DIR2";

/// The layout checksum version current writers emit (header byte 50).
pub const CHECKSUM_VERSION: u8 = 1;

/// The 32-bit CRC used for leaf blocks, directories, and headers: the
/// low half of the storage layer's CRC-64, which keeps one table for all
/// on-disk checksums. `0` is reserved to mean *unchecked* (legacy data);
/// a computed zero is mapped to 1, costing one in 2^32 checksums one bit
/// of strength.
pub fn crc32(bytes: &[u8]) -> u32 {
    match crc64(bytes) as u32 {
        0 => 1,
        c => c,
    }
}

/// Entry encoding parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryLayout {
    /// Points per series (payload length when materialized).
    pub series_len: usize,
    /// Whether entries embed the raw series.
    pub materialized: bool,
}

impl EntryLayout {
    /// Bytes per entry.
    pub fn entry_bytes(&self) -> usize {
        if self.materialized {
            24 + 4 * self.series_len
        } else {
            24
        }
    }

    /// Encode an entry into `buf` (sized `entry_bytes`). `series` must be
    /// `Some` iff the layout is materialized.
    pub fn encode(&self, key: ZKey, pos: u64, series: Option<&[Value]>, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), self.entry_bytes());
        buf[..16].copy_from_slice(&key.0.to_le_bytes());
        buf[16..24].copy_from_slice(&pos.to_le_bytes());
        if self.materialized {
            // API invariant, not input data: every materialized write site
            // passes a payload, so this can only panic on a caller bug.
            #[allow(clippy::expect_used)]
            let series = series.expect("materialized entry needs a payload");
            debug_assert_eq!(series.len(), self.series_len);
            for (i, &v) in series.iter().enumerate() {
                buf[24 + 4 * i..28 + 4 * i].copy_from_slice(&v.to_le_bytes());
            }
        }
    }

    /// The key of an encoded entry.
    #[inline]
    pub fn key(&self, entry: &[u8]) -> ZKey {
        ZKey(crate::le::u128(&entry[..16]))
    }

    /// The raw-file position of an encoded entry.
    #[inline]
    pub fn pos(&self, entry: &[u8]) -> u64 {
        crate::le::u64(&entry[16..24])
    }

    /// Decode the embedded series into `out` (materialized layouts only).
    #[inline]
    pub fn series_into(&self, entry: &[u8], out: &mut [Value]) {
        debug_assert!(self.materialized);
        debug_assert_eq!(out.len(), self.series_len);
        for (i, chunk) in entry[24..24 + 4 * self.series_len]
            .chunks_exact(4)
            .enumerate()
        {
            out[i] = crate::le::f32(chunk);
        }
    }
}

/// Metadata of one logical leaf, in index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafMeta {
    /// Smallest key in the leaf.
    pub first_key: ZKey,
    /// Number of entries.
    pub count: u32,
    /// First physical block number.
    pub block: u32,
    /// Consecutive physical blocks occupied (1 except for oversized trie
    /// leaves holding more duplicates than one block fits).
    pub blocks_used: u32,
    /// [`crc32`] over the leaf's packed entry bytes (`count` entries,
    /// padding excluded); 0 means unchecked (legacy `DIR1` directories).
    pub crc: u32,
}

const LEAF_META_BYTES_V1: usize = 16 + 4 + 4 + 4;
const LEAF_META_BYTES_V2: usize = LEAF_META_BYTES_V1 + 4;

/// The fixed index-file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexHeader {
    /// 0 = Coconut-Tree, 1 = Coconut-Trie (distinguishes tails).
    pub kind: u8,
    /// Whether entries embed raw series.
    pub materialized: bool,
    /// Series length in points.
    pub series_len: u32,
    /// SAX segments.
    pub segments: u16,
    /// SAX bits per symbol.
    pub card_bits: u8,
    /// Max entries per leaf block.
    pub leaf_capacity: u32,
    /// Total entries in the index.
    pub entry_count: u64,
    /// Physical leaf blocks written.
    pub num_blocks: u64,
    /// Byte offset of the directory.
    pub dir_offset: u64,
    /// Encoding version of the index-specific tail. `0` is the original
    /// encoding (Coconut-Tree tail; binary trie node triples); `1` adds the
    /// variable-fanout trie node record. Pre-versioning files read as `0`
    /// because the header byte was reserved-zero.
    pub tail_version: u8,
    /// [`crate::split::SplitPolicyKind::as_u8`] of the policy the index was
    /// built under (reserved-zero = fixed on pre-versioning files).
    pub split_policy: u8,
    /// Layout checksum version (header byte 50): 0 = legacy, nothing
    /// checksummed; [`CHECKSUM_VERSION`] = header CRC in bytes 60..64 plus
    /// a `DIR2` directory with per-leaf CRCs. Readers accept both.
    pub checksums: u8,
}

impl IndexHeader {
    fn encode(&self) -> [u8; 64] {
        let mut h = [0u8; 64];
        h[..8].copy_from_slice(HEADER_MAGIC);
        h[8] = self.kind;
        h[9] = self.materialized as u8;
        h[10] = self.card_bits;
        h[12..14].copy_from_slice(&self.segments.to_le_bytes());
        h[16..20].copy_from_slice(&self.series_len.to_le_bytes());
        h[20..24].copy_from_slice(&self.leaf_capacity.to_le_bytes());
        h[24..32].copy_from_slice(&self.entry_count.to_le_bytes());
        h[32..40].copy_from_slice(&self.num_blocks.to_le_bytes());
        h[40..48].copy_from_slice(&self.dir_offset.to_le_bytes());
        h[48] = self.tail_version;
        h[49] = self.split_policy;
        h[50] = self.checksums;
        if self.checksums != 0 {
            let crc = crc32(&h[..60]);
            h[60..64].copy_from_slice(&crc.to_le_bytes());
        }
        h
    }

    fn decode(h: &[u8; 64]) -> Result<Self> {
        if &h[..8] != HEADER_MAGIC {
            return Err(Error::corrupt("bad index magic"));
        }
        if h[50] != 0 {
            let stored = crate::le::u32(&h[60..64]);
            if crc32(&h[..60]) != stored {
                return Err(Error::corrupt("index header checksum mismatch"));
            }
        }
        Ok(IndexHeader {
            kind: h[8],
            materialized: h[9] != 0,
            card_bits: h[10],
            segments: crate::le::u16(&h[12..14]),
            series_len: crate::le::u32(&h[16..20]),
            leaf_capacity: crate::le::u32(&h[20..24]),
            entry_count: crate::le::u64(&h[24..32]),
            num_blocks: crate::le::u64(&h[32..40]),
            dir_offset: crate::le::u64(&h[40..48]),
            tail_version: h[48],
            split_policy: h[49],
            checksums: h[50],
        })
    }

    /// Write the header at offset 0.
    pub fn write_to(&self, file: &CountedFile) -> Result<()> {
        file.write_all_at(&self.encode(), 0)
    }

    /// Read and validate the header.
    pub fn read_from(file: &CountedFile) -> Result<Self> {
        let mut h = [0u8; 64];
        file.read_exact_at(&mut h, 0)?;
        Self::decode(&h)
    }
}

/// Serialize the leaf directory at the current end of `file`; returns its
/// offset. Emits the checksummed `DIR2` format: each record carries the
/// leaf's CRC, and a whole-directory [`crc32`] follows the records so a
/// torn or bit-rotted directory is detected at open time.
pub fn write_directory(file: &CountedFile, leaves: &[LeafMeta]) -> Result<u64> {
    let mut buf = Vec::with_capacity(12 + leaves.len() * LEAF_META_BYTES_V2 + 4);
    buf.extend_from_slice(DIR_MAGIC_V2);
    buf.extend_from_slice(&(leaves.len() as u64).to_le_bytes());
    for l in leaves {
        buf.extend_from_slice(&l.first_key.0.to_le_bytes());
        buf.extend_from_slice(&l.count.to_le_bytes());
        buf.extend_from_slice(&l.block.to_le_bytes());
        buf.extend_from_slice(&l.blocks_used.to_le_bytes());
        buf.extend_from_slice(&l.crc.to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    file.append(&buf)
}

/// Read a directory written by [`write_directory`] (either `DIR2` or the
/// legacy `DIR1` format, whose leaves read back with CRC 0 = unchecked).
pub fn read_directory(file: &CountedFile, offset: u64) -> Result<(Vec<LeafMeta>, u64)> {
    let mut head = [0u8; 12];
    file.read_exact_at(&mut head, offset)?;
    let checksummed = match &head[..4] {
        m if m == DIR_MAGIC_V2 => true,
        m if m == DIR_MAGIC_V1 => false,
        _ => return Err(Error::corrupt("bad directory magic")),
    };
    let n = crate::le::u64(&head[4..12]) as usize;
    let meta_bytes = if checksummed {
        LEAF_META_BYTES_V2
    } else {
        LEAF_META_BYTES_V1
    };
    let mut buf = vec![0u8; n * meta_bytes];
    file.read_exact_at(&mut buf, offset + 12)?;
    let mut end = offset + 12 + (n * meta_bytes) as u64;
    if checksummed {
        let mut stored = [0u8; 4];
        file.read_exact_at(&mut stored, end)?;
        end += 4;
        let mut payload = Vec::with_capacity(12 + buf.len());
        payload.extend_from_slice(&head);
        payload.extend_from_slice(&buf);
        if crc32(&payload) != u32::from_le_bytes(stored) {
            return Err(Error::corrupt("index directory checksum mismatch"));
        }
    }
    let mut leaves = Vec::with_capacity(n);
    for c in buf.chunks_exact(meta_bytes) {
        leaves.push(LeafMeta {
            first_key: ZKey(crate::le::u128(&c[..16])),
            count: crate::le::u32(&c[16..20]),
            block: crate::le::u32(&c[20..24]),
            blocks_used: crate::le::u32(&c[24..28]),
            crc: if checksummed {
                crate::le::u32(&c[28..32])
            } else {
                0
            },
        });
    }
    Ok((leaves, end))
}

/// Reader/writer for fixed-size leaf blocks, optionally backed by a shared
/// buffer pool.
#[derive(Debug, Clone)]
pub struct LeafStore {
    file: Arc<CountedFile>,
    entry: EntryLayout,
    capacity: usize,
    /// Optional buffer pool: leaf blocks are cached under
    /// `(cache_file_id, block_no)`.
    cache: Option<(Arc<PageCache>, u32)>,
}

impl LeafStore {
    /// A store over `file` with the given entry layout and leaf capacity.
    pub fn new(file: Arc<CountedFile>, entry: EntryLayout, capacity: usize) -> Self {
        LeafStore {
            file,
            entry,
            capacity,
            cache: None,
        }
    }

    /// Route subsequent block reads through `cache` (identified by
    /// `file_id` within the pool). Writes invalidate affected blocks.
    pub fn attach_cache(&mut self, cache: Arc<PageCache>, file_id: u32) {
        self.cache = Some((cache, file_id));
    }

    /// The entry layout.
    pub fn entry(&self) -> &EntryLayout {
        &self.entry
    }

    /// Leaf capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes per physical block.
    pub fn block_bytes(&self) -> usize {
        self.capacity * self.entry.entry_bytes()
    }

    /// The underlying file.
    pub fn file(&self) -> &Arc<CountedFile> {
        &self.file
    }

    fn block_offset(&self, block: u32) -> u64 {
        LEAF_REGION_OFFSET + block as u64 * self.block_bytes() as u64
    }

    /// Read the entries of `leaf` into `buf` (resized to fit); afterwards
    /// `buf` holds `leaf.count` packed entries. Reads go through the
    /// attached buffer pool when present. When the leaf carries a CRC
    /// (checksummed `DIR2` directories) the packed bytes are verified and a
    /// mismatch surfaces as [`Error::Corrupt`] naming the block.
    pub fn read_leaf(&self, leaf: &LeafMeta, buf: &mut Vec<u8>) -> Result<()> {
        let bytes = leaf.count as usize * self.entry.entry_bytes();
        debug_assert!(bytes <= leaf.blocks_used as usize * self.block_bytes());
        buf.resize(bytes, 0);
        if let Some((cache, file_id)) = &self.cache {
            // Cache whole leaf extents (blocks_used * block) keyed by the
            // first physical block number.
            let key = PageKey {
                file_id: *file_id,
                page_no: leaf.block as u64,
            };
            let extent = cache.get_with(key, || {
                let mut full = vec![0u8; leaf.blocks_used as usize * self.block_bytes()];
                self.file
                    .read_exact_at(&mut full, self.block_offset(leaf.block))?;
                Ok(full)
            })?;
            buf.copy_from_slice(&extent[..bytes]);
        } else {
            self.file
                .read_exact_at(buf, self.block_offset(leaf.block))?;
        }
        if leaf.crc != 0 && crc32(buf) != leaf.crc {
            return Err(Error::corrupt(format!(
                "leaf block {} failed checksum ({} entries)",
                leaf.block, leaf.count
            )));
        }
        Ok(())
    }

    /// Write `entries` (packed) as leaf `block`, zero-padding to the block
    /// boundary. `entries` may span multiple blocks for oversized leaves.
    /// Invalidates the affected cache extent.
    pub fn write_leaf(&self, block: u32, entries: &[u8]) -> Result<u32> {
        debug_assert_eq!(entries.len() % self.entry.entry_bytes(), 0);
        let blocks_used = entries.len().div_ceil(self.block_bytes()).max(1) as u32;
        let mut padded = vec![0u8; blocks_used as usize * self.block_bytes()];
        padded[..entries.len()].copy_from_slice(entries);
        self.file.write_all_at(&padded, self.block_offset(block))?;
        if let Some((cache, file_id)) = &self.cache {
            cache.invalidate(PageKey {
                file_id: *file_id,
                page_no: block as u64,
            });
        }
        Ok(blocks_used)
    }

    /// Slice entry `slot` out of a leaf buffer from [`LeafStore::read_leaf`].
    #[inline]
    pub fn entry_slice<'a>(&self, buf: &'a [u8], slot: usize) -> &'a [u8] {
        let eb = self.entry.entry_bytes();
        &buf[slot * eb..(slot + 1) * eb]
    }
}

/// What a full-index checksum scan found — the per-run unit of
/// `coconut scrub`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Leaves whose CRC was verified clean.
    pub checked: u64,
    /// Leaves carrying CRC 0 (legacy, nothing to verify against).
    pub unchecked: u64,
}

impl ScrubReport {
    /// Fold another report into this one.
    pub fn merge(&mut self, other: ScrubReport) {
        self.checked += other.checked;
        self.unchecked += other.unchecked;
    }
}

/// Read every leaf once, verifying checksummed leaves against their
/// directory CRC. Returns on the first corrupt leaf with the
/// [`Error::Corrupt`] naming its block.
pub fn scrub_leaves(store: &LeafStore, leaves: &[LeafMeta]) -> Result<ScrubReport> {
    let mut report = ScrubReport::default();
    let mut buf = Vec::new();
    for leaf in leaves {
        store.read_leaf(leaf, &mut buf)?;
        if leaf.crc == 0 {
            report.unchecked += 1;
        } else {
            report.checked += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_storage::{IoStats, TempDir};

    fn mk_file(dir: &TempDir) -> Arc<CountedFile> {
        Arc::new(CountedFile::create(dir.path().join("ix.bin"), Arc::new(IoStats::new())).unwrap())
    }

    #[test]
    fn entry_layout_roundtrip_nonmaterialized() {
        let e = EntryLayout {
            series_len: 8,
            materialized: false,
        };
        assert_eq!(e.entry_bytes(), 24);
        let mut buf = vec![0u8; 24];
        e.encode(ZKey(999), 77, None, &mut buf);
        assert_eq!(e.key(&buf), ZKey(999));
        assert_eq!(e.pos(&buf), 77);
    }

    #[test]
    fn entry_layout_roundtrip_materialized() {
        let e = EntryLayout {
            series_len: 4,
            materialized: true,
        };
        assert_eq!(e.entry_bytes(), 40);
        let series = [1.5f32, -2.0, 0.0, 42.0];
        let mut buf = vec![0u8; 40];
        e.encode(ZKey(5), 3, Some(&series), &mut buf);
        assert_eq!(e.key(&buf), ZKey(5));
        assert_eq!(e.pos(&buf), 3);
        let mut out = [0f32; 4];
        e.series_into(&buf, &mut out);
        assert_eq!(out, series);
    }

    #[test]
    fn header_roundtrip() {
        let dir = TempDir::new("layout").unwrap();
        let f = mk_file(&dir);
        let h = IndexHeader {
            kind: 1,
            materialized: true,
            series_len: 256,
            segments: 16,
            card_bits: 8,
            leaf_capacity: 2000,
            entry_count: 123_456,
            num_blocks: 62,
            dir_offset: 99_999,
            tail_version: 1,
            split_policy: 1,
            checksums: CHECKSUM_VERSION,
        };
        h.write_to(&f).unwrap();
        assert_eq!(IndexHeader::read_from(&f).unwrap(), h);
    }

    #[test]
    fn checksummed_header_detects_bit_flip() {
        let dir = TempDir::new("layout").unwrap();
        let f = mk_file(&dir);
        let h = IndexHeader {
            kind: 0,
            materialized: false,
            series_len: 64,
            segments: 16,
            card_bits: 4,
            leaf_capacity: 100,
            entry_count: 9,
            num_blocks: 1,
            dir_offset: 4096,
            tail_version: 1,
            split_policy: 0,
            checksums: CHECKSUM_VERSION,
        };
        h.write_to(&f).unwrap();
        // Flip a bit inside the checksummed prefix (entry_count).
        let mut raw = h.encode();
        raw[24] ^= 0x01;
        f.write_all_at(&raw, 0).unwrap();
        let err = IndexHeader::read_from(&f).unwrap_err();
        assert!(err.to_string().contains("header checksum"), "{err}");
    }

    #[test]
    fn reserved_zero_header_bytes_decode_as_fixed_legacy() {
        // Pre-versioning writers left bytes 48/49 zero; they must read back
        // as tail version 0 under the fixed policy.
        let dir = TempDir::new("layout").unwrap();
        let f = mk_file(&dir);
        let h = IndexHeader {
            kind: 0,
            materialized: false,
            series_len: 64,
            segments: 16,
            card_bits: 4,
            leaf_capacity: 100,
            entry_count: 1,
            num_blocks: 1,
            dir_offset: 4096,
            tail_version: 0,
            split_policy: 0,
            checksums: 0,
        };
        h.write_to(&f).unwrap();
        let back = IndexHeader::read_from(&f).unwrap();
        assert_eq!(back.tail_version, 0);
        assert_eq!(back.split_policy, 0);
        assert_eq!(back.checksums, 0);
    }

    #[test]
    fn header_rejects_garbage() {
        let dir = TempDir::new("layout").unwrap();
        let f = mk_file(&dir);
        f.append(&[7u8; 64]).unwrap();
        assert!(IndexHeader::read_from(&f).is_err());
    }

    #[test]
    fn directory_roundtrip() {
        let dir = TempDir::new("layout").unwrap();
        let f = mk_file(&dir);
        f.append(&[0u8; 100]).unwrap(); // arbitrary preceding content
        let leaves = vec![
            LeafMeta {
                first_key: ZKey(1),
                count: 10,
                block: 0,
                blocks_used: 1,
                crc: 0xDEAD_BEEF,
            },
            LeafMeta {
                first_key: ZKey(500),
                count: 2000,
                block: 1,
                blocks_used: 1,
                crc: 7,
            },
            LeafMeta {
                first_key: ZKey(u128::MAX),
                count: 4100,
                block: 2,
                blocks_used: 3,
                crc: 0,
            },
        ];
        let off = write_directory(&f, &leaves).unwrap();
        let (back, end) = read_directory(&f, off).unwrap();
        assert_eq!(back, leaves);
        assert_eq!(end, f.len());
    }

    #[test]
    fn legacy_dir1_directory_reads_unchecked() {
        // Hand-build the pre-checksum DIR1 encoding (28-byte records, no
        // trailing CRC) and confirm it decodes with crc = 0 on every leaf.
        let dir = TempDir::new("layout").unwrap();
        let f = mk_file(&dir);
        let mut buf = Vec::new();
        buf.extend_from_slice(DIR_MAGIC_V1);
        buf.extend_from_slice(&2u64.to_le_bytes());
        for (key, count, block, used) in [(3u128, 5u32, 0u32, 1u32), (900, 7, 1, 2)] {
            buf.extend_from_slice(&key.to_le_bytes());
            buf.extend_from_slice(&count.to_le_bytes());
            buf.extend_from_slice(&block.to_le_bytes());
            buf.extend_from_slice(&used.to_le_bytes());
        }
        let off = f.append(&buf).unwrap();
        let (back, end) = read_directory(&f, off).unwrap();
        assert_eq!(end, f.len());
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].first_key, ZKey(3));
        assert_eq!(back[1].blocks_used, 2);
        assert!(back.iter().all(|l| l.crc == 0), "legacy leaves unchecked");
    }

    #[test]
    fn corrupted_directory_is_detected() {
        let dir = TempDir::new("layout").unwrap();
        let f = mk_file(&dir);
        let leaves = vec![LeafMeta {
            first_key: ZKey(42),
            count: 3,
            block: 0,
            blocks_used: 1,
            crc: 17,
        }];
        let off = write_directory(&f, &leaves).unwrap();
        // Flip one byte inside a directory record.
        let mut raw = [0u8; 1];
        f.read_exact_at(&mut raw, off + 13).unwrap();
        raw[0] ^= 0x40;
        f.write_all_at(&raw, off + 13).unwrap();
        let err = read_directory(&f, off).unwrap_err();
        assert!(err.to_string().contains("directory checksum"), "{err}");
    }

    #[test]
    fn leafstore_write_read_roundtrip() {
        let dir = TempDir::new("layout").unwrap();
        let f = mk_file(&dir);
        let layout = EntryLayout {
            series_len: 4,
            materialized: false,
        };
        let store = LeafStore::new(f, layout, 3); // 3 entries per block
        assert_eq!(store.block_bytes(), 72);

        // Leaf 0: two entries (partially full block).
        let mut entries = vec![0u8; 48];
        let mut e0 = vec![0u8; 24];
        layout.encode(ZKey(10), 100, None, &mut e0);
        let mut e1 = vec![0u8; 24];
        layout.encode(ZKey(20), 200, None, &mut e1);
        entries[..24].copy_from_slice(&e0);
        entries[24..].copy_from_slice(&e1);
        let used = store.write_leaf(0, &entries).unwrap();
        assert_eq!(used, 1);

        let leaf = LeafMeta {
            first_key: ZKey(10),
            count: 2,
            block: 0,
            blocks_used: 1,
            crc: crc32(&entries),
        };
        let mut buf = Vec::new();
        store.read_leaf(&leaf, &mut buf).unwrap();
        assert_eq!(buf.len(), 48);
        assert_eq!(layout.key(store.entry_slice(&buf, 0)), ZKey(10));
        assert_eq!(layout.pos(store.entry_slice(&buf, 1)), 200);
    }

    #[test]
    fn leaf_crc_mismatch_is_corrupt_not_wrong() {
        let dir = TempDir::new("layout").unwrap();
        let f = mk_file(&dir);
        let layout = EntryLayout {
            series_len: 4,
            materialized: false,
        };
        let store = LeafStore::new(f.clone(), layout, 3);
        let mut entries = vec![0u8; 24];
        layout.encode(ZKey(1), 1, None, &mut entries);
        store.write_leaf(0, &entries).unwrap();
        let leaf = LeafMeta {
            first_key: ZKey(1),
            count: 1,
            block: 0,
            blocks_used: 1,
            crc: crc32(&entries),
        };
        // Reads verify fine, then a bit flips on disk.
        let mut buf = Vec::new();
        store.read_leaf(&leaf, &mut buf).unwrap();
        let mut byte = [0u8; 1];
        f.read_exact_at(&mut byte, LEAF_REGION_OFFSET + 16).unwrap();
        byte[0] ^= 0x80;
        f.write_all_at(&byte, LEAF_REGION_OFFSET + 16).unwrap();
        let err = store.read_leaf(&leaf, &mut buf).unwrap_err();
        assert!(err.to_string().contains("failed checksum"), "{err}");
        // An unchecked (legacy) leaf with crc 0 still reads the raw bytes.
        let legacy = LeafMeta { crc: 0, ..leaf };
        store.read_leaf(&legacy, &mut buf).unwrap();
    }

    #[test]
    fn oversized_leaf_spans_blocks() {
        let dir = TempDir::new("layout").unwrap();
        let f = mk_file(&dir);
        let layout = EntryLayout {
            series_len: 4,
            materialized: false,
        };
        let store = LeafStore::new(f, layout, 2); // 2 entries per block
                                                  // 5 entries -> 3 blocks.
        let mut entries = vec![0u8; 5 * 24];
        for i in 0..5 {
            let mut e = vec![0u8; 24];
            layout.encode(ZKey(i as u128), i, None, &mut e);
            entries[i as usize * 24..(i as usize + 1) * 24].copy_from_slice(&e);
        }
        let used = store.write_leaf(0, &entries).unwrap();
        assert_eq!(used, 3);
        let leaf = LeafMeta {
            first_key: ZKey(0),
            count: 5,
            block: 0,
            blocks_used: 3,
            crc: crc32(&entries),
        };
        let mut buf = Vec::new();
        store.read_leaf(&leaf, &mut buf).unwrap();
        for i in 0..5 {
            assert_eq!(layout.pos(store.entry_slice(&buf, i)), i as u64);
        }
    }
}
