//! Sortable records and their codecs for the external sorter.
//!
//! Non-materialized builds sort 24-byte `(zkey, position)` pairs; the
//! `-Full` builds sort whole `(zkey, position, series)` records — that is
//! why the paper's Coconut-Tree-Full "spends most of its time sorting the
//! raw data" while plain Coconut-Tree's "external sort overhead is really
//! small".

use std::cmp::Ordering;

use coconut_series::Value;
use coconut_storage::Codec;
use coconut_summary::ZKey;

use crate::layout::EntryLayout;

/// A record the bulk loader can consume from any sorted stream, and that a
/// built index can stream back out of its leaves (the LSM compaction path).
///
/// Implemented by [`KeyPos`] (non-materialized builds) and [`KeySeries`]
/// (materialized `-Full` builds). The `Ord` supertrait is the total
/// `(key, pos)` order every sorted stream in the workspace shares.
pub trait SortedRecord: Ord {
    /// The sortable summarization key.
    fn key(&self) -> ZKey;

    /// Position of the record's series in the raw dataset file.
    fn pos(&self) -> u64;

    /// The raw series payload (`Some` for materialized records only).
    fn series(&self) -> Option<&[Value]>;

    /// Decode one on-disk leaf entry back into a record — the inverse of
    /// the bulk loader's [`EntryLayout::encode`]. [`KeySeries`] requires a
    /// materialized layout; [`KeyPos`] accepts either (it reads only the
    /// 24-byte header).
    fn from_entry(layout: &EntryLayout, entry: &[u8]) -> Self;
}

/// A `(key, position)` pair — the record of non-materialized builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct KeyPos {
    /// Sortable summarization.
    pub key: ZKey,
    /// Position in the raw dataset (tie-breaker, keeps the sort total).
    pub pos: u64,
}

/// Codec for [`KeyPos`]: 16 bytes of key + 8 bytes of position.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyPosCodec;

impl Codec for KeyPosCodec {
    type Item = KeyPos;

    fn record_size(&self) -> usize {
        24
    }

    fn encode(&self, item: &KeyPos, buf: &mut [u8]) {
        buf[..16].copy_from_slice(&item.key.0.to_le_bytes());
        buf[16..24].copy_from_slice(&item.pos.to_le_bytes());
    }

    fn decode(&self, buf: &[u8]) -> KeyPos {
        KeyPos {
            key: ZKey(crate::le::u128(&buf[..16])),
            pos: crate::le::u64(&buf[16..24]),
        }
    }
}

impl SortedRecord for KeyPos {
    fn key(&self) -> ZKey {
        self.key
    }

    fn pos(&self) -> u64 {
        self.pos
    }

    fn series(&self) -> Option<&[Value]> {
        None
    }

    fn from_entry(layout: &EntryLayout, entry: &[u8]) -> Self {
        KeyPos {
            key: layout.key(entry),
            pos: layout.pos(entry),
        }
    }
}

/// A `(key, position, raw series)` record — the record of materialized
/// (`-Full`) builds.
#[derive(Debug, Clone)]
pub struct KeySeries {
    /// Sortable summarization.
    pub key: ZKey,
    /// Position in the raw dataset.
    pub pos: u64,
    /// The raw (z-normalized) series values.
    pub series: Vec<Value>,
}

impl PartialEq for KeySeries {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.pos == other.pos
    }
}
impl Eq for KeySeries {}
impl PartialOrd for KeySeries {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KeySeries {
    fn cmp(&self, other: &Self) -> Ordering {
        // Order by key, then position; payloads ride along. (key, pos) is
        // unique per dataset so this is consistent with Eq.
        (self.key, self.pos).cmp(&(other.key, other.pos))
    }
}

impl SortedRecord for KeySeries {
    fn key(&self) -> ZKey {
        self.key
    }

    fn pos(&self) -> u64 {
        self.pos
    }

    fn series(&self) -> Option<&[Value]> {
        Some(&self.series)
    }

    fn from_entry(layout: &EntryLayout, entry: &[u8]) -> Self {
        debug_assert!(layout.materialized, "KeySeries needs an embedded payload");
        let mut series = vec![0.0 as Value; layout.series_len];
        layout.series_into(entry, &mut series);
        KeySeries {
            key: layout.key(entry),
            pos: layout.pos(entry),
            series,
        }
    }
}

/// Codec for [`KeySeries`]: 24-byte header + `4 * series_len` payload.
#[derive(Debug, Clone, Copy)]
pub struct KeySeriesCodec {
    series_len: usize,
}

impl KeySeriesCodec {
    /// A codec for records of `series_len` points.
    pub fn new(series_len: usize) -> Self {
        KeySeriesCodec { series_len }
    }
}

impl Codec for KeySeriesCodec {
    type Item = KeySeries;

    fn record_size(&self) -> usize {
        24 + 4 * self.series_len
    }

    fn encode(&self, item: &KeySeries, buf: &mut [u8]) {
        debug_assert_eq!(item.series.len(), self.series_len);
        buf[..16].copy_from_slice(&item.key.0.to_le_bytes());
        buf[16..24].copy_from_slice(&item.pos.to_le_bytes());
        for (i, &v) in item.series.iter().enumerate() {
            buf[24 + 4 * i..28 + 4 * i].copy_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(&self, buf: &[u8]) -> KeySeries {
        let key = ZKey(crate::le::u128(&buf[..16]));
        let pos = crate::le::u64(&buf[16..24]);
        let series = buf[24..24 + 4 * self.series_len]
            .chunks_exact(4)
            .map(crate::le::f32)
            .collect();
        KeySeries { key, pos, series }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keypos_codec_roundtrip() {
        let c = KeyPosCodec;
        let item = KeyPos {
            key: ZKey(u128::MAX - 7),
            pos: 123_456_789,
        };
        let mut buf = vec![0u8; c.record_size()];
        c.encode(&item, &mut buf);
        assert_eq!(c.decode(&buf), item);
    }

    #[test]
    fn keypos_orders_by_key_then_pos() {
        let a = KeyPos {
            key: ZKey(1),
            pos: 99,
        };
        let b = KeyPos {
            key: ZKey(2),
            pos: 0,
        };
        let c = KeyPos {
            key: ZKey(2),
            pos: 1,
        };
        assert!(a < b && b < c);
    }

    #[test]
    fn keyseries_codec_roundtrip() {
        let codec = KeySeriesCodec::new(8);
        let item = KeySeries {
            key: ZKey(42),
            pos: 7,
            series: vec![1.0, -2.5, 3.25, 0.0, f32::MIN_POSITIVE, 100.0, -0.125, 9.0],
        };
        let mut buf = vec![0u8; codec.record_size()];
        codec.encode(&item, &mut buf);
        let back = codec.decode(&buf);
        assert_eq!(back.key, item.key);
        assert_eq!(back.pos, item.pos);
        assert_eq!(back.series, item.series);
    }

    #[test]
    fn keyseries_order_ignores_payload() {
        let a = KeySeries {
            key: ZKey(1),
            pos: 0,
            series: vec![9.0; 4],
        };
        let b = KeySeries {
            key: ZKey(1),
            pos: 1,
            series: vec![0.0; 4],
        };
        assert!(a < b);
        let c = KeySeries {
            key: ZKey(0),
            pos: 5,
            series: vec![1.0; 4],
        };
        assert!(c < a);
    }
}
