//! Coconut-Trie: bottom-up bulk loading of a prefix-split index
//! (paper Section 4.2, Algorithm 2).
//!
//! Coconut-Trie keeps the state of the art's node shape — every node is an
//! iSAX prefix, here a prefix of the interleaved z-order key — but builds
//! the index *bottom-up* from the externally sorted summarizations and
//! compacts it, so that leaves end up contiguous on disk. Because the keys
//! are sorted, every prefix node covers a contiguous key range; the
//! recursive builder emits a leaf as soon as a subtree fits in one node,
//! which is exactly the fixpoint `CompactSubtree` reaches by repeatedly
//! merging sibling leaves that fit together.
//!
//! What Coconut-Trie does **not** fix (by design — it isolates the
//! contiguity variable) is occupancy: prefix boundaries cannot balance
//! entries, so most leaves stay nearly empty and the on-disk size is
//! inflated — the effect the paper measures in Figure 8c and the reason
//! Coconut-Tree wins overall.
//!
//! The *splitting decision* is therefore pluggable: a
//! [`crate::split::SplitPolicy`] chooses, at every oversized subtree, how
//! many interleaved bits the node consumes. The default
//! [`crate::split::FixedBinaryPolicy`] reproduces the paper's binary trie
//! byte-for-byte; [`crate::split::AdaptivePolicy`] builds Dumpy-style
//! variable-fanout nodes (`TrieNode::Multi` internally) whose undersized
//! sibling slots are greedily merged into shared leaves, recovering most of
//! the occupancy Coconut-Tree gets — without giving up prefix semantics.
//! Both policies produce bit-identical *query answers* (exact search runs
//! over the same sorted keys either way); only the leaf partitioning and
//! the approximate-search seed differ.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use coconut_series::dataset::Dataset;
use coconut_series::distance::euclidean_sq;
use coconut_series::index::{Answer, QueryStats, SeriesIndex};
use coconut_series::Value;
use coconut_storage::{CountedFile, Deadline, Error, RecordStream, Result};
use coconut_summary::paa::paa;
use coconut_summary::sax::Summarizer;
use coconut_summary::ZKey;

use crate::builder::{sorted_key_pos, sorted_key_series, BuildReport};
use crate::config::{BuildOptions, IndexConfig};
use crate::layout::{
    crc32, read_directory, write_directory, EntryLayout, IndexHeader, LeafMeta, LeafStore,
    CHECKSUM_VERSION,
};
use crate::records::{KeyPos, KeySeries};
use crate::shard::{sorted_key_pos_sharded, sorted_key_series_sharded};
use crate::sims::{sims_exact, SeriesFetcher};
use crate::split::{child_counts, merge_slots, SplitPolicy, SplitPolicyKind};
use crate::tree::RawFileFetcher;

static TRIE_ID: AtomicU64 = AtomicU64::new(0);

/// A node of the in-memory trie skeleton. Chains of one-child prefix nodes
/// are path-compressed: each node records its own bit depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrieNode {
    /// An internal binary split on interleaved-key bit `depth`.
    Internal { depth: u32, zero: u32, one: u32 },
    /// A leaf holding logical leaf `leaf` (index into the leaf directory).
    Leaf { leaf: u32 },
    /// A variable-fanout split consuming `bits` interleaved bits starting at
    /// bit `depth`: child for slot `v` is `children[start + v]` in the
    /// trie's slot arena. Merged sibling slots share a child, so the same
    /// node id may appear in consecutive slots. Adaptive-policy builds only.
    Multi { depth: u32, bits: u8, start: u32 },
}

/// In-memory summaries for SIMS (same shape as Coconut-Tree's).
struct Summaries {
    keys_by_pos: Vec<ZKey>,
    keys_leaf_order: Vec<ZKey>,
    pos_leaf_order: Vec<u64>,
    leaf_starts: Vec<u64>,
}

/// The Coconut-Trie index.
pub struct CoconutTrie {
    config: IndexConfig,
    materialized: bool,
    threads: usize,
    dataset: Dataset,
    file: Arc<CountedFile>,
    store: LeafStore,
    leaves: Vec<LeafMeta>,
    nodes: Vec<TrieNode>,
    /// Slot arena for `TrieNode::Multi` nodes (empty on fixed builds).
    children: Vec<u32>,
    root: Option<u32>,
    summaries: RwLock<Option<Arc<Summaries>>>,
    entry_count: u64,
    range: std::ops::Range<u64>,
    build_report: BuildReport,
    default_radius: usize,
}

impl CoconutTrie {
    /// Bulk-load a trie over all of `dataset` (Algorithm 2).
    pub fn build(
        dataset: &Dataset,
        config: &IndexConfig,
        dir: &Path,
        opts: BuildOptions,
    ) -> Result<Self> {
        Self::build_range(dataset, 0..dataset.len(), config, dir, opts)
    }

    /// Bulk-load a trie over the positions `range` of `dataset`.
    pub fn build_range(
        dataset: &Dataset,
        range: std::ops::Range<u64>,
        config: &IndexConfig,
        dir: &Path,
        opts: BuildOptions,
    ) -> Result<Self> {
        config.validate()?;
        if dataset.series_len() != config.sax.series_len {
            return Err(Error::invalid("dataset/config series length mismatch"));
        }
        if range.end > dataset.len() || range.start > range.end {
            return Err(Error::invalid("build range out of dataset bounds"));
        }
        let id = TRIE_ID.fetch_add(1, Ordering::Relaxed);
        let suffix = if opts.materialized { "full" } else { "ptr" };
        let path = dir.join(format!("ctrie-{id}-{suffix}.idx"));
        let stats = Arc::clone(dataset.file().stats());
        let file = Arc::new(CountedFile::create(&path, stats)?);
        let entry = EntryLayout {
            series_len: config.sax.series_len,
            materialized: opts.materialized,
        };
        let store = LeafStore::new(Arc::clone(&file), entry, config.leaf_capacity);
        let mut trie = CoconutTrie {
            config: *config,
            materialized: opts.materialized,
            threads: opts.threads.max(1),
            dataset: dataset.clone(),
            file,
            store,
            leaves: Vec::new(),
            nodes: Vec::new(),
            children: Vec::new(),
            root: None,
            summaries: RwLock::new(None),
            entry_count: 0,
            range: range.clone(),
            build_report: BuildReport::default(),
            default_radius: 1,
        };
        trie.bulk_load(dir, &opts)?;
        Ok(trie)
    }

    fn bulk_load(&mut self, tmp_dir: &Path, opts: &BuildOptions) -> Result<()> {
        // Phase 1: sort the (key, position) pairs. Like the paper, we rely
        // on the summarizations fitting in memory ("usually all the
        // summarizations and their offsets fit in main memory"); the raw
        // payloads of -Full builds are still sorted externally below.
        let stats = Arc::clone(self.dataset.file().stats());
        let mut sorted: Vec<KeyPos> =
            Vec::with_capacity((self.range.end - self.range.start) as usize);
        {
            let mut stream: Box<dyn RecordStream<Item = KeyPos>> = if opts.shards > 1 {
                Box::new(sorted_key_pos_sharded(
                    &self.dataset,
                    self.range.clone(),
                    &self.config.sax,
                    opts.memory_bytes,
                    tmp_dir,
                    &stats,
                    opts.shards,
                )?)
            } else {
                Box::new(sorted_key_pos(
                    &self.dataset,
                    self.range.clone(),
                    &self.config.sax,
                    opts.memory_bytes,
                    tmp_dir,
                    &stats,
                )?)
            };
            self.build_report.sort = stream.report();
            while let Some(kp) = stream.next_item()? {
                sorted.push(kp);
            }
        }
        self.entry_count = sorted.len() as u64;

        // Phase 2: recursively carve the sorted order into prefix leaves
        // (insertBottomUp + CompactSubtree): a maximal subtree whose entries
        // fit one leaf becomes one leaf. How an oversized subtree splits is
        // the policy's call (fixed binary vs adaptive variable fanout).
        let total_bits = self.config.sax.word_bits();
        let policy = self.config.split_policy.policy();
        let keys: Vec<ZKey> = sorted.iter().map(|kp| kp.key).collect();
        let mut ranges: Vec<(usize, usize)> = Vec::new(); // leaf -> [lo, hi)
        if !keys.is_empty() {
            let root = self.carve(&keys, 0, keys.len(), 0, total_bits, &mut ranges, &*policy);
            self.root = Some(root);
        }

        // Phase 3: write the leaves contiguously, left to right.
        let entry = *self.store.entry();
        let eb = entry.entry_bytes();
        let mut next_block = 0u32;
        if opts.materialized {
            // The -Full variant re-sorts with payloads and streams them into
            // the leaf layout (the extra sort-merge passes the paper charges
            // Coconut-Trie-Full for).
            let mut stream: Box<dyn RecordStream<Item = KeySeries>> = if opts.shards > 1 {
                Box::new(sorted_key_series_sharded(
                    &self.dataset,
                    self.range.clone(),
                    &self.config.sax,
                    opts.memory_bytes,
                    tmp_dir,
                    &stats,
                    opts.shards,
                )?)
            } else {
                Box::new(sorted_key_series(
                    &self.dataset,
                    self.range.clone(),
                    &self.config.sax,
                    opts.memory_bytes,
                    tmp_dir,
                    &stats,
                )?)
            };
            let mut entry_buf = vec![0u8; eb];
            let mut block_buf: Vec<u8> = Vec::new();
            for &(lo, hi) in &ranges {
                block_buf.clear();
                let mut first_key = ZKey::MIN;
                for (i, expected) in sorted[lo..hi].iter().enumerate() {
                    let rec = stream.next_item()?.ok_or_else(|| {
                        Error::corrupt("materialized stream shorter than key stream")
                    })?;
                    debug_assert_eq!(rec.key, expected.key);
                    if i == 0 {
                        first_key = rec.key;
                    }
                    entry.encode(rec.key, rec.pos, Some(&rec.series), &mut entry_buf);
                    block_buf.extend_from_slice(&entry_buf);
                }
                let blocks_used = self.store.write_leaf(next_block, &block_buf)?;
                self.leaves.push(LeafMeta {
                    first_key,
                    count: (hi - lo) as u32,
                    block: next_block,
                    blocks_used,
                    crc: crc32(&block_buf),
                });
                next_block += blocks_used;
            }
        } else {
            let mut entry_buf = vec![0u8; eb];
            let mut block_buf: Vec<u8> = Vec::new();
            for &(lo, hi) in &ranges {
                block_buf.clear();
                for kp in &sorted[lo..hi] {
                    entry.encode(kp.key, kp.pos, None, &mut entry_buf);
                    block_buf.extend_from_slice(&entry_buf);
                }
                let blocks_used = self.store.write_leaf(next_block, &block_buf)?;
                self.leaves.push(LeafMeta {
                    first_key: sorted[lo].key,
                    count: (hi - lo) as u32,
                    block: next_block,
                    blocks_used,
                    crc: crc32(&block_buf),
                });
                next_block += blocks_used;
            }
        }

        self.build_report.items = self.entry_count;
        self.build_report.leaves = self.leaves.len() as u64;
        self.persist(next_block)?;

        // Summaries come for free from the sorted pairs.
        let n = (self.range.end - self.range.start) as usize;
        let mut keys_by_pos = vec![ZKey::MIN; n];
        for kp in &sorted {
            keys_by_pos[(kp.pos - self.range.start) as usize] = kp.key;
        }
        let keys_leaf_order: Vec<ZKey> = sorted.iter().map(|kp| kp.key).collect();
        let pos_leaf_order: Vec<u64> = sorted.iter().map(|kp| kp.pos).collect();
        let mut leaf_starts = Vec::with_capacity(self.leaves.len() + 1);
        let mut acc = 0u64;
        for l in &self.leaves {
            leaf_starts.push(acc);
            acc += l.count as u64;
        }
        leaf_starts.push(acc);
        *self.summaries.write() = Some(Arc::new(Summaries {
            keys_by_pos,
            keys_leaf_order,
            pos_leaf_order,
            leaf_starts,
        }));
        Ok(())
    }

    /// Recursively partition the sorted keys `[lo, hi)` starting at bit
    /// `depth`; appends leaf ranges in order and returns the subtree's node
    /// index. Every key in the window shares its first `depth` bits, so the
    /// window is sorted by the remaining bits — all boundaries are binary
    /// searches.
    #[allow(clippy::too_many_arguments)]
    fn carve(
        &mut self,
        keys: &[ZKey],
        lo: usize,
        hi: usize,
        depth: usize,
        total_bits: usize,
        ranges: &mut Vec<(usize, usize)>,
        policy: &dyn SplitPolicy,
    ) -> u32 {
        debug_assert!(lo < hi);
        if hi - lo <= self.config.leaf_capacity || depth == total_bits {
            if hi - lo > self.config.leaf_capacity {
                // Identical keys beyond capacity cannot be refined further;
                // count the oversized leaf instead of absorbing it silently.
                self.build_report.oversized_leaves += 1;
            }
            let leaf_id = ranges.len() as u32;
            ranges.push((lo, hi));
            self.nodes.push(TrieNode::Leaf { leaf: leaf_id });
            return (self.nodes.len() - 1) as u32;
        }
        let bits = policy
            .choose_bits(&keys[lo..hi], depth, total_bits, self.config.leaf_capacity)
            .clamp(1, total_bits - depth);
        if bits == 1 {
            // The paper's binary split, kept verbatim: fixed-policy builds
            // must stay byte-identical to the pre-policy builder.
            let mid = lo + keys[lo..hi].partition_point(|k| k.bit(depth, total_bits) == 0);
            if mid == lo || mid == hi {
                // All entries share this bit: path-compress (the paper's
                // createUptree emits a chain of one-child nodes; we skip them).
                return self.carve(keys, lo, hi, depth + 1, total_bits, ranges, policy);
            }
            let zero = self.carve(keys, lo, mid, depth + 1, total_bits, ranges, policy);
            let one = self.carve(keys, mid, hi, depth + 1, total_bits, ranges, policy);
            self.nodes.push(TrieNode::Internal {
                depth: depth as u32,
                zero,
                one,
            });
            return (self.nodes.len() - 1) as u32;
        }
        let counts = child_counts(&keys[lo..hi], depth, bits, total_bits);
        if counts.iter().filter(|&&c| c > 0).count() == 1 {
            // Every entry shares all `bits` bits: path-compress the whole
            // window (the multi-bit generalization of the binary case).
            return self.carve(keys, lo, hi, depth + bits, total_bits, ranges, policy);
        }
        // Greedily merge undersized consecutive slots into shared leaves;
        // only a single still-oversized slot deepens.
        let fanout = 1usize << bits;
        let mut slot_nodes = vec![u32::MAX; fanout];
        let mut cursor = lo;
        for g in merge_slots(&counts, self.config.leaf_capacity) {
            let (glo, ghi) = (cursor, cursor + g.entries);
            cursor = ghi;
            if g.entries == 0 {
                continue; // routed to a neighboring group's node below
            }
            let node = if g.entries <= self.config.leaf_capacity {
                let leaf_id = ranges.len() as u32;
                ranges.push((glo, ghi));
                self.nodes.push(TrieNode::Leaf { leaf: leaf_id });
                (self.nodes.len() - 1) as u32
            } else {
                self.carve(keys, glo, ghi, depth + bits, total_bits, ranges, policy)
            };
            for s in g.slots {
                slot_nodes[s] = node;
            }
        }
        debug_assert_eq!(cursor, hi);
        // Empty slots route to the nearest populated neighbor so descent is
        // total for any query key.
        let mut last = u32::MAX;
        for slot in slot_nodes.iter_mut() {
            if *slot != u32::MAX {
                last = *slot;
            } else {
                *slot = last;
            }
        }
        let mut last = u32::MAX;
        for slot in slot_nodes.iter_mut().rev() {
            if *slot != u32::MAX {
                last = *slot;
            } else {
                *slot = last;
            }
        }
        let start = self.children.len() as u32;
        self.children.extend_from_slice(&slot_nodes);
        self.nodes.push(TrieNode::Multi {
            depth: depth as u32,
            bits: bits as u8,
            start,
        });
        (self.nodes.len() - 1) as u32
    }

    /// Re-read every leaf block and verify it against its directory CRC
    /// (the `coconut scrub` primitive). Returns on the first corrupt leaf
    /// with a typed error; legacy unchecked leaves are counted but not
    /// verifiable.
    pub fn verify(&self) -> Result<crate::layout::ScrubReport> {
        crate::layout::scrub_leaves(&self.store, &self.leaves)
    }

    fn persist(&mut self, num_blocks: u32) -> Result<()> {
        let dir_offset = write_directory(&self.file, &self.leaves)?;
        // Trie skeleton tail. Version 0 (fixed policy) is the original
        // fixed-width encoding — node count, then 13-byte (tag, a, b)
        // triples — kept byte-for-byte so fixed builds round-trip against
        // pre-versioning readers and files. Version 1 (adaptive policy)
        // uses variable-length records to fit the Multi node's slot table.
        let tail_version: u8 = match self.config.split_policy {
            SplitPolicyKind::Fixed => 0,
            SplitPolicyKind::Adaptive => 1,
        };
        let mut buf = Vec::with_capacity(8 + self.nodes.len() * 13);
        buf.extend_from_slice(&(self.nodes.len() as u64).to_le_bytes());
        for n in &self.nodes {
            match *n {
                TrieNode::Internal { depth, zero, one } => {
                    buf.push(0);
                    buf.extend_from_slice(&depth.to_le_bytes());
                    buf.extend_from_slice(&zero.to_le_bytes());
                    buf.extend_from_slice(&one.to_le_bytes());
                }
                TrieNode::Leaf { leaf } => {
                    buf.push(1);
                    buf.extend_from_slice(&leaf.to_le_bytes());
                    if tail_version == 0 {
                        buf.extend_from_slice(&[0u8; 8]);
                    }
                }
                TrieNode::Multi { depth, bits, start } => {
                    debug_assert_eq!(tail_version, 1, "Multi nodes need tail v1");
                    buf.push(2);
                    buf.extend_from_slice(&depth.to_le_bytes());
                    buf.push(bits);
                    let fanout = 1usize << bits;
                    for child in &self.children[start as usize..start as usize + fanout] {
                        buf.extend_from_slice(&child.to_le_bytes());
                    }
                }
            }
        }
        buf.extend_from_slice(&self.root.map_or(u32::MAX, |r| r).to_le_bytes());
        self.file.append(&buf)?;
        let header = IndexHeader {
            kind: 1,
            materialized: self.materialized,
            series_len: self.config.sax.series_len as u32,
            segments: self.config.sax.segments as u16,
            card_bits: self.config.sax.card_bits,
            leaf_capacity: self.config.leaf_capacity as u32,
            entry_count: self.entry_count,
            num_blocks: num_blocks as u64,
            dir_offset,
            tail_version,
            split_policy: self.config.split_policy.as_u8(),
            checksums: CHECKSUM_VERSION,
        };
        header.write_to(&self.file)?;
        self.file.sync()
    }

    /// Open a previously built trie index file.
    pub fn open(path: &Path, dataset: &Dataset, threads: usize) -> Result<Self> {
        let stats = Arc::clone(dataset.file().stats());
        let file = Arc::new(CountedFile::open_rw(path, stats)?);
        let header = IndexHeader::read_from(&file)?;
        if header.kind != 1 {
            return Err(Error::corrupt("not a Coconut-Trie index file"));
        }
        if header.series_len as usize != dataset.series_len() {
            return Err(Error::corrupt("index/dataset series length mismatch"));
        }
        let config = IndexConfig {
            sax: coconut_summary::SaxConfig {
                series_len: header.series_len as usize,
                segments: header.segments as usize,
                card_bits: header.card_bits,
            },
            leaf_capacity: header.leaf_capacity as usize,
            fill_factor: 1.0,
            internal_fanout: 64,
            split_policy: SplitPolicyKind::from_u8(header.split_policy)?,
        };
        config.validate()?;
        let (leaves, tail) = read_directory(&file, header.dir_offset)?;
        let mut count_buf = [0u8; 8];
        file.read_exact_at(&mut count_buf, tail)?;
        let node_count = u64::from_le_bytes(count_buf) as usize;
        let mut nodes = Vec::with_capacity(node_count);
        let mut children: Vec<u32> = Vec::new();
        let root_raw = match header.tail_version {
            0 => {
                // Fixed-width 13-byte records.
                let mut nodes_buf = vec![0u8; node_count * 13 + 4];
                file.read_exact_at(&mut nodes_buf, tail + 8)?;
                for c in nodes_buf[..node_count * 13].chunks_exact(13) {
                    let a = crate::le::u32(&c[1..5]);
                    match c[0] {
                        0 => {
                            let zero = crate::le::u32(&c[5..9]);
                            let one = crate::le::u32(&c[9..13]);
                            nodes.push(TrieNode::Internal {
                                depth: a,
                                zero,
                                one,
                            });
                        }
                        1 => nodes.push(TrieNode::Leaf { leaf: a }),
                        t => return Err(Error::corrupt(format!("bad trie node tag {t}"))),
                    }
                }
                crate::le::u32(&nodes_buf[node_count * 13..])
            }
            1 => {
                // Variable-length records: everything after the node count
                // up to end-of-file is records plus the trailing root u32.
                let tail_len = (file.len() - (tail + 8)) as usize;
                let mut buf = vec![0u8; tail_len];
                file.read_exact_at(&mut buf, tail + 8)?;
                let mut off = 0usize;
                let take = |buf: &[u8], off: &mut usize, n: usize| -> Result<()> {
                    if *off + n > buf.len() {
                        return Err(Error::corrupt("trie tail truncated"));
                    }
                    *off += n;
                    Ok(())
                };
                for _ in 0..node_count {
                    take(&buf, &mut off, 1)?;
                    match buf[off - 1] {
                        0 => {
                            take(&buf, &mut off, 12)?;
                            let c = &buf[off - 12..off];
                            nodes.push(TrieNode::Internal {
                                depth: crate::le::u32(&c[0..4]),
                                zero: crate::le::u32(&c[4..8]),
                                one: crate::le::u32(&c[8..12]),
                            });
                        }
                        1 => {
                            take(&buf, &mut off, 4)?;
                            let leaf = crate::le::u32(&buf[off - 4..off]);
                            nodes.push(TrieNode::Leaf { leaf });
                        }
                        2 => {
                            take(&buf, &mut off, 5)?;
                            let c = &buf[off - 5..off];
                            let depth = crate::le::u32(&c[0..4]);
                            let bits = c[4];
                            if bits == 0 || bits > 32 {
                                return Err(Error::corrupt(format!(
                                    "bad trie multi-node fanout bits {bits}"
                                )));
                            }
                            let fanout = 1usize << bits;
                            take(&buf, &mut off, fanout * 4)?;
                            let start = children.len() as u32;
                            for s in buf[off - fanout * 4..off].chunks_exact(4) {
                                children.push(crate::le::u32(s));
                            }
                            nodes.push(TrieNode::Multi { depth, bits, start });
                        }
                        t => return Err(Error::corrupt(format!("bad trie node tag {t}"))),
                    }
                }
                take(&buf, &mut off, 4)?;
                crate::le::u32(&buf[off - 4..off])
            }
            v => {
                return Err(Error::corrupt(format!(
                    "unsupported trie tail version {v} (reader knows 0 and 1)"
                )))
            }
        };
        let root = if root_raw == u32::MAX {
            None
        } else {
            Some(root_raw)
        };
        let entry = EntryLayout {
            series_len: config.sax.series_len,
            materialized: header.materialized,
        };
        let store = LeafStore::new(Arc::clone(&file), entry, config.leaf_capacity);
        Ok(CoconutTrie {
            config,
            materialized: header.materialized,
            threads: threads.max(1),
            dataset: dataset.clone(),
            file,
            store,
            leaves,
            nodes,
            children,
            root,
            summaries: RwLock::new(None),
            entry_count: header.entry_count,
            range: 0..dataset.len(),
            build_report: BuildReport::default(),
            default_radius: 1,
        })
    }

    /// The build report.
    pub fn build_report(&self) -> BuildReport {
        self.build_report
    }

    /// Entries in the index.
    pub fn len(&self) -> u64 {
        self.entry_count
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Whether leaves embed raw series.
    pub fn is_materialized(&self) -> bool {
        self.materialized
    }

    /// Set the leaf radius used by the trait entry points.
    pub fn set_default_radius(&mut self, radius: usize) {
        self.default_radius = radius;
    }

    /// Route leaf reads through a shared buffer pool (`file_id` must be
    /// unique per index within the pool).
    pub fn attach_cache(
        &mut self,
        cache: std::sync::Arc<coconut_storage::PageCache>,
        file_id: u32,
    ) {
        self.store.attach_cache(cache, file_id);
    }

    /// Number of trie nodes (internal + leaf) in the skeleton.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The index configuration (reconstructed from the header on open).
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Entry count of every leaf, in leaf order. Divide by
    /// `config().leaf_capacity` for fill fractions.
    pub fn leaf_entry_counts(&self) -> Vec<usize> {
        self.leaves.iter().map(|l| l.count as usize).collect()
    }

    /// Leaves holding more entries than `leaf_capacity` (only possible when
    /// identical keys exceed capacity). Computed from the directory, so it
    /// is correct for reopened indexes too.
    pub fn oversized_leaf_count(&self) -> u64 {
        self.leaves
            .iter()
            .filter(|l| l.count as usize > self.config.leaf_capacity)
            .count() as u64
    }

    /// Bit depth of every leaf, in leaf order: the interleaved key bits
    /// consumed by the split nodes on its root path (path-compressed
    /// one-child levels are skipped, matching the in-memory skeleton).
    pub fn leaf_depths(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.leaves.len()];
        let Some(root) = self.root else {
            return out;
        };
        // (node, bit depth at which the node's subtree starts). Merged
        // Multi slots repeat a child id in consecutive slots; visit each
        // distinct child once.
        let mut stack: Vec<(u32, u32)> = vec![(root, 0)];
        while let Some((node, at)) = stack.pop() {
            match self.nodes[node as usize] {
                TrieNode::Leaf { leaf } => out[leaf as usize] = at,
                TrieNode::Internal { depth, zero, one } => {
                    stack.push((zero, depth + 1));
                    stack.push((one, depth + 1));
                }
                TrieNode::Multi { depth, bits, start } => {
                    let fanout = 1usize << bits;
                    let slots = &self.children[start as usize..start as usize + fanout];
                    let mut prev = u32::MAX;
                    for &child in slots {
                        if child != prev {
                            stack.push((child, depth + bits as u32));
                            prev = child;
                        }
                    }
                }
            }
        }
        out
    }

    /// Path of the index file.
    pub fn index_path(&self) -> &Path {
        self.file.path()
    }

    /// Descend to the leaf the query key belongs to.
    fn descend(&self, key: ZKey) -> Option<(usize, u64)> {
        let total_bits = self.config.sax.word_bits();
        let mut node = self.root?;
        let mut visited = 0u64;
        loop {
            visited += 1;
            match self.nodes[node as usize] {
                TrieNode::Leaf { leaf } => return Some((leaf as usize, visited)),
                TrieNode::Internal { depth, zero, one } => {
                    node = if key.bit(depth as usize, total_bits) == 0 {
                        zero
                    } else {
                        one
                    };
                }
                TrieNode::Multi { depth, bits, start } => {
                    let v = key.bits(depth as usize, bits as usize, total_bits);
                    node = self.children[start as usize + v as usize];
                }
            }
        }
    }

    fn query_key(&self, query: &[Value]) -> Result<ZKey> {
        if query.len() != self.config.sax.series_len {
            return Err(Error::invalid("query length mismatch"));
        }
        let mut summarizer = Summarizer::new(self.config.sax);
        Ok(summarizer.zkey(query))
    }

    fn eval_leaf_range(
        &self,
        lo: usize,
        hi: usize,
        query: &[Value],
        best: &mut Answer,
        stats: &mut QueryStats,
    ) -> Result<()> {
        let entry = self.store.entry();
        let mut leaf_buf = Vec::new();
        let mut series_buf = vec![0.0 as Value; self.config.sax.series_len];
        let mut best_sq = best.dist * best.dist;
        for li in lo..=hi {
            let leaf = &self.leaves[li];
            self.store.read_leaf(leaf, &mut leaf_buf)?;
            stats.leaves_visited += 1;
            for slot in 0..leaf.count as usize {
                let e = self.store.entry_slice(&leaf_buf, slot);
                let pos = entry.pos(e);
                if self.materialized {
                    entry.series_into(e, &mut series_buf);
                } else {
                    self.dataset.read_into(pos, &mut series_buf)?;
                }
                stats.records_fetched += 1;
                let d_sq = euclidean_sq(query, &series_buf);
                if d_sq < best_sq {
                    best_sq = d_sq;
                    *best = Answer {
                        pos,
                        dist: d_sq.sqrt(),
                    };
                }
            }
        }
        Ok(())
    }

    /// Approximate search: descend to the single most promising leaf, plus
    /// `radius` physically neighboring leaves (contiguous on disk — the
    /// property Coconut-Trie adds over the state of the art).
    pub fn approximate_search(&self, query: &[Value], radius: usize) -> Result<Answer> {
        Ok(self.approximate_search_with_stats(query, radius)?.0)
    }

    /// Approximate search with work counters.
    pub fn approximate_search_with_stats(
        &self,
        query: &[Value],
        radius: usize,
    ) -> Result<(Answer, QueryStats)> {
        let key = self.query_key(query)?;
        let mut stats = QueryStats::default();
        let Some((li, _)) = self.descend(key) else {
            return Ok((Answer::none(), stats));
        };
        let lo = li.saturating_sub(radius);
        let hi = (li + radius).min(self.leaves.len() - 1);
        let mut best = Answer::none();
        self.eval_leaf_range(lo, hi, query, &mut best, &mut stats)?;
        Ok((best, stats))
    }

    fn load_summaries(&self) -> Result<Arc<Summaries>> {
        if let Some(s) = self.summaries.read().as_ref() {
            return Ok(Arc::clone(s));
        }
        let mut write = self.summaries.write();
        if let Some(s) = write.as_ref() {
            return Ok(Arc::clone(s));
        }
        let entry = self.store.entry();
        let mut keys_leaf_order = Vec::with_capacity(self.entry_count as usize);
        let mut pos_leaf_order = Vec::with_capacity(self.entry_count as usize);
        let mut leaf_starts = Vec::with_capacity(self.leaves.len() + 1);
        let mut leaf_buf = Vec::new();
        let mut acc = 0u64;
        let mut min_pos = u64::MAX;
        let mut max_pos = 0u64;
        for leaf in &self.leaves {
            leaf_starts.push(acc);
            acc += leaf.count as u64;
            self.store.read_leaf(leaf, &mut leaf_buf)?;
            for slot in 0..leaf.count as usize {
                let e = self.store.entry_slice(&leaf_buf, slot);
                let pos = entry.pos(e);
                keys_leaf_order.push(entry.key(e));
                pos_leaf_order.push(pos);
                min_pos = min_pos.min(pos);
                max_pos = max_pos.max(pos);
            }
        }
        leaf_starts.push(acc);
        let (start, end) = if pos_leaf_order.is_empty() {
            (0, 0)
        } else {
            (min_pos, max_pos + 1)
        };
        if end - start != self.entry_count {
            return Err(Error::corrupt(
                "index does not cover a contiguous position range",
            ));
        }
        let mut keys_by_pos = vec![ZKey::MIN; (end - start) as usize];
        for (k, p) in keys_leaf_order.iter().zip(pos_leaf_order.iter()) {
            keys_by_pos[(p - start) as usize] = *k;
        }
        let s = Arc::new(Summaries {
            keys_by_pos,
            keys_leaf_order,
            pos_leaf_order,
            leaf_starts,
        });
        *write = Some(Arc::clone(&s));
        Ok(s)
    }

    /// Exact search via SIMS, seeded by approximate search with the default
    /// radius.
    pub fn exact_search(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.exact_search_with_radius(query, self.default_radius)
    }

    /// Exact search with an explicit seed radius.
    pub fn exact_search_with_radius(
        &self,
        query: &[Value],
        radius: usize,
    ) -> Result<(Answer, QueryStats)> {
        let (seed, mut stats) = self.approximate_search_with_stats(query, radius)?;
        let summaries = self.load_summaries()?;
        let query_paa = paa(query, self.config.sax.segments);
        let (answer, sims_stats) = if self.materialized {
            let mut fetcher = TrieLeafFetcher {
                store: &self.store,
                leaves: &self.leaves,
                leaf_starts: &summaries.leaf_starts,
                pos_leaf_order: &summaries.pos_leaf_order,
                cur_leaf: 0,
                leaf_buf: Vec::new(),
                loaded: false,
            };
            sims_exact(
                query,
                &query_paa,
                &summaries.keys_leaf_order,
                &self.config.sax,
                self.threads,
                seed,
                &mut fetcher,
                Deadline::NONE,
            )?
        } else {
            let mut fetcher = RawFileFetcher {
                dataset: &self.dataset,
                start: self.range.start,
            };
            sims_exact(
                query,
                &query_paa,
                &summaries.keys_by_pos,
                &self.config.sax,
                self.threads,
                seed,
                &mut fetcher,
                Deadline::NONE,
            )?
        };
        stats.add(&sims_stats);
        Ok((answer, stats))
    }

    /// Exact k-nearest-neighbors (extension beyond the paper).
    pub fn exact_knn(&self, query: &[Value], k: usize) -> Result<(Vec<Answer>, QueryStats)> {
        let (seed, mut stats) = self.approximate_search_with_stats(query, self.default_radius)?;
        let summaries = self.load_summaries()?;
        let query_paa = paa(query, self.config.sax.segments);
        let seeds = if seed.is_some() {
            vec![seed]
        } else {
            Vec::new()
        };
        let (answers, sims_stats) = if self.materialized {
            let mut fetcher = TrieLeafFetcher {
                store: &self.store,
                leaves: &self.leaves,
                leaf_starts: &summaries.leaf_starts,
                pos_leaf_order: &summaries.pos_leaf_order,
                cur_leaf: 0,
                leaf_buf: Vec::new(),
                loaded: false,
            };
            crate::sims::sims_exact_knn(
                query,
                &query_paa,
                &summaries.keys_leaf_order,
                &self.config.sax,
                self.threads,
                k,
                &seeds,
                &mut fetcher,
                Deadline::NONE,
            )?
        } else {
            let mut fetcher = RawFileFetcher {
                dataset: &self.dataset,
                start: self.range.start,
            };
            crate::sims::sims_exact_knn(
                query,
                &query_paa,
                &summaries.keys_by_pos,
                &self.config.sax,
                self.threads,
                k,
                &seeds,
                &mut fetcher,
                Deadline::NONE,
            )?
        };
        stats.add(&sims_stats);
        Ok((answers, stats))
    }

    /// Exact range query (extension): every series within Euclidean
    /// distance `epsilon`, sorted by distance.
    pub fn exact_range(&self, query: &[Value], epsilon: f64) -> Result<(Vec<Answer>, QueryStats)> {
        self.query_key(query)?;
        let summaries = self.load_summaries()?;
        let query_paa = paa(query, self.config.sax.segments);
        if self.materialized {
            let mut fetcher = TrieLeafFetcher {
                store: &self.store,
                leaves: &self.leaves,
                leaf_starts: &summaries.leaf_starts,
                pos_leaf_order: &summaries.pos_leaf_order,
                cur_leaf: 0,
                leaf_buf: Vec::new(),
                loaded: false,
            };
            crate::sims::sims_range(
                query,
                &query_paa,
                &summaries.keys_leaf_order,
                &self.config.sax,
                self.threads,
                epsilon,
                &mut fetcher,
                Deadline::NONE,
            )
        } else {
            let mut fetcher = RawFileFetcher {
                dataset: &self.dataset,
                start: self.range.start,
            };
            crate::sims::sims_range(
                query,
                &query_paa,
                &summaries.keys_by_pos,
                &self.config.sax,
                self.threads,
                epsilon,
                &mut fetcher,
                Deadline::NONE,
            )
        }
    }

    /// Mean leaf occupancy relative to capacity — low by construction for
    /// prefix splitting (the paper reports ~10%).
    pub fn avg_fill(&self) -> f64 {
        if self.leaves.is_empty() {
            return 0.0;
        }
        let slots: u64 = self
            .leaves
            .iter()
            .map(|l| l.blocks_used as u64 * self.config.leaf_capacity as u64)
            .sum();
        self.entry_count as f64 / slots as f64
    }
}

/// Materialized-trie SIMS fetcher (leaf order; forward-only).
struct TrieLeafFetcher<'a> {
    store: &'a LeafStore,
    leaves: &'a [LeafMeta],
    leaf_starts: &'a [u64],
    pos_leaf_order: &'a [u64],
    cur_leaf: usize,
    leaf_buf: Vec<u8>,
    loaded: bool,
}

impl SeriesFetcher for TrieLeafFetcher<'_> {
    fn fetch(&mut self, i: usize, out: &mut [Value]) -> Result<u64> {
        let i64 = i as u64;
        if !self.loaded || i64 >= self.leaf_starts[self.cur_leaf + 1] {
            while i64 >= self.leaf_starts[self.cur_leaf + 1] {
                self.cur_leaf += 1;
            }
            self.store
                .read_leaf(&self.leaves[self.cur_leaf], &mut self.leaf_buf)?;
            self.loaded = true;
        }
        let slot = (i64 - self.leaf_starts[self.cur_leaf]) as usize;
        let e = self.store.entry_slice(&self.leaf_buf, slot);
        self.store.entry().series_into(e, out);
        Ok(self.pos_leaf_order[i])
    }
}

impl SeriesIndex for CoconutTrie {
    fn name(&self) -> String {
        if self.materialized {
            "CTrieFull".into()
        } else {
            "CTrie".into()
        }
    }

    fn approximate(&self, query: &[Value]) -> Result<Answer> {
        self.approximate_search(query, self.default_radius)
    }

    fn exact(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.exact_search(query)
    }

    fn disk_bytes(&self) -> u64 {
        self.file.len()
    }

    fn leaf_count(&self) -> u64 {
        self.leaves.len() as u64
    }

    fn avg_leaf_fill(&self) -> f64 {
        self.avg_fill()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::dataset::write_dataset;
    use coconut_series::distance::{euclidean, znormalize};
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_storage::{IoStats, TempDir};

    const LEN: usize = 64;

    fn small_config() -> IndexConfig {
        let mut c = IndexConfig::default_for_len(LEN);
        c.leaf_capacity = 32;
        c
    }

    fn make_dataset(dir: &TempDir, n: u64) -> Dataset {
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        write_dataset(&path, &mut RandomWalkGen::new(23), n, LEN, &stats).unwrap();
        Dataset::open(&path, stats).unwrap()
    }

    fn brute_force(ds: &Dataset, query: &[Value]) -> Answer {
        let mut best = Answer::none();
        let mut scan = ds.scan();
        while let Some((pos, s)) = scan.next_series().unwrap() {
            best.merge(Answer {
                pos,
                dist: euclidean(query, s),
            });
        }
        best
    }

    fn query(seed: u64) -> Vec<Value> {
        let mut q = RandomWalkGen::new(seed).generate(LEN);
        znormalize(&mut q);
        q
    }

    #[test]
    fn build_produces_consistent_leaves() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 1000);
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        assert_eq!(trie.len(), 1000);
        let leaf_total: u64 = trie.leaves.iter().map(|l| l.count as u64).sum();
        assert_eq!(leaf_total, 1000);
        // Prefix splitting cannot balance: occupancy is well below 100%.
        assert!(trie.avg_fill() < 0.9, "fill {}", trie.avg_fill());
        // Every leaf respects capacity (no oversized leaves for random data).
        assert!(trie.leaves.iter().all(|l| l.count as usize <= 32));
        // Leaves are written contiguously: block numbers increase by
        // blocks_used.
        for w in trie.leaves.windows(2) {
            assert_eq!(w[1].block, w[0].block + w[0].blocks_used);
        }
    }

    #[test]
    fn trie_has_more_leaves_than_tree_for_same_data() {
        // The paper's occupancy argument: prefix splits -> sparse leaves ->
        // more leaves than median-based packing.
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 1000);
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let tree = crate::tree::CoconutTree::build(
            &ds,
            &small_config(),
            dir.path(),
            BuildOptions::default(),
        )
        .unwrap();
        assert!(
            trie.leaf_count() > tree.leaf_count(),
            "trie {} <= tree {}",
            trie.leaf_count(),
            tree.leaf_count()
        );
    }

    #[test]
    fn exact_search_matches_brute_force() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 700);
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        for seed in 100..110 {
            let q = query(seed);
            let (ans, _) = trie.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
        }
    }

    #[test]
    fn materialized_exact_matches_brute_force() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 400);
        let trie = CoconutTrie::build(
            &ds,
            &small_config(),
            dir.path(),
            BuildOptions::default().materialized(),
        )
        .unwrap();
        for seed in 200..206 {
            let q = query(seed);
            let (ans, _) = trie.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
        }
    }

    #[test]
    fn approximate_never_beats_exact() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 500);
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        for seed in 300..308 {
            let q = query(seed);
            let approx = trie.approximate_search(&q, 1).unwrap();
            let (exact, _) = trie.exact_search(&q).unwrap();
            assert!(exact.dist <= approx.dist + 1e-9);
        }
    }

    #[test]
    fn open_reloads_identically() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 300);
        let built =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let path = built.index_path().to_path_buf();
        let reopened = CoconutTrie::open(&path, &ds, 2).unwrap();
        assert_eq!(reopened.len(), built.len());
        assert_eq!(reopened.node_count(), built.node_count());
        for seed in 400..405 {
            let q = query(seed);
            let (a, _) = built.exact_search(&q).unwrap();
            let (b, _) = reopened.exact_search(&q).unwrap();
            assert_eq!(a.pos, b.pos);
        }
    }

    #[test]
    fn duplicate_keys_beyond_capacity_form_oversized_leaf() {
        // A constant dataset: every series has the same key.
        let dir = TempDir::new("ctrie").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("flat.bin");
        let mut w =
            coconut_series::dataset::DatasetWriter::create(&path, LEN, true, Arc::clone(&stats))
                .unwrap();
        for _ in 0..100 {
            w.append(&vec![0.0; LEN]).unwrap();
        }
        w.finish().unwrap();
        let ds = Dataset::open(&path, stats).unwrap();
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        assert_eq!(trie.leaf_count(), 1);
        assert_eq!(trie.leaves[0].count, 100);
        assert!(trie.leaves[0].blocks_used > 1);
        // Queries still work.
        let q = query(1);
        let (ans, _) = trie.exact_search(&q).unwrap();
        assert!(ans.is_some());
    }

    #[test]
    fn trie_knn_matches_tree_knn() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 400);
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let tree = crate::tree::CoconutTree::build(
            &ds,
            &small_config(),
            dir.path(),
            BuildOptions::default(),
        )
        .unwrap();
        for seed in 500..504 {
            let q = query(seed);
            let (a, _) = trie.exact_knn(&q, 4).unwrap();
            let (b, _) = tree.exact_knn(&q, 4).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x.dist - y.dist).abs() < 1e-9, "seed {seed}");
            }
        }
    }

    #[test]
    fn trie_range_matches_brute_force() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 300);
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let q = query(77);
        let mut dists: Vec<(u64, f64)> = (0..300)
            .map(|p| (p, euclidean(&q, &ds.get(p).unwrap())))
            .collect();
        dists.sort_by(|a, b| a.1.total_cmp(&b.1));
        let eps = dists[4].1;
        let (hits, _) = trie.exact_range(&q, eps).unwrap();
        let expected: Vec<u64> = dists
            .iter()
            .take_while(|&&(_, d)| d <= eps)
            .map(|&(p, _)| p)
            .collect();
        let mut got: Vec<u64> = hits.iter().map(|a| a.pos).collect();
        got.sort_unstable();
        let mut want = expected;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn sharded_build_is_bit_identical() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 900);
        for materialized in [false, true] {
            let base_opts = BuildOptions {
                materialized,
                memory_bytes: 1 << 20,
                ..BuildOptions::default()
            };
            let single =
                CoconutTrie::build(&ds, &small_config(), dir.path(), base_opts.clone()).unwrap();
            let single_bytes = std::fs::read(single.index_path()).unwrap();
            for shards in [3usize, 8] {
                let sharded = CoconutTrie::build(
                    &ds,
                    &small_config(),
                    dir.path(),
                    base_opts.clone().with_shards(shards),
                )
                .unwrap();
                let sharded_bytes = std::fs::read(sharded.index_path()).unwrap();
                assert_eq!(
                    single_bytes, sharded_bytes,
                    "mat={materialized} shards={shards}: index files differ"
                );
                assert_eq!(sharded.node_count(), single.node_count());
            }
        }
    }

    #[test]
    fn empty_dataset() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 0);
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        assert!(trie.is_empty());
        let q = query(9);
        assert!(!trie.approximate_search(&q, 1).unwrap().is_some());
        let (ans, _) = trie.exact_search(&q).unwrap();
        assert!(!ans.is_some());
    }

    fn adaptive_config() -> IndexConfig {
        small_config().with_split_policy(crate::split::SplitPolicyKind::Adaptive)
    }

    /// A clustered dataset: `clusters` base shapes plus per-series noise, so
    /// z-keys share long prefixes and binary prefix splits leave leaves
    /// sparse — the regime the adaptive policy is built for.
    fn skewed_dataset(dir: &TempDir, n: u64, clusters: u64, seed: u64) -> Dataset {
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join(format!("skew-{seed}.bin"));
        let bases: Vec<Vec<Value>> = (0..clusters)
            .map(|c| {
                let mut b = RandomWalkGen::new(seed * 1000 + c).generate(LEN);
                znormalize(&mut b);
                b
            })
            .collect();
        let mut w =
            coconut_series::dataset::DatasetWriter::create(&path, LEN, true, Arc::clone(&stats))
                .unwrap();
        let mut state = seed | 1;
        for i in 0..n {
            let base = &bases[(i % clusters) as usize];
            let mut s: Vec<Value> = base
                .iter()
                .map(|&v| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let noise = ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.02;
                    v + noise as Value
                })
                .collect();
            znormalize(&mut s);
            w.append(&s).unwrap();
        }
        w.finish().unwrap();
        Dataset::open(&path, stats).unwrap()
    }

    #[test]
    fn adaptive_answers_match_fixed_and_brute_force() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = skewed_dataset(&dir, 600, 5, 11);
        let fixed =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let adaptive =
            CoconutTrie::build(&ds, &adaptive_config(), dir.path(), BuildOptions::default())
                .unwrap();
        for seed in 600..610 {
            let q = query(seed);
            let (a, _) = adaptive.exact_search(&q).unwrap();
            let (f, _) = fixed.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(a.pos, expect.pos, "seed {seed}: adaptive vs brute force");
            assert_eq!(a.pos, f.pos, "seed {seed}: adaptive vs fixed");
            assert!((a.dist - f.dist).abs() < 1e-9);

            let (ka, _) = adaptive.exact_knn(&q, 4).unwrap();
            let (kf, _) = fixed.exact_knn(&q, 4).unwrap();
            assert_eq!(ka.len(), kf.len());
            for (x, y) in ka.iter().zip(kf.iter()) {
                assert_eq!(x.pos, y.pos, "seed {seed}: kNN diverged");
            }

            let eps = expect.dist * 1.5;
            let (ra, _) = adaptive.exact_range(&q, eps).unwrap();
            let (rf, _) = fixed.exact_range(&q, eps).unwrap();
            let mut pa: Vec<u64> = ra.iter().map(|x| x.pos).collect();
            let mut pf: Vec<u64> = rf.iter().map(|x| x.pos).collect();
            pa.sort_unstable();
            pf.sort_unstable();
            assert_eq!(pa, pf, "seed {seed}: range diverged");
        }
    }

    #[test]
    fn adaptive_tightens_occupancy_on_skewed_data() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = skewed_dataset(&dir, 2000, 6, 7);
        let fixed =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let adaptive =
            CoconutTrie::build(&ds, &adaptive_config(), dir.path(), BuildOptions::default())
                .unwrap();
        assert!(
            adaptive.avg_fill() > fixed.avg_fill(),
            "adaptive fill {:.3} should beat fixed {:.3} on clustered keys",
            adaptive.avg_fill(),
            fixed.avg_fill()
        );
        assert!(
            adaptive.leaf_count() < fixed.leaf_count(),
            "adaptive {} leaves vs fixed {}",
            adaptive.leaf_count(),
            fixed.leaf_count()
        );
        // Packing only overflows capacity where identical keys force it —
        // exactly the leaves the oversized counter reports — and both
        // policies bottom out on the same unsplittable key groups.
        let cap = adaptive.config().leaf_capacity;
        let over = adaptive
            .leaf_entry_counts()
            .iter()
            .filter(|&&n| n > cap)
            .count() as u64;
        assert_eq!(adaptive.oversized_leaf_count(), over);
        assert_eq!(adaptive.build_report().oversized_leaves, over);
        assert_eq!(
            adaptive.oversized_leaf_count(),
            fixed.oversized_leaf_count()
        );
    }

    #[test]
    fn adaptive_open_reloads_identically() {
        // Exercises the v1 (multi-way) on-disk tail end to end.
        let dir = TempDir::new("ctrie").unwrap();
        let ds = skewed_dataset(&dir, 800, 4, 3);
        let built =
            CoconutTrie::build(&ds, &adaptive_config(), dir.path(), BuildOptions::default())
                .unwrap();
        let path = built.index_path().to_path_buf();
        let reopened = CoconutTrie::open(&path, &ds, 2).unwrap();
        assert_eq!(reopened.len(), built.len());
        assert_eq!(reopened.node_count(), built.node_count());
        assert_eq!(
            reopened.config().split_policy,
            crate::split::SplitPolicyKind::Adaptive,
            "policy must be recovered from the header"
        );
        assert_eq!(reopened.leaf_entry_counts(), built.leaf_entry_counts());
        for seed in 700..706 {
            let q = query(seed);
            let (a, _) = built.exact_search(&q).unwrap();
            let (b, _) = reopened.exact_search(&q).unwrap();
            assert_eq!(a.pos, b.pos);
        }
    }

    #[test]
    fn adaptive_sharded_build_is_bit_identical() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = skewed_dataset(&dir, 900, 5, 19);
        let single =
            CoconutTrie::build(&ds, &adaptive_config(), dir.path(), BuildOptions::default())
                .unwrap();
        let single_bytes = std::fs::read(single.index_path()).unwrap();
        for shards in [3usize, 8] {
            let sharded = CoconutTrie::build(
                &ds,
                &adaptive_config(),
                dir.path(),
                BuildOptions::default().with_shards(shards),
            )
            .unwrap();
            let sharded_bytes = std::fs::read(sharded.index_path()).unwrap();
            assert_eq!(
                single_bytes, sharded_bytes,
                "shards={shards}: adaptive index files differ"
            );
        }
    }

    #[test]
    fn oversized_leaves_are_counted_and_survive_reopen() {
        // A constant dataset forces one unsplittable over-capacity leaf;
        // the counter must be visible in the build report and recomputable
        // from a reopened index (which has no build report).
        let dir = TempDir::new("ctrie").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("flat.bin");
        let mut w =
            coconut_series::dataset::DatasetWriter::create(&path, LEN, true, Arc::clone(&stats))
                .unwrap();
        for _ in 0..100 {
            w.append(&vec![0.0; LEN]).unwrap();
        }
        w.finish().unwrap();
        let ds = Dataset::open(&path, stats).unwrap();
        for config in [small_config(), adaptive_config()] {
            let trie =
                CoconutTrie::build(&ds, &config, dir.path(), BuildOptions::default()).unwrap();
            assert_eq!(trie.build_report().oversized_leaves, 1);
            assert_eq!(trie.oversized_leaf_count(), 1);
            let reopened = CoconutTrie::open(trie.index_path(), &ds, 2).unwrap();
            assert_eq!(reopened.oversized_leaf_count(), 1);
            assert_eq!(reopened.build_report().oversized_leaves, 0, "not rebuilt");
        }
    }
}
