//! Coconut-Trie: bottom-up bulk loading of a prefix-split index
//! (paper Section 4.2, Algorithm 2).
//!
//! Coconut-Trie keeps the state of the art's node shape — every node is an
//! iSAX prefix, here a prefix of the interleaved z-order key — but builds
//! the index *bottom-up* from the externally sorted summarizations and
//! compacts it, so that leaves end up contiguous on disk. Because the keys
//! are sorted, every prefix node covers a contiguous key range; the
//! recursive builder emits a leaf as soon as a subtree fits in one node,
//! which is exactly the fixpoint `CompactSubtree` reaches by repeatedly
//! merging sibling leaves that fit together.
//!
//! What Coconut-Trie does **not** fix (by design — it isolates the
//! contiguity variable) is occupancy: prefix boundaries cannot balance
//! entries, so most leaves stay nearly empty and the on-disk size is
//! inflated — the effect the paper measures in Figure 8c and the reason
//! Coconut-Tree wins overall.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use coconut_series::dataset::Dataset;
use coconut_series::distance::euclidean_sq;
use coconut_series::index::{Answer, QueryStats, SeriesIndex};
use coconut_series::Value;
use coconut_storage::{CountedFile, Deadline, Error, RecordStream, Result};
use coconut_summary::paa::paa;
use coconut_summary::sax::Summarizer;
use coconut_summary::ZKey;

use crate::builder::{sorted_key_pos, sorted_key_series, BuildReport};
use crate::config::{BuildOptions, IndexConfig};
use crate::layout::{
    read_directory, write_directory, EntryLayout, IndexHeader, LeafMeta, LeafStore,
};
use crate::records::{KeyPos, KeySeries};
use crate::shard::{sorted_key_pos_sharded, sorted_key_series_sharded};
use crate::sims::{sims_exact, SeriesFetcher};
use crate::tree::RawFileFetcher;

static TRIE_ID: AtomicU64 = AtomicU64::new(0);

/// A node of the in-memory trie skeleton. Chains of one-child prefix nodes
/// are path-compressed: each node records its own bit depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrieNode {
    /// An internal binary split on interleaved-key bit `depth`.
    Internal { depth: u32, zero: u32, one: u32 },
    /// A leaf holding logical leaf `leaf` (index into the leaf directory).
    Leaf { leaf: u32 },
}

/// In-memory summaries for SIMS (same shape as Coconut-Tree's).
struct Summaries {
    keys_by_pos: Vec<ZKey>,
    keys_leaf_order: Vec<ZKey>,
    pos_leaf_order: Vec<u64>,
    leaf_starts: Vec<u64>,
}

/// The Coconut-Trie index.
pub struct CoconutTrie {
    config: IndexConfig,
    materialized: bool,
    threads: usize,
    dataset: Dataset,
    file: Arc<CountedFile>,
    store: LeafStore,
    leaves: Vec<LeafMeta>,
    nodes: Vec<TrieNode>,
    root: Option<u32>,
    summaries: RwLock<Option<Arc<Summaries>>>,
    entry_count: u64,
    range: std::ops::Range<u64>,
    build_report: BuildReport,
    default_radius: usize,
}

impl CoconutTrie {
    /// Bulk-load a trie over all of `dataset` (Algorithm 2).
    pub fn build(
        dataset: &Dataset,
        config: &IndexConfig,
        dir: &Path,
        opts: BuildOptions,
    ) -> Result<Self> {
        Self::build_range(dataset, 0..dataset.len(), config, dir, opts)
    }

    /// Bulk-load a trie over the positions `range` of `dataset`.
    pub fn build_range(
        dataset: &Dataset,
        range: std::ops::Range<u64>,
        config: &IndexConfig,
        dir: &Path,
        opts: BuildOptions,
    ) -> Result<Self> {
        config.validate()?;
        if dataset.series_len() != config.sax.series_len {
            return Err(Error::invalid("dataset/config series length mismatch"));
        }
        if range.end > dataset.len() || range.start > range.end {
            return Err(Error::invalid("build range out of dataset bounds"));
        }
        let id = TRIE_ID.fetch_add(1, Ordering::Relaxed);
        let suffix = if opts.materialized { "full" } else { "ptr" };
        let path = dir.join(format!("ctrie-{id}-{suffix}.idx"));
        let stats = Arc::clone(dataset.file().stats());
        let file = Arc::new(CountedFile::create(&path, stats)?);
        let entry = EntryLayout {
            series_len: config.sax.series_len,
            materialized: opts.materialized,
        };
        let store = LeafStore::new(Arc::clone(&file), entry, config.leaf_capacity);
        let mut trie = CoconutTrie {
            config: *config,
            materialized: opts.materialized,
            threads: opts.threads.max(1),
            dataset: dataset.clone(),
            file,
            store,
            leaves: Vec::new(),
            nodes: Vec::new(),
            root: None,
            summaries: RwLock::new(None),
            entry_count: 0,
            range: range.clone(),
            build_report: BuildReport::default(),
            default_radius: 1,
        };
        trie.bulk_load(dir, &opts)?;
        Ok(trie)
    }

    fn bulk_load(&mut self, tmp_dir: &Path, opts: &BuildOptions) -> Result<()> {
        // Phase 1: sort the (key, position) pairs. Like the paper, we rely
        // on the summarizations fitting in memory ("usually all the
        // summarizations and their offsets fit in main memory"); the raw
        // payloads of -Full builds are still sorted externally below.
        let stats = Arc::clone(self.dataset.file().stats());
        let mut sorted: Vec<KeyPos> =
            Vec::with_capacity((self.range.end - self.range.start) as usize);
        {
            let mut stream: Box<dyn RecordStream<Item = KeyPos>> = if opts.shards > 1 {
                Box::new(sorted_key_pos_sharded(
                    &self.dataset,
                    self.range.clone(),
                    &self.config.sax,
                    opts.memory_bytes,
                    tmp_dir,
                    &stats,
                    opts.shards,
                )?)
            } else {
                Box::new(sorted_key_pos(
                    &self.dataset,
                    self.range.clone(),
                    &self.config.sax,
                    opts.memory_bytes,
                    tmp_dir,
                    &stats,
                )?)
            };
            self.build_report.sort = stream.report();
            while let Some(kp) = stream.next_item()? {
                sorted.push(kp);
            }
        }
        self.entry_count = sorted.len() as u64;

        // Phase 2: recursively carve the sorted order into prefix leaves
        // (insertBottomUp + CompactSubtree): a maximal subtree whose entries
        // fit one leaf becomes one leaf.
        let total_bits = self.config.sax.word_bits();
        let mut ranges: Vec<(usize, usize)> = Vec::new(); // leaf -> [lo, hi)
        if !sorted.is_empty() {
            let root = self.carve(&sorted, 0, sorted.len(), 0, total_bits, &mut ranges);
            self.root = Some(root);
        }

        // Phase 3: write the leaves contiguously, left to right.
        let entry = *self.store.entry();
        let eb = entry.entry_bytes();
        let mut next_block = 0u32;
        if opts.materialized {
            // The -Full variant re-sorts with payloads and streams them into
            // the leaf layout (the extra sort-merge passes the paper charges
            // Coconut-Trie-Full for).
            let mut stream: Box<dyn RecordStream<Item = KeySeries>> = if opts.shards > 1 {
                Box::new(sorted_key_series_sharded(
                    &self.dataset,
                    self.range.clone(),
                    &self.config.sax,
                    opts.memory_bytes,
                    tmp_dir,
                    &stats,
                    opts.shards,
                )?)
            } else {
                Box::new(sorted_key_series(
                    &self.dataset,
                    self.range.clone(),
                    &self.config.sax,
                    opts.memory_bytes,
                    tmp_dir,
                    &stats,
                )?)
            };
            let mut entry_buf = vec![0u8; eb];
            let mut block_buf: Vec<u8> = Vec::new();
            for &(lo, hi) in &ranges {
                block_buf.clear();
                let mut first_key = ZKey::MIN;
                for (i, expected) in sorted[lo..hi].iter().enumerate() {
                    let rec = stream.next_item()?.ok_or_else(|| {
                        Error::corrupt("materialized stream shorter than key stream")
                    })?;
                    debug_assert_eq!(rec.key, expected.key);
                    if i == 0 {
                        first_key = rec.key;
                    }
                    entry.encode(rec.key, rec.pos, Some(&rec.series), &mut entry_buf);
                    block_buf.extend_from_slice(&entry_buf);
                }
                let blocks_used = self.store.write_leaf(next_block, &block_buf)?;
                self.leaves.push(LeafMeta {
                    first_key,
                    count: (hi - lo) as u32,
                    block: next_block,
                    blocks_used,
                });
                next_block += blocks_used;
            }
        } else {
            let mut entry_buf = vec![0u8; eb];
            let mut block_buf: Vec<u8> = Vec::new();
            for &(lo, hi) in &ranges {
                block_buf.clear();
                for kp in &sorted[lo..hi] {
                    entry.encode(kp.key, kp.pos, None, &mut entry_buf);
                    block_buf.extend_from_slice(&entry_buf);
                }
                let blocks_used = self.store.write_leaf(next_block, &block_buf)?;
                self.leaves.push(LeafMeta {
                    first_key: sorted[lo].key,
                    count: (hi - lo) as u32,
                    block: next_block,
                    blocks_used,
                });
                next_block += blocks_used;
            }
        }

        self.build_report.items = self.entry_count;
        self.build_report.leaves = self.leaves.len() as u64;
        self.persist(next_block)?;

        // Summaries come for free from the sorted pairs.
        let n = (self.range.end - self.range.start) as usize;
        let mut keys_by_pos = vec![ZKey::MIN; n];
        for kp in &sorted {
            keys_by_pos[(kp.pos - self.range.start) as usize] = kp.key;
        }
        let keys_leaf_order: Vec<ZKey> = sorted.iter().map(|kp| kp.key).collect();
        let pos_leaf_order: Vec<u64> = sorted.iter().map(|kp| kp.pos).collect();
        let mut leaf_starts = Vec::with_capacity(self.leaves.len() + 1);
        let mut acc = 0u64;
        for l in &self.leaves {
            leaf_starts.push(acc);
            acc += l.count as u64;
        }
        leaf_starts.push(acc);
        *self.summaries.write() = Some(Arc::new(Summaries {
            keys_by_pos,
            keys_leaf_order,
            pos_leaf_order,
            leaf_starts,
        }));
        Ok(())
    }

    /// Recursively partition `sorted[lo..hi)` starting at bit `depth`;
    /// appends leaf ranges in order and returns the subtree's node index.
    fn carve(
        &mut self,
        sorted: &[KeyPos],
        lo: usize,
        hi: usize,
        depth: usize,
        total_bits: usize,
        ranges: &mut Vec<(usize, usize)>,
    ) -> u32 {
        debug_assert!(lo < hi);
        if hi - lo <= self.config.leaf_capacity || depth == total_bits {
            // Fits one node (or cannot be refined further: identical keys
            // beyond capacity become one oversized leaf).
            let leaf_id = ranges.len() as u32;
            ranges.push((lo, hi));
            self.nodes.push(TrieNode::Leaf { leaf: leaf_id });
            return (self.nodes.len() - 1) as u32;
        }
        // Keys are sorted, so entries with bit `depth` == 0 precede those
        // with 1; find the boundary by binary search on the bit.
        let mid = lo + sorted[lo..hi].partition_point(|kp| kp.key.bit(depth, total_bits) == 0);
        if mid == lo || mid == hi {
            // All entries share this bit: path-compress (the paper's
            // createUptree emits a chain of one-child nodes; we skip them).
            return self.carve(sorted, lo, hi, depth + 1, total_bits, ranges);
        }
        let zero = self.carve(sorted, lo, mid, depth + 1, total_bits, ranges);
        let one = self.carve(sorted, mid, hi, depth + 1, total_bits, ranges);
        self.nodes.push(TrieNode::Internal {
            depth: depth as u32,
            zero,
            one,
        });
        (self.nodes.len() - 1) as u32
    }

    fn persist(&mut self, num_blocks: u32) -> Result<()> {
        let dir_offset = write_directory(&self.file, &self.leaves)?;
        // Trie skeleton tail: node count, then (tag, a, b) triples.
        let mut buf = Vec::with_capacity(8 + self.nodes.len() * 13);
        buf.extend_from_slice(&(self.nodes.len() as u64).to_le_bytes());
        for n in &self.nodes {
            match *n {
                TrieNode::Internal { depth, zero, one } => {
                    buf.push(0);
                    buf.extend_from_slice(&depth.to_le_bytes());
                    buf.extend_from_slice(&zero.to_le_bytes());
                    buf.extend_from_slice(&one.to_le_bytes());
                }
                TrieNode::Leaf { leaf } => {
                    buf.push(1);
                    buf.extend_from_slice(&leaf.to_le_bytes());
                    buf.extend_from_slice(&[0u8; 8]);
                }
            }
        }
        buf.extend_from_slice(&self.root.map_or(u32::MAX, |r| r).to_le_bytes());
        self.file.append(&buf)?;
        let header = IndexHeader {
            kind: 1,
            materialized: self.materialized,
            series_len: self.config.sax.series_len as u32,
            segments: self.config.sax.segments as u16,
            card_bits: self.config.sax.card_bits,
            leaf_capacity: self.config.leaf_capacity as u32,
            entry_count: self.entry_count,
            num_blocks: num_blocks as u64,
            dir_offset,
        };
        header.write_to(&self.file)?;
        self.file.sync()
    }

    /// Open a previously built trie index file.
    pub fn open(path: &Path, dataset: &Dataset, threads: usize) -> Result<Self> {
        let stats = Arc::clone(dataset.file().stats());
        let file = Arc::new(CountedFile::open_rw(path, stats)?);
        let header = IndexHeader::read_from(&file)?;
        if header.kind != 1 {
            return Err(Error::corrupt("not a Coconut-Trie index file"));
        }
        if header.series_len as usize != dataset.series_len() {
            return Err(Error::corrupt("index/dataset series length mismatch"));
        }
        let config = IndexConfig {
            sax: coconut_summary::SaxConfig {
                series_len: header.series_len as usize,
                segments: header.segments as usize,
                card_bits: header.card_bits,
            },
            leaf_capacity: header.leaf_capacity as usize,
            fill_factor: 1.0,
            internal_fanout: 64,
        };
        config.validate()?;
        let (leaves, tail) = read_directory(&file, header.dir_offset)?;
        let mut count_buf = [0u8; 8];
        file.read_exact_at(&mut count_buf, tail)?;
        let node_count = u64::from_le_bytes(count_buf) as usize;
        let mut nodes_buf = vec![0u8; node_count * 13 + 4];
        file.read_exact_at(&mut nodes_buf, tail + 8)?;
        let mut nodes = Vec::with_capacity(node_count);
        for c in nodes_buf[..node_count * 13].chunks_exact(13) {
            let a = u32::from_le_bytes(c[1..5].try_into().unwrap());
            match c[0] {
                0 => {
                    let zero = u32::from_le_bytes(c[5..9].try_into().unwrap());
                    let one = u32::from_le_bytes(c[9..13].try_into().unwrap());
                    nodes.push(TrieNode::Internal {
                        depth: a,
                        zero,
                        one,
                    });
                }
                1 => nodes.push(TrieNode::Leaf { leaf: a }),
                t => return Err(Error::corrupt(format!("bad trie node tag {t}"))),
            }
        }
        let root_raw = u32::from_le_bytes(nodes_buf[node_count * 13..].try_into().unwrap());
        let root = if root_raw == u32::MAX {
            None
        } else {
            Some(root_raw)
        };
        let entry = EntryLayout {
            series_len: config.sax.series_len,
            materialized: header.materialized,
        };
        let store = LeafStore::new(Arc::clone(&file), entry, config.leaf_capacity);
        Ok(CoconutTrie {
            config,
            materialized: header.materialized,
            threads: threads.max(1),
            dataset: dataset.clone(),
            file,
            store,
            leaves,
            nodes,
            root,
            summaries: RwLock::new(None),
            entry_count: header.entry_count,
            range: 0..dataset.len(),
            build_report: BuildReport::default(),
            default_radius: 1,
        })
    }

    /// The build report.
    pub fn build_report(&self) -> BuildReport {
        self.build_report
    }

    /// Entries in the index.
    pub fn len(&self) -> u64 {
        self.entry_count
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Whether leaves embed raw series.
    pub fn is_materialized(&self) -> bool {
        self.materialized
    }

    /// Set the leaf radius used by the trait entry points.
    pub fn set_default_radius(&mut self, radius: usize) {
        self.default_radius = radius;
    }

    /// Route leaf reads through a shared buffer pool (`file_id` must be
    /// unique per index within the pool).
    pub fn attach_cache(
        &mut self,
        cache: std::sync::Arc<coconut_storage::PageCache>,
        file_id: u32,
    ) {
        self.store.attach_cache(cache, file_id);
    }

    /// Number of trie nodes (internal + leaf) in the skeleton.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Path of the index file.
    pub fn index_path(&self) -> &Path {
        self.file.path()
    }

    /// Descend to the leaf the query key belongs to.
    fn descend(&self, key: ZKey) -> Option<(usize, u64)> {
        let total_bits = self.config.sax.word_bits();
        let mut node = self.root?;
        let mut visited = 0u64;
        loop {
            visited += 1;
            match self.nodes[node as usize] {
                TrieNode::Leaf { leaf } => return Some((leaf as usize, visited)),
                TrieNode::Internal { depth, zero, one } => {
                    node = if key.bit(depth as usize, total_bits) == 0 {
                        zero
                    } else {
                        one
                    };
                }
            }
        }
    }

    fn query_key(&self, query: &[Value]) -> Result<ZKey> {
        if query.len() != self.config.sax.series_len {
            return Err(Error::invalid("query length mismatch"));
        }
        let mut summarizer = Summarizer::new(self.config.sax);
        Ok(summarizer.zkey(query))
    }

    fn eval_leaf_range(
        &self,
        lo: usize,
        hi: usize,
        query: &[Value],
        best: &mut Answer,
        stats: &mut QueryStats,
    ) -> Result<()> {
        let entry = self.store.entry();
        let mut leaf_buf = Vec::new();
        let mut series_buf = vec![0.0 as Value; self.config.sax.series_len];
        let mut best_sq = best.dist * best.dist;
        for li in lo..=hi {
            let leaf = &self.leaves[li];
            self.store.read_leaf(leaf, &mut leaf_buf)?;
            stats.leaves_visited += 1;
            for slot in 0..leaf.count as usize {
                let e = self.store.entry_slice(&leaf_buf, slot);
                let pos = entry.pos(e);
                if self.materialized {
                    entry.series_into(e, &mut series_buf);
                } else {
                    self.dataset.read_into(pos, &mut series_buf)?;
                }
                stats.records_fetched += 1;
                let d_sq = euclidean_sq(query, &series_buf);
                if d_sq < best_sq {
                    best_sq = d_sq;
                    *best = Answer {
                        pos,
                        dist: d_sq.sqrt(),
                    };
                }
            }
        }
        Ok(())
    }

    /// Approximate search: descend to the single most promising leaf, plus
    /// `radius` physically neighboring leaves (contiguous on disk — the
    /// property Coconut-Trie adds over the state of the art).
    pub fn approximate_search(&self, query: &[Value], radius: usize) -> Result<Answer> {
        Ok(self.approximate_search_with_stats(query, radius)?.0)
    }

    /// Approximate search with work counters.
    pub fn approximate_search_with_stats(
        &self,
        query: &[Value],
        radius: usize,
    ) -> Result<(Answer, QueryStats)> {
        let key = self.query_key(query)?;
        let mut stats = QueryStats::default();
        let Some((li, _)) = self.descend(key) else {
            return Ok((Answer::none(), stats));
        };
        let lo = li.saturating_sub(radius);
        let hi = (li + radius).min(self.leaves.len() - 1);
        let mut best = Answer::none();
        self.eval_leaf_range(lo, hi, query, &mut best, &mut stats)?;
        Ok((best, stats))
    }

    fn load_summaries(&self) -> Result<Arc<Summaries>> {
        if let Some(s) = self.summaries.read().as_ref() {
            return Ok(Arc::clone(s));
        }
        let mut write = self.summaries.write();
        if let Some(s) = write.as_ref() {
            return Ok(Arc::clone(s));
        }
        let entry = self.store.entry();
        let mut keys_leaf_order = Vec::with_capacity(self.entry_count as usize);
        let mut pos_leaf_order = Vec::with_capacity(self.entry_count as usize);
        let mut leaf_starts = Vec::with_capacity(self.leaves.len() + 1);
        let mut leaf_buf = Vec::new();
        let mut acc = 0u64;
        let mut min_pos = u64::MAX;
        let mut max_pos = 0u64;
        for leaf in &self.leaves {
            leaf_starts.push(acc);
            acc += leaf.count as u64;
            self.store.read_leaf(leaf, &mut leaf_buf)?;
            for slot in 0..leaf.count as usize {
                let e = self.store.entry_slice(&leaf_buf, slot);
                let pos = entry.pos(e);
                keys_leaf_order.push(entry.key(e));
                pos_leaf_order.push(pos);
                min_pos = min_pos.min(pos);
                max_pos = max_pos.max(pos);
            }
        }
        leaf_starts.push(acc);
        let (start, end) = if pos_leaf_order.is_empty() {
            (0, 0)
        } else {
            (min_pos, max_pos + 1)
        };
        if end - start != self.entry_count {
            return Err(Error::corrupt(
                "index does not cover a contiguous position range",
            ));
        }
        let mut keys_by_pos = vec![ZKey::MIN; (end - start) as usize];
        for (k, p) in keys_leaf_order.iter().zip(pos_leaf_order.iter()) {
            keys_by_pos[(p - start) as usize] = *k;
        }
        let s = Arc::new(Summaries {
            keys_by_pos,
            keys_leaf_order,
            pos_leaf_order,
            leaf_starts,
        });
        *write = Some(Arc::clone(&s));
        Ok(s)
    }

    /// Exact search via SIMS, seeded by approximate search with the default
    /// radius.
    pub fn exact_search(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.exact_search_with_radius(query, self.default_radius)
    }

    /// Exact search with an explicit seed radius.
    pub fn exact_search_with_radius(
        &self,
        query: &[Value],
        radius: usize,
    ) -> Result<(Answer, QueryStats)> {
        let (seed, mut stats) = self.approximate_search_with_stats(query, radius)?;
        let summaries = self.load_summaries()?;
        let query_paa = paa(query, self.config.sax.segments);
        let (answer, sims_stats) = if self.materialized {
            let mut fetcher = TrieLeafFetcher {
                store: &self.store,
                leaves: &self.leaves,
                leaf_starts: &summaries.leaf_starts,
                pos_leaf_order: &summaries.pos_leaf_order,
                cur_leaf: 0,
                leaf_buf: Vec::new(),
                loaded: false,
            };
            sims_exact(
                query,
                &query_paa,
                &summaries.keys_leaf_order,
                &self.config.sax,
                self.threads,
                seed,
                &mut fetcher,
                Deadline::NONE,
            )?
        } else {
            let mut fetcher = RawFileFetcher {
                dataset: &self.dataset,
                start: self.range.start,
            };
            sims_exact(
                query,
                &query_paa,
                &summaries.keys_by_pos,
                &self.config.sax,
                self.threads,
                seed,
                &mut fetcher,
                Deadline::NONE,
            )?
        };
        stats.add(&sims_stats);
        Ok((answer, stats))
    }

    /// Exact k-nearest-neighbors (extension beyond the paper).
    pub fn exact_knn(&self, query: &[Value], k: usize) -> Result<(Vec<Answer>, QueryStats)> {
        let (seed, mut stats) = self.approximate_search_with_stats(query, self.default_radius)?;
        let summaries = self.load_summaries()?;
        let query_paa = paa(query, self.config.sax.segments);
        let seeds = if seed.is_some() {
            vec![seed]
        } else {
            Vec::new()
        };
        let (answers, sims_stats) = if self.materialized {
            let mut fetcher = TrieLeafFetcher {
                store: &self.store,
                leaves: &self.leaves,
                leaf_starts: &summaries.leaf_starts,
                pos_leaf_order: &summaries.pos_leaf_order,
                cur_leaf: 0,
                leaf_buf: Vec::new(),
                loaded: false,
            };
            crate::sims::sims_exact_knn(
                query,
                &query_paa,
                &summaries.keys_leaf_order,
                &self.config.sax,
                self.threads,
                k,
                &seeds,
                &mut fetcher,
                Deadline::NONE,
            )?
        } else {
            let mut fetcher = RawFileFetcher {
                dataset: &self.dataset,
                start: self.range.start,
            };
            crate::sims::sims_exact_knn(
                query,
                &query_paa,
                &summaries.keys_by_pos,
                &self.config.sax,
                self.threads,
                k,
                &seeds,
                &mut fetcher,
                Deadline::NONE,
            )?
        };
        stats.add(&sims_stats);
        Ok((answers, stats))
    }

    /// Exact range query (extension): every series within Euclidean
    /// distance `epsilon`, sorted by distance.
    pub fn exact_range(&self, query: &[Value], epsilon: f64) -> Result<(Vec<Answer>, QueryStats)> {
        self.query_key(query)?;
        let summaries = self.load_summaries()?;
        let query_paa = paa(query, self.config.sax.segments);
        if self.materialized {
            let mut fetcher = TrieLeafFetcher {
                store: &self.store,
                leaves: &self.leaves,
                leaf_starts: &summaries.leaf_starts,
                pos_leaf_order: &summaries.pos_leaf_order,
                cur_leaf: 0,
                leaf_buf: Vec::new(),
                loaded: false,
            };
            crate::sims::sims_range(
                query,
                &query_paa,
                &summaries.keys_leaf_order,
                &self.config.sax,
                self.threads,
                epsilon,
                &mut fetcher,
                Deadline::NONE,
            )
        } else {
            let mut fetcher = RawFileFetcher {
                dataset: &self.dataset,
                start: self.range.start,
            };
            crate::sims::sims_range(
                query,
                &query_paa,
                &summaries.keys_by_pos,
                &self.config.sax,
                self.threads,
                epsilon,
                &mut fetcher,
                Deadline::NONE,
            )
        }
    }

    /// Mean leaf occupancy relative to capacity — low by construction for
    /// prefix splitting (the paper reports ~10%).
    pub fn avg_fill(&self) -> f64 {
        if self.leaves.is_empty() {
            return 0.0;
        }
        let slots: u64 = self
            .leaves
            .iter()
            .map(|l| l.blocks_used as u64 * self.config.leaf_capacity as u64)
            .sum();
        self.entry_count as f64 / slots as f64
    }
}

/// Materialized-trie SIMS fetcher (leaf order; forward-only).
struct TrieLeafFetcher<'a> {
    store: &'a LeafStore,
    leaves: &'a [LeafMeta],
    leaf_starts: &'a [u64],
    pos_leaf_order: &'a [u64],
    cur_leaf: usize,
    leaf_buf: Vec<u8>,
    loaded: bool,
}

impl SeriesFetcher for TrieLeafFetcher<'_> {
    fn fetch(&mut self, i: usize, out: &mut [Value]) -> Result<u64> {
        let i64 = i as u64;
        if !self.loaded || i64 >= self.leaf_starts[self.cur_leaf + 1] {
            while i64 >= self.leaf_starts[self.cur_leaf + 1] {
                self.cur_leaf += 1;
            }
            self.store
                .read_leaf(&self.leaves[self.cur_leaf], &mut self.leaf_buf)?;
            self.loaded = true;
        }
        let slot = (i64 - self.leaf_starts[self.cur_leaf]) as usize;
        let e = self.store.entry_slice(&self.leaf_buf, slot);
        self.store.entry().series_into(e, out);
        Ok(self.pos_leaf_order[i])
    }
}

impl SeriesIndex for CoconutTrie {
    fn name(&self) -> String {
        if self.materialized {
            "CTrieFull".into()
        } else {
            "CTrie".into()
        }
    }

    fn approximate(&self, query: &[Value]) -> Result<Answer> {
        self.approximate_search(query, self.default_radius)
    }

    fn exact(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.exact_search(query)
    }

    fn disk_bytes(&self) -> u64 {
        self.file.len()
    }

    fn leaf_count(&self) -> u64 {
        self.leaves.len() as u64
    }

    fn avg_leaf_fill(&self) -> f64 {
        self.avg_fill()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::dataset::write_dataset;
    use coconut_series::distance::{euclidean, znormalize};
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_storage::{IoStats, TempDir};

    const LEN: usize = 64;

    fn small_config() -> IndexConfig {
        let mut c = IndexConfig::default_for_len(LEN);
        c.leaf_capacity = 32;
        c
    }

    fn make_dataset(dir: &TempDir, n: u64) -> Dataset {
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        write_dataset(&path, &mut RandomWalkGen::new(23), n, LEN, &stats).unwrap();
        Dataset::open(&path, stats).unwrap()
    }

    fn brute_force(ds: &Dataset, query: &[Value]) -> Answer {
        let mut best = Answer::none();
        let mut scan = ds.scan();
        while let Some((pos, s)) = scan.next_series().unwrap() {
            best.merge(Answer {
                pos,
                dist: euclidean(query, s),
            });
        }
        best
    }

    fn query(seed: u64) -> Vec<Value> {
        let mut q = RandomWalkGen::new(seed).generate(LEN);
        znormalize(&mut q);
        q
    }

    #[test]
    fn build_produces_consistent_leaves() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 1000);
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        assert_eq!(trie.len(), 1000);
        let leaf_total: u64 = trie.leaves.iter().map(|l| l.count as u64).sum();
        assert_eq!(leaf_total, 1000);
        // Prefix splitting cannot balance: occupancy is well below 100%.
        assert!(trie.avg_fill() < 0.9, "fill {}", trie.avg_fill());
        // Every leaf respects capacity (no oversized leaves for random data).
        assert!(trie.leaves.iter().all(|l| l.count as usize <= 32));
        // Leaves are written contiguously: block numbers increase by
        // blocks_used.
        for w in trie.leaves.windows(2) {
            assert_eq!(w[1].block, w[0].block + w[0].blocks_used);
        }
    }

    #[test]
    fn trie_has_more_leaves_than_tree_for_same_data() {
        // The paper's occupancy argument: prefix splits -> sparse leaves ->
        // more leaves than median-based packing.
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 1000);
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let tree = crate::tree::CoconutTree::build(
            &ds,
            &small_config(),
            dir.path(),
            BuildOptions::default(),
        )
        .unwrap();
        assert!(
            trie.leaf_count() > tree.leaf_count(),
            "trie {} <= tree {}",
            trie.leaf_count(),
            tree.leaf_count()
        );
    }

    #[test]
    fn exact_search_matches_brute_force() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 700);
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        for seed in 100..110 {
            let q = query(seed);
            let (ans, _) = trie.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
        }
    }

    #[test]
    fn materialized_exact_matches_brute_force() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 400);
        let trie = CoconutTrie::build(
            &ds,
            &small_config(),
            dir.path(),
            BuildOptions::default().materialized(),
        )
        .unwrap();
        for seed in 200..206 {
            let q = query(seed);
            let (ans, _) = trie.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
        }
    }

    #[test]
    fn approximate_never_beats_exact() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 500);
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        for seed in 300..308 {
            let q = query(seed);
            let approx = trie.approximate_search(&q, 1).unwrap();
            let (exact, _) = trie.exact_search(&q).unwrap();
            assert!(exact.dist <= approx.dist + 1e-9);
        }
    }

    #[test]
    fn open_reloads_identically() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 300);
        let built =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let path = built.index_path().to_path_buf();
        let reopened = CoconutTrie::open(&path, &ds, 2).unwrap();
        assert_eq!(reopened.len(), built.len());
        assert_eq!(reopened.node_count(), built.node_count());
        for seed in 400..405 {
            let q = query(seed);
            let (a, _) = built.exact_search(&q).unwrap();
            let (b, _) = reopened.exact_search(&q).unwrap();
            assert_eq!(a.pos, b.pos);
        }
    }

    #[test]
    fn duplicate_keys_beyond_capacity_form_oversized_leaf() {
        // A constant dataset: every series has the same key.
        let dir = TempDir::new("ctrie").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("flat.bin");
        let mut w =
            coconut_series::dataset::DatasetWriter::create(&path, LEN, true, Arc::clone(&stats))
                .unwrap();
        for _ in 0..100 {
            w.append(&vec![0.0; LEN]).unwrap();
        }
        w.finish().unwrap();
        let ds = Dataset::open(&path, stats).unwrap();
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        assert_eq!(trie.leaf_count(), 1);
        assert_eq!(trie.leaves[0].count, 100);
        assert!(trie.leaves[0].blocks_used > 1);
        // Queries still work.
        let q = query(1);
        let (ans, _) = trie.exact_search(&q).unwrap();
        assert!(ans.is_some());
    }

    #[test]
    fn trie_knn_matches_tree_knn() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 400);
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let tree = crate::tree::CoconutTree::build(
            &ds,
            &small_config(),
            dir.path(),
            BuildOptions::default(),
        )
        .unwrap();
        for seed in 500..504 {
            let q = query(seed);
            let (a, _) = trie.exact_knn(&q, 4).unwrap();
            let (b, _) = tree.exact_knn(&q, 4).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x.dist - y.dist).abs() < 1e-9, "seed {seed}");
            }
        }
    }

    #[test]
    fn trie_range_matches_brute_force() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 300);
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let q = query(77);
        let mut dists: Vec<(u64, f64)> = (0..300)
            .map(|p| (p, euclidean(&q, &ds.get(p).unwrap())))
            .collect();
        dists.sort_by(|a, b| a.1.total_cmp(&b.1));
        let eps = dists[4].1;
        let (hits, _) = trie.exact_range(&q, eps).unwrap();
        let expected: Vec<u64> = dists
            .iter()
            .take_while(|&&(_, d)| d <= eps)
            .map(|&(p, _)| p)
            .collect();
        let mut got: Vec<u64> = hits.iter().map(|a| a.pos).collect();
        got.sort_unstable();
        let mut want = expected;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn sharded_build_is_bit_identical() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 900);
        for materialized in [false, true] {
            let base_opts = BuildOptions {
                materialized,
                memory_bytes: 1 << 20,
                ..BuildOptions::default()
            };
            let single =
                CoconutTrie::build(&ds, &small_config(), dir.path(), base_opts.clone()).unwrap();
            let single_bytes = std::fs::read(single.index_path()).unwrap();
            for shards in [3usize, 8] {
                let sharded = CoconutTrie::build(
                    &ds,
                    &small_config(),
                    dir.path(),
                    base_opts.clone().with_shards(shards),
                )
                .unwrap();
                let sharded_bytes = std::fs::read(sharded.index_path()).unwrap();
                assert_eq!(
                    single_bytes, sharded_bytes,
                    "mat={materialized} shards={shards}: index files differ"
                );
                assert_eq!(sharded.node_count(), single.node_count());
            }
        }
    }

    #[test]
    fn empty_dataset() {
        let dir = TempDir::new("ctrie").unwrap();
        let ds = make_dataset(&dir, 0);
        let trie =
            CoconutTrie::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        assert!(trie.is_empty());
        let q = query(9);
        assert!(!trie.approximate_search(&q, 1).unwrap().is_some());
        let (ans, _) = trie.exact_search(&q).unwrap();
        assert!(!ans.is_some());
    }
}
