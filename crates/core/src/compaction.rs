//! Compaction policies for the LSM index: *when* to merge runs, and
//! *which* adjacent runs to merge.
//!
//! [`crate::lsm::LsmCoconut`] keeps its runs in raw-file position order
//! (which, because batches only ever append, is also arrival order — the
//! newest run covers the highest positions). A policy only ever proposes
//! merging an **adjacent window** of that sequence, so the merged run again
//! covers one contiguous range and the manifest invariant is preserved.
//!
//! The policy decides *what* to merge; the mechanics — a K-way
//! [`coconut_storage::MergedStream`] over the runs' sorted leaf streams,
//! bulk-loaded into a fresh run on the compaction worker thread — live in
//! [`crate::lsm`] and are the same for every policy. A leveled policy can
//! therefore be added by implementing [`CompactionPolicy`] alone.
//!
//! Compaction is also independent of the node-splitting policy
//! ([`crate::split::SplitPolicy`]): runs are median-packed trees whose
//! leaves are cut by position, so the configured policy does not change
//! merged-run bytes. The manifest still records it (v3's policy byte) so
//! recovery rebuilds an [`crate::IndexConfig`] equal to the one the index
//! was created with.

use std::fmt;
use std::ops::Range;
use std::str::FromStr;

use coconut_storage::{Error, Result};

/// Which compaction policy family an LSM index runs under. Recorded in the
/// manifest (format v4) like the split policy is, so `open` resumes with
/// the shape the index was grown under and the CLI can reject a
/// conflicting `--compaction` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionPolicyKind {
    /// Size-tiered merging ([`TieredPolicy`]): low write amplification,
    /// read amplification bounded by the run-count cap.
    #[default]
    Tiered,
    /// Leveled merging ([`LeveledPolicy`]): eager pairwise merges toward
    /// one run per size level — lower read amplification at the cost of
    /// more rewriting.
    Leveled,
}

impl CompactionPolicyKind {
    /// Every valid kind, in CLI/display order.
    pub const ALL: [CompactionPolicyKind; 2] =
        [CompactionPolicyKind::Tiered, CompactionPolicyKind::Leveled];

    /// Stable one-byte encoding for the manifest.
    pub fn as_u8(self) -> u8 {
        match self {
            CompactionPolicyKind::Tiered => 0,
            CompactionPolicyKind::Leveled => 1,
        }
    }

    /// Decode [`CompactionPolicyKind::as_u8`]; unknown bytes are
    /// corruption.
    pub fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(CompactionPolicyKind::Tiered),
            1 => Ok(CompactionPolicyKind::Leveled),
            other => Err(Error::corrupt(format!(
                "unknown compaction-policy byte {other} (expected 0=tiered or 1=leveled)"
            ))),
        }
    }

    /// The policy implementation for this kind, with default parameters.
    pub fn policy(self) -> Box<dyn CompactionPolicy> {
        match self {
            CompactionPolicyKind::Tiered => Box::new(TieredPolicy::default()),
            CompactionPolicyKind::Leveled => Box::new(LeveledPolicy::default()),
        }
    }
}

impl fmt::Display for CompactionPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompactionPolicyKind::Tiered => "tiered",
            CompactionPolicyKind::Leveled => "leveled",
        })
    }
}

impl FromStr for CompactionPolicyKind {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "tiered" => Ok(CompactionPolicyKind::Tiered),
            "leveled" => Ok(CompactionPolicyKind::Leveled),
            other => Err(Error::invalid(format!(
                "unknown compaction policy '{other}' (valid options: tiered, leveled)"
            ))),
        }
    }
}

/// Decides which adjacent runs of an LSM index to merge next.
///
/// `plan` is called with the live runs' entry counts in position order
/// after every run addition and after every completed compaction; it runs
/// until no more work is proposed, so a policy can cascade (merge, then
/// merge the result again). With parallel compaction workers, `plan` is
/// additionally invoked per contiguous segment of runs not currently being
/// merged, so disjoint windows execute concurrently; a policy must
/// therefore be a pure function of the entry counts it is shown.
pub trait CompactionPolicy: Send {
    /// A short display name ("tiered", "leveled", ...).
    fn name(&self) -> &'static str;

    /// The serializable kind of this policy (what the manifest records).
    fn kind(&self) -> CompactionPolicyKind;

    /// Given the live runs' entry counts (position order), return the index
    /// window of adjacent runs to merge next, or `None` when the shape is
    /// acceptable. Windows of fewer than two runs are ignored.
    fn plan(&self, run_entries: &[u64]) -> Option<Range<usize>>;
}

/// Size-tiered compaction (the classic LSM default, cf. Cassandra/RocksDB
/// "universal"): runs are bucketed into size *tiers* — tier `t` holds runs
/// with `size_ratio^t <= entries < size_ratio^(t+1)` — and whenever
/// `tier_runs` adjacent runs fall into the same tier, they are merged into
/// one run of (roughly) the next tier. Merges cascade: ingesting
/// equal-sized batches yields the familiar logarithmic run ladder, and
/// write amplification stays `O(log_ratio(N))` per record.
///
/// `max_runs` is a hard cap on read amplification: if the ladder still
/// exceeds it (e.g. wildly mixed batch sizes never line up in one tier),
/// the two adjacent runs with the smallest combined size are merged until
/// the count is back under the cap.
#[derive(Debug, Clone)]
pub struct TieredPolicy {
    /// Size ratio between consecutive tiers (≥ 2).
    pub size_ratio: u64,
    /// Adjacent same-tier runs that trigger a merge (≥ 2).
    pub tier_runs: usize,
    /// Hard cap on the total run count (≥ 1).
    pub max_runs: usize,
}

impl Default for TieredPolicy {
    fn default() -> Self {
        TieredPolicy {
            size_ratio: 4,
            tier_runs: 4,
            max_runs: 12,
        }
    }
}

impl TieredPolicy {
    /// A policy that keeps at most `max_runs` runs, merging eagerly enough
    /// (tier width = cap) that the cap rule rarely fires.
    pub fn with_max_runs(max_runs: usize) -> Self {
        let max_runs = max_runs.max(1);
        TieredPolicy {
            size_ratio: 4,
            tier_runs: max_runs.clamp(2, 4),
            max_runs,
        }
    }

    /// The tier of a run with `entries` records.
    fn tier(&self, entries: u64) -> u32 {
        let ratio = self.size_ratio.max(2);
        let mut v = entries.max(1);
        let mut t = 0;
        while v >= ratio {
            v /= ratio;
            t += 1;
        }
        t
    }
}

impl CompactionPolicy for TieredPolicy {
    fn name(&self) -> &'static str {
        "tiered"
    }

    fn kind(&self) -> CompactionPolicyKind {
        CompactionPolicyKind::Tiered
    }

    fn plan(&self, run_entries: &[u64]) -> Option<Range<usize>> {
        let tier_runs = self.tier_runs.max(2);
        // Rule 1: `tier_runs` adjacent runs in one tier merge into the next
        // tier. Prefer the lowest (smallest) qualifying tier so cheap merges
        // happen first and cascade upward.
        let tiers: Vec<u32> = run_entries.iter().map(|&e| self.tier(e)).collect();
        let mut best: Option<(u32, Range<usize>)> = None;
        let mut start = 0;
        for i in 1..=tiers.len() {
            if i == tiers.len() || tiers[i] != tiers[start] {
                if i - start >= tier_runs {
                    let window = start..start + tier_runs;
                    match &best {
                        Some((t, _)) if *t <= tiers[start] => {}
                        _ => best = Some((tiers[start], window)),
                    }
                }
                start = i;
            }
        }
        if let Some((_, window)) = best {
            return Some(window);
        }
        // Rule 2: hard cap on read amplification — merge the cheapest
        // adjacent pair until the count is back under `max_runs`.
        if run_entries.len() > self.max_runs.max(1) {
            let pair = run_entries
                .windows(2)
                .enumerate()
                .min_by_key(|(_, w)| w[0] + w[1])
                .map(|(i, _)| i)?;
            return Some(pair..pair + 2);
        }
        None
    }
}

/// Leveled compaction (cf. LevelDB/RocksDB leveled style, adapted to
/// position-contiguous runs): runs are assigned a *level* by size — level
/// `L` holds runs with `base_entries * fanout^L <= entries <
/// base_entries * fanout^(L+1)` (everything smaller than
/// `base_entries * fanout` is level 0) — and whenever two **adjacent** runs
/// share a level they are merged. Merges are always pairs, so every
/// compaction job rewrites a bounded, contiguous position range (the
/// incremental "partial merge" of leveled LSMs) instead of a whole tier.
///
/// Steady state is at most one run per level: an ascending ladder of runs
/// on distinct levels is stable, bounding read amplification by the level
/// count `O(log_fanout(N))` — lower than tiered's run cap — while each
/// entry is rewritten up to `fanout` times per level it climbs, the
/// classic leveled write-amplification tradeoff the streaming benchmark
/// measures.
///
/// The lowest qualifying level merges first (cheap merges cascade upward);
/// within a level the pair with the fewest combined entries wins, keeping
/// individual jobs as small as possible.
#[derive(Debug, Clone)]
pub struct LeveledPolicy {
    /// Size ratio between consecutive levels (≥ 2).
    pub fanout: u64,
    /// Entry budget of a level-0 run; level `L` targets
    /// `base_entries * fanout^L`.
    pub base_entries: u64,
}

impl Default for LeveledPolicy {
    fn default() -> Self {
        LeveledPolicy {
            fanout: 4,
            base_entries: 256,
        }
    }
}

impl LeveledPolicy {
    /// The level of a run with `entries` records.
    fn level(&self, entries: u64) -> u32 {
        let fanout = self.fanout.max(2);
        let mut bound = self.base_entries.max(1).saturating_mul(fanout);
        let mut level = 0;
        while entries >= bound {
            level += 1;
            bound = bound.saturating_mul(fanout);
        }
        level
    }
}

impl CompactionPolicy for LeveledPolicy {
    fn name(&self) -> &'static str {
        "leveled"
    }

    fn kind(&self) -> CompactionPolicyKind {
        CompactionPolicyKind::Leveled
    }

    fn plan(&self, run_entries: &[u64]) -> Option<Range<usize>> {
        let levels: Vec<u32> = run_entries.iter().map(|&e| self.level(e)).collect();
        run_entries
            .windows(2)
            .enumerate()
            .filter(|&(i, _)| levels[i] == levels[i + 1])
            // Lowest level first, then the smallest pair; `min_by_key` is
            // stable, so ties resolve to the earliest (oldest) pair.
            .min_by_key(|&(i, w)| (levels[i], w[0] + w[1]))
            .map(|(i, _)| i..i + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codec_roundtrips_and_rejects_unknown() {
        for kind in CompactionPolicyKind::ALL {
            assert_eq!(CompactionPolicyKind::from_u8(kind.as_u8()).unwrap(), kind);
            assert_eq!(
                kind.to_string().parse::<CompactionPolicyKind>().unwrap(),
                kind
            );
            assert_eq!(kind.policy().kind(), kind);
        }
        assert!(CompactionPolicyKind::from_u8(7).is_err());
        let err = "lazy".parse::<CompactionPolicyKind>().unwrap_err();
        assert!(err.to_string().contains("tiered, leveled"), "{err}");
    }

    #[test]
    fn tiers_follow_the_size_ratio() {
        let p = TieredPolicy::default(); // ratio 4
        assert_eq!(p.tier(0), 0);
        assert_eq!(p.tier(3), 0);
        assert_eq!(p.tier(4), 1);
        assert_eq!(p.tier(15), 1);
        assert_eq!(p.tier(16), 2);
        assert_eq!(p.tier(64), 3);
    }

    #[test]
    fn equal_runs_merge_once_tier_width_reached() {
        let p = TieredPolicy {
            size_ratio: 4,
            tier_runs: 4,
            max_runs: 12,
        };
        assert_eq!(p.plan(&[100, 100, 100]), None);
        assert_eq!(p.plan(&[100, 100, 100, 100]), Some(0..4));
        // The merged run (tier above) plus fresh small runs: no merge until
        // four small ones line up again.
        assert_eq!(p.plan(&[400, 100, 100, 100]), None);
        assert_eq!(p.plan(&[400, 100, 100, 100, 100]), Some(1..5));
    }

    #[test]
    fn lowest_tier_merges_first_and_cascades() {
        let p = TieredPolicy {
            size_ratio: 4,
            tier_runs: 2,
            max_runs: 12,
        };
        // Both the two 400s (tier 4) and the two 10s (tier 1) qualify; the
        // smaller tier wins.
        assert_eq!(p.plan(&[400, 400, 10, 10]), Some(2..4));
        // After that merge the 20-run joins tier 2; the 400s merge next.
        assert_eq!(p.plan(&[400, 400, 20]), Some(0..2));
    }

    #[test]
    fn cap_rule_merges_cheapest_adjacent_pair() {
        let p = TieredPolicy {
            size_ratio: 4,
            tier_runs: 4,
            max_runs: 3,
        };
        // No tier has 4 adjacent members, but the cap (3) is exceeded:
        // merge the cheapest adjacent pair (70 + 5).
        assert_eq!(p.plan(&[1000, 70, 5, 300]), Some(1..3));
        assert_eq!(p.plan(&[1000, 75, 300]), None);
    }

    #[test]
    fn with_max_runs_bounds_the_ladder() {
        let p = TieredPolicy::with_max_runs(2);
        assert_eq!(p.tier_runs, 2);
        assert_eq!(p.max_runs, 2);
        // Two equal runs merge immediately (tier rule), keeping the count
        // at the cap without ever invoking the cap rule.
        assert_eq!(p.plan(&[100, 100]), Some(0..2));
        assert_eq!(p.plan(&[400, 100]), None);
        assert_eq!(p.plan(&[400, 100, 90]), Some(1..3));
    }

    #[test]
    fn empty_and_single_run_never_merge() {
        let p = TieredPolicy::default();
        assert_eq!(p.plan(&[]), None);
        assert_eq!(p.plan(&[1_000_000]), None);
        let l = LeveledPolicy::default();
        assert_eq!(l.plan(&[]), None);
        assert_eq!(l.plan(&[1_000_000]), None);
    }

    #[test]
    fn leveled_levels_follow_base_and_fanout() {
        let p = LeveledPolicy::default(); // base 256, fanout 4
        assert_eq!(p.level(0), 0);
        assert_eq!(p.level(1023), 0);
        assert_eq!(p.level(1024), 1);
        assert_eq!(p.level(4095), 1);
        assert_eq!(p.level(4096), 2);
    }

    #[test]
    fn leveled_merges_adjacent_same_level_pairs() {
        let p = LeveledPolicy::default();
        // Two level-0 runs merge; the ascending ladder is stable.
        assert_eq!(p.plan(&[100, 100]), Some(0..2));
        assert_eq!(p.plan(&[5000, 2000]), None, "levels 2,1: steady state");
        assert_eq!(p.plan(&[2000, 2000]), Some(0..2));
        // The lowest qualifying level merges first...
        assert_eq!(p.plan(&[2000, 2000, 100, 100]), Some(2..4));
        // ...and within a level the smallest pair wins.
        assert_eq!(p.plan(&[900, 900, 100, 100]), Some(2..4));
    }

    #[test]
    fn leveled_pair_merges_cascade_to_one_run_per_level() {
        let p = LeveledPolicy::default();
        // Simulate the maintain loop: equal ingest batches merge pairwise
        // until every surviving run sits on its own level.
        let mut runs: Vec<u64> = vec![300; 8];
        while let Some(w) = p.plan(&runs) {
            assert_eq!(w.len(), 2, "leveled merges are always pairs");
            let merged: u64 = runs[w.clone()].iter().sum();
            runs.splice(w, std::iter::once(merged));
        }
        let levels: Vec<u32> = runs.iter().map(|&e| p.level(e)).collect();
        for pair in levels.windows(2) {
            assert_ne!(pair[0], pair[1], "{runs:?} -> {levels:?}");
        }
        assert_eq!(runs.iter().sum::<u64>(), 2400, "no entries lost");
    }
}
