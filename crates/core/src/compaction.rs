//! Compaction policies for the LSM index: *when* to merge runs, and
//! *which* adjacent runs to merge.
//!
//! [`crate::lsm::LsmCoconut`] keeps its runs in raw-file position order
//! (which, because batches only ever append, is also arrival order — the
//! newest run covers the highest positions). A policy only ever proposes
//! merging an **adjacent window** of that sequence, so the merged run again
//! covers one contiguous range and the manifest invariant is preserved.
//!
//! The policy decides *what* to merge; the mechanics — a K-way
//! [`coconut_storage::MergedStream`] over the runs' sorted leaf streams,
//! bulk-loaded into a fresh run on the compaction worker thread — live in
//! [`crate::lsm`] and are the same for every policy. A leveled policy can
//! therefore be added by implementing [`CompactionPolicy`] alone.
//!
//! Compaction is also independent of the node-splitting policy
//! ([`crate::split::SplitPolicy`]): runs are median-packed trees whose
//! leaves are cut by position, so the configured policy does not change
//! merged-run bytes. The manifest still records it (v3's policy byte) so
//! recovery rebuilds an [`crate::IndexConfig`] equal to the one the index
//! was created with.

use std::ops::Range;

/// Decides which adjacent runs of an LSM index to merge next.
///
/// `plan` is called with the live runs' entry counts in position order
/// after every run addition and after every completed compaction; it runs
/// until no more work is proposed, so a policy can cascade (merge, then
/// merge the result again).
pub trait CompactionPolicy: Send {
    /// A short display name ("tiered", "leveled", ...).
    fn name(&self) -> &'static str;

    /// Given the live runs' entry counts (position order), return the index
    /// window of adjacent runs to merge next, or `None` when the shape is
    /// acceptable. Windows of fewer than two runs are ignored.
    fn plan(&self, run_entries: &[u64]) -> Option<Range<usize>>;
}

/// Size-tiered compaction (the classic LSM default, cf. Cassandra/RocksDB
/// "universal"): runs are bucketed into size *tiers* — tier `t` holds runs
/// with `size_ratio^t <= entries < size_ratio^(t+1)` — and whenever
/// `tier_runs` adjacent runs fall into the same tier, they are merged into
/// one run of (roughly) the next tier. Merges cascade: ingesting
/// equal-sized batches yields the familiar logarithmic run ladder, and
/// write amplification stays `O(log_ratio(N))` per record.
///
/// `max_runs` is a hard cap on read amplification: if the ladder still
/// exceeds it (e.g. wildly mixed batch sizes never line up in one tier),
/// the two adjacent runs with the smallest combined size are merged until
/// the count is back under the cap.
#[derive(Debug, Clone)]
pub struct TieredPolicy {
    /// Size ratio between consecutive tiers (≥ 2).
    pub size_ratio: u64,
    /// Adjacent same-tier runs that trigger a merge (≥ 2).
    pub tier_runs: usize,
    /// Hard cap on the total run count (≥ 1).
    pub max_runs: usize,
}

impl Default for TieredPolicy {
    fn default() -> Self {
        TieredPolicy {
            size_ratio: 4,
            tier_runs: 4,
            max_runs: 12,
        }
    }
}

impl TieredPolicy {
    /// A policy that keeps at most `max_runs` runs, merging eagerly enough
    /// (tier width = cap) that the cap rule rarely fires.
    pub fn with_max_runs(max_runs: usize) -> Self {
        let max_runs = max_runs.max(1);
        TieredPolicy {
            size_ratio: 4,
            tier_runs: max_runs.clamp(2, 4),
            max_runs,
        }
    }

    /// The tier of a run with `entries` records.
    fn tier(&self, entries: u64) -> u32 {
        let ratio = self.size_ratio.max(2);
        let mut v = entries.max(1);
        let mut t = 0;
        while v >= ratio {
            v /= ratio;
            t += 1;
        }
        t
    }
}

impl CompactionPolicy for TieredPolicy {
    fn name(&self) -> &'static str {
        "tiered"
    }

    fn plan(&self, run_entries: &[u64]) -> Option<Range<usize>> {
        let tier_runs = self.tier_runs.max(2);
        // Rule 1: `tier_runs` adjacent runs in one tier merge into the next
        // tier. Prefer the lowest (smallest) qualifying tier so cheap merges
        // happen first and cascade upward.
        let tiers: Vec<u32> = run_entries.iter().map(|&e| self.tier(e)).collect();
        let mut best: Option<(u32, Range<usize>)> = None;
        let mut start = 0;
        for i in 1..=tiers.len() {
            if i == tiers.len() || tiers[i] != tiers[start] {
                if i - start >= tier_runs {
                    let window = start..start + tier_runs;
                    match &best {
                        Some((t, _)) if *t <= tiers[start] => {}
                        _ => best = Some((tiers[start], window)),
                    }
                }
                start = i;
            }
        }
        if let Some((_, window)) = best {
            return Some(window);
        }
        // Rule 2: hard cap on read amplification — merge the cheapest
        // adjacent pair until the count is back under `max_runs`.
        if run_entries.len() > self.max_runs.max(1) {
            let pair = run_entries
                .windows(2)
                .enumerate()
                .min_by_key(|(_, w)| w[0] + w[1])
                .map(|(i, _)| i)?;
            return Some(pair..pair + 2);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_follow_the_size_ratio() {
        let p = TieredPolicy::default(); // ratio 4
        assert_eq!(p.tier(0), 0);
        assert_eq!(p.tier(3), 0);
        assert_eq!(p.tier(4), 1);
        assert_eq!(p.tier(15), 1);
        assert_eq!(p.tier(16), 2);
        assert_eq!(p.tier(64), 3);
    }

    #[test]
    fn equal_runs_merge_once_tier_width_reached() {
        let p = TieredPolicy {
            size_ratio: 4,
            tier_runs: 4,
            max_runs: 12,
        };
        assert_eq!(p.plan(&[100, 100, 100]), None);
        assert_eq!(p.plan(&[100, 100, 100, 100]), Some(0..4));
        // The merged run (tier above) plus fresh small runs: no merge until
        // four small ones line up again.
        assert_eq!(p.plan(&[400, 100, 100, 100]), None);
        assert_eq!(p.plan(&[400, 100, 100, 100, 100]), Some(1..5));
    }

    #[test]
    fn lowest_tier_merges_first_and_cascades() {
        let p = TieredPolicy {
            size_ratio: 4,
            tier_runs: 2,
            max_runs: 12,
        };
        // Both the two 400s (tier 4) and the two 10s (tier 1) qualify; the
        // smaller tier wins.
        assert_eq!(p.plan(&[400, 400, 10, 10]), Some(2..4));
        // After that merge the 20-run joins tier 2; the 400s merge next.
        assert_eq!(p.plan(&[400, 400, 20]), Some(0..2));
    }

    #[test]
    fn cap_rule_merges_cheapest_adjacent_pair() {
        let p = TieredPolicy {
            size_ratio: 4,
            tier_runs: 4,
            max_runs: 3,
        };
        // No tier has 4 adjacent members, but the cap (3) is exceeded:
        // merge the cheapest adjacent pair (70 + 5).
        assert_eq!(p.plan(&[1000, 70, 5, 300]), Some(1..3));
        assert_eq!(p.plan(&[1000, 75, 300]), None);
    }

    #[test]
    fn with_max_runs_bounds_the_ladder() {
        let p = TieredPolicy::with_max_runs(2);
        assert_eq!(p.tier_runs, 2);
        assert_eq!(p.max_runs, 2);
        // Two equal runs merge immediately (tier rule), keeping the count
        // at the cap without ever invoking the cap rule.
        assert_eq!(p.plan(&[100, 100]), Some(0..2));
        assert_eq!(p.plan(&[400, 100]), None);
        assert_eq!(p.plan(&[400, 100, 90]), Some(1..3));
    }

    #[test]
    fn empty_and_single_run_never_merge() {
        let p = TieredPolicy::default();
        assert_eq!(p.plan(&[]), None);
        assert_eq!(p.plan(&[1_000_000]), None);
    }
}
