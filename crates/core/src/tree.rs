//! Coconut-Tree: a balanced, contiguous, densely packed data series index
//! (paper Section 4.3, Algorithm 3).
//!
//! Construction sorts the sortable summarizations externally and bulk-loads
//! a B+-tree bottom-up, UB-tree style: leaves are written left-to-right into
//! one contiguous file region, packed to the configured fill factor, and the
//! (tiny) internal levels are kept in memory — "the index's internal nodes
//! for most applications fit in main memory". Median-based splitting is
//! implicit in bulk loading: any node boundary may fall between any two
//! records, so no common-prefix constraint wastes space.
//!
//! Queries:
//! * [`CoconutTree::approximate_search`] (Algorithm 4) descends to the leaf
//!   where the query's key would be inserted and evaluates it plus `radius`
//!   neighboring leaves on each side — neighbors are physically adjacent,
//!   so this is one sequential read.
//! * [`CoconutTree::exact_search`] (Algorithm 5, *CoconutTreeSIMS*) seeds a
//!   best-so-far from approximate search, then runs the parallel
//!   skip-sequential SIMS scan.
//!
//! Post-build [`CoconutTree::insert`] implements classic B+-tree leaf
//! inserts with median splits; split-off leaves are appended at the end of
//! the file, so updates gradually trade away contiguity (measured by
//! [`CoconutTree::contiguity`]) — the effect the paper's update experiment
//! (Figure 10a) studies.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use coconut_series::dataset::Dataset;
use coconut_series::distance::euclidean_sq;
use coconut_series::index::{Answer, QueryStats, SeriesIndex};
use coconut_series::Value;
use coconut_storage::{CountedFile, Deadline, Error, IoStats, RecordStream, Result, SortReport};
use coconut_summary::paa::paa;
use coconut_summary::sax::Summarizer;
use coconut_summary::ZKey;

use crate::builder::{sorted_key_pos, sorted_key_series, BuildReport};
use crate::config::{BuildOptions, IndexConfig};
use crate::layout::{
    crc32, read_directory, write_directory, EntryLayout, IndexHeader, LeafMeta, LeafStore,
    CHECKSUM_VERSION,
};
use crate::records::SortedRecord;
use crate::shard::{sorted_key_pos_sharded, sorted_key_series_sharded};
use crate::sims::{sims_exact, sims_exact_knn_bounded, SeriesFetcher};

static TREE_ID: AtomicU64 = AtomicU64::new(0);

/// In-memory summarization arrays for SIMS (rebuilt lazily after inserts).
struct Summaries {
    /// Keys in raw-file order; index `i` is position `range.start + i`.
    keys_by_pos: Vec<ZKey>,
    /// Keys in leaf (sorted) order.
    keys_leaf_order: Vec<ZKey>,
    /// Raw positions in leaf order (parallel to `keys_leaf_order`).
    pos_leaf_order: Vec<u64>,
    /// First scan index of each leaf (prefix sums; one extra final entry).
    leaf_starts: Vec<u64>,
}

/// The Coconut-Tree index.
pub struct CoconutTree {
    config: IndexConfig,
    materialized: bool,
    threads: usize,
    dataset: Dataset,
    file: Arc<CountedFile>,
    store: LeafStore,
    leaves: Vec<LeafMeta>,
    /// Internal separator levels; `levels[0]` holds each leaf's first key,
    /// each higher level the first key of `internal_fanout`-sized groups.
    levels: Vec<Vec<ZKey>>,
    summaries: RwLock<Option<Arc<Summaries>>>,
    entry_count: u64,
    next_block: u32,
    /// Positions covered: `range.start..range.end` of the dataset.
    range: std::ops::Range<u64>,
    build_report: BuildReport,
    default_radius: usize,
}

impl CoconutTree {
    /// Bulk-load a tree over all of `dataset` (Algorithm 3). Files are
    /// created in `dir`; sort scratch goes there too.
    pub fn build(
        dataset: &Dataset,
        config: &IndexConfig,
        dir: &Path,
        opts: BuildOptions,
    ) -> Result<Self> {
        Self::build_range(dataset, 0..dataset.len(), config, dir, opts)
    }

    /// Bulk-load a tree over the positions `range` of `dataset` (used by the
    /// LSM extension, whose runs cover contiguous position ranges).
    pub fn build_range(
        dataset: &Dataset,
        range: std::ops::Range<u64>,
        config: &IndexConfig,
        dir: &Path,
        opts: BuildOptions,
    ) -> Result<Self> {
        let mut tree = Self::new_empty(dataset, range, config, dir, &opts)?;
        tree.bulk_load(dir, &opts)?;
        Ok(tree)
    }

    /// Bulk-load a tree from an already-sorted record stream covering
    /// exactly the positions of `range` — the LSM compaction path, where
    /// `stream` is a K-way [`coconut_storage::MergedStream`] over the leaf
    /// streams of existing runs. The record type must match
    /// `opts.materialized` ([`crate::records::KeySeries`] when materialized,
    /// [`crate::records::KeyPos`] otherwise).
    ///
    /// Because the loader consumes the same `(key, pos)`-ordered sequence a
    /// from-scratch sort would produce, the resulting index file is
    /// bit-identical to [`CoconutTree::build_range`] over the same range.
    pub fn build_range_from_stream<R: SortedRecord>(
        dataset: &Dataset,
        range: std::ops::Range<u64>,
        config: &IndexConfig,
        dir: &Path,
        opts: BuildOptions,
        stream: &mut dyn RecordStream<Item = R>,
    ) -> Result<Self> {
        let mut tree = Self::new_empty(dataset, range, config, dir, &opts)?;
        tree.load_stream(stream)?;
        Ok(tree)
    }

    /// Validate inputs and create the (empty) index file in `dir`.
    fn new_empty(
        dataset: &Dataset,
        range: std::ops::Range<u64>,
        config: &IndexConfig,
        dir: &Path,
        opts: &BuildOptions,
    ) -> Result<Self> {
        config.validate()?;
        if dataset.series_len() != config.sax.series_len {
            return Err(Error::invalid(format!(
                "dataset series length {} != config series length {}",
                dataset.series_len(),
                config.sax.series_len
            )));
        }
        if range.end > dataset.len() || range.start > range.end {
            return Err(Error::invalid("build range out of dataset bounds"));
        }
        let id = TREE_ID.fetch_add(1, Ordering::Relaxed);
        let suffix = if opts.materialized { "full" } else { "ptr" };
        let path = dir.join(format!("ctree-{id}-{suffix}.idx"));
        let stats = Arc::clone(dataset.file().stats());
        let file = Arc::new(CountedFile::create(&path, stats)?);
        let entry = EntryLayout {
            series_len: config.sax.series_len,
            materialized: opts.materialized,
        };
        let store = LeafStore::new(Arc::clone(&file), entry, config.leaf_capacity);

        Ok(CoconutTree {
            config: *config,
            materialized: opts.materialized,
            threads: opts.threads.max(1),
            dataset: dataset.clone(),
            file,
            store,
            leaves: Vec::new(),
            levels: Vec::new(),
            summaries: RwLock::new(None),
            entry_count: 0,
            next_block: 0,
            range,
            build_report: BuildReport::default(),
            default_radius: 1,
        })
    }

    /// Sort the range's records and feed them to the loader. Sharded builds
    /// sort K subranges in parallel and K-way merge; the merged stream is
    /// record-for-record identical to one big sort, so either source feeds
    /// the same loader loop.
    fn bulk_load(&mut self, tmp_dir: &Path, opts: &BuildOptions) -> Result<()> {
        let stats = Arc::clone(self.dataset.file().stats());
        if opts.materialized {
            let mut stream: Box<dyn RecordStream<Item = crate::records::KeySeries>> =
                if opts.shards > 1 {
                    Box::new(sorted_key_series_sharded(
                        &self.dataset,
                        self.range.clone(),
                        &self.config.sax,
                        opts.memory_bytes,
                        tmp_dir,
                        &stats,
                        opts.shards,
                    )?)
                } else {
                    Box::new(sorted_key_series(
                        &self.dataset,
                        self.range.clone(),
                        &self.config.sax,
                        opts.memory_bytes,
                        tmp_dir,
                        &stats,
                    )?)
                };
            self.load_stream(stream.as_mut())
        } else {
            let mut stream: Box<dyn RecordStream<Item = crate::records::KeyPos>> =
                if opts.shards > 1 {
                    Box::new(sorted_key_pos_sharded(
                        &self.dataset,
                        self.range.clone(),
                        &self.config.sax,
                        opts.memory_bytes,
                        tmp_dir,
                        &stats,
                        opts.shards,
                    )?)
                } else {
                    Box::new(sorted_key_pos(
                        &self.dataset,
                        self.range.clone(),
                        &self.config.sax,
                        opts.memory_bytes,
                        tmp_dir,
                        &stats,
                    )?)
                };
            self.load_stream(stream.as_mut())
        }
    }

    /// The bottom-up loader loop (Algorithm 3, lines 13–20): pack sorted
    /// records into left-to-right leaves, then build the in-memory levels,
    /// persist the directory, and keep the summarization arrays.
    fn load_stream<R: SortedRecord>(
        &mut self,
        stream: &mut dyn RecordStream<Item = R>,
    ) -> Result<()> {
        let n = self.range.end - self.range.start;
        let entry = *self.store.entry();
        let eb = entry.entry_bytes();
        let per_leaf = self.config.bulk_leaf_entries();
        let mut block_buf: Vec<u8> = Vec::with_capacity(per_leaf * eb);
        let mut entry_buf = vec![0u8; eb];
        let mut first_key = ZKey::MIN;
        let mut in_leaf = 0usize;

        let mut keys_by_pos = vec![ZKey::MIN; n as usize];
        let mut keys_leaf_order = Vec::with_capacity(n as usize);
        let mut pos_leaf_order = Vec::with_capacity(n as usize);

        // A closure cannot borrow self mutably twice, so the leaf-flush is a
        // small macro over locals.
        macro_rules! flush_leaf {
            () => {
                if in_leaf > 0 {
                    let crc = crc32(&block_buf);
                    let blocks_used = self.store.write_leaf(self.next_block, &block_buf)?;
                    self.leaves.push(LeafMeta {
                        first_key,
                        count: in_leaf as u32,
                        block: self.next_block,
                        blocks_used,
                        crc,
                    });
                    self.next_block += blocks_used;
                    block_buf.clear();
                    in_leaf = 0;
                }
            };
        }

        while let Some(rec) = stream.next_item()? {
            if self.materialized && rec.series().is_none() {
                return Err(Error::invalid(
                    "materialized build fed a stream without payloads",
                ));
            }
            let (key, pos) = (rec.key(), rec.pos());
            if !self.range.contains(&pos) {
                return Err(Error::invalid(format!(
                    "record position {pos} outside build range {:?}",
                    self.range
                )));
            }
            entry.encode(key, pos, rec.series(), &mut entry_buf);
            if in_leaf == 0 {
                first_key = key;
            }
            block_buf.extend_from_slice(&entry_buf);
            keys_by_pos[(pos - self.range.start) as usize] = key;
            keys_leaf_order.push(key);
            pos_leaf_order.push(pos);
            in_leaf += 1;
            self.entry_count += 1;
            if in_leaf == per_leaf {
                flush_leaf!();
            }
        }
        self.build_report.sort = stream.report();
        flush_leaf!();
        debug_assert_eq!(in_leaf, 0);

        self.build_report.items = self.entry_count;
        self.build_report.leaves = self.leaves.len() as u64;
        self.rebuild_levels();
        self.persist_directory()?;
        let leaf_starts = Self::compute_leaf_starts(&self.leaves);
        *self.summaries.write() = Some(Arc::new(Summaries {
            keys_by_pos,
            keys_leaf_order,
            pos_leaf_order,
            leaf_starts,
        }));
        Ok(())
    }

    /// Open a previously built index file. `dataset` must be the raw file it
    /// was built over.
    pub fn open(path: &Path, dataset: &Dataset, threads: usize) -> Result<Self> {
        let range = 0..dataset.len();
        Self::open_impl(path, dataset, threads, range, false)
    }

    /// Open a previously built index file as a run covering exactly the
    /// positions `range` of `dataset` — the LSM recovery path, where the
    /// manifest records each run's covered range. Unlike
    /// [`CoconutTree::open`] (which assumes the whole dataset), this
    /// validates that the file's entry count matches the range, so a
    /// manifest/run mismatch is caught at open time rather than at query
    /// time.
    pub fn open_range(
        path: &Path,
        dataset: &Dataset,
        threads: usize,
        range: std::ops::Range<u64>,
    ) -> Result<Self> {
        Self::open_impl(path, dataset, threads, range, true)
    }

    fn open_impl(
        path: &Path,
        dataset: &Dataset,
        threads: usize,
        range: std::ops::Range<u64>,
        check_count: bool,
    ) -> Result<Self> {
        if range.start > range.end || range.end > dataset.len() {
            return Err(Error::invalid("open range out of dataset bounds"));
        }
        let stats = Arc::clone(dataset.file().stats());
        let file = Arc::new(CountedFile::open_rw(path, stats)?);
        let header = IndexHeader::read_from(&file)?;
        if header.kind != 0 {
            return Err(Error::corrupt("not a Coconut-Tree index file"));
        }
        if header.series_len as usize != dataset.series_len() {
            return Err(Error::corrupt("index/dataset series length mismatch"));
        }
        if check_count && header.entry_count != range.end - range.start {
            return Err(Error::corrupt(format!(
                "index holds {} entries but its recorded range {range:?} spans {}",
                header.entry_count,
                range.end - range.start
            )));
        }
        let config = IndexConfig {
            sax: coconut_summary::SaxConfig {
                series_len: header.series_len as usize,
                segments: header.segments as usize,
                card_bits: header.card_bits,
            },
            leaf_capacity: header.leaf_capacity as usize,
            fill_factor: 1.0,
            internal_fanout: 64,
            split_policy: crate::split::SplitPolicyKind::from_u8(header.split_policy)?,
        };
        config.validate()?;
        let (leaves, _) = read_directory(&file, header.dir_offset)?;
        let entry = EntryLayout {
            series_len: config.sax.series_len,
            materialized: header.materialized,
        };
        let store = LeafStore::new(Arc::clone(&file), entry, config.leaf_capacity);
        let mut tree = CoconutTree {
            config,
            materialized: header.materialized,
            threads: threads.max(1),
            dataset: dataset.clone(),
            file,
            store,
            leaves,
            levels: Vec::new(),
            summaries: RwLock::new(None),
            entry_count: header.entry_count,
            next_block: header.num_blocks as u32,
            range,
            build_report: BuildReport::default(),
            default_radius: 1,
        };
        // The on-disk index does not record its own range; `open` assumes
        // the common whole-dataset case (`open_range` is told it by the LSM
        // manifest), and `load_summaries` re-derives and cross-checks the
        // contiguous position range from the entries themselves.
        tree.rebuild_levels();
        Ok(tree)
    }

    /// Stream this tree's entries in leaf order — which, for a bulk-loaded
    /// run, is exactly `(key, pos)`-sorted order. LSM compaction feeds K of
    /// these into a [`coconut_storage::MergedStream`] and bulk-loads the
    /// merged run from the result, so a compaction is a K-way merge of
    /// sorted runs, never a re-sort of the raw range.
    ///
    /// `R` must match the tree's layout: [`crate::records::KeySeries`] for
    /// materialized trees, [`crate::records::KeyPos`] otherwise.
    pub fn leaf_entries<R: SortedRecord>(&self) -> LeafEntryStream<'_, R> {
        LeafEntryStream {
            store: &self.store,
            leaves: &self.leaves,
            entry_count: self.entry_count,
            leaf: 0,
            slot: 0,
            buf: Vec::new(),
            loaded: false,
            _record: std::marker::PhantomData,
        }
    }

    fn persist_directory(&mut self) -> Result<()> {
        let dir_offset = write_directory(&self.file, &self.leaves)?;
        let header = IndexHeader {
            kind: 0,
            materialized: self.materialized,
            series_len: self.config.sax.series_len as u32,
            segments: self.config.sax.segments as u16,
            card_bits: self.config.sax.card_bits,
            leaf_capacity: self.config.leaf_capacity as u32,
            entry_count: self.entry_count,
            num_blocks: self.next_block as u64,
            dir_offset,
            // The tree tail has no policy-dependent records; only the
            // policy byte is carried so reopen reconstructs the config.
            tail_version: 0,
            split_policy: self.config.split_policy.as_u8(),
            checksums: CHECKSUM_VERSION,
        };
        header.write_to(&self.file)?;
        self.file.sync()
    }

    /// Re-read every leaf block and verify it against its directory CRC
    /// (the `coconut scrub` primitive). Returns on the first corrupt leaf
    /// with a typed [`Error::Corrupt`]; legacy unchecked leaves are counted
    /// but not verifiable.
    pub fn verify(&self) -> Result<crate::layout::ScrubReport> {
        crate::layout::scrub_leaves(&self.store, &self.leaves)
    }

    fn compute_leaf_starts(leaves: &[LeafMeta]) -> Vec<u64> {
        let mut starts = Vec::with_capacity(leaves.len() + 1);
        let mut acc = 0u64;
        for l in leaves {
            starts.push(acc);
            acc += l.count as u64;
        }
        starts.push(acc);
        starts
    }

    fn rebuild_levels(&mut self) {
        self.levels.clear();
        if self.leaves.is_empty() {
            return;
        }
        let mut level: Vec<ZKey> = self.leaves.iter().map(|l| l.first_key).collect();
        let fanout = self.config.internal_fanout;
        loop {
            let next: Option<Vec<ZKey>> = if level.len() <= fanout {
                None
            } else {
                Some(level.chunks(fanout).map(|c| c[0]).collect())
            };
            self.levels.push(level);
            match next {
                Some(n) => level = n,
                None => break,
            }
        }
    }

    /// Descend the internal levels to the leaf whose key range contains
    /// `key` (the leaf the key would be inserted into). Returns the leaf
    /// index and the number of internal nodes visited.
    fn descend(&self, key: ZKey) -> Option<(usize, u64)> {
        if self.leaves.is_empty() {
            return None;
        }
        let fanout = self.config.internal_fanout;
        let mut visited = 0u64;
        // Non-empty leaves imply at least one level (`rebuild_levels`).
        let top = self.levels.last()?;
        let mut idx = top.partition_point(|&k| k <= key).saturating_sub(1);
        visited += 1;
        for level in self.levels.iter().rev().skip(1) {
            let lo = idx * fanout;
            let hi = ((idx + 1) * fanout).min(level.len());
            let window = &level[lo..hi];
            idx = lo + window.partition_point(|&k| k <= key).saturating_sub(1);
            visited += 1;
        }
        Some((idx, visited))
    }

    /// Height of the tree (internal levels above the leaves).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// The build report (sort runs / merge passes / leaf count).
    pub fn build_report(&self) -> BuildReport {
        self.build_report
    }

    /// The index configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Entry count of every leaf, in leaf order. Divide by
    /// `config().leaf_capacity` for fill fractions.
    pub fn leaf_entry_counts(&self) -> Vec<usize> {
        self.leaves.iter().map(|l| l.count as usize).collect()
    }

    /// Leaves beyond `leaf_capacity`: always zero for Coconut-Tree, whose
    /// median-based packing never overfills — exposed so LSM occupancy
    /// aggregation treats both index kinds uniformly.
    pub fn oversized_leaf_count(&self) -> u64 {
        self.leaves
            .iter()
            .filter(|l| l.count as usize > self.config.leaf_capacity)
            .count() as u64
    }

    /// Whether leaves embed raw series.
    pub fn is_materialized(&self) -> bool {
        self.materialized
    }

    /// Entries in the index.
    pub fn len(&self) -> u64 {
        self.entry_count
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// The position range of the dataset this index covers.
    pub fn covered_range(&self) -> std::ops::Range<u64> {
        self.range.clone()
    }

    /// Set the leaf radius used by the `SeriesIndex` trait entry points.
    pub fn set_default_radius(&mut self, radius: usize) {
        self.default_radius = radius;
    }

    /// Route leaf reads through a shared buffer pool (`file_id` must be
    /// unique per index within the pool). Models "RAM available to queries".
    pub fn attach_cache(
        &mut self,
        cache: std::sync::Arc<coconut_storage::PageCache>,
        file_id: u32,
    ) {
        self.store.attach_cache(cache, file_id);
    }

    /// Fraction of logically adjacent leaves that are physically adjacent
    /// on disk (1.0 right after bulk loading; decays as inserts split).
    pub fn contiguity(&self) -> f64 {
        if self.leaves.len() < 2 {
            return 1.0;
        }
        let adjacent = self
            .leaves
            .windows(2)
            .filter(|w| w[1].block == w[0].block + w[0].blocks_used)
            .count();
        adjacent as f64 / (self.leaves.len() - 1) as f64
    }

    fn query_key(&self, query: &[Value]) -> Result<ZKey> {
        if query.len() != self.config.sax.series_len {
            return Err(Error::invalid(format!(
                "query length {} != series length {}",
                query.len(),
                self.config.sax.series_len
            )));
        }
        let mut summarizer = Summarizer::new(self.config.sax);
        Ok(summarizer.zkey(query))
    }

    /// Evaluate the true distance of every entry in leaves `lo..=hi`.
    fn eval_leaf_range(
        &self,
        lo: usize,
        hi: usize,
        query: &[Value],
        best: &mut Answer,
        stats: &mut QueryStats,
    ) -> Result<()> {
        let entry = self.store.entry();
        let mut leaf_buf = Vec::new();
        let mut series_buf = vec![0.0 as Value; self.config.sax.series_len];
        let mut best_sq = best.dist * best.dist;
        for li in lo..=hi {
            let leaf = &self.leaves[li];
            self.store.read_leaf(leaf, &mut leaf_buf)?;
            stats.leaves_visited += 1;
            for slot in 0..leaf.count as usize {
                let e = self.store.entry_slice(&leaf_buf, slot);
                let pos = entry.pos(e);
                if self.materialized {
                    entry.series_into(e, &mut series_buf);
                } else {
                    self.dataset.read_into(pos, &mut series_buf)?;
                }
                stats.records_fetched += 1;
                let d_sq = euclidean_sq(query, &series_buf);
                if d_sq < best_sq {
                    best_sq = d_sq;
                    *best = Answer {
                        pos,
                        dist: d_sq.sqrt(),
                    };
                }
            }
        }
        Ok(())
    }

    /// Approximate search (Algorithm 4): evaluate the target leaf plus
    /// `radius` leaves on each side.
    pub fn approximate_search(&self, query: &[Value], radius: usize) -> Result<Answer> {
        Ok(self.approximate_search_with_stats(query, radius)?.0)
    }

    /// Approximate search returning its work counters.
    pub fn approximate_search_with_stats(
        &self,
        query: &[Value],
        radius: usize,
    ) -> Result<(Answer, QueryStats)> {
        let key = self.query_key(query)?;
        let mut stats = QueryStats::default();
        let Some((li, visited)) = self.descend(key) else {
            return Ok((Answer::none(), stats));
        };
        stats.leaves_visited += visited; // internal node visits
        let lo = li.saturating_sub(radius);
        let hi = (li + radius).min(self.leaves.len() - 1);
        let mut best = Answer::none();
        let mut leaf_stats = QueryStats::default();
        self.eval_leaf_range(lo, hi, query, &mut best, &mut leaf_stats)?;
        stats.leaves_visited = leaf_stats.leaves_visited; // report leaf I/O only
        stats.records_fetched = leaf_stats.records_fetched;
        Ok((best, stats))
    }

    fn load_summaries(&self) -> Result<Arc<Summaries>> {
        if let Some(s) = self.summaries.read().as_ref() {
            return Ok(Arc::clone(s));
        }
        let mut write = self.summaries.write();
        if let Some(s) = write.as_ref() {
            return Ok(Arc::clone(s));
        }
        // "if SAX sums are not in memory, load them" — scan the leaf region
        // sequentially and rebuild all arrays.
        let entry = self.store.entry();
        let mut keys_leaf_order = Vec::with_capacity(self.entry_count as usize);
        let mut pos_leaf_order = Vec::with_capacity(self.entry_count as usize);
        let mut leaf_buf = Vec::new();
        let mut min_pos = u64::MAX;
        let mut max_pos = 0u64;
        for leaf in &self.leaves {
            self.store.read_leaf(leaf, &mut leaf_buf)?;
            for slot in 0..leaf.count as usize {
                let e = self.store.entry_slice(&leaf_buf, slot);
                let pos = entry.pos(e);
                keys_leaf_order.push(entry.key(e));
                pos_leaf_order.push(pos);
                min_pos = min_pos.min(pos);
                max_pos = max_pos.max(pos);
            }
        }
        let (start, end) = if pos_leaf_order.is_empty() {
            (0, 0)
        } else {
            (min_pos, max_pos + 1)
        };
        if end - start != self.entry_count {
            return Err(Error::corrupt(
                "index does not cover a contiguous position range",
            ));
        }
        let mut keys_by_pos = vec![ZKey::MIN; (end - start) as usize];
        for (k, p) in keys_leaf_order.iter().zip(pos_leaf_order.iter()) {
            keys_by_pos[(p - start) as usize] = *k;
        }
        let leaf_starts = Self::compute_leaf_starts(&self.leaves);
        let s = Arc::new(Summaries {
            keys_by_pos,
            keys_leaf_order,
            pos_leaf_order,
            leaf_starts,
        });
        *write = Some(Arc::clone(&s));
        Ok(s)
    }

    /// Exact search (Algorithm 5) seeded by approximate search with the
    /// default radius.
    pub fn exact_search(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.exact_search_with_radius(query, self.default_radius)
    }

    /// Exact search with an explicit seed radius (the paper's CTree(1) /
    /// CTree(10) variants).
    pub fn exact_search_with_radius(
        &self,
        query: &[Value],
        radius: usize,
    ) -> Result<(Answer, QueryStats)> {
        self.exact_search_with_radius_deadline(query, radius, Deadline::NONE)
    }

    /// [`Self::exact_search`] under a cooperative [`Deadline`]: the SIMS scan
    /// checks the deadline at its early-abandon checkpoints and aborts with
    /// [`coconut_storage::Error::Deadline`] when it expires.
    pub fn exact_search_deadline(
        &self,
        query: &[Value],
        deadline: Deadline,
    ) -> Result<(Answer, QueryStats)> {
        self.exact_search_with_radius_deadline(query, self.default_radius, deadline)
    }

    /// [`Self::exact_search_with_radius`] under a cooperative [`Deadline`].
    pub fn exact_search_with_radius_deadline(
        &self,
        query: &[Value],
        radius: usize,
        deadline: Deadline,
    ) -> Result<(Answer, QueryStats)> {
        let (seed, stats) = self.approximate_search_with_stats(query, radius)?;
        self.sims_exact_from_seed(query, seed, stats, deadline)
    }

    /// [`Self::exact_search_deadline`] with an external pruning `bound`: the
    /// best-so-far starts no higher than `bound`, so the scan skips every
    /// record that could not beat it. A scatter-gather coordinator passes
    /// the best distance merged from shards queried so far. When nothing in
    /// this index beats the bound the returned answer is
    /// [`Answer::none`]-like (`pos == u64::MAX`) with `dist == bound` — the
    /// caller's existing candidate already wins.
    pub fn exact_search_bounded_deadline(
        &self,
        query: &[Value],
        bound: f64,
        deadline: Deadline,
    ) -> Result<(Answer, QueryStats)> {
        let (mut seed, stats) = self.approximate_search_with_stats(query, self.default_radius)?;
        seed.merge(Answer {
            pos: u64::MAX,
            dist: bound,
        });
        self.sims_exact_from_seed(query, seed, stats, deadline)
    }

    /// The shared SIMS tail of the exact-search entry points: run the scan
    /// with `seed` as the initial best-so-far and fold its counters into
    /// `stats`.
    fn sims_exact_from_seed(
        &self,
        query: &[Value],
        seed: Answer,
        mut stats: QueryStats,
        deadline: Deadline,
    ) -> Result<(Answer, QueryStats)> {
        let summaries = self.load_summaries()?;
        let query_paa = paa(query, self.config.sax.segments);
        let (answer, sims_stats) = if self.materialized {
            let mut fetcher = LeafOrderFetcher::new(&self.store, &self.leaves, &summaries);
            sims_exact(
                query,
                &query_paa,
                &summaries.keys_leaf_order,
                &self.config.sax,
                self.threads,
                seed,
                &mut fetcher,
                deadline,
            )?
        } else {
            let mut fetcher = RawFileFetcher {
                dataset: &self.dataset,
                start: self.range.start,
            };
            sims_exact(
                query,
                &query_paa,
                &summaries.keys_by_pos,
                &self.config.sax,
                self.threads,
                seed,
                &mut fetcher,
                deadline,
            )?
        };
        stats.add(&sims_stats);
        Ok((answer, stats))
    }

    /// Exact range query (extension): all series within Euclidean distance
    /// `epsilon` of the query, sorted by distance.
    pub fn exact_range(&self, query: &[Value], epsilon: f64) -> Result<(Vec<Answer>, QueryStats)> {
        self.exact_range_deadline(query, epsilon, Deadline::NONE)
    }

    /// [`Self::exact_range`] under a cooperative [`Deadline`].
    pub fn exact_range_deadline(
        &self,
        query: &[Value],
        epsilon: f64,
        deadline: Deadline,
    ) -> Result<(Vec<Answer>, QueryStats)> {
        self.query_key(query)?; // validates the length
        let summaries = self.load_summaries()?;
        let query_paa = paa(query, self.config.sax.segments);
        if self.materialized {
            let mut fetcher = LeafOrderFetcher::new(&self.store, &self.leaves, &summaries);
            crate::sims::sims_range(
                query,
                &query_paa,
                &summaries.keys_leaf_order,
                &self.config.sax,
                self.threads,
                epsilon,
                &mut fetcher,
                deadline,
            )
        } else {
            let mut fetcher = RawFileFetcher {
                dataset: &self.dataset,
                start: self.range.start,
            };
            crate::sims::sims_range(
                query,
                &query_paa,
                &summaries.keys_by_pos,
                &self.config.sax,
                self.threads,
                epsilon,
                &mut fetcher,
                deadline,
            )
        }
    }

    /// Exact 1-NN under Dynamic Time Warping with a Sakoe–Chiba band of
    /// radius `band` (extension; Section 2 of the paper notes DTW
    /// compatibility). The best-so-far is seeded by computing true DTW
    /// distances to the contents of the query's target leaf.
    pub fn exact_search_dtw(&self, query: &[Value], band: usize) -> Result<(Answer, QueryStats)> {
        let key = self.query_key(query)?;
        let mut stats = QueryStats::default();
        let mut seed = Answer::none();
        if let Some((li, _)) = self.descend(key) {
            // Seed bsf with true DTW over the target leaf's members.
            let entry = self.store.entry();
            let mut leaf_buf = Vec::new();
            let mut series_buf = vec![0.0 as Value; self.config.sax.series_len];
            let leaf = &self.leaves[li];
            self.store.read_leaf(leaf, &mut leaf_buf)?;
            stats.leaves_visited += 1;
            for slot in 0..leaf.count as usize {
                let e = self.store.entry_slice(&leaf_buf, slot);
                let pos = entry.pos(e);
                if self.materialized {
                    entry.series_into(e, &mut series_buf);
                } else {
                    self.dataset.read_into(pos, &mut series_buf)?;
                }
                stats.records_fetched += 1;
                let cutoff = seed.dist * seed.dist;
                if let Some(d_sq) =
                    coconut_series::dtw::dtw_sq_early_abandon(query, &series_buf, band, cutoff)
                {
                    if d_sq < cutoff {
                        seed = Answer {
                            pos,
                            dist: d_sq.sqrt(),
                        };
                    }
                }
            }
        }
        let summaries = self.load_summaries()?;
        let (answer, sims_stats) = if self.materialized {
            let mut fetcher = LeafOrderFetcher::new(&self.store, &self.leaves, &summaries);
            crate::sims::sims_exact_dtw(
                query,
                band,
                &summaries.keys_leaf_order,
                &self.config.sax,
                self.threads,
                seed,
                &mut fetcher,
                Deadline::NONE,
            )?
        } else {
            let mut fetcher = RawFileFetcher {
                dataset: &self.dataset,
                start: self.range.start,
            };
            crate::sims::sims_exact_dtw(
                query,
                band,
                &summaries.keys_by_pos,
                &self.config.sax,
                self.threads,
                seed,
                &mut fetcher,
                Deadline::NONE,
            )?
        };
        stats.add(&sims_stats);
        Ok((answer, stats))
    }

    /// Exact k-nearest-neighbors (extension beyond the paper).
    pub fn exact_knn(&self, query: &[Value], k: usize) -> Result<(Vec<Answer>, QueryStats)> {
        self.exact_knn_deadline(query, k, Deadline::NONE)
    }

    /// [`Self::exact_knn`] under a cooperative [`Deadline`].
    pub fn exact_knn_deadline(
        &self,
        query: &[Value],
        k: usize,
        deadline: Deadline,
    ) -> Result<(Vec<Answer>, QueryStats)> {
        self.exact_knn_bounded_deadline(query, k, f64::INFINITY, deadline)
    }

    /// [`Self::exact_knn_deadline`] with an external pruning `bound`: only
    /// candidates with distance below `bound` can enter the result (see
    /// [`crate::sims::sims_exact_knn_bounded`]). `f64::INFINITY` recovers
    /// the plain k-NN scan exactly.
    pub fn exact_knn_bounded_deadline(
        &self,
        query: &[Value],
        k: usize,
        bound: f64,
        deadline: Deadline,
    ) -> Result<(Vec<Answer>, QueryStats)> {
        let (seed, mut stats) = self.approximate_search_with_stats(query, self.default_radius)?;
        let summaries = self.load_summaries()?;
        let query_paa = paa(query, self.config.sax.segments);
        let seeds = if seed.is_some() {
            vec![seed]
        } else {
            Vec::new()
        };
        let (answers, sims_stats) = if self.materialized {
            let mut fetcher = LeafOrderFetcher::new(&self.store, &self.leaves, &summaries);
            sims_exact_knn_bounded(
                query,
                &query_paa,
                &summaries.keys_leaf_order,
                &self.config.sax,
                self.threads,
                k,
                bound,
                &seeds,
                &mut fetcher,
                deadline,
            )?
        } else {
            let mut fetcher = RawFileFetcher {
                dataset: &self.dataset,
                start: self.range.start,
            };
            sims_exact_knn_bounded(
                query,
                &query_paa,
                &summaries.keys_by_pos,
                &self.config.sax,
                self.threads,
                k,
                bound,
                &seeds,
                &mut fetcher,
                deadline,
            )?
        };
        stats.add(&sims_stats);
        Ok((answers, stats))
    }

    /// Insert one new series that was appended to the dataset at `pos`
    /// (must extend the covered range contiguously). Classic B+-tree leaf
    /// insert with a median split on overflow; the split-off leaf goes to
    /// the end of the file, degrading contiguity — this is the cost the
    /// paper's Figure 10a measures against bulk-loaded batches.
    pub fn insert(&mut self, pos: u64, series: &[Value]) -> Result<()> {
        if pos != self.range.end {
            return Err(Error::invalid(format!(
                "insert position {pos} must extend the covered range (expected {})",
                self.range.end
            )));
        }
        let key = self.query_key(series)?;
        let entry = *self.store.entry();
        let eb = entry.entry_bytes();
        let mut entry_buf = vec![0u8; eb];
        let payload = if self.materialized {
            Some(series)
        } else {
            None
        };
        entry.encode(key, pos, payload, &mut entry_buf);

        if self.leaves.is_empty() {
            self.store.write_leaf(self.next_block, &entry_buf)?;
            self.leaves.push(LeafMeta {
                first_key: key,
                count: 1,
                block: self.next_block,
                blocks_used: 1,
                crc: crc32(&entry_buf),
            });
            self.next_block += 1;
        } else {
            let (li, _) = self
                .descend(key)
                .ok_or_else(|| Error::corrupt("a non-empty tree failed to descend"))?;
            let mut leaf_buf = Vec::new();
            self.store.read_leaf(&self.leaves[li], &mut leaf_buf)?;
            // Insert position within the leaf (keep sorted by (key, pos)).
            let count = self.leaves[li].count as usize;
            let mut slot = count;
            for s in 0..count {
                let e = self.store.entry_slice(&leaf_buf, s);
                if entry.key(e) > key || (entry.key(e) == key && entry.pos(e) > pos) {
                    slot = s;
                    break;
                }
            }
            let at = slot * eb;
            leaf_buf.splice(at..at, entry_buf.iter().copied());
            if count < self.config.leaf_capacity {
                self.store.write_leaf(self.leaves[li].block, &leaf_buf)?;
                self.leaves[li].count += 1;
                self.leaves[li].crc = crc32(&leaf_buf);
                if slot == 0 {
                    self.leaves[li].first_key = key;
                    self.rebuild_levels();
                }
            } else {
                // Median split: left half stays in place, right half goes to
                // a fresh block at the end of the file.
                let total = count + 1;
                let left = total / 2;
                let right = total - left;
                self.store
                    .write_leaf(self.leaves[li].block, &leaf_buf[..left * eb])?;
                self.store
                    .write_leaf(self.next_block, &leaf_buf[left * eb..])?;
                let right_first = entry.key(self.store.entry_slice(&leaf_buf, left));
                self.leaves[li].count = left as u32;
                self.leaves[li].first_key = entry.key(self.store.entry_slice(&leaf_buf, 0));
                self.leaves[li].crc = crc32(&leaf_buf[..left * eb]);
                self.leaves.insert(
                    li + 1,
                    LeafMeta {
                        first_key: right_first,
                        count: right as u32,
                        block: self.next_block,
                        blocks_used: 1,
                        crc: crc32(&leaf_buf[left * eb..]),
                    },
                );
                self.next_block += 1;
                self.rebuild_levels();
            }
        }
        self.entry_count += 1;
        self.range.end = pos + 1;
        *self.summaries.write() = None; // rebuilt lazily
        Ok(())
    }

    /// Insert a batch of series appended to the dataset starting at
    /// `first_pos` — the workload of the paper's Figure 10a.
    ///
    /// Unlike repeated [`CoconutTree::insert`] calls, the batch is sorted by
    /// key and grouped by target leaf, so every touched leaf is read and
    /// rewritten exactly once ("our bulk loading algorithm has to perform
    /// less splits when larger pieces of data are loaded"). Overflowing
    /// leaves split into evenly sized pieces (median splitting, ≥ half
    /// full), with new blocks appended at the end of the file.
    pub fn insert_batch(&mut self, first_pos: u64, batch: &[Vec<Value>]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        if first_pos != self.range.end {
            return Err(Error::invalid(format!(
                "batch start {first_pos} must extend the covered range (expected {})",
                self.range.end
            )));
        }
        let mut summarizer = Summarizer::new(self.config.sax);
        let mut items: Vec<(ZKey, u64, &[Value])> = Vec::with_capacity(batch.len());
        for (i, s) in batch.iter().enumerate() {
            if s.len() != self.config.sax.series_len {
                return Err(Error::invalid("series length mismatch in batch"));
            }
            items.push((summarizer.zkey(s), first_pos + i as u64, s.as_slice()));
        }
        items.sort_unstable_by_key(|&(k, p, _)| (k, p));

        let entry = *self.store.entry();
        let eb = entry.entry_bytes();

        if self.leaves.is_empty() {
            // Degenerate case: bulk-load the batch as the initial contents.
            let per_leaf = self.config.bulk_leaf_entries();
            let mut entry_buf = vec![0u8; eb];
            for chunk in items.chunks(per_leaf) {
                let mut block_buf = Vec::with_capacity(chunk.len() * eb);
                for &(k, p, s) in chunk {
                    let payload = self.materialized.then_some(s);
                    entry.encode(k, p, payload, &mut entry_buf);
                    block_buf.extend_from_slice(&entry_buf);
                }
                let blocks_used = self.store.write_leaf(self.next_block, &block_buf)?;
                self.leaves.push(LeafMeta {
                    first_key: chunk[0].0,
                    count: chunk.len() as u32,
                    block: self.next_block,
                    blocks_used,
                    crc: crc32(&block_buf),
                });
                self.next_block += blocks_used;
            }
        } else {
            // Group items by their target leaf under the *current*
            // directory, then process groups from the highest leaf index
            // down: splits insert new leaves after the touched one, which
            // cannot disturb lower indices.
            let first_keys: Vec<ZKey> = self.leaves.iter().map(|l| l.first_key).collect();
            let mut groups: Vec<(usize, usize, usize)> = Vec::new(); // (leaf, lo, hi)
            let mut i = 0usize;
            while i < items.len() {
                let li = first_keys
                    .partition_point(|&k| k <= items[i].0)
                    .saturating_sub(1);
                let mut j = i + 1;
                while j < items.len()
                    && first_keys
                        .partition_point(|&k| k <= items[j].0)
                        .saturating_sub(1)
                        == li
                {
                    j += 1;
                }
                groups.push((li, i, j));
                i = j;
            }
            let mut leaf_buf = Vec::new();
            let mut entry_buf = vec![0u8; eb];
            for &(li, lo, hi) in groups.iter().rev() {
                let group = &items[lo..hi];
                self.store.read_leaf(&self.leaves[li], &mut leaf_buf)?;
                let old_count = self.leaves[li].count as usize;
                // Merge existing entries with the (sorted) group.
                let total = old_count + group.len();
                let mut merged = Vec::with_capacity(total * eb);
                let mut a = 0usize; // existing slot
                let mut b = 0usize; // group index
                while a < old_count || b < group.len() {
                    let take_new = if a == old_count {
                        true
                    } else if b == group.len() {
                        false
                    } else {
                        let e = self.store.entry_slice(&leaf_buf, a);
                        (group[b].0, group[b].1) < (entry.key(e), entry.pos(e))
                    };
                    if take_new {
                        let (k, p, s) = group[b];
                        let payload = self.materialized.then_some(s);
                        entry.encode(k, p, payload, &mut entry_buf);
                        merged.extend_from_slice(&entry_buf);
                        b += 1;
                    } else {
                        merged.extend_from_slice(self.store.entry_slice(&leaf_buf, a));
                        a += 1;
                    }
                }
                // Split into evenly sized pieces of at most `capacity`.
                let pieces = total.div_ceil(self.config.leaf_capacity);
                let per_piece = total.div_ceil(pieces);
                let mut new_metas = Vec::with_capacity(pieces);
                for (pi, piece) in merged.chunks(per_piece * eb).enumerate() {
                    let count = (piece.len() / eb) as u32;
                    let first_key = entry.key(&piece[..eb]);
                    let block = if pi == 0 {
                        self.leaves[li].block
                    } else {
                        let block = self.next_block;
                        self.next_block += 1;
                        block
                    };
                    let blocks_used = self.store.write_leaf(block, piece)?;
                    debug_assert_eq!(blocks_used, 1);
                    new_metas.push(LeafMeta {
                        first_key,
                        count,
                        block,
                        blocks_used,
                        crc: crc32(piece),
                    });
                }
                self.leaves.splice(li..=li, new_metas);
            }
        }
        self.entry_count += items.len() as u64;
        self.range.end = first_pos + batch.len() as u64;
        self.rebuild_levels();
        self.update_summaries_after_batch(&items);
        self.persist_directory()
    }

    /// After a batch insert, extend the in-memory summaries instead of
    /// rebuilding them where possible. Non-materialized exact search only
    /// reads `keys_by_pos` (the raw-file-order scan), which extends in
    /// place; the leaf-order arrays are only consulted by materialized
    /// indexes, which fall back to a full lazy rebuild.
    fn update_summaries_after_batch(&mut self, items: &[(ZKey, u64, &[Value])]) {
        let mut guard = self.summaries.write();
        if self.materialized {
            *guard = None;
            return;
        }
        let Some(arc) = guard.take() else { return };
        match Arc::try_unwrap(arc) {
            Ok(mut s) => {
                let start = self.range.start;
                let new_len = (self.range.end - start) as usize;
                s.keys_by_pos.resize(new_len, ZKey::MIN);
                for &(k, p, _) in items {
                    s.keys_by_pos[(p - start) as usize] = k;
                }
                *guard = Some(Arc::new(s));
            }
            // A concurrent query still holds the snapshot: rebuild lazily.
            Err(_) => *guard = None,
        }
    }

    /// Mean leaf occupancy relative to `leaf_capacity`.
    pub fn avg_fill(&self) -> f64 {
        if self.leaves.is_empty() {
            return 0.0;
        }
        let total: u64 = self.leaves.iter().map(|l| l.count as u64).sum();
        total as f64 / (self.leaves.len() as u64 * self.config.leaf_capacity as u64) as f64
    }

    /// Shared I/O statistics (same sink as the dataset).
    pub fn io_stats(&self) -> &Arc<IoStats> {
        self.dataset.file().stats()
    }

    /// Path of the index file.
    pub fn index_path(&self) -> &Path {
        self.file.path()
    }
}

/// A forward scan over a tree's leaf entries in leaf (= sorted) order,
/// yielding decoded records; created by [`CoconutTree::leaf_entries`].
/// Reads each leaf block once, sequentially.
pub struct LeafEntryStream<'a, R> {
    store: &'a LeafStore,
    leaves: &'a [LeafMeta],
    entry_count: u64,
    leaf: usize,
    slot: usize,
    buf: Vec<u8>,
    loaded: bool,
    _record: std::marker::PhantomData<R>,
}

impl<R: SortedRecord> RecordStream for LeafEntryStream<'_, R> {
    type Item = R;

    fn next_item(&mut self) -> Result<Option<R>> {
        loop {
            let Some(meta) = self.leaves.get(self.leaf) else {
                return Ok(None);
            };
            if self.slot < meta.count as usize {
                if !self.loaded {
                    self.store.read_leaf(meta, &mut self.buf)?;
                    self.loaded = true;
                }
                let e = self.store.entry_slice(&self.buf, self.slot);
                self.slot += 1;
                return Ok(Some(R::from_entry(self.store.entry(), e)));
            }
            self.leaf += 1;
            self.slot = 0;
            self.loaded = false;
        }
    }

    fn report(&self) -> SortReport {
        SortReport {
            items: self.entry_count,
            runs: 0,
            merge_passes: 0,
        }
    }
}

/// SIMS fetcher for non-materialized indexes: scan index `i` is raw-file
/// position `start + i`, so fetches walk the raw file forward
/// (skip-sequential).
pub(crate) struct RawFileFetcher<'a> {
    pub dataset: &'a Dataset,
    pub start: u64,
}

impl SeriesFetcher for RawFileFetcher<'_> {
    fn fetch(&mut self, i: usize, out: &mut [Value]) -> Result<u64> {
        let pos = self.start + i as u64;
        self.dataset.read_into(pos, out)?;
        Ok(pos)
    }
}

/// SIMS fetcher for materialized indexes: scan order is leaf order, which is
/// the physical order of the (bulk-loaded) index file; reads each needed
/// leaf block once, forward.
pub(crate) struct LeafOrderFetcher<'a> {
    store: &'a LeafStore,
    leaves: &'a [LeafMeta],
    leaf_starts: &'a [u64],
    pos_leaf_order: &'a [u64],
    cur_leaf: usize,
    leaf_buf: Vec<u8>,
    loaded: bool,
}

impl<'a> LeafOrderFetcher<'a> {
    fn new(store: &'a LeafStore, leaves: &'a [LeafMeta], summaries: &'a Summaries) -> Self {
        LeafOrderFetcher {
            store,
            leaves,
            leaf_starts: &summaries.leaf_starts,
            pos_leaf_order: &summaries.pos_leaf_order,
            cur_leaf: 0,
            leaf_buf: Vec::new(),
            loaded: false,
        }
    }
}

impl SeriesFetcher for LeafOrderFetcher<'_> {
    fn fetch(&mut self, i: usize, out: &mut [Value]) -> Result<u64> {
        let i64 = i as u64;
        // Advance to the leaf containing scan index i (indexes arrive in
        // increasing order; binary search only on big skips).
        if !self.loaded || i64 >= self.leaf_starts[self.cur_leaf + 1] {
            while i64 >= self.leaf_starts[self.cur_leaf + 1] {
                self.cur_leaf += 1;
            }
            self.store
                .read_leaf(&self.leaves[self.cur_leaf], &mut self.leaf_buf)?;
            self.loaded = true;
        }
        let slot = (i64 - self.leaf_starts[self.cur_leaf]) as usize;
        let e = self.store.entry_slice(&self.leaf_buf, slot);
        self.store.entry().series_into(e, out);
        Ok(self.pos_leaf_order[i])
    }
}

impl SeriesIndex for CoconutTree {
    fn name(&self) -> String {
        if self.materialized {
            "CTreeFull".into()
        } else {
            "CTree".into()
        }
    }

    fn approximate(&self, query: &[Value]) -> Result<Answer> {
        self.approximate_search(query, self.default_radius)
    }

    fn exact(&self, query: &[Value]) -> Result<(Answer, QueryStats)> {
        self.exact_search(query)
    }

    fn disk_bytes(&self) -> u64 {
        self.file.len()
    }

    fn leaf_count(&self) -> u64 {
        self.leaves.len() as u64
    }

    fn avg_leaf_fill(&self) -> f64 {
        self.avg_fill()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconut_series::dataset::write_dataset;
    use coconut_series::distance::{euclidean, znormalize};
    use coconut_series::gen::{Generator, RandomWalkGen};
    use coconut_storage::TempDir;

    const LEN: usize = 64;

    fn small_config() -> IndexConfig {
        let mut c = IndexConfig::default_for_len(LEN);
        c.leaf_capacity = 32;
        c
    }

    fn make_dataset(dir: &TempDir, n: u64) -> Dataset {
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        write_dataset(&path, &mut RandomWalkGen::new(17), n, LEN, &stats).unwrap();
        Dataset::open(&path, stats).unwrap()
    }

    fn brute_force(ds: &Dataset, query: &[Value]) -> Answer {
        let mut best = Answer::none();
        let mut scan = ds.scan();
        while let Some((pos, s)) = scan.next_series().unwrap() {
            best.merge(Answer {
                pos,
                dist: euclidean(query, s),
            });
        }
        best
    }

    fn query(seed: u64) -> Vec<Value> {
        let mut q = RandomWalkGen::new(seed).generate(LEN);
        znormalize(&mut q);
        q
    }

    #[test]
    fn build_packs_leaves_and_is_contiguous() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 1000);
        let tree =
            CoconutTree::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        assert_eq!(tree.len(), 1000);
        assert_eq!(tree.leaf_count(), 1000u64.div_ceil(32));
        assert_eq!(tree.contiguity(), 1.0);
        // All leaves except possibly the last are full.
        assert!(tree.avg_fill() > 0.9, "fill {}", tree.avg_fill());
        assert!(tree.height() >= 1);
    }

    #[test]
    fn exact_search_matches_brute_force() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 800);
        let tree =
            CoconutTree::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        for seed in 100..110 {
            let q = query(seed);
            let (ans, stats) = tree.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
            assert!((ans.dist - expect.dist).abs() < 1e-6);
            assert!(stats.lower_bounds >= 800);
        }
    }

    #[test]
    fn materialized_exact_matches_brute_force() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 500);
        let tree = CoconutTree::build(
            &ds,
            &small_config(),
            dir.path(),
            BuildOptions::default().materialized(),
        )
        .unwrap();
        assert!(tree.is_materialized());
        for seed in 200..208 {
            let q = query(seed);
            let (ans, _) = tree.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
        }
    }

    #[test]
    fn approximate_is_lower_bounded_by_exact() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 600);
        let tree =
            CoconutTree::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        for seed in 300..310 {
            let q = query(seed);
            let approx = tree.approximate_search(&q, 1).unwrap();
            let (exact, _) = tree.exact_search(&q).unwrap();
            assert!(approx.is_some());
            assert!(exact.dist <= approx.dist + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn larger_radius_never_worsens_approximate() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 600);
        let tree =
            CoconutTree::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        for seed in 400..410 {
            let q = query(seed);
            let r0 = tree.approximate_search(&q, 0).unwrap();
            let r1 = tree.approximate_search(&q, 1).unwrap();
            let r5 = tree.approximate_search(&q, 5).unwrap();
            assert!(r1.dist <= r0.dist + 1e-9);
            assert!(r5.dist <= r1.dist + 1e-9);
        }
    }

    #[test]
    fn knn_is_sorted_and_consistent_with_exact() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 400);
        let tree =
            CoconutTree::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let q = query(55);
        let (top, _) = tree.exact_knn(&q, 5).unwrap();
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        let (one, _) = tree.exact_search(&q).unwrap();
        assert_eq!(top[0].pos, one.pos);
    }

    #[test]
    fn open_reloads_and_answers_identically() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 300);
        let built =
            CoconutTree::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let path = built.index_path().to_path_buf();
        let reopened = CoconutTree::open(&path, &ds, 2).unwrap();
        assert_eq!(reopened.len(), built.len());
        assert_eq!(reopened.leaf_count(), built.leaf_count());
        for seed in 500..505 {
            let q = query(seed);
            let (a, _) = built.exact_search(&q).unwrap();
            let (b, _) = reopened.exact_search(&q).unwrap();
            assert_eq!(a.pos, b.pos);
        }
    }

    #[test]
    fn inserts_keep_exact_correct_and_degrade_contiguity() {
        let dir = TempDir::new("ctree").unwrap();
        let stats = Arc::new(IoStats::new());
        let path = dir.path().join("data.bin");
        // Write 300 series, build over them, then append 100 more.
        let mut g = RandomWalkGen::new(17);
        {
            let mut w = coconut_series::dataset::DatasetWriter::create(
                &path,
                LEN,
                true,
                Arc::clone(&stats),
            )
            .unwrap();
            for _ in 0..400 {
                let mut s = g.generate(LEN);
                znormalize(&mut s);
                w.append(&s).unwrap();
            }
            w.finish().unwrap();
        }
        let ds = Dataset::open(&path, stats).unwrap();
        let mut tree = CoconutTree::build_range(
            &ds,
            0..300,
            &small_config(),
            dir.path(),
            BuildOptions::default(),
        )
        .unwrap();
        let batch: Vec<Vec<Value>> = (300..400).map(|p| ds.get(p).unwrap()).collect();
        tree.insert_batch(300, &batch).unwrap();
        assert_eq!(tree.len(), 400);
        assert!(tree.contiguity() < 1.0, "splits should break contiguity");
        for seed in 600..606 {
            let q = query(seed);
            let (ans, _) = tree.exact_search(&q).unwrap();
            let expect = brute_force(&ds, &q);
            assert_eq!(ans.pos, expect.pos, "seed {seed}");
        }
    }

    #[test]
    fn insert_rejects_non_contiguous_position() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 100);
        let mut tree = CoconutTree::build_range(
            &ds,
            0..50,
            &small_config(),
            dir.path(),
            BuildOptions::default(),
        )
        .unwrap();
        let q = query(1);
        assert!(tree.insert(60, &q).is_err());
        assert!(tree.insert(50, &ds.get(50).unwrap()).is_ok());
    }

    #[test]
    fn empty_dataset_yields_empty_tree() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 0);
        let tree =
            CoconutTree::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        assert!(tree.is_empty());
        let q = query(2);
        assert!(!tree.approximate_search(&q, 1).unwrap().is_some());
        let (ans, _) = tree.exact_search(&q).unwrap();
        assert!(!ans.is_some());
    }

    #[test]
    fn wrong_query_length_rejected() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 50);
        let tree =
            CoconutTree::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        assert!(tree.approximate_search(&[0.0; 10], 1).is_err());
    }

    #[test]
    fn fill_factor_controls_occupancy() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 320);
        let mut config = small_config();
        config.fill_factor = 0.5;
        let tree = CoconutTree::build(&ds, &config, dir.path(), BuildOptions::default()).unwrap();
        // Leaves hold 16 of 32 slots.
        assert!(
            (tree.avg_fill() - 0.5).abs() < 0.05,
            "fill {}",
            tree.avg_fill()
        );
        assert_eq!(tree.leaf_count(), 20);
    }

    #[test]
    fn sharded_build_is_bit_identical() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 1100);
        for materialized in [false, true] {
            let base_opts = BuildOptions {
                materialized,
                memory_bytes: 1 << 20, // small enough that shards spill
                ..BuildOptions::default()
            };
            let single =
                CoconutTree::build(&ds, &small_config(), dir.path(), base_opts.clone()).unwrap();
            let single_bytes = std::fs::read(single.index_path()).unwrap();
            for shards in [2usize, 4, 7] {
                let sharded = CoconutTree::build(
                    &ds,
                    &small_config(),
                    dir.path(),
                    base_opts.clone().with_shards(shards),
                )
                .unwrap();
                let sharded_bytes = std::fs::read(sharded.index_path()).unwrap();
                assert_eq!(
                    single_bytes, sharded_bytes,
                    "mat={materialized} shards={shards}: index files differ"
                );
                assert_eq!(sharded.len(), single.len());
                assert_eq!(sharded.leaf_count(), single.leaf_count());
                // The sharded index answers identically.
                for seed in 900..905 {
                    let q = query(seed);
                    let (a, _) = single.exact_search(&q).unwrap();
                    let (b, _) = sharded.exact_search(&q).unwrap();
                    assert_eq!(a.pos, b.pos, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn sharded_build_reads_one_pass() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 3000);
        let stats = Arc::clone(ds.file().stats());
        let before = stats.snapshot();
        let tree = CoconutTree::build(
            &ds,
            &small_config(),
            dir.path(),
            BuildOptions::default().with_shards(6),
        )
        .unwrap();
        assert_eq!(tree.len(), 3000);
        let delta = stats.snapshot().since(&before);
        // With ample memory no shard spills, so bytes read equal exactly
        // one pass over the raw payload.
        assert_eq!(delta.bytes_read, ds.payload_bytes());
    }

    #[test]
    fn build_io_is_sequential() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 2000);
        let stats = Arc::clone(ds.file().stats());
        let before = stats.snapshot();
        let _tree =
            CoconutTree::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let delta = stats.snapshot().since(&before);
        // Bulk loading must be sequential-I/O dominated — the paper's core
        // claim for bottom-up construction.
        assert!(
            delta.random_ops() * 5 <= delta.total_ops(),
            "random {} of {}",
            delta.random_ops(),
            delta.total_ops()
        );
    }

    #[test]
    fn buffer_pool_serves_repeat_queries_without_changing_answers() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 600);
        let mut tree = CoconutTree::build(
            &ds,
            &small_config(),
            dir.path(),
            BuildOptions::default().materialized(),
        )
        .unwrap();
        let q = query(64);
        let (cold, _) = tree.exact_search(&q).unwrap();

        let cache = coconut_storage::PageCache::new(16 << 20);
        tree.attach_cache(Arc::clone(&cache), 1);
        let (warm1, _) = tree.exact_search(&q).unwrap();
        let (warm2, _) = tree.exact_search(&q).unwrap();
        assert_eq!(cold.pos, warm1.pos);
        assert_eq!(cold.pos, warm2.pos);
        let cs = cache.stats();
        assert!(cs.hits > 0, "second query should hit the pool ({cs:?})");
        assert!(cs.used_bytes <= cache.capacity_bytes());
    }

    #[test]
    fn buffer_pool_sees_fresh_data_after_inserts() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 400);
        let mut tree = CoconutTree::build_range(
            &ds,
            0..300,
            &small_config(),
            dir.path(),
            BuildOptions::default(),
        )
        .unwrap();
        let cache = coconut_storage::PageCache::new(16 << 20);
        tree.attach_cache(Arc::clone(&cache), 7);
        let member = ds.get(350).unwrap();
        // Warm the cache before the insert.
        let (before, _) = tree.exact_search(&member).unwrap();
        assert!(before.dist > 0.0, "series 350 not yet indexed");
        // Index the remaining series; cached leaf blocks must be refreshed.
        let batch: Vec<Vec<Value>> = (300..400).map(|p| ds.get(p).unwrap()).collect();
        tree.insert_batch(300, &batch).unwrap();
        let (after, _) = tree.exact_search(&member).unwrap();
        assert_eq!(after.pos, 350);
        assert!(after.dist < 1e-4);
    }

    #[test]
    fn range_query_matches_brute_force() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 500);
        for materialized in [false, true] {
            let opts = BuildOptions {
                materialized,
                ..BuildOptions::default()
            };
            let tree = CoconutTree::build(&ds, &small_config(), dir.path(), opts).unwrap();
            let q = query(42);
            // Pick epsilon around the 10th-nearest distance so the result
            // set is non-trivial.
            let mut dists: Vec<(u64, f64)> = (0..500)
                .map(|p| (p, euclidean(&q, &ds.get(p).unwrap())))
                .collect();
            dists.sort_by(|a, b| a.1.total_cmp(&b.1));
            let eps = dists[9].1;
            let (hits, _) = tree.exact_range(&q, eps).unwrap();
            let expected: Vec<u64> = dists
                .iter()
                .take_while(|&&(_, d)| d <= eps)
                .map(|&(p, _)| p)
                .collect();
            assert_eq!(hits.len(), expected.len(), "mat={materialized}");
            let mut got: Vec<u64> = hits.iter().map(|a| a.pos).collect();
            got.sort_unstable();
            let mut want = expected;
            want.sort_unstable();
            assert_eq!(got, want, "mat={materialized}");
            // Sorted by distance.
            for w in hits.windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
        }
    }

    #[test]
    fn range_query_epsilon_zero_finds_members_only() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 200);
        let tree =
            CoconutTree::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let member = ds.get(77).unwrap();
        let (hits, _) = tree.exact_range(&member, 1e-6).unwrap();
        assert!(hits.iter().any(|a| a.pos == 77));
        assert!(hits.iter().all(|a| a.dist <= 1e-6));
    }

    #[test]
    fn dtw_search_matches_brute_force() {
        use coconut_series::dtw::dtw;
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 300);
        for materialized in [false, true] {
            let opts = BuildOptions {
                materialized,
                ..BuildOptions::default()
            };
            let tree = CoconutTree::build(&ds, &small_config(), dir.path(), opts).unwrap();
            for seed in 800..805 {
                let q = query(seed);
                for band in [2usize, 6] {
                    let (ans, stats) = tree.exact_search_dtw(&q, band).unwrap();
                    // Brute force DTW.
                    let mut best = Answer::none();
                    for p in 0..300 {
                        let s = ds.get(p).unwrap();
                        best.merge(Answer {
                            pos: p,
                            dist: dtw(&q, &s, band),
                        });
                    }
                    assert_eq!(
                        ans.pos, best.pos,
                        "mat={materialized} seed={seed} band={band}"
                    );
                    assert!((ans.dist - best.dist).abs() < 1e-6);
                    assert!(stats.lower_bounds >= 300);
                }
            }
        }
    }

    #[test]
    fn dtw_answer_is_at_most_euclidean_answer() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 300);
        let tree =
            CoconutTree::build(&ds, &small_config(), dir.path(), BuildOptions::default()).unwrap();
        let q = query(11);
        let (ed, _) = tree.exact_search(&q).unwrap();
        let (dt, _) = tree.exact_search_dtw(&q, 5).unwrap();
        assert!(dt.dist <= ed.dist + 1e-9);
    }

    #[test]
    fn descend_agrees_with_flat_binary_search() {
        let dir = TempDir::new("ctree").unwrap();
        let ds = make_dataset(&dir, 1500);
        let mut config = small_config();
        config.internal_fanout = 4; // force several levels
        let tree = CoconutTree::build(&ds, &config, dir.path(), BuildOptions::default()).unwrap();
        assert!(tree.height() >= 3);
        for seed in 700..720 {
            let q = query(seed);
            let key = tree.query_key(&q).unwrap();
            let (li, _) = tree.descend(key).unwrap();
            let flat = tree.levels[0]
                .partition_point(|&k| k <= key)
                .saturating_sub(1);
            assert_eq!(li, flat, "seed {seed}");
        }
    }
}
