//! Property tests for on-disk corruption: flip a random byte or truncate
//! a random file anywhere in an index directory (manifest included), then
//! open, scrub, and query. The contract under any such damage:
//!
//! * **never a panic** — every failure is a typed [`coconut_storage::Error`];
//! * **never a wrong answer** — if the index opens, whatever prefix it
//!   still covers must answer bit-identically to a brute-force scan of
//!   that prefix, or the query itself must fail typed.
//!
//! Undetected-but-harmless damage (a flipped bit in padding) is allowed:
//! the property only forbids silent wrongness.

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use coconut_core::{BuildOptions, IndexConfig, LsmCoconut};
use coconut_series::dataset::{write_dataset, Dataset};
use coconut_series::gen::RandomWalkGen;
use coconut_series::index::Answer;
use coconut_storage::{Deadline, IoStats, TempDir};

const N: u64 = 200;
const LEN: usize = 32;

/// A pristine three-run index built once; every case works on a copy.
struct Fixture {
    _dir: TempDir,
    index: PathBuf,
    data: PathBuf,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = TempDir::new("corruption-golden").unwrap();
        let data = dir.path().join("data.ds");
        let stats = Arc::new(IoStats::new());
        write_dataset(&data, &mut RandomWalkGen::new(11), N, LEN, &stats).unwrap();
        let ds = Dataset::open(&data, stats).unwrap();
        let index = dir.path().join("index");
        let lsm = LsmCoconut::new(config(), BuildOptions::default(), &index).unwrap();
        for upto in [80, 140, N] {
            lsm.ingest_upto(&ds, upto).unwrap();
        }
        Fixture {
            _dir: dir,
            index,
            data,
        }
    })
}

fn config() -> IndexConfig {
    let mut c = IndexConfig::default_for_len(LEN);
    c.leaf_capacity = 16;
    c
}

fn open_dataset() -> Dataset {
    Dataset::open(&fixture().data, Arc::new(IoStats::new())).unwrap()
}

/// Recursively copy the golden index into a fresh scratch directory.
fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &dst);
        } else {
            std::fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

/// Every regular file under `dir`, sorted for determinism.
fn files_under(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let entry = entry.unwrap();
            if entry.file_type().unwrap().is_dir() {
                stack.push(entry.path());
            } else {
                out.push(entry.path());
            }
        }
    }
    out.sort();
    out
}

/// Brute-force 1-NN over `0..end` — what a surviving index must match.
fn oracle_prefix(ds: &Dataset, q: &[f32], end: u64) -> Answer {
    let mut best = Answer::none();
    for pos in 0..end {
        let d = coconut_series::distance::euclidean(q, &ds.get(pos).unwrap());
        if d < best.dist {
            best = Answer { pos, dist: d };
        }
    }
    best
}

/// The whole property: damage one file, then open + scrub + query and
/// demand typed failure or bit-exact truth — never a panic, never a lie.
fn check_damaged_index(dir: &Path) {
    let ds = open_dataset();
    let lsm = match LsmCoconut::open(dir, &ds, BuildOptions::default()) {
        Ok(lsm) => lsm,
        Err(e) => {
            // A typed refusal is a correct outcome; its display must be
            // non-empty so operators see *what* was damaged.
            assert!(!e.to_string().is_empty());
            return;
        }
    };
    // Scrub must classify every live run without panicking; a detected
    // error must carry a message.
    for run in lsm.scrub() {
        if let Some(err) = run.error {
            assert!(!err.is_empty(), "scrub error without a message");
        }
    }
    // Whatever prefix survived must answer exactly or fail typed.
    let covered = lsm.covered_end();
    assert!(covered <= N, "covered={covered} grew past the dataset");
    let q: Vec<f32> = ds.get(N / 2).unwrap();
    match lsm.snapshot().exact(&q, Deadline::NONE) {
        Err(e) => assert!(!e.to_string().is_empty()),
        Ok((got, _)) => {
            let want = oracle_prefix(&ds, &q, covered);
            assert_eq!(
                (got.pos, got.dist.to_bits()),
                (want.pos, want.dist.to_bits()),
                "damaged index answered wrongly over its covered prefix 0..{covered}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flip one random byte in one random index file.
    #[test]
    fn flipped_byte_is_typed_or_harmless(
        file_sel in any::<u64>(),
        offset_sel in any::<u64>(),
        xor in any::<u8>(),
    ) {
        let scratch = TempDir::new("corruption-flip").unwrap();
        let dir = scratch.path().join("index");
        copy_tree(&fixture().index, &dir);
        let files = files_under(&dir);
        let victim = &files[(file_sel % files.len() as u64) as usize];
        let mut bytes = std::fs::read(victim).unwrap();
        if !bytes.is_empty() {
            let off = (offset_sel % bytes.len() as u64) as usize;
            bytes[off] ^= xor | 1; // always a real flip
            std::fs::write(victim, bytes).unwrap();
        }
        check_damaged_index(&dir);
    }

    /// Truncate one random index file to a random shorter length.
    #[test]
    fn truncated_file_is_typed_or_harmless(
        file_sel in any::<u64>(),
        len_sel in any::<u64>(),
    ) {
        let scratch = TempDir::new("corruption-trunc").unwrap();
        let dir = scratch.path().join("index");
        copy_tree(&fixture().index, &dir);
        let files = files_under(&dir);
        let victim = &files[(file_sel % files.len() as u64) as usize];
        let bytes = std::fs::read(victim).unwrap();
        if !bytes.is_empty() {
            let keep = (len_sel % bytes.len() as u64) as usize;
            std::fs::write(victim, &bytes[..keep]).unwrap();
        }
        check_damaged_index(&dir);
    }
}
