//! Property tests for concurrent multi-writer ingest under both compaction
//! policies: random interleavings of {grow-and-multi-writer-ingest, policy
//! switch, forced compaction, crash-during-group-commit} must always
//! recover a contiguous covered prefix that answers oracle-exactly —
//! including the case where a group commit dies *between* the run fsyncs
//! and the manifest commit, which must clean the orphan run directories on
//! reopen and must never lose a batch whose ingest call returned `Ok`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use coconut_core::{
    BuildOptions, CompactionPolicyKind, IndexConfig, LeveledPolicy, LsmCoconut, TieredPolicy,
};
use coconut_series::dataset::{Dataset, DatasetWriter};
use coconut_series::distance::{euclidean, znormalize};
use coconut_series::gen::{Generator, RandomWalkGen};
use coconut_series::index::{Answer, SeriesIndex};
use coconut_series::Value;
use coconut_storage::{FaultPlan, IoStats, TempDir};
use proptest::prelude::*;

const LEN: usize = 32;

fn config() -> IndexConfig {
    let mut c = IndexConfig::default_for_len(LEN);
    c.leaf_capacity = 16;
    c
}

/// Append `n` fresh series to the dataset file and reopen it.
fn grow(
    path: &std::path::Path,
    stats: &Arc<IoStats>,
    gen: &mut RandomWalkGen,
    all: &mut Vec<Vec<Value>>,
    n: usize,
) -> Dataset {
    for _ in 0..n {
        let mut s = gen.generate(LEN);
        znormalize(&mut s);
        all.push(s);
    }
    let mut w = DatasetWriter::create(path, LEN, true, Arc::clone(stats)).unwrap();
    for s in all.iter() {
        w.append(s).unwrap();
    }
    w.finish().unwrap();
    Dataset::open(path, Arc::clone(stats)).unwrap()
}

fn brute_force(prefix: &[Vec<Value>], q: &[Value]) -> Answer {
    let mut best = Answer::none();
    for (i, s) in prefix.iter().enumerate() {
        best.merge(Answer {
            pos: i as u64,
            dist: euclidean(q, s),
        });
    }
    best
}

/// Ingest everything up to `upto` with `writers` concurrent writer handles
/// claiming `step`-sized slices. Returns the highest position any writer
/// was *acknowledged* for (its `ingest_next_upto` returned `Ok(Some(_))`,
/// i.e. the group commit made it durable) and the first error, if any —
/// both matter: after a crash the acknowledged prefix must survive
/// recovery even though some call failed.
fn multi_ingest(
    lsm: &LsmCoconut,
    dataset: &Dataset,
    upto: u64,
    writers: usize,
    step: u64,
) -> (u64, Option<String>) {
    let acked = AtomicU64::new(0);
    let mut first_err = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..writers)
            .map(|_| {
                let acked = &acked;
                s.spawn(move || -> Result<(), String> {
                    let w = lsm.writer();
                    loop {
                        match w.ingest_next_upto(dataset, upto, step) {
                            Ok(Some(r)) => {
                                acked.fetch_max(r.end, Ordering::Relaxed);
                            }
                            Ok(None) => return Ok(()),
                            Err(e) => return Err(e.to_string()),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(e) = h.join().expect("writer thread panicked") {
                first_err.get_or_insert(e);
            }
        }
    });
    (acked.load(Ordering::Relaxed), first_err)
}

/// The consistency bar every recovery must clear: contiguous coverage, no
/// orphan run directories or manifest temp once compactions settle, and
/// oracle-exact answers over the recovered prefix.
fn check_recovered(
    lsm: &LsmCoconut,
    idx_dir: &std::path::Path,
    all: &[Vec<Value>],
    acked: u64,
    query_seed: u64,
) {
    let covered = lsm.covered_end();
    assert!(covered <= all.len() as u64);
    assert!(
        covered >= acked,
        "acknowledged batch lost: acked up to {acked}, recovered {covered}"
    );
    assert_eq!(lsm.len(), covered);
    lsm.wait_for_compactions().unwrap();
    let run_dirs: Vec<String> = std::fs::read_dir(idx_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("run-"))
        .collect();
    assert_eq!(run_dirs.len(), lsm.run_count(), "orphans: {run_dirs:?}");
    assert!(!idx_dir.join("MANIFEST.tmp").exists());
    let mut q = RandomWalkGen::new(query_seed).generate(LEN);
    znormalize(&mut q);
    let (ans, _) = lsm.exact(&q).unwrap();
    let oracle = brute_force(&all[..covered as usize], &q);
    assert_eq!(ans.pos, oracle.pos);
}

/// The scenario the group-commit protocol exists for, pinned
/// deterministically: several writers fsync their runs, then the elected
/// committer dies *before the manifest write*. The fsynced runs are
/// orphans — on disk but in no manifest — and reopen must quarantine-free
/// clean them while keeping every previously acknowledged batch.
#[test]
fn group_commit_crash_between_run_fsync_and_manifest_commit_recovers() {
    for site in ["manifest.before", "manifest.torn", "manifest.after"] {
        let dir = TempDir::new("prop-compaction-det").unwrap();
        let stats = Arc::new(IoStats::new());
        let data_path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(9);
        let mut all: Vec<Vec<Value>> = Vec::new();

        // A durable first wave, then arm the crash and send three writers.
        let dataset = grow(&data_path, &stats, &mut gen, &mut all, 60);
        let lsm = LsmCoconut::new(config(), BuildOptions::default(), &idx_dir).unwrap();
        lsm.ingest_upto(&dataset, 30).unwrap();
        lsm.wait_for_compactions().unwrap();
        let acked_before = lsm.covered_end();
        assert_eq!(acked_before, 30);

        let plan = FaultPlan::parse(&format!("{site}=err@1"), 7).unwrap();
        lsm.set_fault_plan(Some(Arc::new(plan)));
        let (acked, err) = multi_ingest(&lsm, &dataset, 60, 3, 5);
        assert!(err.is_some(), "{site}: armed crash never fired");
        drop(lsm);

        // The fsynced-but-uncommitted runs are on disk right now; reopen
        // must reconcile the directory against the surviving manifest.
        let lsm = LsmCoconut::open(&idx_dir, &dataset, BuildOptions::default()).unwrap();
        check_recovered(&lsm, &idx_dir, &all, acked.max(acked_before), 0xC0C0);

        // Catching up re-ingests only what the crash lost, and the final
        // state answers exactly.
        lsm.ingest(&dataset).unwrap();
        assert_eq!(lsm.covered_end(), 60);
        check_recovered(&lsm, &idx_dir, &all, 60, 0xC0C1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random interleavings of multi-writer ingest, policy switches,
    /// forced compaction, and group-commit crashes at all three manifest
    /// fault sites, under 1–3 writers. Every crash drops the instance and
    /// reopens from disk like a process restart.
    #[test]
    fn multi_writer_interleavings_always_recover(
        ops in proptest::collection::vec((0u8..5, 1u64..4), 4..9),
        writers in 1usize..4,
        seed in 0u64..1000,
    ) {
        let dir = TempDir::new("prop-compaction").unwrap();
        let stats = Arc::new(IoStats::new());
        let data_path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(seed);
        let mut all: Vec<Vec<Value>> = Vec::new();

        let mut dataset = grow(&data_path, &stats, &mut gen, &mut all, 40);
        let mut lsm = LsmCoconut::create(
            config(),
            BuildOptions::default(),
            &idx_dir,
            0,
            if seed % 2 == 0 { CompactionPolicyKind::Tiered } else { CompactionPolicyKind::Leveled },
        ).unwrap();
        let (mut acked, err) = multi_ingest(&lsm, &dataset, dataset.len(), writers, 15);
        prop_assert!(err.is_none(), "{:?}", err);

        for (step, &(op, param)) in ops.iter().enumerate() {
            let qseed = seed ^ (step as u64) << 8;
            match op {
                // Grow the dataset and multi-writer-ingest the new tail.
                0 | 1 => {
                    dataset = grow(&data_path, &stats, &mut gen, &mut all, 20 * param as usize);
                    let (a, err) = multi_ingest(&lsm, &dataset, dataset.len(), writers, 12);
                    prop_assert!(err.is_none(), "step {}: {:?}", step, err);
                    acked = acked.max(a);
                    prop_assert_eq!(lsm.covered_end(), all.len() as u64);
                }
                // Swap the compaction policy live, then let it settle.
                2 => {
                    if param == 1 {
                        lsm.set_policy(Box::new(LeveledPolicy::default()));
                    } else {
                        lsm.set_policy(Box::new(TieredPolicy::default()));
                    }
                    lsm.wait_for_compactions().unwrap();
                }
                // Full compaction: one run, regardless of policy/history.
                3 => {
                    lsm.compact().unwrap();
                    prop_assert_eq!(lsm.run_count(), 1);
                }
                // Crash a multi-writer group commit at a manifest fault
                // site, then recover from disk.
                _ => {
                    let site = match param {
                        1 => "manifest.before",
                        2 => "manifest.torn",
                        _ => "manifest.after",
                    };
                    dataset = grow(&data_path, &stats, &mut gen, &mut all, 30);
                    lsm.wait_for_compactions().unwrap();
                    let plan = FaultPlan::parse(&format!("{site}=err@1"), seed).unwrap();
                    lsm.set_fault_plan(Some(Arc::new(plan)));
                    let (a, err) = multi_ingest(&lsm, &dataset, dataset.len(), writers, 10);
                    prop_assert!(err.is_some(), "step {}: armed {} never fired", step, site);
                    acked = acked.max(a);
                    drop(lsm);
                    lsm = LsmCoconut::open(&idx_dir, &dataset, BuildOptions::default()).unwrap();
                    check_recovered(&lsm, &idx_dir, &all, acked, qseed);
                }
            }
            // Whatever happened, committed data keeps answering exactly.
            let mut q = RandomWalkGen::new(qseed ^ 0xBEEF).generate(LEN);
            znormalize(&mut q);
            let covered = lsm.covered_end() as usize;
            let (ans, _) = lsm.exact(&q).unwrap();
            prop_assert_eq!(ans.pos, brute_force(&all[..covered], &q).pos, "step {}", step);
        }

        // Catch up on anything a crash rolled back; the full dataset must
        // then be covered, contiguous, and oracle-exact under compaction.
        let (a, err) = multi_ingest(&lsm, &dataset, dataset.len(), writers, 15);
        prop_assert!(err.is_none(), "{:?}", err);
        acked = acked.max(a).max(all.len() as u64);
        prop_assert_eq!(lsm.covered_end(), all.len() as u64);
        lsm.compact().unwrap();
        prop_assert_eq!(lsm.run_count(), 1);
        check_recovered(&lsm, &idx_dir, &all, acked, seed ^ 0xFACE);
    }
}
