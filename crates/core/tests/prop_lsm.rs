//! Crash-safety property tests for the LSM subsystem: random interleavings
//! of batch ingest, compaction, and simulated kill points (the fail-point
//! hook dies before / mid / after the manifest write), asserting that
//! `LsmCoconut::open` always recovers a consistent run set — contiguous
//! coverage, no orphan run directories, no leftover manifest temp — and
//! that exact queries over the recovered prefix match a brute-force oracle.

use std::sync::Arc;

use coconut_core::{BuildOptions, IndexConfig, KillPoint, LsmCoconut};
use coconut_series::dataset::{Dataset, DatasetWriter};
use coconut_series::distance::{euclidean, znormalize};
use coconut_series::gen::{Generator, RandomWalkGen};
use coconut_series::index::{Answer, SeriesIndex};
use coconut_series::Value;
use coconut_storage::{IoStats, TempDir};
use proptest::prelude::*;

const LEN: usize = 32;

fn config() -> IndexConfig {
    let mut c = IndexConfig::default_for_len(LEN);
    c.leaf_capacity = 16;
    c
}

/// Append `n` fresh series to the dataset file and reopen it.
fn grow(
    path: &std::path::Path,
    stats: &Arc<IoStats>,
    gen: &mut RandomWalkGen,
    all: &mut Vec<Vec<Value>>,
    n: usize,
) -> Dataset {
    for _ in 0..n {
        let mut s = gen.generate(LEN);
        znormalize(&mut s);
        all.push(s);
    }
    let mut w = DatasetWriter::create(path, LEN, true, Arc::clone(stats)).unwrap();
    for s in all.iter() {
        w.append(s).unwrap();
    }
    w.finish().unwrap();
    Dataset::open(path, Arc::clone(stats)).unwrap()
}

fn brute_force(prefix: &[Vec<Value>], q: &[Value]) -> Answer {
    let mut best = Answer::none();
    for (i, s) in prefix.iter().enumerate() {
        best.merge(Answer {
            pos: i as u64,
            dist: euclidean(q, s),
        });
    }
    best
}

/// The consistency bar every recovery must clear.
fn check_recovered(
    lsm: &LsmCoconut,
    idx_dir: &std::path::Path,
    all: &[Vec<Value>],
    query_seed: u64,
) {
    // Coverage never exceeds what was ever ingested, and the entry count
    // matches it exactly (runs are contiguous and gap-free by manifest
    // validation).
    let covered = lsm.covered_end();
    assert!(covered <= all.len() as u64);
    assert_eq!(lsm.len(), covered);
    // After compactions settle, the on-disk run directories are exactly the
    // live run set, and no manifest temp file survives.
    lsm.wait_for_compactions().unwrap();
    let run_dirs: Vec<String> = std::fs::read_dir(idx_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("run-"))
        .collect();
    assert_eq!(run_dirs.len(), lsm.run_count(), "orphans: {run_dirs:?}");
    assert!(!idx_dir.join("MANIFEST.tmp").exists());
    // Queries over the recovered prefix are oracle-identical.
    let mut q = RandomWalkGen::new(query_seed).generate(LEN);
    znormalize(&mut q);
    let (ans, _) = lsm.exact(&q).unwrap();
    let oracle = brute_force(&all[..covered as usize], &q);
    assert_eq!(ans.pos, oracle.pos);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random interleavings of {ingest, compact, crash-then-recover} with
    /// all three kill points. Every op that "crashes" drops the instance
    /// mid-operation and reopens from disk, like a process restart.
    #[test]
    fn random_crash_interleavings_always_recover(
        ops in proptest::collection::vec((0u8..5, 1u64..4), 4..10),
        seed in 0u64..1000,
    ) {
        let dir = TempDir::new("prop-lsm").unwrap();
        let stats = Arc::new(IoStats::new());
        let data_path = dir.path().join("data.bin");
        let idx_dir = dir.path().join("idx");
        let mut gen = RandomWalkGen::new(seed);
        let mut all: Vec<Vec<Value>> = Vec::new();

        let mut dataset = grow(&data_path, &stats, &mut gen, &mut all, 40);
        let mut lsm = LsmCoconut::new(config(), BuildOptions::default(), &idx_dir).unwrap();
        lsm.set_max_runs(3);
        lsm.ingest(&dataset).unwrap();

        for (step, &(op, param)) in ops.iter().enumerate() {
            let qseed = seed ^ (step as u64) << 8;
            match op {
                // Grow the dataset and ingest the new tail.
                0 | 1 => {
                    dataset = grow(&data_path, &stats, &mut gen, &mut all, 25 * param as usize);
                    lsm.ingest(&dataset).unwrap();
                }
                // Full compaction.
                2 => {
                    lsm.compact().unwrap();
                    prop_assert_eq!(lsm.run_count(), 1);
                }
                // Crash during an ingest commit, at a random kill point.
                3 => {
                    let kill = match param {
                        1 => KillPoint::BeforeManifestWrite,
                        2 => KillPoint::MidManifestWrite,
                        _ => KillPoint::AfterManifestCommit,
                    };
                    dataset = grow(&data_path, &stats, &mut gen, &mut all, 30);
                    lsm.wait_for_compactions().unwrap();
                    lsm.set_kill_point(Some(kill));
                    let err = lsm.ingest(&dataset).expect_err("armed kill must fire");
                    prop_assert!(err.to_string().contains("simulated crash"), "{}", err);
                    drop(lsm);
                    lsm = LsmCoconut::open(&idx_dir, &dataset, BuildOptions::default()).unwrap();
                    lsm.set_max_runs(3);
                    check_recovered(&lsm, &idx_dir, &all, qseed);
                }
                // Crash during a compaction commit, at a random kill point.
                _ => {
                    let kill = match param {
                        1 => KillPoint::BeforeManifestWrite,
                        2 => KillPoint::MidManifestWrite,
                        _ => KillPoint::AfterManifestCommit,
                    };
                    lsm.wait_for_compactions().unwrap();
                    if lsm.run_count() >= 2 {
                        lsm.set_kill_point(Some(kill));
                        let err = lsm.compact().expect_err("armed kill must fire");
                        prop_assert!(err.to_string().contains("simulated crash"), "{}", err);
                        drop(lsm);
                        lsm = LsmCoconut::open(&idx_dir, &dataset, BuildOptions::default()).unwrap();
                        lsm.set_max_runs(3);
                        check_recovered(&lsm, &idx_dir, &all, qseed);
                    } else {
                        // Nothing to compact: disarm and move on.
                        lsm.set_kill_point(None);
                    }
                }
            }
            // Whatever happened, committed data keeps answering exactly.
            let mut q = RandomWalkGen::new(qseed ^ 0xABCD).generate(LEN);
            znormalize(&mut q);
            let covered = lsm.covered_end() as usize;
            let (ans, _) = lsm.exact(&q).unwrap();
            prop_assert_eq!(ans.pos, brute_force(&all[..covered], &q).pos, "step {}", step);
        }

        // Catch up on anything a crash rolled back, then do a final full
        // verification pass.
        lsm.ingest(&dataset).unwrap();
        prop_assert_eq!(lsm.covered_end(), all.len() as u64);
        check_recovered(&lsm, &idx_dir, &all, seed ^ 0xF1FA);
    }
}
