//! Property tests for sharded construction: over random dataset sizes and
//! shard counts (including K greater than the record count), the sharded
//! pipeline must produce the exact record stream — and the exact index
//! file — of the single-sorter pipeline.

use std::sync::Arc;

use coconut_core::builder::sorted_key_pos;
use coconut_core::shard::{shard_ranges, sorted_key_pos_sharded};
use coconut_core::{BuildOptions, CoconutTree, IndexConfig};
use coconut_series::dataset::{write_dataset, Dataset};
use coconut_series::gen::RandomWalkGen;
use coconut_storage::{IoStats, TempDir};
use coconut_summary::SaxConfig;
use proptest::prelude::*;

const LEN: usize = 32;

fn make_dataset(dir: &TempDir, n: u64, seed: u64) -> (Dataset, Arc<IoStats>) {
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join("data.bin");
    write_dataset(&path, &mut RandomWalkGen::new(seed), n, LEN, &stats).unwrap();
    (Dataset::open(&path, Arc::clone(&stats)).unwrap(), stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn shard_ranges_are_a_partition(
        start in 0u64..1000,
        len in 0u64..5000,
        shards in 0usize..40,
    ) {
        let ranges = shard_ranges(start..start + len, shards);
        // Contiguous, gap-free, non-empty, near-equal.
        let mut expect_start = start;
        for r in &ranges {
            prop_assert_eq!(r.start, expect_start);
            prop_assert!(r.end > r.start, "empty shard {:?}", r);
            expect_start = r.end;
        }
        prop_assert_eq!(expect_start, start + len);
        if len == 0 {
            prop_assert!(ranges.is_empty());
        } else {
            prop_assert!(ranges.len() <= shards.max(1));
            let min = ranges.iter().map(|r| r.end - r.start).min().unwrap();
            let max = ranges.iter().map(|r| r.end - r.start).max().unwrap();
            prop_assert!(max - min <= 1, "unbalanced: {min}..{max}");
        }
    }

    #[test]
    fn sharded_stream_equals_single_sorter(
        n in 0u64..400,
        shards in 1usize..12,
        budget in 512u64..(1 << 20),
        seed in 0u64..1000,
    ) {
        let dir = TempDir::new("prop-shard-stream").unwrap();
        let (ds, stats) = make_dataset(&dir, n, seed);
        let sax = SaxConfig::default_for_len(LEN);
        let expected = sorted_key_pos(&ds, 0..n, &sax, budget, dir.path(), &stats)
            .unwrap()
            .collect_all()
            .unwrap();
        let got = sorted_key_pos_sharded(&ds, 0..n, &sax, budget, dir.path(), &stats, shards)
            .unwrap()
            .collect_all()
            .unwrap();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn sharded_index_is_bit_identical(
        n in 1u64..350,
        shards in 2usize..9,
        materialized in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let dir = TempDir::new("prop-shard-index").unwrap();
        let (ds, _) = make_dataset(&dir, n, seed);
        let mut config = IndexConfig::default_for_len(LEN);
        config.leaf_capacity = 16;
        let opts = BuildOptions {
            memory_bytes: 8 << 10, // small: shards spill and merge
            materialized,
            threads: 1,
            shards: 1,
        };
        let single = CoconutTree::build(&ds, &config, dir.path(), opts.clone()).unwrap();
        let sharded =
            CoconutTree::build(&ds, &config, dir.path(), opts.with_shards(shards)).unwrap();
        let a = std::fs::read(single.index_path()).unwrap();
        let b = std::fs::read(sharded.index_path()).unwrap();
        prop_assert_eq!(a, b, "n={} shards={} mat={}", n, shards, materialized);
    }
}
