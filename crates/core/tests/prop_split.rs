//! Property tests for the pluggable node-splitting policies.
//!
//! On random skewed (clustered) series distributions — the regime the
//! adaptive policy reshapes the trie for — every query a Coconut-Trie can
//! answer must be bit-identical across policies: adaptive vs the fixed
//! binary baseline vs a brute-force oracle, for exact 1-NN, k-NN, and
//! range queries. The answers must also survive a reopen from disk (the
//! multi-way v1 node encoding) and, for the LSM path, a simulated crash
//! mid-manifest-write (the manifest's policy byte) unchanged.

use std::sync::Arc;

use coconut_core::{
    BuildOptions, CoconutTrie, IndexConfig, KillPoint, LsmCoconut, SplitPolicyKind,
};
use coconut_series::dataset::{Dataset, DatasetWriter};
use coconut_series::distance::{euclidean, znormalize};
use coconut_series::gen::{Generator, RandomWalkGen};
use coconut_series::index::SeriesIndex;
use coconut_series::Value;
use coconut_storage::{IoStats, TempDir};
use proptest::prelude::*;

const LEN: usize = 32;

fn config(policy: SplitPolicyKind) -> IndexConfig {
    let mut c = IndexConfig::default_for_len(LEN);
    c.leaf_capacity = 16;
    c.with_split_policy(policy)
}

/// Write a clustered dataset: `clusters` base shapes plus per-series noise
/// of relative scale `noise`, so z-keys pile up on shared prefixes. Returns
/// the opened dataset and the raw series for the oracle.
fn skewed_dataset(
    dir: &TempDir,
    n: usize,
    clusters: usize,
    noise: f64,
    seed: u64,
) -> (Dataset, Vec<Vec<Value>>) {
    let stats = Arc::new(IoStats::new());
    let path = dir.path().join("skew.bin");
    let bases: Vec<Vec<Value>> = (0..clusters)
        .map(|c| {
            let mut b = RandomWalkGen::new(seed.wrapping_mul(31) + c as u64).generate(LEN);
            znormalize(&mut b);
            b
        })
        .collect();
    let mut state = seed | 1;
    let mut all = Vec::with_capacity(n);
    let mut w = DatasetWriter::create(&path, LEN, true, Arc::clone(&stats)).unwrap();
    for i in 0..n {
        let base = &bases[i % clusters];
        let mut s: Vec<Value> = base
            .iter()
            .map(|&v| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * noise;
                v + u as Value
            })
            .collect();
        znormalize(&mut s);
        w.append(&s).unwrap();
        all.push(s);
    }
    w.finish().unwrap();
    (Dataset::open(&path, stats).unwrap(), all)
}

fn query(seed: u64) -> Vec<Value> {
    let mut q = RandomWalkGen::new(seed).generate(LEN);
    znormalize(&mut q);
    q
}

/// All `(pos, dist)` pairs sorted by distance — the oracle every index
/// answer is checked against.
fn oracle(all: &[Vec<Value>], q: &[Value]) -> Vec<(u64, f64)> {
    let mut d: Vec<(u64, f64)> = all
        .iter()
        .enumerate()
        .map(|(i, s)| (i as u64, euclidean(q, s)))
        .collect();
    d.sort_by(|a, b| a.1.total_cmp(&b.1));
    d
}

/// Exact 1-NN, k-NN, and range answers from `trie` must match `other` (the
/// fixed baseline) bit-for-bit and the oracle by distance.
fn check_identical(trie: &CoconutTrie, other: &CoconutTrie, all: &[Vec<Value>], qseed: u64) {
    let q = query(qseed);
    let truth = oracle(all, &q);

    let (a, _) = trie.exact_search(&q).unwrap();
    let (f, _) = other.exact_search(&q).unwrap();
    prop_assert_eq!(a.pos, f.pos, "1-NN diverged across policies");
    prop_assert_eq!(a.dist.to_bits(), f.dist.to_bits(), "1-NN dist bits");
    prop_assert_eq!(a.pos, truth[0].0, "1-NN diverged from oracle");

    let k = 5.min(all.len());
    let (ka, _) = trie.exact_knn(&q, k).unwrap();
    let (kf, _) = other.exact_knn(&q, k).unwrap();
    prop_assert_eq!(ka.len(), kf.len());
    for (i, (x, y)) in ka.iter().zip(kf.iter()).enumerate() {
        prop_assert_eq!(x.pos, y.pos, "kNN[{}] pos diverged across policies", i);
        prop_assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "kNN[{}] dist bits", i);
        prop_assert!(
            (x.dist - truth[i].1).abs() < 1e-6,
            "kNN[{}] dist {} vs oracle {}",
            i,
            x.dist,
            truth[i].1
        );
    }

    let eps = truth[k - 1].1 * 1.2;
    let (ra, _) = trie.exact_range(&q, eps).unwrap();
    let (rf, _) = other.exact_range(&q, eps).unwrap();
    let mut pa: Vec<u64> = ra.iter().map(|x| x.pos).collect();
    let mut pf: Vec<u64> = rf.iter().map(|x| x.pos).collect();
    let mut truth_in: Vec<u64> = truth
        .iter()
        .take_while(|&&(_, d)| d <= eps)
        .map(|&(p, _)| p)
        .collect();
    pa.sort_unstable();
    pf.sort_unstable();
    truth_in.sort_unstable();
    prop_assert_eq!(&pa, &pf, "range hit set diverged across policies");
    prop_assert_eq!(&pa, &truth_in, "range hit set diverged from oracle");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Adaptive and fixed tries over random clustered datasets answer every
    /// query identically — before and after a reopen of the adaptive index
    /// from its on-disk (multi-way) encoding.
    #[test]
    fn adaptive_is_answer_identical_on_skewed_data(
        n in 80usize..300,
        clusters in 1usize..6,
        noise in 0.005f64..0.08,
        seed in 0u64..1000,
    ) {
        let dir = TempDir::new("prop-split").unwrap();
        let (ds, all) = skewed_dataset(&dir, n, clusters, noise, seed);
        let fixed = CoconutTrie::build(
            &ds,
            &config(SplitPolicyKind::Fixed),
            dir.path(),
            BuildOptions::default(),
        )
        .unwrap();
        let adaptive = CoconutTrie::build(
            &ds,
            &config(SplitPolicyKind::Adaptive),
            dir.path(),
            BuildOptions::default(),
        )
        .unwrap();
        for i in 0..4u64 {
            check_identical(&adaptive, &fixed, &all, seed ^ (i << 17) ^ 0x5EED);
        }

        // Reopen the adaptive index from disk: the recovered trie must be
        // structurally equal and answer-identical.
        let reopened = CoconutTrie::open(adaptive.index_path(), &ds, 2).unwrap();
        prop_assert_eq!(reopened.node_count(), adaptive.node_count());
        prop_assert_eq!(reopened.config().split_policy, SplitPolicyKind::Adaptive);
        prop_assert_eq!(reopened.leaf_entry_counts(), adaptive.leaf_entry_counts());
        for i in 0..2u64 {
            check_identical(&reopened, &fixed, &all, seed ^ (i << 23) ^ 0x0DD);
        }
    }

    /// An LSM index created with the adaptive policy keeps it through a
    /// simulated crash at any manifest kill point: recovery reads the
    /// policy byte back and keeps answering oracle-exact.
    #[test]
    fn adaptive_policy_survives_lsm_crash_recovery(
        kill in 0u8..3,
        seed in 0u64..1000,
    ) {
        let dir = TempDir::new("prop-split-lsm").unwrap();
        let (ds, all) = skewed_dataset(&dir, 120, 3, 0.02, seed);
        let idx_dir = dir.path().join("idx");
        let lsm = LsmCoconut::new(
            config(SplitPolicyKind::Adaptive),
            BuildOptions::default(),
            &idx_dir,
        )
        .unwrap();
        lsm.ingest_upto(&ds, 60).unwrap();
        lsm.wait_for_compactions().unwrap();
        lsm.set_kill_point(Some(match kill {
            0 => KillPoint::BeforeManifestWrite,
            1 => KillPoint::MidManifestWrite,
            _ => KillPoint::AfterManifestCommit,
        }));
        let err = lsm.ingest_upto(&ds, 120).expect_err("armed kill must fire");
        prop_assert!(err.to_string().contains("simulated crash"), "{}", err);
        drop(lsm);

        let lsm = LsmCoconut::open(&idx_dir, &ds, BuildOptions::default()).unwrap();
        prop_assert_eq!(
            lsm.config().split_policy,
            SplitPolicyKind::Adaptive,
            "policy byte must survive crash recovery"
        );
        let covered = lsm.covered_end() as usize;
        prop_assert!(covered == 60 || covered == 120, "covered {}", covered);
        let q = query(seed ^ 0xCAFE);
        let (ans, _) = lsm.exact(&q).unwrap();
        let truth = oracle(&all[..covered], &q);
        prop_assert_eq!(ans.pos, truth[0].0);

        // Catching up after recovery works and stays oracle-exact.
        lsm.ingest_upto(&ds, 120).unwrap();
        let q = query(seed ^ 0xF00D);
        let (ans, _) = lsm.exact(&q).unwrap();
        prop_assert_eq!(ans.pos, oracle(&all, &q)[0].0);
    }
}
