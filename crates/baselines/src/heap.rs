//! A tiny min-heap keyed by `f64` lower bounds, used by every best-first
//! exact search (iSAX 2.0, R-tree, DSTree).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// `(lower_bound, payload)` ordered so the *smallest* bound pops first.
#[derive(Debug, Clone, Copy)]
struct Entry<T> {
    bound: f64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min bound first.
        other.bound.total_cmp(&self.bound)
    }
}

/// A min-heap of `(f64 bound, T)` pairs.
#[derive(Debug)]
pub struct MinHeap<T> {
    heap: BinaryHeap<Entry<T>>,
}

impl<T> Default for MinHeap<T> {
    fn default() -> Self {
        MinHeap {
            heap: BinaryHeap::new(),
        }
    }
}

impl<T> MinHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Push an item with its lower bound.
    pub fn push(&mut self, bound: f64, item: T) {
        self.heap.push(Entry { bound, item });
    }

    /// Pop the item with the smallest bound.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.bound, e.item))
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_increasing_bound_order() {
        let mut h = MinHeap::new();
        h.push(3.0, "c");
        h.push(1.0, "a");
        h.push(2.0, "b");
        h.push(0.0, "zero");
        assert_eq!(h.pop(), Some((0.0, "zero")));
        assert_eq!(h.pop(), Some((1.0, "a")));
        assert_eq!(h.pop(), Some((2.0, "b")));
        assert_eq!(h.pop(), Some((3.0, "c")));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn handles_inf_and_duplicates() {
        let mut h = MinHeap::new();
        h.push(f64::INFINITY, 1);
        h.push(0.5, 2);
        h.push(0.5, 3);
        assert_eq!(h.pop().unwrap().0, 0.5);
        assert_eq!(h.pop().unwrap().0, 0.5);
        assert_eq!(h.pop().unwrap().0, f64::INFINITY);
        assert!(h.is_empty());
    }
}
